"""Tests for spec → engine compilation and scenario execution.

The load-bearing property is *parity*: a run assembled through the
spec/builder layer must be byte-identical (same ``result_signature``)
to the same run hand-assembled through the legacy ``ServeEngine``
constructor path the benches and CLI used before the registry existed.
"""

from repro.assignment.ppi import ppi_assign, ppi_assign_candidates
from repro.scenarios import (
    PolicySpec,
    build_dist_config,
    build_engine,
    build_serve_config,
    get_policy,
    get_scenario,
    materialize,
    run_scenario,
    signature_digest,
)
from repro.serve import ServeConfig, ServeEngine
from repro.serve.adapters import result_signature
from repro.serve.streams import (
    DeadReckoningProvider,
    StreamConfig,
    make_task_stream,
    make_worker_fleet,
)

SMOKE = get_scenario("smoke")
ADAPTIVE = get_policy("adaptive-indexed")


def legacy_smoke_adaptive_result():
    """The pre-registry construction of smoke × adaptive-indexed."""
    cfg = StreamConfig(
        seed=7, n_workers=40, n_tasks=80, t_end=20.0, width_km=10.0, height_km=10.0
    )
    tasks = make_task_stream(cfg)
    workers = make_worker_fleet(cfg)
    provider = DeadReckoningProvider(seed=7)
    engine = ServeEngine(
        workers,
        provider,
        ServeConfig(
            trigger="adaptive",
            pending_threshold=50,
            cache_ttl=6.0,
            use_index=True,
            index_cell_km=2.0,
        ),
        assign_fn=ppi_assign,
        candidate_assign_fn=ppi_assign_candidates,
    )
    return engine.run(tasks, cfg.t_start, cfg.t_end)


class TestMaterialize:
    def test_same_spec_same_data(self):
        a = materialize(SMOKE)
        b = materialize(SMOKE)
        assert [(t.task_id, t.location.x, t.location.y, t.release_time, t.deadline)
                for t in a.tasks] == \
               [(t.task_id, t.location.x, t.location.y, t.release_time, t.deadline)
                for t in b.tasks]
        assert [w.worker_id for w in a.workers] == [w.worker_id for w in b.workers]

    def test_seed_changes_data(self):
        a = materialize(SMOKE)
        reseeded = type(SMOKE)(
            generator=SMOKE.generator, seed=SMOKE.seed + 1, params=SMOKE.params
        )
        b = materialize(reseeded)
        assert [t.location.x for t in a.tasks] != [t.location.x for t in b.tasks]

    def test_variant_generators_materialize(self):
        for name in ("hot-cell-burst", "rush-hour", "worker-churn"):
            data = materialize(get_scenario(name))
            assert len(data.tasks) > 0 and len(data.workers) > 0
            assert data.t_end > data.t_start


class TestBuilders:
    def test_serve_config_field_mapping(self):
        config = build_serve_config(ADAPTIVE)
        assert config.trigger == "adaptive"
        assert config.pending_threshold == 50
        assert config.cache_ttl == 6.0
        assert config.use_index and config.index_cell_km == 2.0
        assert config.batch_window == ADAPTIVE.trigger.window
        assert config.min_trigger_interval == ADAPTIVE.trigger.min_interval

    def test_dist_config_only_when_sharded(self):
        assert build_dist_config(ADAPTIVE) is None
        sharded = get_policy("sharded-2")
        dist = build_dist_config(sharded)
        assert dist is not None and dist.shards == 2

    def test_engine_kind_follows_shards(self):
        from repro.dist import ShardedEngine

        data = materialize(SMOKE)
        engine = build_engine(data.workers, data.provider, ADAPTIVE)
        assert type(engine) is ServeEngine
        sharded = build_engine(data.workers, data.provider, get_policy("sharded-2"))
        try:
            assert isinstance(sharded, ShardedEngine)
        finally:
            sharded.close()


class TestRunScenario:
    def test_signature_parity_with_legacy_path(self):
        spec_result = run_scenario(SMOKE, ADAPTIVE)
        legacy_result = legacy_smoke_adaptive_result()
        assert result_signature(spec_result) == result_signature(legacy_result)
        assert signature_digest(spec_result) == signature_digest(legacy_result)

    def test_deterministic_across_runs(self):
        assert signature_digest(run_scenario(SMOKE, ADAPTIVE)) == signature_digest(
            run_scenario(SMOKE, ADAPTIVE)
        )

    def test_policy_changes_digest(self):
        batch = run_scenario(SMOKE, get_policy("batch-parity"))
        adaptive = run_scenario(SMOKE, ADAPTIVE)
        # Different policies complete the same stream, but their batch
        # traces differ, which the signature must see.
        assert result_signature(batch) != result_signature(adaptive)

    def test_km_algorithm_runs(self):
        policy = PolicySpec.from_dict({"algorithm": "km"})
        result = run_scenario(SMOKE, policy)
        assert result.n_tasks == len(materialize(SMOKE).tasks)

"""Long-lived shard servers: state, crash recovery, and engine parity.

The contract under test: a shard server fed incremental deltas holds
exactly the state the coordinator mirrors for it, a crashed server is
rebuilt bit-identically by replaying the JSONL command log, and a
serving run that loses servers mid-stream still reproduces the dense
engine's ``result_signature``.
"""

import os
import signal

import numpy as np
import pytest

from repro.assignment.ppi import ppi_assign, ppi_assign_candidates
from repro.dist import (
    DistConfig,
    ShardedEngine,
    ShardServerBackend,
    ShardServerError,
    component_candidate_assign,
)
from repro.dist.server import (
    ShardServerHandle,
    decode_snapshot,
    decode_task,
    encode_snapshot,
    encode_task,
)
from repro.geo.point import Point
from repro.sc.entities import SpatialTask, WorkerSnapshot
from repro.serve import (
    DeadReckoningProvider,
    ServeConfig,
    ServeEngine,
    StreamConfig,
    make_task_stream,
    make_worker_fleet,
    result_signature,
)
from repro.serve.spatial_index import build_candidates


def sample_task(task_id=0, x=1.0, y=1.0):
    return SpatialTask(task_id=task_id, location=Point(x, y), release_time=0.0, deadline=30.0)


def sample_snapshot(worker_id=0, x=1.5, y=1.5):
    return WorkerSnapshot(
        worker_id=worker_id,
        current_location=Point(x, y),
        predicted_xy=np.array([[x, y], [x + 1.0, y]]),
        predicted_times=np.array([5.0, 10.0]),
        detour_budget_km=4.0,
        speed_km_per_min=1.0,
        matching_rate=0.8,
    )


def build_payload(member_ids, t=0.0, cell_km=1.0, horizon=30.0):
    return {
        "t": t,
        "cell_km": cell_km,
        "max_candidates": None,
        "horizon": horizon,
        "member_ids": member_ids,
    }


class TestCodec:
    def test_task_roundtrip(self):
        task = sample_task(7, 3.25, -1.5)
        assert decode_task(encode_task(task)) == task

    def test_snapshot_roundtrip(self):
        snap = sample_snapshot(3)
        back = decode_snapshot(encode_snapshot(snap))
        assert back.worker_id == snap.worker_id
        assert back.current_location == snap.current_location
        np.testing.assert_array_equal(back.predicted_xy, snap.predicted_xy)
        np.testing.assert_array_equal(back.predicted_times, snap.predicted_times)
        assert back.matching_rate == snap.matching_rate


class TestShardServerHandle:
    def test_apply_then_build(self):
        handle = ShardServerHandle(0)
        try:
            assert handle.request("ping") == "pong"
            handle.request("apply", {
                "tasks_add": [encode_task(sample_task(0))],
                "snaps_add": [encode_snapshot(sample_snapshot(0))],
            })
            graph = handle.request("build", build_payload([0]))
            expected = build_candidates(
                [sample_task(0)], [sample_snapshot(0)], 0.0, horizon=30.0
            )
            assert graph == expected
        finally:
            handle.close()

    def test_removals_and_reset(self):
        handle = ShardServerHandle(0)
        try:
            state = handle.request("apply", {
                "tasks_add": [encode_task(sample_task(0)), encode_task(sample_task(1))],
                "snaps_add": [encode_snapshot(sample_snapshot(0))],
            })
            assert state == {"n_tasks": 2, "n_snaps": 1}
            state = handle.request("apply", {"tasks_remove": [0]})
            assert state["n_tasks"] == 1
            handle.request("reset")
            assert handle.request("build", build_payload([0])) == {}
        finally:
            handle.close()

    def test_unknown_command_reports_without_dying(self):
        handle = ShardServerHandle(0)
        try:
            with pytest.raises(ShardServerError):
                handle.request("no-such-command")
            assert handle.request("ping") == "pong"
            assert handle.restarts == 0
        finally:
            handle.close()

    def test_crash_respawn_replays_log(self):
        handle = ShardServerHandle(0)
        try:
            handle.request("apply", {
                "tasks_add": [encode_task(sample_task(0))],
                "snaps_add": [encode_snapshot(sample_snapshot(0))],
            })
            before = handle.request("build", build_payload([0]))
            assert before  # non-trivial state to lose
            os.kill(handle._proc.pid, signal.SIGKILL)
            handle._proc.join(timeout=2.0)
            after = handle.request("build", build_payload([0]))
            assert after == before
            assert handle.restarts == 1
        finally:
            handle.close()

    def test_file_log_survives_a_new_handle(self, tmp_path):
        """Durability: a fresh handle on the same log file starts its
        server from the logged state without any new applies."""
        log = str(tmp_path / "shard-0.jsonl")
        first = ShardServerHandle(0, log_path=log)
        try:
            first.request("apply", {
                "tasks_add": [encode_task(sample_task(0))],
                "snaps_add": [encode_snapshot(sample_snapshot(0))],
            })
            expected = first.request("build", build_payload([0]))
        finally:
            first.close()
        second = ShardServerHandle(0, log_path=log)
        try:
            assert second.log_length == 1
            assert second.request("build", build_payload([0])) == expected
        finally:
            second.close()


class TestShardServerBackend:
    def test_map_ordered_matches_serial(self):
        payloads = list(range(7))
        with ShardServerBackend(shards=3) as backend:
            assert backend.map_ordered(_square, payloads) == [p * p for p in payloads]

    def test_distconfig_resolves_shard_servers(self):
        from repro.dist import resolve_backend

        backend = resolve_backend(DistConfig(backend="shard_server", shards=2))
        assert isinstance(backend, ShardServerBackend)
        backend.close()

    def test_distconfig_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            DistConfig(backend="threads")


def _square(x):
    return x * x


def scenario(seed, n_workers=30, n_tasks=60, t_end=60.0):
    cfg = StreamConfig(n_workers=n_workers, n_tasks=n_tasks, t_end=t_end, seed=seed)
    return make_task_stream(cfg), make_worker_fleet(cfg)


def run_reference(tasks, workers, seed, **config_kwargs):
    engine = ServeEngine(
        workers,
        DeadReckoningProvider(seed=seed),
        ServeConfig(use_index=True, **config_kwargs),
        assign_fn=ppi_assign,
        candidate_assign_fn=ppi_assign_candidates,
    )
    return engine.run(tasks, 0.0, 60.0)


def run_with_servers(tasks, workers, seed, shards, warm_start=False, provider=None, **kw):
    engine = ShardedEngine(
        workers,
        provider if provider is not None else DeadReckoningProvider(seed=seed),
        ServeConfig(**kw),
        assign_fn=ppi_assign,
        candidate_assign_fn=component_candidate_assign("ppi", warm_start=warm_start),
        dist=DistConfig(backend="shard_server", shards=shards, warm_start=warm_start),
    )
    try:
        return engine.run(tasks, 0.0, 60.0), engine
    finally:
        engine.close()


class _CrashingProvider:
    """Wraps a snapshot provider; SIGKILLs one shard server mid-run."""

    def __init__(self, inner, kill_at_call):
        self.inner = inner
        self.kill_at_call = kill_at_call
        self.calls = 0
        self.engine = None
        self.killed = False

    def __call__(self, worker, t):
        self.calls += 1
        if not self.killed and self.calls >= self.kill_at_call and self.engine is not None:
            handle = self.engine.backend.handles[0]
            if handle._proc is not None and handle._proc.is_alive():
                os.kill(handle._proc.pid, signal.SIGKILL)
                self.killed = True
        return self.inner(worker, t)


class TestShardServerEngineParity:
    @pytest.mark.parametrize("shards", [1, 3])
    def test_signature_matches_dense_engine(self, shards):
        tasks, workers = scenario(4)
        ref = result_signature(run_reference(tasks, workers, 4))
        got, engine = run_with_servers(tasks, workers, 4, shards)
        assert result_signature(got) == ref
        assert isinstance(engine.backend, ShardServerBackend)
        assert engine.backend.total_restarts == 0

    def test_with_cache_and_warm_start(self):
        kwargs = dict(cache_ttl=4.0)
        tasks, workers = scenario(6)
        ref = result_signature(run_reference(tasks, workers, 6, **kwargs))
        got, engine = run_with_servers(tasks, workers, 6, shards=2, warm_start=True, **kwargs)
        assert result_signature(got) == ref
        # The delta path must actually skip re-shipping cached tracks.
        shipped = sum(len(m) for m in engine._server_preds)
        assert engine._planner.halo_hits > 0
        assert shipped > 0

    def test_crash_mid_run_replays_to_dense_signature(self):
        """Kill shard 0's process partway through the stream: the
        respawned server replays its JSONL log and the run's signature
        still equals the dense engine's."""
        tasks, workers = scenario(5)
        ref = result_signature(run_reference(tasks, workers, 5))
        provider = _CrashingProvider(DeadReckoningProvider(seed=5), kill_at_call=200)
        engine = ShardedEngine(
            workers,
            provider,
            ServeConfig(),
            assign_fn=ppi_assign,
            candidate_assign_fn=component_candidate_assign("ppi"),
            dist=DistConfig(backend="shard_server", shards=3),
        )
        provider.engine = engine
        try:
            got = engine.run(tasks, 0.0, 60.0)
        finally:
            engine.close()
        assert provider.killed, "crash was never injected; raise kill_at_call"
        assert engine.backend.total_restarts >= 1
        assert result_signature(got) == ref

"""Extra coverage for online prediction internals."""

import numpy as np
import pytest

from repro.nn.seq2seq import LSTMEncoderDecoder
from repro.pipeline.prediction import _recent_shared_track, rollout
from repro.sc.entities import Worker
from tests.conftest import straight_trajectory


@pytest.fixture
def model(rng):
    return LSTMEncoderDecoder(2, 6, seq_out=2, rng=rng)


class TestRollout:
    def test_exact_horizon_lengths(self, model, rng):
        recent = rng.uniform(0, 1, size=(4, 2))
        for horizon in (1, 2, 3, 5, 7):
            out = rollout(model, recent, horizon_points=horizon, seq_out=2)
            assert out.shape == (horizon, 2)

    def test_autoregressive_consistency(self, model, rng):
        """The first seq_out points of a long rollout equal a short one."""
        recent = rng.uniform(0, 1, size=(4, 2))
        short = rollout(model, recent, horizon_points=2, seq_out=2)
        long = rollout(model, recent, horizon_points=6, seq_out=2)
        assert np.allclose(long[:2], short)

    def test_does_not_mutate_input(self, model, rng):
        recent = rng.uniform(0, 1, size=(4, 2))
        snapshot = recent.copy()
        rollout(model, recent, horizon_points=4, seq_out=2)
        assert np.allclose(recent, snapshot)


class TestRecentSharedTrack:
    def _worker(self):
        return Worker(
            worker_id=0,
            routine=straight_trajectory(t0=0.0, t1=100.0, n=11),
            detour_budget_km=4.0,
            speed_km_per_min=0.5,
        )

    def test_returns_last_samples_up_to_t(self):
        w = self._worker()
        xy, ts = _recent_shared_track(w, t=45.0, seq_in=3)
        assert len(xy) == 3
        assert ts[-1] <= 45.0
        # Samples are every 10 minutes at x = t/10.
        assert xy[-1][0] == pytest.approx(4.0)

    def test_pads_at_day_start(self):
        w = self._worker()
        xy, _ = _recent_shared_track(w, t=5.0, seq_in=4)
        assert len(xy) == 4
        # Only one real sample exists; the rest repeat it.
        assert np.allclose(xy[0], xy[1])

    def test_before_any_sample_uses_position(self):
        w = self._worker()
        xy, ts = _recent_shared_track(w, t=-5.0, seq_in=2)
        assert len(xy) == 2
        assert np.isfinite(xy).all()

    def test_never_leaks_future_samples(self):
        w = self._worker()
        xy, ts = _recent_shared_track(w, t=33.0, seq_in=5)
        assert all(t <= 33.0 for t in ts)

"""Tests for the uniform-grid candidate index and the prediction cache."""

import numpy as np
import pytest

from repro.geo.point import Point
from repro.sc.entities import SpatialTask, WorkerSnapshot
from repro.serve import PredictionCache, UniformGridIndex, build_candidates

from tests.conftest import straight_trajectory
from tests.test_sc import make_worker, oracle_provider


def brute_force_query(items, x, y, radius):
    return sorted(
        (item_id, np.hypot(px - x, py - y))
        for item_id, px, py in items
        if np.hypot(px - x, py - y) <= radius
    )


class TestUniformGridIndex:
    @pytest.mark.parametrize("cell_km", [0.3, 1.0, 2.5])
    @pytest.mark.parametrize("radius", [0.0, 0.7, 2.0, 10.0])
    def test_query_matches_brute_force(self, rng, cell_km, radius):
        items = [
            (i, float(x), float(y))
            for i, (x, y) in enumerate(rng.uniform(-5.0, 15.0, size=(60, 2)))
        ]
        index = UniformGridIndex(cell_km=cell_km).build(items)
        for qx, qy in rng.uniform(-5.0, 15.0, size=(10, 2)):
            got = sorted((i, d) for i, d in index.query(float(qx), float(qy), radius))
            want = brute_force_query(items, float(qx), float(qy), radius)
            assert [i for i, _ in got] == [i for i, _ in want]
            assert [d for _, d in got] == pytest.approx([d for _, d in want])

    def test_negative_coordinates_supported(self):
        """The hashed grid has no extent, so negatives never clamp."""
        index = UniformGridIndex(cell_km=1.0).build([(0, -3.5, -7.2)])
        assert index.query(-3.5, -7.2, 0.1) == [(0, pytest.approx(0.0))]
        assert index.query(0.0, 0.0, 1.0) == []

    def test_empty_index(self):
        index = UniformGridIndex().build([])
        assert len(index) == 0
        assert index.query(0.0, 0.0, 100.0) == []

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            UniformGridIndex(cell_km=0.0)
        with pytest.raises(ValueError):
            UniformGridIndex().build([(0, 1.0, 1.0)]).query(0.0, 0.0, -1.0)

    def test_query_points_takes_min_distance(self):
        index = UniformGridIndex(cell_km=1.0).build([(7, 0.0, 0.0)])
        hits = index.query_points(np.array([[3.0, 0.0], [1.0, 0.0], [2.0, 0.0]]), 5.0)
        assert hits == {7: pytest.approx(1.0)}

    def test_rebuild_replaces_contents(self):
        index = UniformGridIndex(cell_km=1.0).build([(0, 0.0, 0.0)])
        index.build([(1, 5.0, 5.0)])
        assert index.query(0.0, 0.0, 0.5) == []
        assert [i for i, _ in index.query(5.0, 5.0, 0.5)] == [1]


def snapshot_at(worker_id, points, detour=4.0, speed=1.0):
    xy = np.asarray(points, dtype=float).reshape(-1, 2)
    times = 10.0 * np.arange(1, len(xy) + 1)
    return WorkerSnapshot(
        worker_id=worker_id,
        current_location=Point(float(xy[0, 0]), float(xy[0, 1])),
        predicted_xy=xy,
        predicted_times=times,
        detour_budget_km=detour,
        speed_km_per_min=speed,
        matching_rate=0.9,
    )


class TestBuildCandidates:
    def test_superset_of_theorem2_pairs(self, rng):
        """Every pair within the per-pair Theorem 2 bound is a candidate."""
        tasks = [
            SpatialTask(i, Point(float(x), float(y)), 0.0, float(rng.uniform(20.0, 60.0)))
            for i, (x, y) in enumerate(rng.uniform(0.0, 20.0, size=(25, 2)))
        ]
        snapshots = [
            snapshot_at(w, rng.uniform(0.0, 20.0, size=(4, 2)), detour=3.0)
            for w in range(15)
        ]
        graph = build_candidates(tasks, snapshots, current_time=0.0, cell_km=1.5)
        for task in tasks:
            for snap in snapshots:
                bound = min(snap.detour_budget_km / 2.0, snap.speed_km_per_min * task.deadline)
                dists = np.hypot(
                    snap.predicted_xy[:, 0] - task.location.x,
                    snap.predicted_xy[:, 1] - task.location.y,
                )
                if dists.min() <= bound:
                    assert snap.worker_id in graph.get(task.task_id, [])

    def test_far_workers_excluded(self):
        tasks = [SpatialTask(0, Point(0.0, 0.0), 0.0, 60.0)]
        near = snapshot_at(0, [(1.0, 0.0)], detour=4.0)
        far = snapshot_at(1, [(50.0, 50.0)], detour=4.0)
        graph = build_candidates(tasks, [near, far], current_time=0.0)
        assert graph == {0: [0]}

    def test_workers_listed_in_snapshot_order(self):
        tasks = [SpatialTask(0, Point(0.0, 0.0), 0.0, 60.0)]
        snaps = [snapshot_at(w, [(0.5 + 0.1 * w, 0.0)]) for w in (5, 3, 9)]
        graph = build_candidates(tasks, snaps, current_time=0.0)
        assert graph[0] == [5, 3, 9]

    def test_max_candidates_keeps_nearest(self):
        tasks = [SpatialTask(0, Point(0.0, 0.0), 0.0, 60.0)]
        snaps = [snapshot_at(w, [(0.5 * (w + 1), 0.0)]) for w in range(4)]
        graph = build_candidates(tasks, snaps, current_time=0.0, max_candidates=2)
        assert graph[0] == [0, 1]

    def test_deadline_caps_radius(self):
        """A nearly-expired task only reaches very close workers."""
        tasks = [SpatialTask(0, Point(0.0, 0.0), 0.0, 0.5)]
        snap = snapshot_at(0, [(1.5, 0.0)], detour=4.0, speed=1.0)
        # Bound = min(4/2, 1.0 * 0.5) = 0.5 km < 1.5 km away.
        assert build_candidates(tasks, [snap], current_time=0.0) == {}


class CountingProvider:
    def __init__(self):
        self.calls = 0

    def __call__(self, worker, t):
        self.calls += 1
        return oracle_provider(worker, t)


class TestPredictionCache:
    def test_ttl_zero_is_passthrough(self):
        provider = CountingProvider()
        cache = PredictionCache(provider, ttl=0.0)
        w = make_worker()
        cache.get(w, 0.0)
        cache.get(w, 0.0)
        assert provider.calls == 2
        assert cache.stats.hits == 0
        assert cache.stats.misses == 2

    def test_hit_within_ttl_refreshes_location(self):
        provider = CountingProvider()
        cache = PredictionCache(provider, ttl=5.0)
        w = make_worker()
        first = cache.get(w, 10.0)
        again = cache.get(w, 12.0)
        assert provider.calls == 1
        assert cache.stats.hits == 1
        # The cached rollout is reused but the current location tracks
        # the worker's latest shared position, not the stale one.
        assert again.current_location == w.last_shared_location(12.0)
        assert np.array_equal(again.predicted_xy, first.predicted_xy)

    def test_expires_after_ttl(self):
        provider = CountingProvider()
        cache = PredictionCache(provider, ttl=5.0)
        w = make_worker()
        cache.get(w, 0.0)
        cache.get(w, 6.0)
        assert provider.calls == 2
        assert cache.stats.misses == 2

    def test_deviation_invalidates(self):
        w = make_worker()

        class Swerving:
            """Predicts a rollout far from where the worker really goes."""

            def __init__(self):
                self.calls = 0

            def __call__(self, worker, t):
                self.calls += 1
                snap = oracle_provider(worker, t)
                from dataclasses import replace

                return replace(snap, predicted_xy=snap.predicted_xy + 50.0)

        provider = Swerving()
        cache = PredictionCache(provider, ttl=30.0, deviation_km=1.0)
        cache.get(w, 0.0)
        cache.get(w, 10.0)  # worker is ~50 km from the cached forecast
        assert provider.calls == 2
        assert cache.stats.invalidations == 1

    def test_no_deviation_keeps_entry(self):
        provider = CountingProvider()
        cache = PredictionCache(provider, ttl=30.0, deviation_km=5.0)
        w = make_worker()  # oracle forecast: deviation is ~0
        cache.get(w, 10.0)
        cache.get(w, 15.0)
        assert provider.calls == 1
        assert cache.stats.invalidations == 0

    def test_explicit_invalidate(self):
        provider = CountingProvider()
        cache = PredictionCache(provider, ttl=30.0)
        w = make_worker()
        cache.get(w, 0.0)
        cache.invalidate(w.worker_id)
        cache.get(w, 1.0)
        assert provider.calls == 2

    def test_horizon_partitions_the_key(self):
        provider = CountingProvider()
        short = PredictionCache(provider, ttl=30.0, horizon=3)
        long = PredictionCache(provider, ttl=30.0, horizon=9)
        w = make_worker()
        short.get(w, 0.0)
        long.get(w, 0.0)
        assert provider.calls == 2

    def test_stats_row(self):
        provider = CountingProvider()
        cache = PredictionCache(provider, ttl=5.0)
        w = make_worker()
        cache.get(w, 0.0)
        cache.get(w, 1.0)
        row = cache.stats.as_row()
        assert row["hits"] == 1.0
        assert row["misses"] == 1.0
        assert row["hit_rate"] == pytest.approx(0.5)

    def test_validates(self):
        with pytest.raises(ValueError):
            PredictionCache(oracle_provider, ttl=-1.0)
        with pytest.raises(ValueError):
            PredictionCache(oracle_provider, deviation_km=-0.1)

"""Tests for repro.geo.grid."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geo.grid import Grid
from repro.geo.point import Point


@pytest.fixture
def paper_grid():
    """The paper's 100x50 grid over a 20x10 km extent."""
    return Grid(width_km=20.0, height_km=10.0, rows=100, cols=50)


class TestConstruction:
    def test_defaults_match_paper(self):
        g = Grid()
        assert (g.rows, g.cols) == (100, 50)

    @pytest.mark.parametrize("kwargs", [
        {"width_km": 0.0}, {"height_km": -1.0}, {"rows": 0}, {"cols": -2},
    ])
    def test_rejects_degenerate(self, kwargs):
        with pytest.raises(ValueError):
            Grid(**kwargs)

    def test_cell_sizes(self, paper_grid):
        assert paper_grid.cell_width == pytest.approx(0.2)
        assert paper_grid.cell_height == pytest.approx(0.2)
        assert paper_grid.n_cells == 5000


class TestCellMapping:
    def test_origin_is_cell_zero(self, paper_grid):
        assert paper_grid.to_cell(Point(0, 0)) == (0, 0)

    def test_far_corner_is_last_cell(self, paper_grid):
        assert paper_grid.to_cell(Point(20.0, 10.0)) == (99, 49)

    def test_out_of_bounds_clamps(self, paper_grid):
        assert paper_grid.to_cell(Point(-5, 100)) == (0, 49)

    def test_cell_center_roundtrip(self, paper_grid):
        for i, j in [(0, 0), (50, 25), (99, 49)]:
            center = paper_grid.cell_center(i, j)
            assert paper_grid.to_cell(center) == (i, j)

    def test_cell_center_bounds_checked(self, paper_grid):
        with pytest.raises(IndexError):
            paper_grid.cell_center(100, 0)

    @given(st.floats(0, 20), st.floats(0, 10))
    def test_fractional_cell_roundtrip_stays_in_cell(self, x, y):
        g = Grid(width_km=20.0, height_km=10.0, rows=100, cols=50)
        p = Point(x, y)
        ci, cj = g.to_fractional_cell(p)
        back = g.from_fractional_cell(ci, cj)
        assert back.distance_to(p) < 1e-9

    def test_contains(self, paper_grid):
        assert paper_grid.contains(Point(10, 5))
        assert not paper_grid.contains(Point(21, 5))


class TestNormalization:
    def test_normalize_unit_square(self, paper_grid):
        pts = np.array([[0.0, 0.0], [20.0, 10.0], [10.0, 5.0]])
        normed = paper_grid.normalize(pts)
        assert np.allclose(normed, [[0, 0], [1, 1], [0.5, 0.5]])

    def test_denormalize_inverse(self, paper_grid):
        rng = np.random.default_rng(0)
        pts = rng.uniform([0, 0], [20, 10], size=(50, 2))
        assert np.allclose(paper_grid.denormalize(paper_grid.normalize(pts)), pts)

    def test_cell_array_roundtrip(self, paper_grid):
        rng = np.random.default_rng(1)
        pts = rng.uniform([0, 0], [20, 10], size=(30, 2))
        cells = paper_grid.to_cell_array(pts)
        assert cells.min() >= 0
        assert np.all(cells[:, 0] <= 100) and np.all(cells[:, 1] <= 50)
        assert np.allclose(paper_grid.from_cell_array(cells), pts)

    def test_cell_array_clips_outside(self, paper_grid):
        pts = np.array([[-3.0, 30.0]])
        cells = paper_grid.to_cell_array(pts)
        assert np.allclose(cells, [[0.0, 50.0]])

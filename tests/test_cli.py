"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_predict_defaults(self):
        args = build_parser().parse_args(["predict"])
        assert args.algorithm == "gttaml"
        assert args.workload == "porto-didi"

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["predict", "--algorithm", "nope"])

    def test_assign_flags(self):
        args = build_parser().parse_args(
            ["assign", "--algorithm", "ub", "--n-tasks", "50", "--detour", "6"]
        )
        assert args.algorithm == "ub"
        assert args.n_tasks == 50
        assert args.detour == 6.0

    def test_serve_sim_flags(self):
        args = build_parser().parse_args(
            ["serve-sim", "--trigger", "adaptive", "--pending-threshold", "20",
             "--use-index", "--cache-ttl", "6", "--max-pending", "100"]
        )
        assert args.trigger == "adaptive"
        assert args.pending_threshold == 20
        assert args.use_index
        assert args.cache_ttl == 6.0
        assert args.max_pending == 100

    def test_serve_sim_rejects_unknown_trigger(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve-sim", "--trigger", "psychic"])


class TestCommands:
    def test_predict_runs(self, capsys):
        code = main([
            "predict", "--algorithm", "maml", "--n-workers", "5",
            "--n-tasks", "20", "--n-train-days", "2", "--iterations", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "RMSE" in out and "MR" in out

    def test_assign_lb_runs_without_training(self, capsys):
        code = main([
            "assign", "--algorithm", "lb", "--n-workers", "5",
            "--n-tasks", "30", "--n-train-days", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "completion_ratio" in out

    def test_assign_predictive_runs(self, capsys):
        code = main([
            "assign", "--algorithm", "km", "--n-workers", "5",
            "--n-tasks", "30", "--n-train-days", "2", "--iterations", "2",
        ])
        assert code == 0
        assert "completion_ratio" in capsys.readouterr().out

    def test_gowalla_workload(self, capsys):
        code = main([
            "assign", "--algorithm", "ub", "--workload", "gowalla-foursquare",
            "--n-workers", "5", "--n-tasks", "30", "--n-train-days", "2",
        ])
        assert code == 0

    def test_serve_sim_runs(self, capsys):
        code = main([
            "serve-sim", "--n-workers", "20", "--n-tasks", "40", "--horizon", "30",
            "--use-index", "--cache-ttl", "6",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "completion_ratio" in out
        assert "cache_hit_rate" in out

    def test_serve_sim_json_and_trace(self, capsys, tmp_path):
        import json

        trace = tmp_path / "serve.trace.jsonl"
        code = main([
            "serve-sim", "--n-workers", "15", "--n-tasks", "30", "--horizon", "20",
            "--algorithm", "km", "--trigger", "adaptive", "--pending-threshold", "5",
            "--json", "--trace", str(trace),
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "metrics" in payload and "n_batches" in payload["metrics"]
        assert trace.exists()

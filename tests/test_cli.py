"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_predict_defaults(self):
        args = build_parser().parse_args(["predict"])
        assert args.algorithm == "gttaml"
        assert args.workload == "porto-didi"

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["predict", "--algorithm", "nope"])

    def test_assign_flags(self):
        args = build_parser().parse_args(
            ["assign", "--algorithm", "ub", "--n-tasks", "50", "--detour", "6"]
        )
        assert args.algorithm == "ub"
        assert args.n_tasks == 50
        assert args.detour == 6.0

    def test_serve_sim_flags(self):
        args = build_parser().parse_args(
            ["serve-sim", "--trigger", "adaptive", "--pending-threshold", "20",
             "--use-index", "--cache-ttl", "6", "--max-pending", "100"]
        )
        assert args.trigger == "adaptive"
        assert args.pending_threshold == 20
        assert args.use_index
        assert args.cache_ttl == 6.0
        assert args.max_pending == 100

    def test_serve_sim_rejects_unknown_trigger(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve-sim", "--trigger", "psychic"])


class TestCommands:
    def test_predict_runs(self, capsys):
        code = main([
            "predict", "--algorithm", "maml", "--n-workers", "5",
            "--n-tasks", "20", "--n-train-days", "2", "--iterations", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "RMSE" in out and "MR" in out

    def test_assign_lb_runs_without_training(self, capsys):
        code = main([
            "assign", "--algorithm", "lb", "--n-workers", "5",
            "--n-tasks", "30", "--n-train-days", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "completion_ratio" in out

    def test_assign_predictive_runs(self, capsys):
        code = main([
            "assign", "--algorithm", "km", "--n-workers", "5",
            "--n-tasks", "30", "--n-train-days", "2", "--iterations", "2",
        ])
        assert code == 0
        assert "completion_ratio" in capsys.readouterr().out

    def test_gowalla_workload(self, capsys):
        code = main([
            "assign", "--algorithm", "ub", "--workload", "gowalla-foursquare",
            "--n-workers", "5", "--n-tasks", "30", "--n-train-days", "2",
        ])
        assert code == 0

    def test_serve_sim_runs(self, capsys):
        code = main([
            "serve-sim", "--n-workers", "20", "--n-tasks", "40", "--horizon", "30",
            "--use-index", "--cache-ttl", "6",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "completion_ratio" in out
        assert "cache_hit_rate" in out

    def test_serve_sim_json_and_trace(self, capsys, tmp_path):
        import json

        trace = tmp_path / "serve.trace.jsonl"
        code = main([
            "serve-sim", "--n-workers", "15", "--n-tasks", "30", "--horizon", "20",
            "--algorithm", "km", "--trigger", "adaptive", "--pending-threshold", "5",
            "--json", "--trace", str(trace),
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "metrics" in payload and "n_batches" in payload["metrics"]
        assert trace.exists()


class TestScenariosParser:
    def test_scenarios_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenarios"])

    def test_run_flags(self):
        args = build_parser().parse_args([
            "scenarios", "run", "--scenario", "smoke", "--policy", "indexed",
            "--sweep", "scenario.seed=1,2", "--sweep", "policy.cache.ttl=0,6",
            "--out", "sweep-out", "--cell-backend", "process",
            "--cell-workers", "3",
        ])
        assert args.scenarios_command == "run"
        assert args.scenario == "smoke" and args.policy == "indexed"
        assert args.sweep == ["scenario.seed=1,2", "policy.cache.ttl=0,6"]
        assert args.cell_backend == "process" and args.cell_workers == 3

    def test_run_shares_serve_policy_flags(self):
        args = build_parser().parse_args([
            "scenarios", "run", "--trigger", "adaptive",
            "--pending-threshold", "20", "--use-index",
        ])
        assert args.trigger == "adaptive"
        assert args.pending_threshold == 20 and args.use_index

    def test_report_takes_out_dir(self):
        args = build_parser().parse_args(["scenarios-report", "some/dir", "--json"])
        assert args.out_dir == "some/dir" and args.json


class TestScenariosCommands:
    def test_list_names_builtins(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        assert "uniform" in out and "smoke" in out and "adaptive-indexed" in out

    def test_list_json(self, capsys):
        import json

        assert main(["scenarios", "list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "hot_cell_burst" in payload["generators"]
        assert payload["scenarios"]["smoke"]["seed"] == 7
        assert payload["policies"]["indexed"]["index"]["enabled"] is True

    def test_show_resolves_names_to_document(self, capsys):
        import json

        assert main([
            "scenarios", "show", "--scenario", "smoke", "--policy", "indexed",
            "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"]["generator"] == "uniform"
        assert payload["scenario"]["seed"] == 7
        assert payload["policy"]["index"]["cell_km"] == 2.0

    def test_run_sweep_writes_manifests_and_table(self, capsys, tmp_path):
        import json

        out = tmp_path / "cells"
        assert main([
            "scenarios", "run", "--scenario", "smoke", "--policy", "indexed",
            "--sweep", "scenario.seed=1,2", "--out", str(out), "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_cells"] == 2
        digests = {c["signature_digest"] for c in payload["cells"]}
        assert len(digests) == 2  # the seed axis changed the outcome
        manifests = sorted(out.glob("cell*.manifest.json"))
        assert len(manifests) == 2

        # scenarios-report rebuilds the identical payload from disk.
        assert main(["scenarios-report", str(out), "--json"]) == 0
        reported = json.loads(capsys.readouterr().out)
        assert {c["signature_digest"] for c in reported["cells"]} == digests

    def test_run_spec_file_round_trips_through_show(self, capsys, tmp_path):
        import json

        spec_path = tmp_path / "spec.json"
        assert main([
            "scenarios", "show", "--scenario", "smoke", "--policy", "batch-parity",
            "--out", str(spec_path),
        ]) == 0
        capsys.readouterr()
        assert main([
            "scenarios", "run", str(spec_path), "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_cells"] == 1
        assert payload["cells"][0]["metrics"]["completion_ratio"] >= 0.0

    def test_run_rejects_bad_sweep_axis(self, capsys):
        with pytest.raises(ValueError, match="scenario\\."):
            main([
                "scenarios", "run", "--scenario", "smoke",
                "--sweep", "index.enabled=true,false",
            ])

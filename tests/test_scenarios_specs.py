"""Tests for the declarative scenario/policy spec layer."""

import pytest

from repro.scenarios import (
    BUILTIN_POLICIES,
    BUILTIN_SCENARIOS,
    DistSpec,
    PolicySpec,
    RunSpec,
    ScenarioSpec,
    TriggerSpec,
    dump_spec,
    get_policy,
    get_scenario,
    load_spec,
    parse_sweep_arg,
    resolve_run_spec,
    stream_config_for,
)

FULL_DOC = {
    "name": "full",
    "scenario": {
        "generator": "uniform",
        "seed": 3,
        "params": {"n_workers": 50, "n_tasks": 100, "t_end": 30.0},
    },
    "policy": {
        "algorithm": "km",
        "assignment_window": 8.0,
        "trigger": {"kind": "adaptive", "pending_threshold": 40,
                    "deadline_slack": 1.5, "window": 3.0},
        "shedding": {"max_pending": 120},
        "cache": {"ttl": 6.0, "deviation_km": 2.0},
        "index": {"enabled": True, "cell_km": 2.0, "max_candidates": 32},
        "dist": {"backend": "process", "shards": 2, "workers": 2,
                 "warm_start": True},
    },
    "sweep": {"scenario.seed": [1, 2]},
}


class TestRoundTrip:
    def test_run_spec_load_dump_load_identity(self):
        spec = RunSpec.from_dict(FULL_DOC)
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_defaults_round_trip(self):
        spec = RunSpec.from_dict({})
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_every_builtin_policy_round_trips(self):
        for name, policy in BUILTIN_POLICIES.items():
            assert PolicySpec.from_dict(policy.to_dict()) == policy, name

    def test_every_builtin_scenario_round_trips(self):
        for name, scenario in BUILTIN_SCENARIOS.items():
            assert ScenarioSpec.from_dict(scenario.to_dict()) == scenario, name

    def test_json_file_round_trip(self, tmp_path):
        spec = RunSpec.from_dict(FULL_DOC)
        path = tmp_path / "spec.json"
        dump_spec(spec, path)
        assert load_spec(path) == spec

    def test_yaml_file_round_trip(self, tmp_path):
        pytest.importorskip("yaml")
        spec = RunSpec.from_dict(FULL_DOC)
        path = tmp_path / "spec.yaml"
        dump_spec(spec, path)
        assert load_spec(path) == spec


class TestValidation:
    def test_unknown_top_level_key_names_key_and_allowed(self):
        with pytest.raises(ValueError) as exc:
            RunSpec.from_dict({"scenaro": {}})
        message = str(exc.value)
        assert "scenaro" in message
        assert "scenario" in message and "policy" in message

    def test_unknown_policy_block_key(self):
        with pytest.raises(ValueError) as exc:
            PolicySpec.from_dict({"trigger": {"windw": 2.0}})
        message = str(exc.value)
        assert "windw" in message and "window" in message

    def test_unknown_scenario_param_names_allowed_fields(self):
        spec = ScenarioSpec(generator="uniform", params={"n_wrkers": 10})
        with pytest.raises(ValueError) as exc:
            stream_config_for(spec)
        message = str(exc.value)
        assert "n_wrkers" in message and "n_workers" in message

    def test_seed_inside_params_rejected(self):
        with pytest.raises(ValueError, match="seed"):
            ScenarioSpec.from_dict({"params": {"seed": 3}})

    def test_bad_trigger_kind(self):
        with pytest.raises(ValueError, match="adaptive"):
            TriggerSpec(kind="psychic")

    def test_bad_dist_backend(self):
        with pytest.raises(ValueError, match="serial"):
            DistSpec(backend="carrier-pigeon")

    def test_bad_algorithm(self):
        with pytest.raises(ValueError, match="ppi"):
            PolicySpec(algorithm="greedy")

    def test_empty_sweep_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            RunSpec.from_dict({"sweep": {"scenario.seed": []}})

    def test_string_scenario_points_at_registry(self):
        with pytest.raises(ValueError, match="resolve_run_spec"):
            RunSpec.from_dict({"scenario": "smoke"})


class TestRegistry:
    def test_resolve_builtin_names(self):
        spec = resolve_run_spec({"scenario": "smoke", "policy": "indexed"})
        assert spec.scenario == get_scenario("smoke")
        assert spec.policy == get_policy("indexed")

    def test_unknown_scenario_lists_builtins(self):
        with pytest.raises(ValueError) as exc:
            get_scenario("nope")
        assert "smoke" in str(exc.value)

    def test_unknown_policy_lists_builtins(self):
        with pytest.raises(ValueError) as exc:
            get_policy("nope")
        assert "indexed" in str(exc.value)

    def test_unknown_generator_param_validated_at_resolution(self):
        with pytest.raises(ValueError, match="hot_fraction"):
            stream_config_for(
                ScenarioSpec(generator="uniform", params={"hot_fraction": 0.5})
            )


class TestParseSweepArg:
    def test_typed_values(self):
        path, values = parse_sweep_arg("scenario.seed=1,2,3")
        assert path == "scenario.seed"
        assert values == [1, 2, 3]

    def test_mixed_json_and_string_tokens(self):
        _, values = parse_sweep_arg("policy.trigger.kind=fixed,adaptive")
        assert values == ["fixed", "adaptive"]
        _, values = parse_sweep_arg("policy.index.enabled=true,false")
        assert values == [True, False]
        _, values = parse_sweep_arg("policy.cache.ttl=0,6.0,null")
        assert values == [0, 6.0, None]

    def test_missing_equals_rejected(self):
        with pytest.raises(ValueError, match="--sweep"):
            parse_sweep_arg("scenario.seed")

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError, match="--sweep"):
            parse_sweep_arg("scenario.seed=")

"""Tests for the repro.dist execution backends.

The backend contract is one ordered map over picklable payloads; the
serial backend is the reference and the process pool must agree with it
element for element, order included.
"""

import pickle

import pytest

from repro.dist import (
    Backend,
    DistConfig,
    ProcessBackend,
    SerialBackend,
    available_cpus,
    resolve_backend,
)


def square(x):
    return x * x


def tag_with_len(payload):
    return (payload, len(payload))


class TestDistConfig:
    def test_defaults_are_serial_noop(self):
        cfg = DistConfig()
        assert cfg.backend == "serial"
        assert cfg.workers == 1
        assert cfg.shards == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"backend": "threads"},
            {"workers": 0},
            {"shards": 0},
            {"start_method": "magic"},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            DistConfig(**kwargs)

    def test_picklable(self):
        cfg = DistConfig(backend="process", workers=2)
        assert pickle.loads(pickle.dumps(cfg)) == cfg


class TestResolve:
    def test_none_and_serial_resolve_serial(self):
        assert isinstance(resolve_backend(None), SerialBackend)
        assert isinstance(resolve_backend(DistConfig()), SerialBackend)

    def test_process_config_resolves_pool(self):
        backend = resolve_backend(DistConfig(backend="process", workers=2))
        assert isinstance(backend, ProcessBackend)
        assert backend.workers == 2
        backend.close()

    def test_backends_satisfy_protocol(self):
        assert isinstance(SerialBackend(), Backend)
        assert isinstance(ProcessBackend(1), Backend)


class TestSerialBackend:
    def test_map_ordered(self):
        assert SerialBackend().map_ordered(square, [3, 1, 2]) == [9, 1, 4]

    def test_empty(self):
        assert SerialBackend().map_ordered(square, []) == []


class TestProcessBackend:
    def test_matches_serial_in_order(self):
        payloads = list(range(10))
        want = SerialBackend().map_ordered(square, payloads)
        with ProcessBackend(workers=2) as backend:
            assert backend.map_ordered(square, payloads) == want

    def test_structured_payloads(self):
        payloads = [("a", 1), ("bb", 2), ("ccc", 3)]
        with ProcessBackend(workers=2) as backend:
            got = backend.map_ordered(tag_with_len, [p for p, _ in payloads])
        assert got == [(p, n) for p, n in payloads]

    def test_single_payload_runs_inline(self):
        backend = ProcessBackend(workers=2)
        assert backend.map_ordered(square, [7]) == [49]
        assert backend._pool is None  # the shortcut never built a pool
        backend.close()

    def test_pool_reused_across_calls(self):
        with ProcessBackend(workers=2) as backend:
            backend.map_ordered(square, [1, 2])
            pool = backend._pool
            backend.map_ordered(square, [3, 4])
            assert backend._pool is pool

    def test_close_is_idempotent(self):
        backend = ProcessBackend(workers=2)
        backend.map_ordered(square, [1, 2])
        backend.close()
        backend.close()

    def test_spawn_start_method(self):
        """Spawn re-imports workers, so payload/function pickling is load-bearing."""
        with ProcessBackend(workers=2, start_method="spawn") as backend:
            assert backend.map_ordered(square, [2, 5]) == [4, 25]

    def test_validation(self):
        with pytest.raises(ValueError):
            ProcessBackend(0)
        with pytest.raises(ValueError):
            ProcessBackend(1, start_method="nope")


def test_available_cpus_positive():
    assert available_cpus() >= 1

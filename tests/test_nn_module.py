"""Tests for the module system and functional-parameter machinery."""

import numpy as np
import pytest

from repro.nn.module import (
    Module,
    ParamContext,
    Parameter,
    apply_gradient_step,
    average_state_dicts,
    clone_parameters,
    flatten_gradients,
    flatten_parameters,
)
from repro.nn.layers import MLP, Linear
from repro.nn.tensor import Tensor


@pytest.fixture
def mlp(rng):
    return MLP([2, 4, 1], rng)


class TestRegistration:
    def test_named_parameters_are_qualified(self, mlp):
        names = {n for n, _ in mlp.named_parameters()}
        assert "layer0.weight" in names
        assert "layer1.bias" in names

    def test_parameter_count(self, mlp):
        # (2*4 + 4) + (4*1 + 1)
        assert mlp.n_parameters() == 17

    def test_zero_grad(self, mlp):
        x = Tensor(np.ones((3, 2)))
        mlp(x).sum().backward()
        assert any(p.grad is not None for p in mlp.parameters())
        mlp.zero_grad()
        assert all(p.grad is None for p in mlp.parameters())


class TestStateDict:
    def test_roundtrip(self, mlp, rng):
        state = mlp.state_dict()
        other = MLP([2, 4, 1], np.random.default_rng(999))
        other.load_state_dict(state)
        x = Tensor(rng.normal(size=(5, 2)))
        assert np.allclose(mlp(x).numpy(), other(x).numpy())

    def test_state_dict_is_a_copy(self, mlp):
        state = mlp.state_dict()
        state["layer0.weight"][:] = 0.0
        assert not np.allclose(mlp.layer0.weight.data, 0.0)

    def test_load_rejects_missing_keys(self, mlp):
        state = mlp.state_dict()
        del state["layer0.weight"]
        with pytest.raises(KeyError):
            mlp.load_state_dict(state)

    def test_load_rejects_wrong_shape(self, mlp):
        state = mlp.state_dict()
        state["layer0.weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            mlp.load_state_dict(state)


class TestFunctionalCall:
    def test_identity_override(self, mlp, rng):
        x = Tensor(rng.normal(size=(4, 2)))
        overrides = clone_parameters(mlp)
        assert np.allclose(mlp(x).numpy(), mlp.functional_call(overrides, x).numpy())

    def test_modified_override_changes_output(self, mlp, rng):
        x = Tensor(rng.normal(size=(4, 2)))
        overrides = clone_parameters(mlp)
        overrides["layer1.bias"] = Tensor(np.array([100.0]), requires_grad=True)
        out = mlp.functional_call(overrides, x)
        assert np.all(out.numpy() > 50.0)

    def test_gradients_flow_to_overrides_not_module(self, mlp, rng):
        x = Tensor(rng.normal(size=(4, 2)))
        overrides = clone_parameters(mlp)
        mlp.zero_grad()
        mlp.functional_call(overrides, x).sum().backward()
        assert all(p.grad is None for p in mlp.parameters())
        assert any(t.grad is not None for t in overrides.values())

    def test_context_narrowing(self):
        ctx = ParamContext({"encoder.w": Tensor([1.0]), "head.b": Tensor([2.0])})
        sub = ctx.narrowed("encoder.")
        assert sub is not None
        assert sub.resolve("w", Tensor([0.0])).numpy()[0] == 1.0
        assert ctx.narrowed("decoder.") is None


class TestParamHelpers:
    def test_apply_gradient_step(self):
        params = {"w": Tensor(np.array([1.0, 2.0]), requires_grad=True)}
        grads = {"w": np.array([0.5, 0.5])}
        stepped = apply_gradient_step(params, grads, lr=1.0)
        assert np.allclose(stepped["w"].data, [0.5, 1.5])
        assert stepped["w"] is not params["w"]

    def test_apply_gradient_step_missing_grad_is_copy(self):
        params = {"w": Tensor(np.array([1.0]), requires_grad=True)}
        stepped = apply_gradient_step(params, {}, lr=1.0)
        assert np.allclose(stepped["w"].data, [1.0])

    def test_flatten_parameters_deterministic_order(self, mlp):
        v1 = flatten_parameters(mlp)
        v2 = flatten_parameters(dict(mlp.named_parameters()))
        assert np.allclose(v1, v2)
        assert v1.shape == (17,)

    def test_flatten_gradients(self):
        g = flatten_gradients({"b": np.ones(2), "a": np.zeros(3)})
        assert np.allclose(g, [0, 0, 0, 1, 1])  # sorted: a then b

    def test_average_state_dicts(self):
        s1 = {"w": np.zeros(2)}
        s2 = {"w": np.ones(2) * 2}
        avg = average_state_dicts([s1, s2])
        assert np.allclose(avg["w"], 1.0)

    def test_average_state_dicts_key_mismatch(self):
        with pytest.raises(KeyError):
            average_state_dicts([{"w": np.zeros(1)}, {"v": np.zeros(1)}])

    def test_average_state_dicts_empty(self):
        with pytest.raises(ValueError):
            average_state_dicts([])


class TestLinear:
    def test_shapes(self, rng):
        lin = Linear(3, 5, rng)
        out = lin(Tensor(np.zeros((7, 3))))
        assert out.shape == (7, 5)

    def test_no_bias(self, rng):
        lin = Linear(3, 5, rng, bias=False)
        names = {n for n, _ in lin.named_parameters()}
        assert names == {"weight"}

    def test_rejects_bad_sizes(self, rng):
        with pytest.raises(ValueError):
            Linear(0, 5, rng)

    def test_mlp_rejects_short_spec(self, rng):
        with pytest.raises(ValueError):
            MLP([3], rng)

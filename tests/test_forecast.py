"""Unit tests for the demand-forecasting subsystem (:mod:`repro.forecast`).

Covers the three layers on their own: demand extraction (grids, bins,
windowing), the forecaster zoo behind the ``DemandForecaster``
protocol, and the dispatch pieces (config validation, the forecast
trigger, routine splicing, and gap planning).
"""

import numpy as np
import pytest

from repro.forecast import (
    DemandSeries,
    EWMAForecaster,
    ForecastConfig,
    ForecastRuntime,
    ForecastTrigger,
    Move,
    SeasonalNaiveForecaster,
    Seq2SeqForecaster,
    demand_windows,
    extract_demand,
    grid_for_tasks,
    make_forecaster,
    relocated_worker,
    train_eval_split,
)
from repro.forecast.models import DemandForecaster
from repro.geo.point import Point
from repro.geo.trajectory import Trajectory, TrajectoryPoint
from repro.sc.entities import SpatialTask, Worker
from repro.serve.streams import (
    HotCellBurstConfig,
    RushHourConfig,
    make_hot_cell_task_stream,
)


def task(task_id, x, y, release, valid=10.0):
    return SpatialTask(
        task_id=task_id,
        location=Point(x, y),
        release_time=release,
        deadline=release + valid,
    )


class TestDemandExtraction:
    def test_grid_for_tasks_covers_every_task(self):
        tasks = [task(0, 1.0, 2.0, 0.0), task(1, 9.0, 4.0, 1.0)]
        grid = grid_for_tasks(tasks, rows=4, cols=4)
        for t in tasks:
            i, j = grid.to_cell(t.location)
            assert 0 <= i < 4 and 0 <= j < 4

    def test_extract_counts_land_in_their_bin_and_cell(self):
        tasks = [task(0, 0.5, 0.5, 0.0), task(1, 0.5, 0.5, 2.5), task(2, 9.5, 9.5, 2.5)]
        grid = grid_for_tasks(tasks, rows=2, cols=2)
        series = extract_demand(tasks, grid, bin_minutes=2.0, t_start=0.0, t_end=6.0)
        assert series.n_bins == 3
        assert series.counts.sum() == 3
        assert series.counts[0].sum() == 1  # [0, 2)
        assert series.counts[1].sum() == 2  # [2, 4)
        # The two t=2.5 tasks are in opposite corners → different cells.
        assert np.count_nonzero(series.counts[1]) == 2

    def test_active_cells_busiest_first_and_deterministic(self):
        counts = np.zeros((4, 6))
        counts[:, 2] = 5.0
        counts[:, 4] = 1.0
        series = DemandSeries(
            grid=grid_for_tasks([task(0, 1, 1, 0.0)], rows=2, cols=3),
            bin_minutes=1.0,
            t_start=0.0,
            counts=counts,
        )
        active = series.active_cells(top_k=2)
        assert list(active) == [2, 4]

    def test_train_eval_split_is_temporal(self):
        counts = np.arange(10, dtype=float).reshape(10, 1)
        series = DemandSeries(
            grid=grid_for_tasks([task(0, 1, 1, 0.0)], rows=1, cols=1),
            bin_minutes=1.0,
            t_start=0.0,
            counts=counts,
        )
        train, eval_ = train_eval_split(series, eval_fraction=0.3)
        assert train.n_bins == 7 and eval_.n_bins == 3
        assert eval_.t_start == pytest.approx(7.0)
        assert np.array_equal(eval_.counts[:, 0], [7.0, 8.0, 9.0])

    def test_demand_windows_shapes_and_alignment(self):
        counts = np.arange(8, dtype=float).reshape(8, 1)
        X, Y = demand_windows(counts, seq_in=3, seq_out=2)
        assert X.shape == (4, 3, 1) and Y.shape == (4, 2, 1)
        assert np.array_equal(X[0, :, 0], [0, 1, 2])
        assert np.array_equal(Y[0, :, 0], [3, 4])


class TestForecasters:
    def series(self, counts):
        counts = np.asarray(counts, dtype=float)
        return DemandSeries(
            grid=grid_for_tasks([task(0, 1, 1, 0.0)], rows=1, cols=counts.shape[1]),
            bin_minutes=1.0,
            t_start=0.0,
            counts=counts,
        )

    def test_protocol_conformance(self):
        for model in (EWMAForecaster(), SeasonalNaiveForecaster(), Seq2SeqForecaster()):
            assert isinstance(model, DemandForecaster)

    def test_ewma_tracks_level(self):
        history = np.full((6, 2), 3.0)
        pred = EWMAForecaster(alpha=0.5).predict(history, steps=2)
        assert pred.shape == (2, 2)
        assert np.allclose(pred, 3.0)

    def test_seasonal_naive_repeats_the_period(self):
        history = np.array([[1.0], [9.0], [1.0], [9.0]])
        pred = SeasonalNaiveForecaster(period_bins=2).predict(history, steps=2)
        assert np.allclose(pred[:, 0], [1.0, 9.0])

    def test_seasonal_naive_short_history_falls_back_to_last_bin(self):
        history = np.array([[4.0]])
        pred = SeasonalNaiveForecaster(period_bins=8).predict(history, steps=1)
        assert np.allclose(pred, 4.0)

    def test_seq2seq_fit_predict_shapes_and_determinism(self):
        rng = np.random.default_rng(0)
        counts = rng.poisson(3.0, size=(24, 4)).astype(float)
        series = self.series(counts)
        kwargs = dict(hidden_size=8, seq_in=4, epochs=5, top_cells=3, seed=1)
        a = Seq2SeqForecaster(**kwargs).fit(series).predict(counts[-4:], steps=2)
        b = Seq2SeqForecaster(**kwargs).fit(series).predict(counts[-4:], steps=2)
        assert a.shape == (2, 4)
        assert np.all(a >= 0.0)
        assert np.array_equal(a, b)

    def test_make_forecaster_rejects_unknown_model(self):
        with pytest.raises(ValueError, match="unknown forecaster"):
            make_forecaster("arima")


class TestForecastConfig:
    def test_defaults_validate(self):
        ForecastConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(model="prophet"),
            dict(bin_minutes=0.0),
            dict(history_bins=0),
            dict(grid_rows=0),
            dict(width_km=-1.0),
            dict(demand_threshold=0.0),
            dict(gap_threshold=0.0),
            dict(max_moves=0),
            dict(detour_fraction=1.5),
            dict(cooldown_minutes=-1.0),
        ],
    )
    def test_bad_values_raise(self, kwargs):
        with pytest.raises(ValueError):
            ForecastConfig(**kwargs)

    def test_make_forecaster_maps_models(self):
        assert isinstance(ForecastConfig(model="ewma").make_forecaster(), EWMAForecaster)
        seasonal = ForecastConfig(model="seasonal_naive", history_bins=5).make_forecaster()
        assert isinstance(seasonal, SeasonalNaiveForecaster)
        assert seasonal.period_bins == 5
        seq = ForecastConfig(model="seq2seq", history_bins=4, horizon_bins=2).make_forecaster()
        assert isinstance(seq, Seq2SeqForecaster)
        assert (seq.seq_in, seq.seq_out) == (4, 2)


def runtime_for(tasks, config=None, t_end=20.0):
    return ForecastRuntime(config or ForecastConfig(), 0.0, t_end, tasks=tasks)


class TestForecastTrigger:
    def test_degrades_to_adaptive_without_runtime(self):
        trigger = ForecastTrigger(pending_threshold=2, demand_threshold=1.0)
        pending = {0: task(0, 1, 1, 0.0)}
        assert not trigger.should_fire_early(5.0, 0.0, pending)
        pending[1] = task(1, 1, 1, 0.0)
        assert trigger.should_fire_early(5.0, 0.0, pending)

    def test_predicted_pressure_fires(self):
        tasks = [task(i, 1.0, 1.0, 0.5 * i) for i in range(20)]
        runtime = runtime_for(tasks)
        for t in tasks:
            runtime.observe_arrival(t, t.release_time)
        runtime.advance(12.0)
        assert runtime.predicted_pending(12.0) > 0.0
        trigger = ForecastTrigger(demand_threshold=2.0, runtime=runtime)
        pending = {0: tasks[0]}
        assert trigger.should_fire_early(12.0, 0.0, pending)
        # Respect the refractory interval even under predicted pressure.
        assert not trigger.should_fire_early(12.0, 11.9, pending)
        # And an empty queue never fires.
        assert not trigger.should_fire_early(12.0, 0.0, {})


class TestRelocation:
    def worker(self):
        routine = Trajectory(
            [
                TrajectoryPoint(Point(0.0, 0.0), 0.0),
                TrajectoryPoint(Point(10.0, 0.0), 10.0),
                TrajectoryPoint(Point(10.0, 10.0), 20.0),
            ]
        )
        return Worker(worker_id=3, routine=routine, detour_budget_km=5.0,
                      speed_km_per_min=1.0)

    def test_splice_preserves_span_and_visits_target(self):
        worker = self.worker()
        move = Move(worker_id=3, cell=(0, 1), target=Point(5.0, 5.0),
                    distance_km=5.0, depart_t=5.0, arrive_t=10.0, gap=2.0)
        relocated = relocated_worker(worker, move)
        assert relocated.routine.start_time == worker.routine.start_time
        assert relocated.routine.end_time == worker.routine.end_time
        assert relocated.routine.position_at(10.0) == Point(5.0, 5.0)
        # Departure leaves from where the original routine stood.
        assert relocated.routine.position_at(5.0) == Point(5.0, 0.0)
        times = [p.time for p in relocated.routine]
        assert times == sorted(times)

    def test_splice_resumes_the_original_tail(self):
        worker = self.worker()
        move = Move(worker_id=3, cell=(0, 1), target=Point(8.0, 8.0),
                    distance_km=3.0, depart_t=15.0, arrive_t=18.0, gap=1.0)
        relocated = relocated_worker(worker, move)
        assert relocated.routine.end_time == pytest.approx(20.0)
        assert relocated.routine.position_at(18.0) == Point(8.0, 8.0)
        # The original final sample survives, so check-out position holds.
        assert relocated.routine.position_at(20.0) == Point(10.0, 10.0)


class TestPlanMoves:
    def hot_corner_runtime(self):
        # All demand in the far corner of a 10x10 extent.
        tasks = [task(i, 9.5, 9.5, 0.4 * i) for i in range(30)]
        tasks.append(task(99, 0.2, 0.2, 0.0))  # pins the extent
        config = ForecastConfig(
            grid_rows=2, grid_cols=2, bin_minutes=2.0,
            prepositioning=True, gap_threshold=1.0, max_moves=2,
            detour_fraction=1.0, cooldown_minutes=4.0,
        )
        runtime = runtime_for(tasks, config)
        for t in sorted(tasks, key=lambda t: t.release_time):
            runtime.observe_arrival(t, t.release_time)
        runtime.advance(13.0)
        return runtime

    def idle_worker(self, worker_id, x, y):
        routine = Trajectory(
            [TrajectoryPoint(Point(x, y), 0.0), TrajectoryPoint(Point(x, y), 20.0)]
        )
        return Worker(worker_id=worker_id, routine=routine,
                      detour_budget_km=50.0, speed_km_per_min=5.0)

    def test_moves_head_to_the_hot_cell_and_respect_caps(self):
        runtime = self.hot_corner_runtime()
        workers = [self.idle_worker(i, 1.0, 1.0) for i in range(5)]
        moves = runtime.plan_moves(13.0, workers, pending={})
        assert moves, "a predicted hot cell with idle supply elsewhere must move someone"
        assert len(moves) <= 2
        hot = runtime.grid.to_cell(Point(9.5, 9.5))
        assert all(m.cell == hot for m in moves)
        # Cooldown: the same workers are not moved again right away.
        again = runtime.plan_moves(13.5, workers, pending={})
        moved = {m.worker_id for m in moves}
        assert moved.isdisjoint({m.worker_id for m in again})

    def test_detour_budget_gates_moves(self):
        runtime = self.hot_corner_runtime()
        near = self.idle_worker(0, 1.0, 1.0)
        broke = Worker(
            worker_id=1, routine=near.routine, detour_budget_km=0.5,
            speed_km_per_min=5.0,
        )
        moves = runtime.plan_moves(13.0, [broke], pending={})
        assert moves == []

    def test_mae_accumulates_after_finish(self):
        runtime = self.hot_corner_runtime()
        runtime.finish()
        assert runtime.mae() is not None and runtime.mae() >= 0.0
        cell_mae = runtime.cell_mae()
        assert all(v >= 0.0 for v in cell_mae.values())


class TestStreamHorizonValidation:
    def test_burst_outside_horizon_names_the_field(self):
        with pytest.raises(ValueError, match="burst_start"):
            HotCellBurstConfig(t_end=60.0, burst_start=80.0)

    def test_burst_inside_horizon_ok(self):
        make_hot_cell_task_stream(HotCellBurstConfig(n_tasks=10, burst_start=10.0))

    def test_peak_outside_horizon_names_the_field(self):
        with pytest.raises(ValueError, match="peak_times"):
            RushHourConfig(t_end=30.0, peak_times=(15.0, 45.0))

    def test_boundary_peak_allowed(self):
        RushHourConfig(t_end=45.0, peak_times=(15.0, 45.0))

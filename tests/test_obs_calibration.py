"""Calibration monitoring: reliability bins, Brier score, drift detectors.

Everything here is deterministic by construction — the detectors are
pure functions of the sample sequence, so a synthetic outcome stream
trips (or does not trip) the alarm reproducibly.
"""

import pytest

from repro.obs import (
    CalibrationConfig,
    CalibrationMonitor,
    EwmaDetector,
    PageHinkley,
    PairOutcome,
)


class TestConfig:
    def test_defaults_match_ppi_threshold(self):
        assert CalibrationConfig().a_km == pytest.approx(0.3)

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            ({"n_bins": 0}, "bin"),
            ({"a_km": -1.0}, "non-negative"),
            ({"min_samples": 0}, "positive"),
            ({"detector": "cusum"}, "detector"),
            ({"ph_threshold": 0.0}, "threshold"),
            ({"ewma_alpha": 0.0}, "alpha"),
            ({"ewma_alpha": 1.5}, "alpha"),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            CalibrationConfig(**kwargs)

    def test_make_detector_dispatch(self):
        assert isinstance(CalibrationConfig().make_detector(), PageHinkley)
        assert isinstance(CalibrationConfig(detector="ewma").make_detector(), EwmaDetector)


class TestPageHinkley:
    def test_stationary_signal_never_alarms(self):
        ph = PageHinkley(delta=0.02, threshold=1.0)
        assert not any(ph.update(0.2) for _ in range(500))

    def test_sustained_shift_alarms(self):
        ph = PageHinkley(delta=0.02, threshold=1.0)
        for _ in range(100):
            assert not ph.update(0.1)
        tripped = [ph.update(0.9) for _ in range(100)]
        assert any(tripped)
        # Deterministic: the same sequence trips at the same index.
        first = tripped.index(True)
        ph2 = PageHinkley(delta=0.02, threshold=1.0)
        for _ in range(100):
            ph2.update(0.1)
        tripped2 = [ph2.update(0.9) for _ in range(100)]
        assert tripped2.index(True) == first

    def test_reset_rearms(self):
        ph = PageHinkley(delta=0.0, threshold=0.5)
        while not ph.update(1.0 + ph.n * 0.1):
            pass
        ph.reset()
        assert ph.statistic == 0.0
        assert not ph.update(0.1)


class TestEwma:
    def test_stationary_signal_never_alarms(self):
        det = EwmaDetector(alpha=0.2, threshold=0.3)
        assert not any(det.update(0.4) for _ in range(200))

    def test_shift_alarms_and_statistic_positive(self):
        det = EwmaDetector(alpha=0.3, threshold=0.3)
        for _ in range(50):
            det.update(0.1)
        assert any(det.update(1.0) for _ in range(50))
        assert det.statistic > 0.3


def feed(monitor: CalibrationMonitor, outcomes, t0: float = 0.0):
    events = []
    for i, (p, accepted) in enumerate(outcomes):
        event = monitor.observe(p, accepted, t0 + float(i))
        if event is not None:
            events.append(event)
    return events


class TestCalibrationMonitor:
    def test_perfectly_calibrated_bins(self):
        mon = CalibrationMonitor(CalibrationConfig(n_bins=10))
        # p=0.75 pairs accepted 3 out of 4 — the bin agrees with itself.
        feed(mon, [(0.75, True), (0.75, True), (0.75, True), (0.75, False)])
        summary = mon.summary()
        bin7 = summary["bins"][7]
        assert bin7["n"] == 4
        assert bin7["mean_predicted"] == pytest.approx(0.75)
        assert bin7["frac_accepted"] == pytest.approx(0.75)
        assert summary["ece"] == pytest.approx(0.0)
        assert mon.brier == pytest.approx(0.1875)

    def test_p_equal_one_lands_in_last_bin(self):
        mon = CalibrationMonitor(CalibrationConfig(n_bins=10))
        feed(mon, [(1.0, True)])
        assert mon.summary()["bins"][9]["n"] == 1

    def test_invalid_probability_rejected(self):
        mon = CalibrationMonitor()
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            mon.observe(1.5, True, 0.0)
        with pytest.raises(ValueError):
            mon.observe(float("nan"), True, 0.0)

    def test_drift_event_fires_once_and_rearms(self):
        cfg = CalibrationConfig(min_samples=20, ph_delta=0.02, ph_threshold=2.0)
        mon = CalibrationMonitor(cfg)
        # Calibrated warm-up: confident predictions, honoured.
        events = feed(mon, [(0.9, True)] * 40)
        assert events == []
        # The model goes stale: same confidence, all rejections.
        events = feed(mon, [(0.9, False)] * 40, t0=100.0)
        assert len(events) == 1
        event = events[0]
        assert event["type"] == "drift"
        assert event["detector"] == "page_hinkley"
        assert event["n_samples"] > 40
        assert 100.0 <= event["t"] < 140.0
        assert mon.drift_events == [event]
        # The detector was reset: the post-drift regime is the new
        # baseline, so more of the same does not instantly re-alarm.
        assert mon.detector.n < mon.n

    def test_alarm_suppressed_before_min_samples(self):
        cfg = CalibrationConfig(min_samples=500, ph_threshold=0.5)
        mon = CalibrationMonitor(cfg)
        events = feed(mon, [(0.9, False)] * 100)
        assert events == []
        assert mon.n == 100

    def test_summary_roundtrips_to_json(self):
        import json

        mon = CalibrationMonitor()
        feed(mon, [(0.2, False), (0.8, True)])
        assert json.loads(json.dumps(mon.summary()))["n_samples"] == 2


def test_pair_outcome_is_frozen_record():
    outcome = PairOutcome(
        task_id=1, worker_id=2, predicted_probability=0.8, accepted=True, time=3.0
    )
    with pytest.raises(AttributeError):
        outcome.accepted = False

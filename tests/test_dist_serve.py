"""ShardedEngine vs ServeEngine: identical serving results at any shard count.

``result_signature`` covers completion/rejection/expiry counts, the
ordered detour list, the completed-task id set, and per-batch records —
if the sharded candidate build changed any plan anywhere, it shows up
here.
"""

import numpy as np
import pytest

from repro.assignment.baselines import km_assign, km_assign_candidates
from repro.assignment.ppi import ppi_assign, ppi_assign_candidates
from repro.dist import DistConfig, ProcessBackend, ShardedEngine, component_candidate_assign
from repro.serve import (
    DeadReckoningProvider,
    ServeConfig,
    ServeEngine,
    StreamConfig,
    make_task_stream,
    make_worker_fleet,
    result_signature,
)


def scenario(seed, n_workers=30, n_tasks=60, t_end=60.0):
    cfg = StreamConfig(n_workers=n_workers, n_tasks=n_tasks, t_end=t_end, seed=seed)
    return make_task_stream(cfg), make_worker_fleet(cfg)


def run_reference(tasks, workers, seed, algorithm="ppi", **config_kwargs):
    assign_fn, candidate_fn = {
        "ppi": (ppi_assign, ppi_assign_candidates),
        "km": (km_assign, km_assign_candidates),
    }[algorithm]
    engine = ServeEngine(
        workers,
        DeadReckoningProvider(seed=seed),
        ServeConfig(use_index=True, **config_kwargs),
        assign_fn=assign_fn,
        candidate_assign_fn=candidate_fn,
    )
    return engine.run(tasks, 0.0, 60.0)


def run_sharded(tasks, workers, seed, shards, algorithm="ppi", backend=None, **config_kwargs):
    assign_fn = {"ppi": ppi_assign, "km": km_assign}[algorithm]
    engine = ShardedEngine(
        workers,
        DeadReckoningProvider(seed=seed),
        ServeConfig(**config_kwargs),
        assign_fn=assign_fn,
        candidate_assign_fn=component_candidate_assign(algorithm),
        dist=DistConfig(shards=shards),
        backend=backend,
    )
    try:
        return engine.run(tasks, 0.0, 60.0), engine
    finally:
        engine.close()


class TestSignatureParity:
    @pytest.mark.parametrize("seed", [0, 4])
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_ppi_signature_matches_dense_engine(self, seed, shards):
        tasks, workers = scenario(seed)
        ref = result_signature(run_reference(tasks, workers, seed))
        got, engine = run_sharded(tasks, workers, seed, shards)
        assert result_signature(got) == ref
        assert len(engine.batch_stats) == got.n_batches

    def test_km_signature_matches_dense_engine(self):
        tasks, workers = scenario(2)
        ref = result_signature(run_reference(tasks, workers, 2, algorithm="km"))
        got, _ = run_sharded(tasks, workers, 2, shards=3, algorithm="km")
        assert result_signature(got) == ref

    def test_parity_with_serving_features_on(self):
        """Sharding composes with the cache and the adaptive trigger."""
        kwargs = dict(trigger="adaptive", pending_threshold=10, cache_ttl=4.0)
        tasks, workers = scenario(6)
        ref = result_signature(run_reference(tasks, workers, 6, **kwargs))
        got, _ = run_sharded(tasks, workers, 6, shards=2, **kwargs)
        assert result_signature(got) == ref

    def test_process_backend_matches_serial(self):
        tasks, workers = scenario(1, n_workers=15, n_tasks=30)
        ref = result_signature(run_reference(tasks, workers, 1))
        with ProcessBackend(workers=2) as backend:
            got, _ = run_sharded(tasks, workers, 1, shards=2, backend=backend)
        assert result_signature(got) == ref


class TestShardedEngineBehavior:
    def test_forces_use_index(self):
        _, workers = scenario(0)
        engine = ShardedEngine(
            workers,
            DeadReckoningProvider(seed=0),
            ServeConfig(),  # use_index not set by the caller
            assign_fn=ppi_assign,
            candidate_assign_fn=component_candidate_assign("ppi"),
        )
        assert engine.config.use_index is True
        engine.close()

    def test_requires_candidate_assign_fn(self):
        _, workers = scenario(0)
        with pytest.raises(ValueError):
            ShardedEngine(
                workers, DeadReckoningProvider(seed=0), ServeConfig(), assign_fn=ppi_assign
            )

    def test_boundary_worker_accounting(self):
        tasks, workers = scenario(0)
        got, engine = run_sharded(tasks, workers, 0, shards=4)
        assert engine.boundary_workers_total == sum(
            s.n_boundary_workers for s in engine.batch_stats
        )
        for stats in engine.batch_stats:
            assert stats.n_shards >= 1
            assert stats.merge_seconds >= 0.0
            assert len(stats.tasks_per_shard) == stats.n_shards

    def test_single_shard_has_no_boundary_workers(self):
        tasks, workers = scenario(3)
        _, engine = run_sharded(tasks, workers, 3, shards=1)
        assert engine.boundary_workers_total == 0

    def test_event_routing_metrics_emitted(self):
        """With a metrics recorder active, per-shard event counters and
        lag histograms appear under dist.shard.*."""
        from repro import obs
        from repro.obs.recorder import MetricsRecorder

        tasks, workers = scenario(5)
        previous = obs.set_recorder(MetricsRecorder())
        try:
            run_sharded(tasks, workers, 5, shards=2)
            metrics = obs.get_recorder().metrics
            counter_names = set(metrics.counters)
            histogram_names = set(metrics.histograms)
            assert any(n.startswith("dist.shard.") and n.endswith(".events") for n in counter_names)
            assert any(n.startswith("dist.shard.") and n.endswith(".lag_s") for n in histogram_names)
            assert "dist.merge.seconds" in histogram_names
        finally:
            obs.set_recorder(previous)

    def test_component_candidate_assign_validates_algorithm(self):
        with pytest.raises(ValueError):
            component_candidate_assign("greedy")

"""Tests for repro.geo.detour."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geo.detour import (
    detour_via_point,
    earliest_arrival_time,
    feasible_detour_points,
    min_detour,
    min_distance_to_path,
)
from repro.geo.point import Point

from tests.conftest import straight_trajectory

coord = st.floats(min_value=-100, max_value=100, allow_nan=False)


class TestDetourViaPoint:
    def test_on_segment_is_zero(self):
        assert detour_via_point(Point(0, 0), Point(10, 0), Point(5, 0)) == pytest.approx(0.0)

    def test_perpendicular(self):
        d = detour_via_point(Point(0, 0), Point(10, 0), Point(5, 5))
        assert d == pytest.approx(2 * math.hypot(5, 5) - 10)

    @given(coord, coord, coord, coord, coord, coord)
    def test_never_negative(self, ax, ay, bx, by, vx, vy):
        d = detour_via_point(Point(ax, ay), Point(bx, by), Point(vx, vy))
        assert d >= -1e-9


class TestMinDetour:
    def test_empty_route_raises(self):
        with pytest.raises(ValueError):
            min_detour(np.zeros((0, 2)), Point(0, 0))

    def test_single_point_out_and_back(self):
        d, k = min_detour(np.array([[0.0, 0.0]]), Point(3, 4))
        assert d == pytest.approx(10.0)
        assert k == 0

    def test_picks_best_segment(self):
        route = np.array([[0.0, 0.0], [10.0, 0.0], [10.0, 10.0]])
        d, k = min_detour(route, Point(10.0, 5.0))
        assert d == pytest.approx(0.0)
        assert k == 1

    def test_matches_bruteforce(self):
        rng = np.random.default_rng(4)
        for _ in range(50):
            route = rng.uniform(-10, 10, size=(6, 2))
            target = Point(*rng.uniform(-10, 10, size=2))
            d, _ = min_detour(route, target)
            brute = min(
                detour_via_point(Point(*route[i]), Point(*route[i + 1]), target)
                for i in range(len(route) - 1)
            )
            assert d == pytest.approx(max(brute, 0.0), abs=1e-9)


class TestMinDistanceToPath:
    def test_basic(self):
        route = np.array([[0.0, 0.0], [10.0, 0.0]])
        assert min_distance_to_path(route, Point(4, 3)) == pytest.approx(5.0)

    def test_on_sample(self):
        route = np.array([[1.0, 1.0]])
        assert min_distance_to_path(route, Point(1, 1)) == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            min_distance_to_path(np.zeros((0, 2)), Point(0, 0))


class TestEarliestArrival:
    def test_at_start(self, line_trajectory):
        # Task at the start point: arrival equals the start time.
        t = earliest_arrival_time(line_trajectory, Point(0, 0), 1.0)
        assert t == pytest.approx(0.0)

    def test_off_route(self):
        traj = straight_trajectory(end=(10.0, 0.0), t1=10.0)  # speed 1 km/min
        target = Point(5.0, 5.0)
        t = earliest_arrival_time(traj, target, 1.0)
        # Best branch over all samples (x, 0) at time x: min_x x + hypot(5-x, 5).
        expected = min(x + math.hypot(5.0 - x, 5.0) for x in range(11))
        assert t == pytest.approx(expected)

    def test_zero_speed_unreachable(self, line_trajectory):
        assert earliest_arrival_time(line_trajectory, Point(1, 1), 0.0) == math.inf


class TestFeasibleDetourPoints:
    def test_all_feasible_on_route(self):
        route = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        times = [0.0, 1.0, 2.0]
        idx = feasible_detour_points(route, times, Point(1.0, 0.0), max_detour=1.0, deadline=100.0, speed_km_per_min=1.0)
        assert 1 in idx

    def test_deadline_filters(self):
        route = np.array([[0.0, 0.0], [5.0, 0.0]])
        times = [0.0, 50.0]
        # From the second sample the task deadline has passed.
        idx = feasible_detour_points(route, times, Point(5.0, 0.0), max_detour=10.0, deadline=10.0, speed_km_per_min=1.0)
        assert idx == [0] or idx == []  # sample 0 needs 5 min travel -> feasible
        assert 1 not in idx

    def test_zero_speed_nothing_feasible(self):
        route = np.array([[0.0, 0.0]])
        idx = feasible_detour_points(route, [0.0], Point(1.0, 0.0), 10.0, 10.0, 0.0)
        assert idx == []

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            feasible_detour_points(np.zeros((2, 2)), [0.0], Point(0, 0), 1.0, 1.0, 1.0)

"""Tests for the results collector."""

from pathlib import Path

import pytest

from repro.tools import RESULT_ORDER, collect_results, main


@pytest.fixture
def results_dir(tmp_path):
    d = tmp_path / "results"
    d.mkdir()
    (d / "table4_cluster_ablation.txt").write_text("TABLE4 CONTENT")
    (d / "fig6_detour_porto.txt").write_text("FIG6 CONTENT")
    (d / "custom_extra.txt").write_text("EXTRA CONTENT")
    return d


class TestCollect:
    def test_orders_known_first(self, results_dir, tmp_path):
        out = tmp_path / "RESULTS.md"
        included = collect_results(results_dir, out)
        assert included == ["table4_cluster_ablation", "fig6_detour_porto", "custom_extra"]
        text = out.read_text()
        assert text.index("TABLE4") < text.index("FIG6") < text.index("EXTRA")

    def test_contents_embedded_in_code_fences(self, results_dir, tmp_path):
        out = tmp_path / "RESULTS.md"
        collect_results(results_dir, out)
        text = out.read_text()
        assert "```" in text
        assert "## fig6_detour_porto" in text

    def test_missing_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            collect_results(tmp_path / "nope", tmp_path / "out.md")

    def test_cli_main(self, results_dir, tmp_path, capsys):
        out = tmp_path / "OUT.md"
        code = main(["collect-results", "--results-dir", str(results_dir), "--output", str(out)])
        assert code == 0
        assert out.exists()
        assert "3 result blocks" in capsys.readouterr().out

    def test_order_constant_is_unique(self):
        assert len(set(RESULT_ORDER)) == len(RESULT_ORDER)

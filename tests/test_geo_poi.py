"""Tests for repro.geo.poi."""

import numpy as np
import pytest

from repro.geo.poi import (
    POI,
    POICategory,
    nearest_poi,
    poi_feature_matrix,
    visited_pois,
)
from repro.geo.point import Point


@pytest.fixture
def layer():
    return [
        POI(Point(0.0, 0.0), POICategory.RESIDENTIAL),
        POI(Point(5.0, 0.0), POICategory.OFFICE),
        POI(Point(0.0, 5.0), POICategory.FOOD),
    ]


class TestPOI:
    def test_feature_vector(self):
        p = POI(Point(1.0, 2.0), POICategory.RETAIL)
        assert np.allclose(p.as_feature(), [1.0, 2.0, float(POICategory.RETAIL)])

    def test_feature_matrix(self, layer):
        m = poi_feature_matrix(layer)
        assert m.shape == (3, 3)

    def test_feature_matrix_empty(self):
        assert poi_feature_matrix([]).shape == (0, 3)


class TestNearest:
    def test_picks_closest(self, layer):
        assert nearest_poi(layer, Point(4.0, 0.5)) is layer[1]

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            nearest_poi([], Point(0, 0))


class TestVisited:
    def test_within_radius(self, layer):
        route = np.array([[0.1, 0.1], [5.0, 0.2], [10.0, 10.0]])
        visited = visited_pois(layer, route, radius_km=0.5)
        assert [v.category for v in visited] == [POICategory.RESIDENTIAL, POICategory.OFFICE]

    def test_revisits_repeat(self, layer):
        route = np.array([[0.0, 0.0], [0.0, 0.0]])
        assert len(visited_pois(layer, route, radius_km=0.1)) == 2

    def test_negative_radius_raises(self, layer):
        with pytest.raises(ValueError):
            visited_pois(layer, np.zeros((1, 2)), radius_km=-1.0)

    def test_empty_layer(self):
        assert visited_pois([], np.zeros((3, 2)), 1.0) == []

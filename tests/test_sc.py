"""Tests for the spatial crowdsourcing simulator."""

import numpy as np
import pytest

from repro.assignment.plan import AssignmentPair, AssignmentPlan
from repro.geo.point import Point
from repro.geo.trajectory import Trajectory, TrajectoryPoint
from repro.sc.acceptance import evaluate_acceptance, oracle_future_route
from repro.sc.entities import SpatialTask, Worker, WorkerSnapshot
from repro.sc.metrics import AssignmentMetrics
from repro.sc.platform import BatchPlatform

from tests.conftest import straight_trajectory


def make_worker(worker_id=0, detour=4.0, speed=1.0, routine=None):
    return Worker(
        worker_id=worker_id,
        routine=routine if routine is not None else straight_trajectory(t1=100.0),
        detour_budget_km=detour,
        speed_km_per_min=speed,
    )


class TestEntities:
    def test_task_validates_deadline(self):
        with pytest.raises(ValueError):
            SpatialTask(0, Point(0, 0), release_time=10.0, deadline=5.0)

    def test_task_valid_minutes(self):
        t = SpatialTask(0, Point(0, 0), 10.0, 40.0)
        assert t.valid_minutes == 30.0

    def test_worker_validates(self):
        with pytest.raises(ValueError):
            make_worker(detour=-1.0)
        with pytest.raises(ValueError):
            make_worker(speed=0.0)

    def test_worker_online_window(self):
        w = make_worker()
        assert w.online_at(50.0)
        assert not w.online_at(150.0)

    def test_snapshot_validates(self):
        with pytest.raises(ValueError):
            WorkerSnapshot(0, Point(0, 0), np.zeros((2, 2)), np.zeros(3), 4.0, 1.0, 0.5)
        with pytest.raises(ValueError):
            WorkerSnapshot(0, Point(0, 0), np.zeros((1, 2)), np.zeros(1), 4.0, 1.0, 1.5)


class TestAcceptance:
    def test_accepts_task_on_route(self):
        w = make_worker()
        task = SpatialTask(0, Point(5.0, 0.0), 0.0, 90.0)
        decision = evaluate_acceptance(w, task, current_time=0.0)
        assert decision.accepted
        assert decision.detour_km == pytest.approx(0.0, abs=1e-9)

    def test_rejects_far_task(self):
        w = make_worker(detour=2.0)
        task = SpatialTask(0, Point(5.0, 50.0), 0.0, 1000.0)
        decision = evaluate_acceptance(w, task, current_time=0.0)
        assert not decision.accepted

    def test_rejects_when_deadline_unreachable(self):
        w = make_worker(detour=100.0, speed=0.1)
        # 50 km off-route, deadline in 10 minutes.
        task = SpatialTask(0, Point(5.0, 50.0), 0.0, 10.0)
        decision = evaluate_acceptance(w, task, current_time=0.0)
        assert not decision.accepted
        assert decision.detour_km == np.inf

    def test_accepts_near_detour(self):
        w = make_worker(detour=4.0)
        task = SpatialTask(0, Point(5.0, 1.0), 0.0, 90.0)
        decision = evaluate_acceptance(w, task, current_time=0.0)
        assert decision.accepted
        assert 0 < decision.detour_km <= 4.0

    def test_past_route_ignored(self):
        """Branch points before current_time are not available."""
        w = make_worker(detour=1.0, speed=1.0)
        # Task near the start of the route, but the worker is already at the end.
        task = SpatialTask(0, Point(0.0, 0.4), 0.0, 1000.0)
        at_start = evaluate_acceptance(w, task, current_time=0.0)
        at_end = evaluate_acceptance(w, task, current_time=99.0)
        assert at_start.accepted
        assert not at_end.accepted

    def test_arrival_time_respects_speed(self):
        w = make_worker(speed=0.5)
        task = SpatialTask(0, Point(0.0, 1.0), 0.0, 90.0)
        decision = evaluate_acceptance(w, task, current_time=0.0)
        assert decision.accepted
        assert decision.arrival_time == pytest.approx(2.0)  # 1 km at 0.5 km/min

    def test_oracle_future_route(self):
        w = make_worker()
        xy, times = oracle_future_route(w, current_time=45.0, horizon=3)
        assert len(xy) == 4  # current + 3 future
        assert times[0] == 45.0
        assert all(t > 45.0 for t in times[1:])


class TestMetrics:
    def test_compute(self):
        m = AssignmentMetrics.compute(10, 6, 8, 2, [1.0, 2.0], 0.5)
        assert m.completion_ratio == 0.6
        assert m.rejection_ratio == 0.25
        assert m.worker_cost_km == 1.5
        assert m.running_seconds == 0.5

    def test_zero_division_guards(self):
        m = AssignmentMetrics.compute(0, 0, 0, 0, [], 0.0)
        assert m.completion_ratio == 0.0
        assert m.rejection_ratio == 0.0
        assert m.worker_cost_km == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            AssignmentMetrics.compute(1, 2, 0, 0, [], 0.0)
        with pytest.raises(ValueError):
            AssignmentMetrics.compute(1, 0, 1, 2, [], 0.0)
        with pytest.raises(ValueError):
            AssignmentMetrics.compute(-1, 0, 0, 0, [], 0.0)

    def test_as_row(self):
        row = AssignmentMetrics.compute(4, 2, 2, 0, [1.0], 0.1).as_row()
        assert set(row) == {"completion_ratio", "rejection_ratio", "worker_cost_km", "running_seconds"}


def oracle_provider(worker, t):
    xy, times = oracle_future_route(worker, t, 6)
    return WorkerSnapshot(
        worker_id=worker.worker_id,
        current_location=worker.location_at(t),
        predicted_xy=xy,
        predicted_times=times,
        detour_budget_km=worker.detour_budget_km,
        speed_km_per_min=worker.speed_km_per_min,
        matching_rate=1.0,
    )


def greedy_assign(tasks, snapshots, t):
    """Assign each task to the nearest unused worker (test stub)."""
    plan = AssignmentPlan()
    used = set()
    for task in tasks:
        best, best_d = None, np.inf
        for s in snapshots:
            if s.worker_id in used:
                continue
            d = s.current_location.distance_to(task.location)
            if d < best_d:
                best, best_d = s, d
        if best is not None:
            plan.add(AssignmentPair(task.task_id, best.worker_id, 1.0))
            used.add(best.worker_id)
    return plan


class TestBatchPlatform:
    def test_validates_construction(self):
        with pytest.raises(ValueError):
            BatchPlatform([], oracle_provider, batch_window=0.0)
        w = make_worker()
        with pytest.raises(ValueError):
            BatchPlatform([w, make_worker(0)], oracle_provider)

    def test_completes_easy_task(self):
        w = make_worker()
        platform = BatchPlatform([w], oracle_provider, batch_window=2.0)
        tasks = [SpatialTask(0, Point(5.0, 0.0), 0.0, 60.0)]
        result = platform.run(tasks, greedy_assign, 0.0, 60.0)
        assert result.n_completed == 1
        assert result.n_rejections == 0

    def test_expires_unserviceable_task(self):
        w = make_worker()
        platform = BatchPlatform([w], oracle_provider, batch_window=2.0)
        tasks = [SpatialTask(0, Point(50.0, 50.0), 0.0, 10.0)]
        result = platform.run(tasks, greedy_assign, 0.0, 60.0)
        assert result.n_completed == 0
        assert result.n_expired == 1

    def test_rejected_task_carries_over(self):
        """A task rejected in one batch is retried in the next."""
        w = make_worker(detour=1.0)
        # Task 3 km off-route: rejected by the detour budget every time.
        platform = BatchPlatform([w], oracle_provider, batch_window=2.0)
        tasks = [SpatialTask(0, Point(5.0, 3.0), 0.0, 30.0)]
        result = platform.run(tasks, greedy_assign, 0.0, 40.0)
        assert result.n_completed == 0
        assert result.n_rejections >= 2  # retried across batches
        assert result.n_expired == 1

    def test_busy_worker_not_reassigned(self):
        w = make_worker()
        platform = BatchPlatform([w], oracle_provider, batch_window=2.0)
        tasks = [
            SpatialTask(0, Point(5.0, 0.0), 0.0, 60.0),
            SpatialTask(1, Point(6.0, 0.0), 0.0, 8.0),
        ]
        result = platform.run(tasks, greedy_assign, 0.0, 60.0)
        # Both released at t=0; one is taken; the other waits while the
        # worker is busy and may expire before a second batch fires.
        assert result.n_completed >= 1
        per_batch_assignments = [b.n_assigned for b in result.batches]
        assert all(a <= 1 for a in per_batch_assignments)

    def test_task_counts_are_conserved(self, small_workload):
        wl = small_workload
        platform = BatchPlatform(wl.workers, oracle_provider, batch_window=2.0)
        t0, t1 = wl.horizon()
        result = platform.run(wl.tasks, greedy_assign, t0, t1)
        assert result.n_completed + result.n_expired == result.n_tasks

    def test_duplicate_task_ids_rejected(self):
        w = make_worker()
        platform = BatchPlatform([w], oracle_provider)
        tasks = [SpatialTask(0, Point(1, 0), 0.0, 10.0), SpatialTask(0, Point(2, 0), 0.0, 10.0)]
        with pytest.raises(ValueError):
            platform.run(tasks, greedy_assign, 0.0, 10.0)

    def test_time_window_validated(self):
        platform = BatchPlatform([make_worker()], oracle_provider)
        with pytest.raises(ValueError):
            platform.run([], greedy_assign, 10.0, 0.0)

    def test_metrics_wired_through(self):
        w = make_worker()
        platform = BatchPlatform([w], oracle_provider)
        tasks = [SpatialTask(0, Point(5.0, 0.0), 0.0, 60.0)]
        result = platform.run(tasks, greedy_assign, 0.0, 60.0)
        m = result.metrics()
        assert m.completion_ratio == 1.0
        assert m.rejection_ratio == 0.0

"""Boundary tests for the batch trigger policies.

The adaptive trigger's firing conditions are all inclusive/exclusive
edges: pending count *exactly at* the threshold, a deadline *exactly*
``deadline_slack`` away, and ``None`` thresholds disabling a term
outright.  These pin each edge so a refactor can't silently flip one.
"""

import pytest

from repro.geo.point import Point
from repro.sc.entities import SpatialTask
from repro.serve.triggers import DemandAdaptiveTrigger, FixedWindowTrigger


def pending_of(n, deadline=100.0):
    return {
        i: SpatialTask(task_id=i, location=Point(0.0, 0.0),
                       release_time=0.0, deadline=deadline)
        for i in range(n)
    }


class TestFixedWindowTrigger:
    def test_never_fires_early(self):
        trigger = FixedWindowTrigger(window=2.0)
        assert trigger.next_tick(10.0) == 12.0
        assert not trigger.should_fire_early(11.9, 10.0, pending_of(1000, deadline=11.9))

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError, match="window"):
            FixedWindowTrigger(window=0.0)


class TestDemandAdaptiveBoundaries:
    def test_pending_exactly_at_threshold_fires(self):
        trigger = DemandAdaptiveTrigger(pending_threshold=5)
        assert trigger.should_fire_early(10.0, 0.0, pending_of(5))
        assert not trigger.should_fire_early(10.0, 0.0, pending_of(4))

    def test_deadline_exactly_at_slack_fires(self):
        trigger = DemandAdaptiveTrigger(deadline_slack=2.0)
        # deadline - now == slack exactly: inclusive edge.
        assert trigger.should_fire_early(10.0, 0.0, pending_of(1, deadline=12.0))
        assert not trigger.should_fire_early(10.0, 0.0, pending_of(1, deadline=12.0 + 1e-9))

    def test_deadline_exactly_at_next_tick(self):
        # A deadline landing exactly on the next scheduled tick is
        # within any positive slack of some earlier arrival: with the
        # window as slack, the batch is pulled forward rather than
        # letting the scheduled tick race the expiry.
        trigger = DemandAdaptiveTrigger(window=2.0, deadline_slack=2.0)
        last_batch = 10.0
        next_tick = trigger.next_tick(last_batch)
        now = 11.0
        assert trigger.should_fire_early(now, last_batch, pending_of(1, deadline=next_tick))

    def test_none_thresholds_disable_both_terms(self):
        trigger = DemandAdaptiveTrigger(pending_threshold=None, deadline_slack=None)
        assert not trigger.should_fire_early(10.0, 0.0, pending_of(10_000, deadline=10.0))

    def test_min_interval_is_a_hard_floor(self):
        trigger = DemandAdaptiveTrigger(pending_threshold=1, min_interval=0.25)
        assert not trigger.should_fire_early(10.2, 10.0, pending_of(50))
        assert trigger.should_fire_early(10.25, 10.0, pending_of(50))

    def test_validation_edges(self):
        with pytest.raises(ValueError, match="threshold"):
            DemandAdaptiveTrigger(pending_threshold=0)
        with pytest.raises(ValueError, match="slack"):
            DemandAdaptiveTrigger(deadline_slack=-0.1)
        with pytest.raises(ValueError, match="interval"):
            DemandAdaptiveTrigger(min_interval=0.0)
        DemandAdaptiveTrigger(deadline_slack=0.0)  # zero slack is legal

"""Tests for evaluation metrics and report formatting."""

import numpy as np
import pytest

from repro.eval.metrics import mae, regression_summary, rmse
from repro.eval.report import Table, format_series, format_table


class TestMetrics:
    def test_zero_error(self, rng):
        x = rng.normal(size=(5, 2))
        assert rmse(x, x) == 0.0
        assert mae(x, x) == 0.0

    def test_known_values(self):
        pred = np.array([[3.0, 4.0]])
        target = np.array([[0.0, 0.0]])
        assert rmse(pred, target) == pytest.approx(5.0)
        assert mae(pred, target) == pytest.approx(5.0)

    def test_rmse_at_least_mae(self, rng):
        pred = rng.normal(size=(20, 3, 2))
        target = rng.normal(size=(20, 3, 2))
        assert rmse(pred, target) >= mae(pred, target)

    def test_validates(self):
        with pytest.raises(ValueError):
            rmse(np.zeros((2, 2)), np.zeros((3, 2)))
        with pytest.raises(ValueError):
            mae(np.zeros((0, 2)), np.zeros((0, 2)))

    def test_summary(self, rng):
        pred = rng.normal(size=(4, 2))
        target = rng.normal(size=(4, 2))
        s = regression_summary(pred, target)
        assert set(s) == {"rmse", "mae"}


class TestTable:
    def test_renders_aligned(self):
        out = format_table("T", ["a", "bb"], [[1.0, 2.0], [3.123456, 4.0]])
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "3.1235" in out  # default 4-digit precision

    def test_row_width_checked(self):
        t = Table(headers=["a", "b"])
        t.add_row([1.0])
        with pytest.raises(ValueError):
            t.render()

    def test_bool_and_str_formatting(self):
        out = format_table("", ["x"], [[True], ["name"]])
        assert "yes" in out and "name" in out

    def test_format_series(self):
        out = format_series(
            "Fig X", "d", [2, 4], {"PPI": [0.5, 0.6], "KM": [0.4, 0.5]}
        )
        assert "PPI" in out and "KM" in out
        assert "0.6000" in out

    def test_format_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("t", "x", [1, 2], {"a": [1.0]})

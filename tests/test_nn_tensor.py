"""Tests for the autograd engine, including finite-difference checks."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.tensor import Tensor, concat, grad_of, stack


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite differences of a scalar-valued fn at x."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        fp = fn(x)
        x[idx] = orig - eps
        fm = fn(x)
        x[idx] = orig
        grad[idx] = (fp - fm) / (2 * eps)
        it.iternext()
    return grad


def check_gradient(op, x_shape, tol=1e-5, positive=False, seed=0):
    """Compare autograd and numeric gradients for a unary tensor op."""
    rng = np.random.default_rng(seed)
    data = rng.uniform(0.5, 2.0, x_shape) if positive else rng.normal(size=x_shape)
    t = Tensor(data.copy(), requires_grad=True)
    out = op(t).sum()
    out.backward()
    num = numeric_grad(lambda arr: op(Tensor(arr)).sum().item(), data.copy())
    assert np.allclose(t.grad, num, atol=tol), f"max diff {np.abs(t.grad - num).max()}"


class TestBasics:
    def test_leaf_creation(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        assert t.shape == (2,)
        assert t.grad is None

    def test_item_requires_scalar(self):
        with pytest.raises(TypeError):
            Tensor([1.0, 2.0]).item()

    def test_backward_requires_scalar_or_grad(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (t * 2).backward()

    def test_backward_grad_shape_checked(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (t * 2).backward(np.zeros(3))

    def test_detach_leaves_tape(self):
        t = Tensor([1.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad

    def test_clone_copies_data(self):
        t = Tensor([1.0], requires_grad=True)
        c = t.clone()
        c.data[0] = 99.0
        assert t.data[0] == 1.0


class TestArithmeticGradients:
    def test_add(self):
        check_gradient(lambda t: t + 3.0, (4,))

    def test_radd(self):
        check_gradient(lambda t: 3.0 + t, (4,))

    def test_sub_and_rsub(self):
        check_gradient(lambda t: t - 2.0, (3, 2))
        check_gradient(lambda t: 2.0 - t, (3, 2))

    def test_mul(self):
        check_gradient(lambda t: t * t, (5,))

    def test_div(self):
        check_gradient(lambda t: t / 2.5, (4,))
        check_gradient(lambda t: 1.0 / t, (4,), positive=True)

    def test_pow(self):
        check_gradient(lambda t: t**3, (4,))
        check_gradient(lambda t: t**0.5, (4,), positive=True)

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([3.0])

    def test_neg(self):
        check_gradient(lambda t: -t, (3,))

    def test_broadcast_add(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones(4), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        assert np.allclose(b.grad, 3.0)

    def test_broadcast_mul_gradients(self):
        rng = np.random.default_rng(1)
        a_data = rng.normal(size=(2, 3))
        b_data = rng.normal(size=(3,))
        a = Tensor(a_data.copy(), requires_grad=True)
        b = Tensor(b_data.copy(), requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(a.grad, np.broadcast_to(b_data, (2, 3)))
        assert np.allclose(b.grad, a_data.sum(axis=0))


class TestMatmulGradients:
    def test_2d(self):
        rng = np.random.default_rng(2)
        a_data = rng.normal(size=(3, 4))
        b_data = rng.normal(size=(4, 2))
        a = Tensor(a_data.copy(), requires_grad=True)
        b = Tensor(b_data.copy(), requires_grad=True)
        (a @ b).sum().backward()
        num_a = numeric_grad(lambda arr: (Tensor(arr) @ Tensor(b_data)).sum().item(), a_data.copy())
        num_b = numeric_grad(lambda arr: (Tensor(a_data) @ Tensor(arr)).sum().item(), b_data.copy())
        assert np.allclose(a.grad, num_a, atol=1e-5)
        assert np.allclose(b.grad, num_b, atol=1e-5)

    def test_batched(self):
        rng = np.random.default_rng(3)
        a = Tensor(rng.normal(size=(5, 3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        (a @ b).sum().backward()
        assert a.grad.shape == (5, 3, 4)
        assert b.grad.shape == (4, 2)


class TestNonlinearityGradients:
    def test_tanh(self):
        check_gradient(lambda t: t.tanh(), (6,))

    def test_sigmoid(self):
        check_gradient(lambda t: t.sigmoid(), (6,))

    def test_relu(self):
        # Away from the kink.
        check_gradient(lambda t: (t + 5.0).relu(), (4,), positive=True)

    def test_exp(self):
        check_gradient(lambda t: t.exp(), (4,))

    def test_log(self):
        check_gradient(lambda t: t.log(), (4,), positive=True)

    def test_abs(self):
        check_gradient(lambda t: t.abs(), (4,), positive=True)

    def test_sqrt(self):
        check_gradient(lambda t: t.sqrt(), (4,), positive=True)

    def test_sigmoid_saturation_is_finite(self):
        t = Tensor([1000.0, -1000.0], requires_grad=True)
        out = t.sigmoid().sum()
        out.backward()
        assert np.all(np.isfinite(t.grad))


class TestReductions:
    def test_sum_all(self):
        check_gradient(lambda t: t.sum(), (3, 4))

    def test_sum_axis(self):
        check_gradient(lambda t: t.sum(axis=0).sum(), (3, 4))
        check_gradient(lambda t: t.sum(axis=1, keepdims=True).sum(), (3, 4))

    def test_mean(self):
        t = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        t.mean().backward()
        assert np.allclose(t.grad, 1.0 / 6.0)

    def test_mean_axis(self):
        check_gradient(lambda t: t.mean(axis=1).sum(), (3, 4))


class TestShapeOps:
    def test_reshape(self):
        check_gradient(lambda t: t.reshape(6).sum(), (2, 3))

    def test_transpose(self):
        check_gradient(lambda t: t.T.sum(), (2, 3))

    def test_transpose_axes(self):
        t = Tensor(np.zeros((2, 3, 4)), requires_grad=True)
        out = t.transpose(1, 0, 2)
        assert out.shape == (3, 2, 4)

    def test_getitem(self):
        rng = np.random.default_rng(5)
        data = rng.normal(size=(4, 3))
        t = Tensor(data.copy(), requires_grad=True)
        t[1:3, :].sum().backward()
        expected = np.zeros((4, 3))
        expected[1:3, :] = 1.0
        assert np.allclose(t.grad, expected)

    def test_getitem_repeated_index_accumulates(self):
        t = Tensor(np.zeros(3), requires_grad=True)
        out = t[np.array([0, 0, 1])].sum()
        out.backward()
        assert np.allclose(t.grad, [2.0, 1.0, 0.0])


class TestConcatStack:
    def test_concat_gradients(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((3, 2)), requires_grad=True)
        concat([a, b], axis=0).sum().backward()
        assert np.allclose(a.grad, 1.0) and np.allclose(b.grad, 1.0)

    def test_concat_empty_raises(self):
        with pytest.raises(ValueError):
            concat([])

    def test_stack_gradients(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 3)
        (out * 2).sum().backward()
        assert np.allclose(a.grad, 2.0)

    def test_stack_empty_raises(self):
        with pytest.raises(ValueError):
            stack([])


class TestGraphBehaviour:
    def test_gradient_accumulates_over_shared_subexpression(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * x + x * 3.0  # dy/dx = 2x + 3 = 7
        y.backward()
        assert np.allclose(x.grad, [7.0])

    def test_diamond_graph(self):
        x = Tensor([1.0], requires_grad=True)
        a = x * 2
        b = x * 3
        ((a + b) * (a - b)).backward()  # (2x)^2-(3x)^2 = -5x^2, d/dx=-10x
        assert np.allclose(x.grad, [-10.0])

    def test_grad_of_clears_stale(self):
        x = Tensor([1.0], requires_grad=True)
        loss1 = (x * 2).sum()
        g1 = grad_of(loss1, [x])
        loss2 = (x * 2).sum()
        g2 = grad_of(loss2, [x])
        assert np.allclose(g1[0], g2[0])

    def test_grad_of_unused_param_is_zero(self):
        x = Tensor([1.0], requires_grad=True)
        unused = Tensor([5.0], requires_grad=True)
        g = grad_of((x * 2).sum(), [x, unused])
        assert np.allclose(g[1], 0.0)

    def test_no_grad_propagation_when_not_required(self):
        x = Tensor([1.0])
        out = (x * 2).sum()
        out.backward()
        assert x.grad is None


@settings(max_examples=30, deadline=None)
@given(
    shape=st.tuples(st.integers(1, 4), st.integers(1, 4)),
    seed=st.integers(0, 1000),
)
def test_random_expression_gradients(shape, seed):
    """Property: composite expressions match finite differences."""
    rng = np.random.default_rng(seed)
    data = rng.uniform(0.3, 1.5, shape)

    def expr(t):
        return ((t * t).tanh() + t.sigmoid() * 2.0 - (t + 1.0).log()).sum()

    t = Tensor(data.copy(), requires_grad=True)
    expr(t).backward()
    num = numeric_grad(lambda arr: expr(Tensor(arr)).item(), data.copy())
    assert np.allclose(t.grad, num, atol=1e-4)

"""Gradient checks for the fused BPTT kernels against the autograd tape.

Every fused kernel in :mod:`repro.nn.fused` is compared against the
reference tape path at ``rtol=1e-6`` (forward values are bit-exact by
construction; gradients differ only in summation order), plus a
central-difference check that catches errors the two analytic paths
could share.
"""

import numpy as np
import pytest

from repro.nn import fused
from repro.nn.gru import GRU
from repro.nn.lstm import LSTM
from repro.nn.losses import TaskDensityWeighter, mae_loss, mse_loss
from repro.nn.seq2seq import make_mobility_model
from repro.nn.tensor import Tensor, grad_of

RTOL = 1e-6
ATOL = 1e-9


def tape_loss_and_grads(model, x, y, loss_fn, teacher_forcing=False):
    """Reference: functional_call through the tape, named grads."""
    params = {k: v.clone(requires_grad=True) for k, v in model.named_parameters()}
    y_t = Tensor(np.asarray(y, dtype=float))
    kwargs = {"targets": y_t} if teacher_forcing else {}
    pred = model.functional_call(params, Tensor(np.asarray(x, dtype=float)), **kwargs)
    loss = loss_fn(pred, y_t)
    names = list(params)
    grads = dict(zip(names, grad_of(loss, (params[n] for n in names))))
    return float(loss.item()), grads


def assert_grads_close(fused_grads, tape_grads, rtol=RTOL, atol=ATOL):
    assert set(fused_grads) == set(tape_grads)
    for name in tape_grads:
        np.testing.assert_allclose(
            fused_grads[name], tape_grads[name], rtol=rtol, atol=atol, err_msg=name
        )


class TestLayerKernels:
    """lstm_forward/backward and gru_forward/backward vs the modules."""

    @pytest.mark.parametrize("batch,steps,features,hidden", [(3, 4, 2, 5), (1, 1, 3, 2)])
    def test_lstm_layer_matches_tape(self, batch, steps, features, hidden):
        rng = np.random.default_rng(11)
        layer = LSTM(features, hidden, rng)
        x = rng.normal(size=(batch, steps, features))
        w_out = rng.normal(size=(batch, steps, hidden))
        w_h = rng.normal(size=(batch, hidden))
        w_c = rng.normal(size=(batch, hidden))

        x_t = Tensor(x, requires_grad=True)
        out, (h, c) = layer.forward(x_t)
        loss = (out * Tensor(w_out)).sum() + (h * Tensor(w_h)).sum() + (c * Tensor(w_c)).sum()
        loss.backward()

        params = fused.as_param_arrays(dict(layer.named_parameters()))
        f_out, (f_h, f_c), caches = fused.lstm_forward(x, params)
        np.testing.assert_allclose(f_out, out.data, rtol=0, atol=0)
        np.testing.assert_allclose(f_h, h.data, rtol=0, atol=0)
        dx, _, grads = fused.lstm_backward(caches, params, d_outputs=w_out, d_state=(w_h, w_c))
        np.testing.assert_allclose(dx, x_t.grad, rtol=RTOL, atol=ATOL)
        assert_grads_close(grads, {n: p.grad for n, p in layer.named_parameters()})

    @pytest.mark.parametrize("batch,steps,features,hidden", [(3, 4, 2, 5), (2, 6, 1, 3)])
    def test_gru_layer_matches_tape(self, batch, steps, features, hidden):
        rng = np.random.default_rng(13)
        layer = GRU(features, hidden, rng)
        x = rng.normal(size=(batch, steps, features))
        w_out = rng.normal(size=(batch, steps, hidden))
        w_h = rng.normal(size=(batch, hidden))

        x_t = Tensor(x, requires_grad=True)
        out, h = layer.forward(x_t)
        loss = (out * Tensor(w_out)).sum() + (h * Tensor(w_h)).sum()
        loss.backward()

        params = fused.as_param_arrays(dict(layer.named_parameters()))
        f_out, f_h, caches = fused.gru_forward(x, params)
        np.testing.assert_allclose(f_out, out.data, rtol=0, atol=0)
        dx, _, grads = fused.gru_backward(caches, params, d_outputs=w_out, d_state=w_h)
        np.testing.assert_allclose(dx, x_t.grad, rtol=RTOL, atol=ATOL)
        assert_grads_close(grads, {n: p.grad for n, p in layer.named_parameters()})


class TestSeq2SeqKernels:
    """Fused encoder-decoder loss_and_grads vs the tape, all decode modes."""

    @pytest.mark.parametrize("cell", ["lstm", "gru"])
    @pytest.mark.parametrize("seq_out", [1, 3])
    @pytest.mark.parametrize("teacher_forcing", [False, True])
    def test_matches_tape(self, cell, seq_out, teacher_forcing):
        rng = np.random.default_rng(17)
        model = make_mobility_model(cell, hidden_size=7, seq_out=seq_out, rng=rng)
        x = rng.normal(size=(5, 4, 2))
        y = rng.normal(size=(5, seq_out, 2))

        ref_loss, ref_grads = tape_loss_and_grads(model, x, y, mse_loss, teacher_forcing)
        loss, grads = fused.loss_and_grads(
            model, dict(model.named_parameters()), x, y, mse_loss, teacher_forcing=teacher_forcing
        )
        assert loss == pytest.approx(ref_loss, rel=1e-12)
        assert_grads_close(grads, ref_grads)

    @pytest.mark.parametrize(
        "loss_fn",
        [mse_loss, mae_loss, TaskDensityWeighter(np.array([[0.1, 0.2], [0.8, 0.9]])).loss],
        ids=["mse", "mae", "weighted_mse"],
    )
    def test_loss_functions(self, loss_fn):
        rng = np.random.default_rng(19)
        model = make_mobility_model("lstm", hidden_size=6, seq_out=2, rng=rng)
        x = rng.uniform(size=(4, 3, 2))
        y = rng.uniform(size=(4, 2, 2))
        ref_loss, ref_grads = tape_loss_and_grads(model, x, y, loss_fn)
        loss, grads = fused.loss_and_grads(model, dict(model.named_parameters()), x, y, loss_fn)
        assert loss == pytest.approx(ref_loss, rel=1e-12)
        assert_grads_close(grads, ref_grads)

    def test_finite_differences(self):
        """Central differences on random parameter entries — independent of
        the tape, catches errors both analytic paths could share."""
        rng = np.random.default_rng(23)
        model = make_mobility_model("lstm", hidden_size=4, seq_out=2, rng=rng)
        x = rng.normal(size=(3, 3, 2))
        y = rng.normal(size=(3, 2, 2))
        params = fused.as_param_arrays(dict(model.named_parameters()))
        _, grads = fused.loss_and_grads(model, params, x, y, mse_loss)

        def loss_at(p):
            pred = fused.seq2seq_predict(model, p, x)
            return float(((pred - y) ** 2).mean())

        eps = 1e-6
        for name, arr in params.items():
            flat = arr.reshape(-1)
            for idx in rng.choice(flat.size, size=min(3, flat.size), replace=False):
                bumped = {k: v.copy() for k, v in params.items()}
                bumped[name].reshape(-1)[idx] = flat[idx] + eps
                hi = loss_at(bumped)
                bumped[name].reshape(-1)[idx] = flat[idx] - eps
                lo = loss_at(bumped)
                numeric = (hi - lo) / (2 * eps)
                analytic = grads[name].reshape(-1)[idx]
                assert analytic == pytest.approx(numeric, rel=1e-4, abs=1e-7), name

    def test_predict_matches_tape_forward(self):
        rng = np.random.default_rng(29)
        model = make_mobility_model("gru", hidden_size=5, seq_out=3, rng=rng)
        x = rng.normal(size=(4, 5, 2))
        tape_pred = model.forward(Tensor(x)).data
        fused_pred = fused.seq2seq_predict(model, dict(model.named_parameters()), x)
        np.testing.assert_allclose(fused_pred, tape_pred, rtol=0, atol=0)

    def test_supports(self):
        from repro.nn.layers import MLP

        rng = np.random.default_rng(1)
        assert fused.supports(make_mobility_model("lstm", rng=rng))
        assert fused.supports(make_mobility_model("gru", rng=rng))
        assert not fused.supports(MLP([2, 4, 2], rng))


class TestBatchedKernels:
    """Stacked multi-worker pass vs independent single-worker passes."""

    @pytest.mark.parametrize("cell", ["lstm", "gru"])
    @pytest.mark.parametrize("teacher_forcing", [False, True])
    def test_ragged_batch_matches_singles(self, cell, teacher_forcing):
        rng = np.random.default_rng(31)
        model = make_mobility_model(cell, hidden_size=5, seq_out=2, rng=rng)
        counts = [4, 1, 3]  # ragged per-worker window counts
        xs = [rng.normal(size=(n, 3, 2)) for n in counts]
        ys = [rng.normal(size=(n, 2, 2)) for n in counts]
        # Distinct parameters per worker so cross-worker leakage would show.
        per_worker = []
        for w in range(len(counts)):
            base = fused.as_param_arrays(dict(model.named_parameters()))
            per_worker.append({k: v + 0.01 * w for k, v in base.items()})
        stacked = fused.stack_param_dicts(per_worker)

        losses, grads = fused.batched_loss_and_grads(
            model, stacked, xs, ys, mse_loss, teacher_forcing=teacher_forcing
        )
        for w in range(len(counts)):
            ref_loss, ref_grads = fused.loss_and_grads(
                model, per_worker[w], xs[w], ys[w], mse_loss, teacher_forcing=teacher_forcing
            )
            assert losses[w] == pytest.approx(ref_loss, rel=1e-12)
            for name in ref_grads:
                np.testing.assert_allclose(
                    grads[name][w], ref_grads[name], rtol=1e-9, atol=1e-12,
                    err_msg=f"worker {w} {name}",
                )

    def test_replicate_and_unstack_roundtrip(self):
        rng = np.random.default_rng(37)
        model = make_mobility_model("lstm", hidden_size=3, seq_out=1, rng=rng)
        params = dict(model.named_parameters())
        stacked = fused.replicate_params(params, 4)
        for name, p in params.items():
            assert stacked[name].shape == (4,) + p.data.shape
        slice2 = fused.unstack_param_dict(stacked, 2)
        for name, p in params.items():
            np.testing.assert_array_equal(slice2[name], p.data)
            assert slice2[name] is not stacked[name]  # an owned copy

    def test_pad_and_stack_validation(self):
        with pytest.raises(ValueError):
            fused.pad_and_stack([])
        with pytest.raises(ValueError):
            fused.pad_and_stack([np.zeros((2, 3)), np.zeros((2, 4))])
        stacked, lengths = fused.pad_and_stack([np.ones((2, 3)), np.ones((4, 3))])
        assert stacked.shape == (2, 4, 3)
        assert lengths == [2, 4]
        assert stacked[0, 2:].sum() == 0.0

"""Tests for the workload factories."""

import numpy as np
import pytest

from repro.pipeline.workloads import (
    WORKLOADS,
    WorkloadSpec,
    make_workload,
    make_workload1,
    make_workload2,
)


class TestSpec:
    def test_defaults(self):
        spec = WorkloadSpec()
        assert spec.n_workers == 16
        assert spec.valid_time_units == (3.0, 4.0)

    def test_extra_kwargs_forwarded(self):
        spec = WorkloadSpec(n_workers=4, n_tasks=10, extra_worker_kwargs={"noise_km": 0.9})
        wl, _ = make_workload1(spec)
        assert len(wl.workers) == 4


class TestWorkload1:
    def test_shapes(self):
        wl, learning = make_workload1(WorkloadSpec(n_workers=5, n_tasks=30, n_train_days=3))
        assert wl.name == "porto-didi"
        assert len(wl.workers) == 5
        assert len(wl.tasks) == 30
        assert len(learning) == 5
        assert wl.historical_tasks_xy.shape[1] == 2

    def test_detour_flows_to_workers(self):
        wl, _ = make_workload1(WorkloadSpec(n_workers=3, n_tasks=10, detour_km=7.5))
        assert all(w.detour_budget_km == 7.5 for w in wl.workers)

    def test_valid_time_flows_to_tasks(self):
        wl, _ = make_workload1(WorkloadSpec(n_workers=3, n_tasks=20, valid_time_units=(1.0, 2.0)))
        for t in wl.tasks:
            assert 10.0 <= t.valid_minutes <= 20.0

    def test_same_seed_same_routines_across_detours(self):
        """Detour is a worker attribute, not a generator input: sweeping it
        must not change the routines (predictors are reused across the
        sweep in the figure benches)."""
        a, _ = make_workload1(WorkloadSpec(n_workers=3, n_tasks=10, detour_km=2.0, seed=5))
        b, _ = make_workload1(WorkloadSpec(n_workers=3, n_tasks=10, detour_km=10.0, seed=5))
        for wa, wb in zip(a.workers, b.workers):
            assert np.allclose(wa.routine.xy, wb.routine.xy)

    def test_learning_tasks_match_workers(self):
        wl, learning = make_workload1(WorkloadSpec(n_workers=4, n_tasks=10, n_train_days=3))
        assert {t.worker_id for t in learning} == {w.worker_id for w in wl.workers}


class TestWorkload2:
    def test_shapes(self):
        wl, learning = make_workload2(WorkloadSpec(n_workers=5, n_tasks=30, n_train_days=3))
        assert wl.name == "gowalla-foursquare"
        assert len(wl.workers) == 5
        assert len(learning) == 5

    def test_tasks_near_venues(self):
        wl, _ = make_workload2(WorkloadSpec(n_workers=3, n_tasks=25))
        poi_xy = np.array([[p.location.x, p.location.y] for p in wl.city.pois])
        for t in wl.tasks:
            d = np.sqrt(((poi_xy - [t.location.x, t.location.y]) ** 2).sum(axis=1)).min()
            assert d < 0.5


class TestRegistry:
    def test_names(self):
        assert set(WORKLOADS) == {"porto-didi", "gowalla-foursquare"}

    def test_dispatch(self):
        wl, _ = make_workload("gowalla-foursquare", WorkloadSpec(n_workers=3, n_tasks=10))
        assert wl.name == "gowalla-foursquare"

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            make_workload("mars-rover")

"""Tests for the real-corpus CSV loaders, using tiny synthetic fixtures."""

import csv
import json

import numpy as np
import pytest

from repro.data.loaders import (
    Projection,
    fit_grid,
    load_didi_orders,
    load_gowalla_checkins,
    load_porto_csv,
)

PORTO_LAT, PORTO_LON = 41.15, -8.61


def write_porto_fixture(path, n_taxis=2, n_days=2, points_per_trip=5):
    """A miniature Kaggle-format trips CSV."""
    rng = np.random.default_rng(0)
    rows = []
    trip_id = 0
    for taxi in range(n_taxis):
        for day in range(n_days):
            # 2013-10-20 + day, 09:00 UTC
            epoch = 1382259600 + day * 86400 + taxi * 600
            polyline = [
                [PORTO_LON + 0.01 * taxi + 0.001 * k, PORTO_LAT + 0.002 * k + 0.01 * rng.uniform()]
                for k in range(points_per_trip)
            ]
            rows.append({
                "TRIP_ID": str(trip_id),
                "TAXI_ID": f"2000{taxi}",
                "TIMESTAMP": str(epoch),
                "POLYLINE": json.dumps(polyline),
            })
            trip_id += 1
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=["TRIP_ID", "TAXI_ID", "TIMESTAMP", "POLYLINE"])
        writer.writeheader()
        writer.writerows(rows)


class TestProjection:
    def test_anchor_is_zero(self):
        proj = Projection(lat0=41.0, lon0=-8.0)
        assert proj.to_xy(41.0, -8.0) == (0.0, 0.0)

    def test_one_degree_latitude_about_111km(self):
        proj = Projection(lat0=41.0, lon0=-8.0)
        _, y = proj.to_xy(42.0, -8.0)
        assert y == pytest.approx(111.2, rel=0.01)

    def test_around_centroid(self):
        proj = Projection.around(np.array([[40.0, -8.0], [42.0, -8.0]]))
        assert proj.lat0 == 41.0

    def test_around_empty_raises(self):
        with pytest.raises(ValueError):
            Projection.around(np.zeros((0, 2)))


class TestFitGrid:
    def test_covers_points(self):
        pts = np.array([[0.0, 0.0], [10.0, 4.0]])
        grid, shifted = fit_grid(pts)
        for p in shifted:
            assert 0 <= p[0] <= grid.width_km
            assert 0 <= p[1] <= grid.height_km

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            fit_grid(np.zeros((0, 2)))


class TestPortoLoader:
    def test_loads_workers_with_history(self, tmp_path):
        fixture = tmp_path / "porto.csv"
        write_porto_fixture(fixture, n_taxis=2, n_days=3)
        grid, workers, proj = load_porto_csv(fixture)
        assert len(workers) == 2
        for w in workers:
            assert len(w.history) == 2  # last day is the routine
            assert len(w.routine) >= 2
            for p in w.routine:
                assert grid.contains(p.location)

    def test_max_trips_cap(self, tmp_path):
        fixture = tmp_path / "porto.csv"
        write_porto_fixture(fixture, n_taxis=3, n_days=2)
        _, workers, _ = load_porto_csv(fixture, max_trips=2)
        assert len(workers) == 1  # only the first taxi's trips read

    def test_rejects_missing_columns(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("A,B\n1,2\n")
        with pytest.raises(ValueError):
            load_porto_csv(bad)

    def test_rejects_empty(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("TRIP_ID,TAXI_ID,TIMESTAMP,POLYLINE\n")
        with pytest.raises(ValueError):
            load_porto_csv(empty)

    def test_malformed_polyline_raises(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text('TRIP_ID,TAXI_ID,TIMESTAMP,POLYLINE\n1,2,1382259600,"not json"\n')
        with pytest.raises(ValueError):
            load_porto_csv(bad)


class TestGowallaLoader:
    def write_fixture(self, path, n_users=2, n_days=2, checkins_per_day=4):
        lines = []
        for user in range(n_users):
            for day in range(n_days):
                for k in range(checkins_per_day):
                    stamp = f"2010-10-{19 + day:02d}T{9 + 2 * k:02d}:00:00Z"
                    lat = 30.27 + 0.01 * user + 0.002 * k
                    lon = -97.74 + 0.003 * k
                    lines.append(f"{user}\t{stamp}\t{lat}\t{lon}\t{1000 + k}")
        path.write_text("\n".join(lines) + "\n")

    def test_loads_users(self, tmp_path):
        fixture = tmp_path / "gowalla.txt"
        self.write_fixture(fixture)
        grid, workers, _ = load_gowalla_checkins(fixture)
        assert len(workers) == 2
        for w in workers:
            assert len(w.history) == 1
            assert len(w.routine) == 4

    def test_skips_short_lines(self, tmp_path):
        fixture = tmp_path / "gowalla.txt"
        self.write_fixture(fixture)
        with fixture.open("a") as handle:
            handle.write("garbage line\n")
        _, workers, _ = load_gowalla_checkins(fixture)
        assert len(workers) == 2

    def test_empty_raises(self, tmp_path):
        empty = tmp_path / "gowalla.txt"
        empty.write_text("")
        with pytest.raises(ValueError):
            load_gowalla_checkins(empty)


class TestDidiLoader:
    def test_loads_tasks_on_worker_grid(self, tmp_path):
        porto = tmp_path / "porto.csv"
        write_porto_fixture(porto)
        grid, workers, proj = load_porto_csv(porto)

        orders = tmp_path / "orders.csv"
        with orders.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["order_id", "start_epoch", "pickup_lon", "pickup_lat"])
            for i in range(5):
                writer.writerow([i, 1382259600 + 300 * i, PORTO_LON + 0.001 * i, PORTO_LAT])
        tasks = load_didi_orders(orders, grid, proj, valid_time_minutes=(30.0, 40.0))
        assert len(tasks) == 5
        releases = [t.release_time for t in tasks]
        assert releases == sorted(releases)
        for t in tasks:
            assert grid.contains(t.location)
            assert 30.0 <= t.valid_minutes <= 40.0

    def test_validates_interval(self, tmp_path):
        orders = tmp_path / "orders.csv"
        orders.write_text("")
        grid, proj = fit_grid(np.array([[0.0, 0.0], [1.0, 1.0]]))[0], Projection(41.0, -8.0)
        with pytest.raises(ValueError):
            load_didi_orders(orders, grid, proj, valid_time_minutes=(0.0, 1.0))

"""Tests for run manifests, trace-report aggregation, and the Reporter."""

import io
import json

import pytest

from repro import obs
from repro.obs import (
    MemorySink,
    Reporter,
    RunManifest,
    aggregate,
    git_sha,
    manifest_path_for,
    read_manifest,
    render_report,
)


class TestGitSha:
    def test_repo_checkout_has_sha(self):
        # The test suite runs from a git checkout; outside one this
        # returns None, which write()/manifests must tolerate anyway.
        sha = git_sha()
        if sha is not None:
            assert len(sha.split("-")[0]) == 40

    def test_nonexistent_dir_returns_none(self, tmp_path):
        missing = tmp_path / "not-a-checkout"
        missing.mkdir()
        assert git_sha(missing) is None


class TestRunManifest:
    def test_start_stamps_environment(self):
        m = RunManifest.start(
            command="assign", argv=["--algorithm", "ppi"], config={"seed": 3}, seed=3
        )
        assert m.command == "assign"
        assert m.argv == ["--algorithm", "ppi"]
        assert m.config == {"seed": 3}
        assert m.python.count(".") == 2
        assert m.platform
        assert m.started_unix > 0
        assert m.finished_unix is None

    def test_finalize_and_write_round_trip(self, tmp_path):
        m = RunManifest.start(command="assign", seed=1)
        m.finalize(metrics={"completion_ratio": 0.8}, trace_path="run.trace.jsonl")
        path = m.write(tmp_path / "out" / "run.manifest.json")
        back = read_manifest(path)
        assert back.command == "assign"
        assert back.seed == 1
        assert back.metrics == {"completion_ratio": 0.8}
        assert back.trace_path == "run.trace.jsonl"
        assert back.duration_s is not None and back.duration_s >= 0
        # The file itself is indented JSON with the documented keys.
        raw = json.loads(path.read_text())
        assert {"command", "argv", "config", "seed", "git_sha", "metrics"} <= set(raw)

    def test_read_ignores_unknown_keys(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps({"command": "x", "some_future_field": 1}))
        assert read_manifest(path).command == "x"

    def test_manifest_path_for(self):
        assert manifest_path_for("runs/a.trace.jsonl").name == "a.manifest.json"
        assert manifest_path_for("a.jsonl").name == "a.manifest.json"
        assert str(manifest_path_for("runs/a.trace.jsonl").parent) == "runs"


def _record_tree():
    """A small trace: root -> (step x2 -> leaf) with known durations."""
    sink = MemorySink()
    with obs.recording(sink):
        with obs.span("root"):
            for _ in range(2):
                with obs.span("step"):
                    with obs.span("leaf"):
                        pass
        obs.counter("hits", 3)
        obs.histogram("loss", 0.5)
    return sink.records


class TestTraceReport:
    def test_aggregates_by_name_path(self):
        report = aggregate(_record_tree())
        assert report.n_spans == 5
        paths = set(report.stats)
        assert ("root",) in paths
        assert ("root", "step") in paths
        assert ("root", "step", "leaf") in paths
        step = report.stats[("root", "step")]
        assert step.count == 2
        assert step.depth == 1

    def test_self_time_excludes_children(self):
        report = aggregate(_record_tree())
        root = report.stats[("root",)]
        step = report.stats[("root", "step")]
        assert root.child_s == pytest.approx(step.total_s)
        assert root.self_s == pytest.approx(root.total_s - step.total_s)
        assert report.total_s == pytest.approx(root.total_s)

    def test_by_name_and_total_for(self):
        report = aggregate(_record_tree())
        assert [s.path for s in report.by_name("leaf")] == [("root", "step", "leaf")]
        assert report.total_for("step") == pytest.approx(
            report.stats[("root", "step")].total_s
        )

    def test_same_name_under_different_parents_kept_apart(self):
        sink = MemorySink()
        with obs.recording(sink):
            with obs.span("a"):
                with obs.span("shared"):
                    pass
            with obs.span("b"):
                with obs.span("shared"):
                    pass
        report = aggregate(sink.records)
        assert len(report.by_name("shared")) == 2

    def test_metrics_carried_through(self):
        report = aggregate(_record_tree())
        assert report.metrics["counters"]["hits"] == 3.0
        assert report.metrics["histograms"]["loss"]["count"] == 1

    def test_render_lists_spans_and_metrics(self):
        report = aggregate(_record_tree())
        text = render_report(report, title="trace report: t")
        assert "trace report: t" in text
        assert "root" in text and "step" in text and "leaf" in text
        assert "hits" in text and "loss" in text
        # Children are indented under their parent.
        lines = text.splitlines()
        root_line = next(l for l in lines if l.startswith("root"))
        step_line = next(l for l in lines if l.lstrip().startswith("step"))
        assert len(step_line) - len(step_line.lstrip()) > 0

    def test_error_spans_flagged(self):
        sink = MemorySink()
        with pytest.raises(RuntimeError):
            with obs.recording(sink):
                with obs.span("bad"):
                    raise RuntimeError("x")
        report = aggregate(sink.records)
        assert report.stats[("bad",)].errors == 1
        assert "err" in render_report(report)


class TestReporter:
    def test_human_mode_prints_lines(self):
        out = io.StringIO()
        r = Reporter(json_mode=False, stream=out)
        r.line("hello")
        r.add("hidden", 1)
        r.table("metrics", {"a": 1.0}, fmt="{name}={value:.1f}")
        r.finish()
        text = out.getvalue()
        assert "hello" in text and "a=1.0" in text
        assert "hidden" not in text

    def test_json_mode_emits_one_document(self):
        out = io.StringIO()
        r = Reporter(json_mode=True, stream=out)
        r.line("invisible")
        r.add("algorithm", "ppi")
        r.table("metrics", {"a": 1.0})
        r.finish()
        payload = json.loads(out.getvalue())
        assert payload == {"algorithm": "ppi", "metrics": {"a": 1.0}}
        assert "invisible" not in out.getvalue()

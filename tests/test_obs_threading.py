"""Thread safety of the recorder and the metrics registry.

The serving stack runs observability from several threads at once: the
engine thread nests spans, shard-server feeder threads record command
telemetry, and the OpenMetrics exposition / monitor threads read the
registry while it grows.  These tests hammer those paths concurrently
and check the invariants: every span emitted exactly once with a
parent from its own thread's stack, globally unique span ids, no lost
metric registrations, and a consistent snapshot under concurrent
creation.
"""

import threading

import pytest

from repro.obs.metrics import MetricsRegistry, labelled
from repro.obs.recorder import TraceRecorder
from repro.obs.sinks import MemorySink

N_THREADS = 8
N_REPEATS = 60


def _hammer(n_threads, target):
    barrier = threading.Barrier(n_threads)
    errors = []

    def runner(tid):
        barrier.wait()
        try:
            target(tid)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=runner, args=(tid,)) for tid in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors


class TestTraceRecorderThreading:
    def test_concurrent_nested_spans(self):
        sink = MemorySink()
        recorder = TraceRecorder(sink)

        def work(tid):
            for i in range(N_REPEATS):
                with recorder.span("outer", tid=tid, i=i):
                    with recorder.span("inner", tid=tid):
                        pass

        _hammer(N_THREADS, work)
        recorder.finish()
        spans = sink.spans
        assert len(spans) == N_THREADS * N_REPEATS * 2
        ids = [r["span_id"] for r in spans]
        assert len(set(ids)) == len(ids), "span ids collided across threads"
        # Each inner span's parent is an outer span from the same thread.
        outers = {r["span_id"]: r for r in spans if r["name"] == "outer"}
        for record in spans:
            if record["name"] != "inner":
                continue
            parent = outers[record["parent_id"]]
            assert parent["attrs"]["tid"] == record["attrs"]["tid"]

    def test_current_span_is_per_thread(self):
        recorder = TraceRecorder(MemorySink())
        seen = {}

        def work(tid):
            with recorder.span("mine", tid=tid):
                seen[tid] = recorder.current_span.attrs["tid"]

        _hammer(N_THREADS, work)
        recorder.finish()
        assert seen == {tid: tid for tid in range(N_THREADS)}

    def test_strict_finish_counts_spans_open_in_other_threads(self):
        recorder = TraceRecorder(MemorySink())
        opened = threading.Event()
        release = threading.Event()

        def holder():
            with recorder.span("held"):
                opened.set()
                release.wait(timeout=10.0)

        thread = threading.Thread(target=holder)
        thread.start()
        try:
            assert opened.wait(timeout=10.0)
            with pytest.raises(RuntimeError, match="still open"):
                recorder.finish(strict=True)
        finally:
            release.set()
            thread.join()
        recorder.finish(strict=False)


class TestMetricsRegistryThreading:
    def test_concurrent_creation_loses_no_updates(self):
        registry = MetricsRegistry()

        def work(tid):
            for i in range(N_REPEATS):
                # Shared name: every thread races the same creation.
                registry.counter("shared.events").add(1.0)
                # Label-per-thread: disjoint creations under one lock.
                registry.counter(labelled("shard.events", shard=tid)).add(1.0)
                registry.gauge(labelled("shard.last", shard=tid)).set(float(i))
                registry.histogram("shared.latency").observe(float(i))

        _hammer(N_THREADS, work)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["shared.events"] == N_THREADS * N_REPEATS
        for tid in range(N_THREADS):
            assert snapshot["counters"][labelled("shard.events", shard=tid)] == N_REPEATS
            assert snapshot["gauges"][labelled("shard.last", shard=tid)] == N_REPEATS - 1
        assert snapshot["histograms"]["shared.latency"]["count"] == N_THREADS * N_REPEATS

    def test_snapshot_during_concurrent_creation(self):
        registry = MetricsRegistry()
        stop = threading.Event()
        snapshots = []

        def sampler():
            while not stop.is_set():
                snapshots.append(registry.snapshot())

        thread = threading.Thread(target=sampler)
        thread.start()
        try:
            _hammer(
                4,
                lambda tid: [
                    registry.counter(f"c.{tid}.{i}").add(1.0) for i in range(N_REPEATS)
                ],
            )
        finally:
            stop.set()
            thread.join()
        final = registry.snapshot()
        assert len(final["counters"]) == 4 * N_REPEATS
        assert snapshots, "sampler thread never ran"

    def test_kind_collision_still_raises_under_lock(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

"""Engine-level forecast tests: parity, determinism, and uplift wiring.

The load-bearing contract is the acceptance criterion of the forecast
subsystem: with ``forecast=None`` (or a configured-but-disabled block)
the engine's ``result_signature`` is bit-identical to the reactive
engine on every built-in registry scenario, and a forecast-enabled run
is deterministic — same seed, same metrics — whether per-batch
assignment runs serially or on :class:`repro.dist.ProcessBackend`.
"""

import pytest

from repro.scenarios import (
    BUILTIN_SCENARIOS,
    PolicySpec,
    build_engine,
    get_policy,
    get_scenario,
    materialize,
)
from repro.serve.adapters import result_signature

BASE_DOC = {
    "trigger": {"kind": "adaptive", "pending_threshold": 50},
    "cache": {"ttl": 6.0},
    "index": {"enabled": True, "cell_km": 2.0},
}


def run_policy(data, policy):
    engine = build_engine(data.workers, data.provider, policy)
    try:
        return engine.run(data.tasks, data.t_start, data.t_end)
    finally:
        if policy.dist.shards > 1:
            engine.close()


def with_forecast(base_doc, **forecast):
    doc = {k: dict(v) if isinstance(v, dict) else v for k, v in base_doc.items()}
    doc["forecast"] = forecast
    return PolicySpec.from_dict(doc)


class TestForecastOffParity:
    @pytest.mark.parametrize("name", sorted(BUILTIN_SCENARIOS))
    def test_disabled_block_is_bit_identical(self, name):
        if name == "bench-scale-100k":
            pytest.skip("covered by bench-serve-city at test-budget scale")
        data = materialize(get_scenario(name))
        baseline = run_policy(data, PolicySpec.from_dict(BASE_DOC))
        # A fully-configured but disabled forecast block must compile to
        # forecast=None and leave the engine untouched.
        disabled = run_policy(
            data,
            with_forecast(
                BASE_DOC, enabled=False, model="seq2seq", prepositioning=True,
                demand_threshold=5.0,
            ),
        )
        assert result_signature(baseline) == result_signature(disabled)

    @pytest.mark.parametrize(
        "name", ["smoke", "serve-default", "hot-cell-burst", "rush-hour", "worker-churn"]
    )
    def test_passive_forecasting_is_bit_identical(self, name):
        # Forecasting on, but no forecast trigger and no pre-positioning:
        # the runtime observes and scores without steering anything.
        data = materialize(get_scenario(name))
        baseline = run_policy(data, PolicySpec.from_dict(BASE_DOC))
        passive = run_policy(data, with_forecast(BASE_DOC, enabled=True, model="ewma"))
        assert result_signature(baseline) == result_signature(passive)
        assert passive.forecast_mae is not None


class TestForecastDeterminism:
    def test_same_seed_same_run(self):
        data = materialize(get_scenario("hot-cell-burst"))
        policy = get_policy("forecast-prepositioned")
        a = run_policy(data, policy)
        b = run_policy(data, policy)
        assert result_signature(a) == result_signature(b)
        assert a.forecast_mae == b.forecast_mae
        assert a.n_prepositioned == b.n_prepositioned
        assert a.forecast_cell_mae == b.forecast_cell_mae

    def test_serial_vs_process_backend_identical(self):
        data = materialize(get_scenario("hot-cell-burst"))
        doc = get_policy("forecast-prepositioned").to_dict()
        doc["dist"] = {"shards": 2, "backend": "serial"}
        serial = run_policy(data, PolicySpec.from_dict(doc))
        doc["dist"] = {"shards": 2, "backend": "process", "workers": 2}
        process = run_policy(data, PolicySpec.from_dict(doc))
        assert result_signature(serial) == result_signature(process)
        assert serial.forecast_mae == process.forecast_mae
        assert serial.n_prepositioned == process.n_prepositioned


class TestForecastEffects:
    def test_prepositioning_moves_and_completes_more_on_hot_cells(self):
        data = materialize(get_scenario("hot-cell-burst"))
        reactive = run_policy(data, get_policy("reactive-adaptive"))
        forecast = run_policy(data, get_policy("forecast-prepositioned"))
        assert forecast.n_prepositioned > 0
        assert forecast.n_completed > reactive.n_completed

    def test_forecast_trigger_pulls_batches_forward(self):
        data = materialize(get_scenario("hot-cell-burst"))
        baseline = run_policy(data, PolicySpec.from_dict({"trigger": {"kind": "fixed"}}))
        triggered = run_policy(
            data,
            PolicySpec.from_dict(
                {
                    "trigger": {"kind": "forecast"},
                    "forecast": {"enabled": True, "model": "ewma",
                                 "demand_threshold": 8.0},
                }
            ),
        )
        assert triggered.n_early_batches > 0
        assert baseline.n_early_batches == 0

"""Tests for k-means, k-medoids, and soft k-means."""

import numpy as np
import pytest

from repro.cluster import kmeans, kmedoids, soft_kmeans


@pytest.fixture
def three_blobs(rng):
    centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
    pts = np.concatenate([rng.normal(c, 0.5, size=(30, 2)) for c in centers])
    labels = np.repeat([0, 1, 2], 30)
    return pts, labels


def agreement(found, truth):
    """Best-case label agreement (clusters are permutation-invariant)."""
    from itertools import permutations

    best = 0.0
    k = int(found.max()) + 1
    for perm in permutations(range(k)):
        mapped = np.array([perm[v] if v < len(perm) else v for v in found])
        best = max(best, float((mapped == truth).mean()))
    return best


class TestKMeans:
    def test_recovers_blobs(self, three_blobs):
        pts, truth = three_blobs
        result = kmeans(pts, 3, rng=np.random.default_rng(0))
        assert agreement(result.labels, truth) > 0.95

    def test_inertia_monotone(self, three_blobs):
        pts, _ = three_blobs
        result = kmeans(pts, 3, rng=np.random.default_rng(0))
        assert all(a >= b - 1e-9 for a, b in zip(result.history, result.history[1:]))

    def test_k_clamped_to_n(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0]])
        result = kmeans(pts, 10)
        assert result.centers.shape[0] == 2

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((0, 2)), 2)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((3, 2)), 0)

    def test_identical_points(self):
        pts = np.ones((10, 2))
        result = kmeans(pts, 3)
        assert result.inertia == pytest.approx(0.0)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros(5), 2)


class TestKMedoids:
    def _dist(self, pts):
        diff = pts[:, None, :] - pts[None, :, :]
        return np.sqrt((diff**2).sum(axis=2))

    def test_recovers_blobs(self, three_blobs):
        pts, truth = three_blobs
        result = kmedoids(self._dist(pts), 3, rng=np.random.default_rng(0))
        assert agreement(result.labels, truth) > 0.95

    def test_medoids_are_data_indices(self, three_blobs):
        pts, _ = three_blobs
        result = kmedoids(self._dist(pts), 3)
        assert all(0 <= m < len(pts) for m in result.medoids)

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            kmedoids(np.zeros((3, 4)), 2)

    def test_rejects_negative_distances(self):
        d = np.zeros((3, 3))
        d[0, 1] = -1
        with pytest.raises(ValueError):
            kmedoids(d, 2)

    def test_single_cluster(self):
        pts = np.random.default_rng(0).normal(size=(10, 2))
        result = kmedoids(self._dist(pts), 1)
        assert len(set(result.labels)) == 1

    def test_cost_is_total_distance_to_medoid(self, three_blobs):
        pts, _ = three_blobs
        d = self._dist(pts)
        result = kmedoids(d, 3)
        expected = d[np.arange(len(pts)), result.medoids[result.labels]].sum()
        assert result.cost == pytest.approx(expected)


class TestSoftKMeans:
    def test_responsibilities_sum_to_one(self, three_blobs):
        pts, _ = three_blobs
        result = soft_kmeans(pts, 3, rng=np.random.default_rng(0))
        assert np.allclose(result.responsibilities.sum(axis=1), 1.0)

    def test_hard_labels_recover_blobs(self, three_blobs):
        pts, truth = three_blobs
        result = soft_kmeans(pts, 3, beta=10.0, rng=np.random.default_rng(0))
        assert agreement(result.labels, truth) > 0.9

    def test_high_beta_approaches_hard(self, three_blobs):
        pts, _ = three_blobs
        result = soft_kmeans(pts, 3, beta=100.0, rng=np.random.default_rng(0))
        assert result.responsibilities.max(axis=1).mean() > 0.99

    def test_low_beta_is_soft(self, three_blobs):
        pts, _ = three_blobs
        result = soft_kmeans(pts, 3, beta=0.001, rng=np.random.default_rng(0))
        assert result.responsibilities.max(axis=1).mean() < 0.9

    def test_rejects_bad_beta(self):
        with pytest.raises(ValueError):
            soft_kmeans(np.zeros((3, 2)), 2, beta=0.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            soft_kmeans(np.zeros((0, 2)), 2)

"""Tests for the LSTM encoder-decoder mobility model."""

import numpy as np
import pytest

from repro.nn.losses import mse_loss
from repro.nn.module import clone_parameters
from repro.nn.optim import Adam
from repro.nn.seq2seq import LSTMEncoderDecoder
from repro.nn.tensor import Tensor


@pytest.fixture
def model(rng):
    return LSTMEncoderDecoder(input_size=2, hidden_size=8, seq_out=2, rng=rng)


class TestShapes:
    def test_forward_shape(self, model, rng):
        x = Tensor(rng.normal(size=(4, 5, 2)))
        assert model(x).shape == (4, 2, 2)

    def test_rejects_2d(self, model):
        with pytest.raises(ValueError):
            model(Tensor(np.zeros((5, 2))))

    def test_rejects_bad_seq_out(self, rng):
        with pytest.raises(ValueError):
            LSTMEncoderDecoder(seq_out=0, rng=rng)

    def test_predict_numpy_roundtrip(self, model, rng):
        single = rng.normal(size=(5, 2))
        out = model.predict(single)
        assert out.shape == (2, 2)
        batch = model.predict(single[None])
        assert batch.shape == (1, 2, 2)
        assert np.allclose(batch[0], out)


class TestBehaviour:
    def test_residual_head_keeps_output_near_input(self, rng):
        """With near-zero head weights, predictions stay near the last point."""
        model = LSTMEncoderDecoder(2, 8, seq_out=3, rng=rng)
        for name, p in model.named_parameters():
            if name.startswith("head."):
                p.data = p.data * 0.0
        x = rng.normal(size=(2, 4, 2))
        pred = model.predict(x)
        last = x[:, -1:, :]
        assert np.allclose(pred, np.repeat(last, 3, axis=1))

    def test_teacher_forcing_changes_later_steps_only(self, model, rng):
        x = Tensor(rng.normal(size=(2, 4, 2)))
        targets = Tensor(rng.normal(size=(2, 2, 2)))
        free = model(x).numpy()
        forced = model(x, targets=targets).numpy()
        assert np.allclose(free[:, 0], forced[:, 0])  # first step identical
        assert not np.allclose(free[:, 1], forced[:, 1])

    def test_functional_call_identity(self, model, rng):
        x = Tensor(rng.normal(size=(3, 4, 2)))
        overrides = clone_parameters(model)
        assert np.allclose(model(x).numpy(), model.functional_call(overrides, x).numpy())


class TestTraining:
    def test_learns_constant_displacement(self, rng):
        """The model should learn 'keep moving by +delta' quickly."""
        model = LSTMEncoderDecoder(2, 8, seq_out=1, rng=rng)
        delta = np.array([0.05, -0.02])
        starts = rng.uniform(0, 1, size=(64, 1, 2))
        steps = np.arange(5).reshape(1, 5, 1)
        x = starts + steps * delta
        y = x[:, -1:, :] + delta
        opt = Adam(model.parameters(), lr=0.01)
        first_loss = None
        for _ in range(60):
            opt.zero_grad()
            loss = mse_loss(model(Tensor(x)), Tensor(y))
            if first_loss is None:
                first_loss = loss.item()
            loss.backward()
            opt.step()
        final = mse_loss(model(Tensor(x)), Tensor(y)).item()
        assert final < first_loss * 0.2

"""Tests for optimisers and gradient clipping."""

import numpy as np
import pytest

from repro.nn.optim import SGD, Adam, clip_gradients
from repro.nn.tensor import Tensor


def quadratic_param(start=5.0):
    return Tensor(np.array([start]), requires_grad=True)


def quad_loss(p):
    return (p * p).sum()


class TestSGD:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_rejects_non_grad_param(self):
        with pytest.raises(ValueError):
            SGD([Tensor([1.0])], lr=0.1)

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            SGD([quadratic_param()], lr=0.0)

    def test_rejects_bad_momentum(self):
        with pytest.raises(ValueError):
            SGD([quadratic_param()], lr=0.1, momentum=1.0)

    def test_converges_on_quadratic(self):
        p = quadratic_param()
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            quad_loss(p).backward()
            opt.step()
        assert abs(p.data[0]) < 1e-4

    def test_momentum_accelerates(self):
        def run(momentum):
            p = quadratic_param()
            opt = SGD([p], lr=0.02, momentum=momentum)
            for _ in range(30):
                opt.zero_grad()
                quad_loss(p).backward()
                opt.step()
            return abs(p.data[0])

        assert run(0.9) < run(0.0)

    def test_skips_params_without_grad(self):
        p = quadratic_param()
        opt = SGD([p], lr=0.1)
        opt.step()  # no backward -> no grad -> no change
        assert p.data[0] == 5.0


class TestAdam:
    def test_converges_on_quadratic(self):
        p = quadratic_param()
        opt = Adam([p], lr=0.3)
        for _ in range(200):
            opt.zero_grad()
            quad_loss(p).backward()
            opt.step()
        assert abs(p.data[0]) < 1e-3

    def test_rejects_bad_betas(self):
        with pytest.raises(ValueError):
            Adam([quadratic_param()], betas=(1.0, 0.999))

    def test_bias_correction_first_step(self):
        # After one step with grad g, Adam moves by ~lr * sign(g).
        p = quadratic_param(1.0)
        opt = Adam([p], lr=0.1)
        opt.zero_grad()
        quad_loss(p).backward()
        opt.step()
        assert p.data[0] == pytest.approx(1.0 - 0.1, abs=1e-6)


class TestClipGradients:
    def test_no_clip_below_threshold(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        (p * 2).sum().backward()
        norm = clip_gradients([p], max_norm=10.0)
        assert norm == pytest.approx(2.0)
        assert np.allclose(p.grad, [2.0])

    def test_clips_above_threshold(self):
        p = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        (p * p).sum().backward()  # grad = (6, 8), norm 10
        clip_gradients([p], max_norm=5.0)
        assert np.linalg.norm(p.grad) == pytest.approx(5.0, rel=1e-6)

    def test_handles_missing_grads(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        assert clip_gradients([p], max_norm=1.0) == 0.0

    def test_rejects_bad_norm(self):
        with pytest.raises(ValueError):
            clip_gradients([], max_norm=0.0)


class TestInPlaceUpdates:
    """The optimisers update parameter buffers in place (satellite of the
    fast-path PR): the array object a parameter holds must be the same
    object across steps, so views and optimiser slot states stay valid."""

    def _run_steps(self, opt, p, steps=3):
        for _ in range(steps):
            opt.zero_grad()
            quad_loss(p).backward()
            opt.step()

    def test_sgd_preserves_buffer_identity(self):
        p = quadratic_param()
        buf = p.data
        self._run_steps(SGD([p], lr=0.1), p)
        assert p.data is buf
        assert buf[0] != 5.0  # and it actually moved

    def test_sgd_momentum_preserves_buffer_identity(self):
        p = quadratic_param()
        buf = p.data
        self._run_steps(SGD([p], lr=0.1, momentum=0.9), p)
        assert p.data is buf

    def test_adam_preserves_buffer_identity(self):
        p = quadratic_param()
        buf = p.data
        self._run_steps(Adam([p], lr=0.1), p)
        assert p.data is buf
        assert buf[0] != 5.0

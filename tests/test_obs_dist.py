"""Distributed observability: context, spools, merge, and attribution.

The contract under test (``repro.obs.dist``): a traced sharded run
spools per-process telemetry that merges into *one* timeline — worker
command spans parented under the coordinator spans that issued them —
while the untraced path stays byte-identical (3-tuple command frames,
unchanged ``result_signature``).  Edge cases ride along: truncated and
empty spools, clock skew, and spans from replayed command logs after a
crash.
"""

import json
import os
import signal

import pytest

from repro import obs
from repro.assignment.ppi import ppi_assign
from repro.dist import DistConfig, ShardedEngine, component_candidate_assign
from repro.dist.backend import ProcessBackend
from repro.obs import MemorySink
from repro.obs.dist import (
    CMD_SPAN_PREFIX,
    JOB_SPAN,
    ROUND_SPAN,
    SOLVE_SPAN,
    DistObsConfig,
    align_spool,
    attribute_rounds,
    clock_offset,
    current_context,
    list_spools,
    merge_spools,
    render_distributed_report,
    replay_seconds,
)
from repro.obs.metrics import labelled, split_labels
from repro.obs.openmetrics import render_openmetrics
from repro.obs.report import aggregate
from repro.serve import (
    DeadReckoningProvider,
    ServeConfig,
    ServeEngine,
    StreamConfig,
    make_task_stream,
    make_worker_fleet,
    result_signature,
)


def scenario(seed, n_workers=30, n_tasks=60, t_end=60.0):
    cfg = StreamConfig(n_workers=n_workers, n_tasks=n_tasks, t_end=t_end, seed=seed)
    return make_task_stream(cfg), make_worker_fleet(cfg)


def run_reference(tasks, workers, seed):
    engine = ServeEngine(
        workers,
        DeadReckoningProvider(seed=seed),
        ServeConfig(),
        assign_fn=ppi_assign,
        candidate_assign_fn=component_candidate_assign("ppi"),
    )
    return engine.run(tasks, 0.0, 60.0)


def run_sharded(tasks, workers, seed, shards=2, obs_cfg=None, provider=None,
                backend="shard_server", record=False, t_end=60.0):
    engine = ShardedEngine(
        workers,
        provider if provider is not None else DeadReckoningProvider(seed=seed),
        ServeConfig(),
        assign_fn=ppi_assign,
        candidate_assign_fn=component_candidate_assign("ppi"),
        dist=DistConfig(backend=backend, shards=shards, workers=2, obs=obs_cfg),
    )
    if provider is not None and hasattr(provider, "engine"):
        provider.engine = engine
    sink = MemorySink()
    try:
        if record:
            with obs.recording(sink):
                result = engine.run(tasks, 0.0, t_end)
        else:
            result = engine.run(tasks, 0.0, t_end)
    finally:
        engine.close()
    return result, engine, sink.records


# ----------------------------------------------------------------------
# label-style metric names
# ----------------------------------------------------------------------
class TestLabelledNames:
    def test_roundtrip(self):
        name = labelled("dist.shard.events", shard=3)
        assert name == "dist.shard.events{shard=3}"
        assert split_labels(name) == ("dist.shard.events", {"shard": "3"})

    def test_labels_sorted(self):
        assert labelled("m", b=1, a=2) == "m{a=2,b=1}"

    def test_unlabelled_passthrough(self):
        assert split_labels("serve.queue.pending") == ("serve.queue.pending", {})

    def test_reserved_characters_rejected(self):
        with pytest.raises(ValueError):
            labelled("m", shard="a,b")
        with pytest.raises(ValueError):
            labelled("m{x}", shard=1)

    def test_openmetrics_groups_label_families(self):
        snapshot = {
            "counters": {
                labelled("dist.shard.events", shard=0): 5.0,
                labelled("dist.shard.events", shard=1): 7.0,
            },
            "gauges": {labelled("dist.shard.busy_s", shard=1): 0.25},
            "histograms": {},
        }
        text = render_openmetrics(snapshot)
        # One family declaration, one labelled series per shard.
        assert text.count("# TYPE repro_dist_shard_events counter") == 1
        assert 'repro_dist_shard_events_total{shard="0"} 5' in text
        assert 'repro_dist_shard_events_total{shard="1"} 7' in text
        assert 'repro_dist_shard_busy_s{shard="1"} 0.25' in text


# ----------------------------------------------------------------------
# context propagation
# ----------------------------------------------------------------------
class TestCurrentContext:
    def test_none_without_recorder(self):
        assert current_context() is None

    def test_carries_trace_and_innermost_span(self):
        with obs.recording(MemorySink()) as rec:
            assert current_context()["parent"] is None
            with obs.span("outer"), obs.span("inner") as inner:
                ctx = current_context()
                assert ctx["trace"] == rec.trace_id
                assert ctx["parent"] == inner.span_id
                assert "replay" not in ctx
                assert current_context(replay=True)["replay"] is True


# ----------------------------------------------------------------------
# end-to-end: sharded run -> spools -> one merged timeline
# ----------------------------------------------------------------------
class TestMergedTimeline:
    @pytest.fixture(scope="class")
    def traced_run(self, tmp_path_factory):
        spool_dir = tmp_path_factory.mktemp("spools")
        # A square dense extent so the sticky stripe layout gives every
        # shard members (and thus candidate builds) from round one.
        stream = StreamConfig(n_workers=40, n_tasks=80, t_end=30.0,
                              width_km=20.0, height_km=20.0, seed=1)
        tasks, workers = make_task_stream(stream), make_worker_fleet(stream)
        cfg = DistObsConfig(spool_dir=str(spool_dir), profile=True,
                            profile_every=2, profile_top_n=5)
        result, engine, records = run_sharded(
            tasks, workers, 1, shards=2, obs_cfg=cfg, record=True, t_end=30.0
        )
        merged = merge_spools(records, spool_dir)
        return result, engine, records, merged, spool_dir

    def test_one_spool_per_shard(self, traced_run):
        *_, spool_dir = traced_run
        spools = list_spools(spool_dir)
        assert len(spools) == 2
        assert {p.name.split("-")[1] for p in spools} == {"shard0", "shard1"}

    def test_worker_spans_parent_under_coordinator_spans(self, traced_run):
        _, _, records, merged, _ = traced_run
        coordinator_ids = {r["span_id"] for r in records if r.get("type") == "span"}
        solve_ids = {r["span_id"] for r in records
                     if r.get("type") == "span" and r["name"] == SOLVE_SPAN}
        worker = [r for r in merged if r.get("type") == "span" and "process" in r]
        assert worker, "no worker spans made it into the merge"
        # Every shard process contributed spans to the timeline.
        assert {r["process"].split("-")[0] for r in worker} == {"shard0", "shard1"}
        top = [r for r in worker if str(r["name"]).startswith(CMD_SPAN_PREFIX)]
        assert top and all(r["parent_id"] in coordinator_ids for r in top)
        # Candidate builds specifically land inside the solve window.
        builds = [r for r in top if r["name"] == CMD_SPAN_PREFIX + "build"]
        assert builds and all(r["parent_id"] in solve_ids for r in builds)

    def test_aggregate_consumes_merged_timeline(self, traced_run):
        _, _, _, merged, _ = traced_run
        report = aggregate(merged)
        paths = set(report.stats)
        assert any(p[-1].startswith(CMD_SPAN_PREFIX) and ROUND_SPAN in p for p in paths)

    def test_rounds_attributed_with_stragglers(self, traced_run):
        result, _, _, merged, _ = traced_run
        rounds = attribute_rounds(merged)
        assert len(rounds) == result.n_batches
        busy_rounds = [a for a in rounds if a.shard_busy_s]
        assert busy_rounds, "no round collected worker busy time"
        for att in busy_rounds:
            assert att.straggler in (0, 1)
            assert att.critical_busy_s <= att.solve_s + 0.05
            assert att.ipc_wait_s(att.straggler) >= 0.0

    def test_report_renders_rounds_and_critical_path(self, traced_run):
        _, _, _, merged, _ = traced_run
        text = render_distributed_report(merged)
        assert "per-shard totals" in text
        assert "critical path" in text
        assert "straggler" in text

    def test_profile_hotspots_on_cadence(self, traced_run):
        result, engine, *_ = traced_run
        hotspots = engine.profile_hotspots
        assert hotspots
        profiled_rounds = {h["round"] for h in hotspots}
        # Every other round (profile_every=2), both shards each time.
        assert all(r % 2 == 0 for r in profiled_rounds)
        assert {h["shard"] for h in hotspots} == {0, 1}
        for entry in hotspots:
            assert len(entry["top"]) <= 5
            assert all({"function", "ncalls", "cumtime_s"} <= set(row) for row in entry["top"])

    def test_labelled_shard_metrics_and_compat_aliases(self, traced_run):
        _, _, records, *_ = traced_run
        metrics = next(r for r in records if r.get("type") == "metrics")
        counters, gauges = metrics["counters"], metrics["gauges"]
        assert labelled("dist.shard.events", shard=0) in counters
        # Deprecated dotted alias kept in lockstep.
        assert counters["dist.shard.0.events"] == counters[
            labelled("dist.shard.events", shard=0)
        ]
        assert labelled("dist.shard.busy_s", shard=0) in gauges
        assert "dist.shard.straggler" in gauges

    def test_spools_are_valid_jsonl_with_header(self, traced_run):
        *_, spool_dir = traced_run
        for path in list_spools(spool_dir):
            lines = [json.loads(line) for line in path.read_text().splitlines()]
            assert lines[0]["type"] == "spool_start"
            assert lines[0]["role"] == "shard"
            assert any(r.get("type") == "span" for r in lines)


class TestProcessBackendJobs:
    def test_pool_jobs_spool_job_spans(self, tmp_path):
        cfg = DistObsConfig(spool_dir=str(tmp_path))
        backend = ProcessBackend(workers=2, obs=cfg)
        sink = MemorySink()
        try:
            with obs.recording(sink):
                with obs.span("driver") as driver:
                    out = backend.map_ordered(_square, [1, 2, 3])
                    parent = driver.span_id
        finally:
            backend.close()
        assert out == [1, 4, 9]
        merged = merge_spools(sink.records, tmp_path)
        jobs = [r for r in merged if r.get("type") == "span" and r["name"] == JOB_SPAN]
        assert len(jobs) == 3
        assert all(r["parent_id"] == parent for r in jobs)

    def test_untraced_pool_leaves_no_spools(self, tmp_path):
        cfg = DistObsConfig(spool_dir=str(tmp_path))
        backend = ProcessBackend(workers=2, obs=cfg)
        try:
            assert backend.map_ordered(_square, [2, 3]) == [4, 9]
        finally:
            backend.close()
        assert list_spools(tmp_path) == []


def _square(x):
    return x * x


# ----------------------------------------------------------------------
# disabled-path parity
# ----------------------------------------------------------------------
class TestDisabledPathParity:
    def test_signature_identical_with_and_without_obs(self, tmp_path):
        tasks, workers = scenario(6)
        ref = result_signature(run_reference(tasks, workers, 6))
        plain, *_ = run_sharded(tasks, workers, 6)
        cfg = DistObsConfig(spool_dir=str(tmp_path))
        traced, *_ = run_sharded(tasks, workers, 6, obs_cfg=cfg, record=True)
        assert result_signature(plain) == ref
        assert result_signature(traced) == ref

    def test_untraced_frames_stay_three_tuples(self):
        """Without a recorder no context is appended — the wire format
        (and thus replay logs and signatures) is bit-identical."""
        from repro.dist.server import ShardServerHandle

        class _Tap:
            def __init__(self, conn):
                self.conn, self.sent = conn, []

            def send(self, frame):
                self.sent.append(frame)
                self.conn.send(frame)

            def __getattr__(self, name):
                return getattr(self.conn, name)

        handle = ShardServerHandle(0)
        try:
            assert handle.request("ping") == "pong"  # spawn the server
            tap = handle._conn = _Tap(handle._conn)
            assert handle.request("ping") == "pong"
            handle.request("apply", {"tasks_add": [], "snaps_add": []})
            handle._conn = tap.conn
        finally:
            handle.close()
        assert tap.sent and all(len(frame) == 3 for frame in tap.sent)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DistObsConfig(profile=True)  # profiling needs a spool dir
        with pytest.raises(ValueError):
            DistObsConfig(spool_dir="x", profile_every=0)
        assert not DistObsConfig().enabled
        assert DistObsConfig(spool_dir="x").enabled


# ----------------------------------------------------------------------
# merge edge cases
# ----------------------------------------------------------------------
def spool_span(span_id, name="dist.cmd.build", parent=None, remote_parent=None,
               start=100.0, dur=0.5, sent=None, recv=None, **attrs):
    record_attrs = dict(attrs)
    if remote_parent is not None:
        record_attrs["remote_parent"] = remote_parent
    if sent is not None:
        record_attrs["sent_unix"] = sent
    if recv is not None:
        record_attrs["recv_unix"] = recv
    return {
        "type": "span", "name": name, "span_id": span_id, "parent_id": parent,
        "depth": 0 if parent is None else 1, "start_unix": start,
        "duration_s": dur, "attrs": record_attrs, "error": None,
    }


class TestMergeEdgeCases:
    def test_truncated_spool_tail_is_skipped(self, tmp_path):
        path = tmp_path / "spool-shard0-1.jsonl"
        good = spool_span(1, remote_parent=9, shard=0)
        path.write_text(
            json.dumps({"type": "spool_start", "pid": 1, "role": "shard",
                        "ident": 0, "trace_id": "t", "start_unix": 100.0})
            + "\n" + json.dumps(good) + "\n"
            + json.dumps(spool_span(2))[:25]  # killed mid-write
        )
        with pytest.warns(UserWarning):
            merged = merge_spools([], tmp_path)
        spans = [r for r in merged if r.get("type") == "span"]
        assert len(spans) == 1
        assert spans[0]["span_id"] == "shard0-1:1"
        assert spans[0]["parent_id"] == 9

    def test_empty_spool_merges_to_nothing(self, tmp_path):
        (tmp_path / "spool-shard1-2.jsonl").write_text("")
        assert merge_spools([], tmp_path) == []

    def test_clock_skew_aligned_by_min_one_way_delta(self):
        # Worker clock runs 10s ahead; pipe latencies 0.01s and 0.3s.
        records = [
            spool_span(1, start=110.01, sent=100.0, recv=110.01, shard=0),
            spool_span(2, start=135.30, sent=125.0, recv=135.30, shard=0),
        ]
        assert clock_offset(records) == pytest.approx(10.01)
        aligned = align_spool(records, source="shard0-1")
        starts = [r["start_unix"] for r in aligned]
        assert starts[0] == pytest.approx(100.0)  # lands on coordinator clock
        assert starts[1] == pytest.approx(125.29)

    def test_local_hierarchy_survives_namespacing(self):
        records = [
            spool_span(1, remote_parent=42),
            spool_span(2, name="inner.work", parent=1),
        ]
        aligned = align_spool(records, source="p9")
        by_id = {r["span_id"]: r for r in aligned}
        assert by_id["p9:1"]["parent_id"] == 42
        assert by_id["p9:2"]["parent_id"] == "p9:1"
        assert "remote_parent" not in by_id["p9:1"]["attrs"]

    def test_worker_metrics_do_not_shadow_coordinator_snapshot(self, tmp_path):
        path = tmp_path / "spool-proc-3.jsonl"
        path.write_text(json.dumps({"type": "metrics", "counters": {"x": 1.0}}) + "\n")
        coordinator = [{"type": "metrics", "counters": {"serve.assigned": 5.0}}]
        merged = merge_spools(coordinator, tmp_path)
        report = aggregate(merged)
        assert report.metrics["counters"] == {"serve.assigned": 5.0}


# ----------------------------------------------------------------------
# crash recovery: replayed commands are visible in the timeline
# ----------------------------------------------------------------------
class _CrashingProvider:
    """Wraps a snapshot provider; SIGKILLs one shard server mid-run."""

    def __init__(self, inner, kill_at_call):
        self.inner = inner
        self.kill_at_call = kill_at_call
        self.calls = 0
        self.engine = None
        self.killed = False

    def __call__(self, worker, t):
        self.calls += 1
        if not self.killed and self.calls >= self.kill_at_call and self.engine is not None:
            handle = self.engine.backend.handles[0]
            if handle._proc is not None and handle._proc.is_alive():
                os.kill(handle._proc.pid, signal.SIGKILL)
                self.killed = True
        return self.inner(worker, t)


class TestCrashReplayTelemetry:
    def test_replayed_commands_marked_and_counted(self, tmp_path):
        tasks, workers = scenario(5)
        ref = result_signature(run_reference(tasks, workers, 5))
        provider = _CrashingProvider(DeadReckoningProvider(seed=5), kill_at_call=200)
        cfg = DistObsConfig(spool_dir=str(tmp_path))
        result, engine, records = run_sharded(
            tasks, workers, 5, shards=3, obs_cfg=cfg, provider=provider, record=True
        )
        assert provider.killed, "crash was never injected; raise kill_at_call"
        assert engine.backend.total_restarts >= 1
        assert result_signature(result) == ref
        # The respawned pid opened a fresh spool next to the old one.
        assert len(list_spools(tmp_path)) >= 4
        merged = merge_spools(records, tmp_path)
        replayed = [r for r in merged if r.get("type") == "span"
                    and (r.get("attrs") or {}).get("replay")]
        assert replayed, "replayed commands left no marked spans"
        total_replay = replay_seconds(merged)
        assert total_replay > 0.0
        # Replay cost attributed inside rounds (the crash delays that
        # round's solve) never exceeds the total replay time.
        attributed = sum(
            sum(att.shard_replay_s.values()) for att in attribute_rounds(merged)
        )
        assert attributed <= total_replay + 1e-9

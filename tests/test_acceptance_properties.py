"""Property tests for the acceptance model — the simulator's ground truth."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geo.point import Point
from repro.geo.trajectory import Trajectory, TrajectoryPoint
from repro.sc.acceptance import evaluate_acceptance, oracle_future_route
from repro.sc.entities import SpatialTask, Worker


@st.composite
def random_worker(draw):
    rng = np.random.default_rng(draw(st.integers(0, 100_000)))
    n = draw(st.integers(2, 8))
    xy = rng.uniform(0, 10, size=(n, 2))
    times = np.sort(rng.uniform(0, 100, size=n))
    times += np.arange(n) * 1e-3  # strict monotonicity
    return Worker(
        worker_id=0,
        routine=Trajectory(
            TrajectoryPoint(Point(float(x), float(y)), float(t)) for (x, y), t in zip(xy, times)
        ),
        detour_budget_km=float(draw(st.floats(0.5, 8.0))),
        speed_km_per_min=float(draw(st.floats(0.2, 1.5))),
    )


@st.composite
def random_task(draw):
    rng = np.random.default_rng(draw(st.integers(0, 100_000)))
    release = float(draw(st.floats(0.0, 50.0)))
    return SpatialTask(
        task_id=0,
        location=Point(*rng.uniform(0, 10, size=2)),
        release_time=release,
        deadline=release + float(draw(st.floats(5.0, 60.0))),
    )


class TestAcceptanceProperties:
    @settings(max_examples=60, deadline=None)
    @given(worker=random_worker(), task=random_task(), t_frac=st.floats(0, 1))
    def test_accepted_implies_constraints_met(self, worker, task, t_frac):
        """Definition 2's contract: acceptance ⇒ detour within budget and
        arrival before the deadline."""
        t = worker.routine.start_time + t_frac * worker.routine.duration()
        decision = evaluate_acceptance(worker, task, t)
        if decision.accepted:
            assert decision.detour_km <= worker.detour_budget_km + 1e-9
            assert decision.arrival_time <= task.deadline + 1e-9
            assert decision.arrival_time >= t - 1e-9

    @settings(max_examples=60, deadline=None)
    @given(worker=random_worker(), task=random_task())
    def test_bigger_budget_never_flips_to_reject(self, worker, task):
        """Acceptance is monotone in the detour budget."""
        t = worker.routine.start_time
        small = evaluate_acceptance(worker, task, t)
        bigger = Worker(
            worker_id=1,
            routine=worker.routine,
            detour_budget_km=worker.detour_budget_km * 2 + 1.0,
            speed_km_per_min=worker.speed_km_per_min,
        )
        big = evaluate_acceptance(bigger, task, t)
        if small.accepted:
            assert big.accepted

    @settings(max_examples=40, deadline=None)
    @given(worker=random_worker(), task=random_task())
    def test_detour_is_best_feasible_option(self, worker, task):
        """The decision's detour equals the brute-force minimum over all
        deadline-feasible branch options."""
        t = worker.routine.start_time
        decision = evaluate_acceptance(worker, task, t)
        here = worker.routine.position_at(t)
        future = [p for p in worker.routine if p.time > t]
        points = [(here, t)] + [(p.location, p.time) for p in future]
        best = np.inf
        for k, (loc, when) in enumerate(points):
            dist = loc.distance_to(task.location)
            if when + dist / worker.speed_km_per_min > task.deadline:
                continue
            if k + 1 < len(points):
                nxt = points[k + 1][0]
                detour = dist + task.location.distance_to(nxt) - loc.distance_to(nxt)
            else:
                detour = 2 * dist
            best = min(best, max(detour, 0.0))
        if np.isfinite(best):
            assert decision.detour_km == pytest.approx(best, abs=1e-9)
        else:
            assert not decision.accepted

    @settings(max_examples=40, deadline=None)
    @given(worker=random_worker(), horizon=st.integers(1, 6), t_frac=st.floats(0, 1))
    def test_oracle_route_is_causal_and_bounded(self, worker, horizon, t_frac):
        t = worker.routine.start_time + t_frac * worker.routine.duration()
        xy, times = oracle_future_route(worker, t, horizon)
        assert 1 <= len(xy) <= horizon + 1
        assert times[0] == pytest.approx(t)
        assert all(b > a for a, b in zip(times, times[1:]))

"""Tests for predictor serialization round-trips."""

import numpy as np
import pytest

from repro.data import PortoConfig, build_learning_tasks, generate_porto_workers
from repro.data.didi import historical_task_locations
from repro.meta.maml import MAMLConfig
from repro.nn.tensor import Tensor
from repro.pipeline.config import PredictionConfig
from repro.pipeline.io import load_predictor, save_predictor
from repro.pipeline.training import train_predictor


@pytest.fixture(scope="module")
def trained():
    city, workers = generate_porto_workers(PortoConfig(n_workers=5, n_train_days=3, seed=21))
    hist = historical_task_locations(city, 80, seed=22)
    learning = build_learning_tasks({w.worker_id: w.history for w in workers}, city, 5, 1)
    cfg = PredictionConfig(
        algorithm="maml",
        loss="mse",
        hidden_size=8,
        fine_tune_optimizer="sgd",
        fine_tune_steps=3,
        fine_tune_lr=0.1,
        maml=MAMLConfig(iterations=2, meta_batch=2, inner_steps=1, support_batch=8),
    )
    predictor = train_predictor(learning, city, cfg, hist)
    return city, workers, predictor


class TestRoundTrip:
    def test_predictions_identical_after_reload(self, trained, tmp_path):
        city, workers, predictor = trained
        save_predictor(predictor, tmp_path / "snapshot")
        loaded = load_predictor(tmp_path / "snapshot", city=city)
        x = np.random.default_rng(0).uniform(0, 1, size=(3, 5, 2))
        for wid in predictor.worker_params:
            before = predictor.model_for(wid)(Tensor(x)).numpy()
            after = loaded.model_for(wid)(Tensor(x)).numpy()
            assert np.allclose(before, after)

    def test_matching_rates_preserved(self, trained, tmp_path):
        city, _, predictor = trained
        save_predictor(predictor, tmp_path / "snapshot")
        loaded = load_predictor(tmp_path / "snapshot", city=city)
        assert loaded.matching_rates == pytest.approx(predictor.matching_rates)

    def test_config_preserved(self, trained, tmp_path):
        city, _, predictor = trained
        save_predictor(predictor, tmp_path / "snapshot")
        loaded = load_predictor(tmp_path / "snapshot")
        assert loaded.config.algorithm == predictor.config.algorithm
        assert loaded.config.hidden_size == predictor.config.hidden_size

    def test_grid_reconstructed_without_city(self, trained, tmp_path):
        _, _, predictor = trained
        save_predictor(predictor, tmp_path / "snapshot")
        loaded = load_predictor(tmp_path / "snapshot")
        assert loaded.city.grid.rows == predictor.city.grid.rows
        assert loaded.city.grid.width_km == predictor.city.grid.width_km

    def test_version_checked(self, trained, tmp_path):
        import json

        _, _, predictor = trained
        save_predictor(predictor, tmp_path / "snapshot")
        meta_path = (tmp_path / "snapshot").with_suffix(".json")
        meta = json.loads(meta_path.read_text())
        meta["format_version"] = 999
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(ValueError):
            load_predictor(tmp_path / "snapshot")

    def test_loaded_predictor_serves_assignment(self, trained, tmp_path):
        """A reloaded snapshot must be usable by the online stage."""
        from repro.data import DidiConfig, generate_didi_tasks
        from repro.data.workload import Workload
        from repro.pipeline import AssignmentConfig, run_assignment

        city, workers, predictor = trained
        save_predictor(predictor, tmp_path / "snapshot")
        loaded = load_predictor(tmp_path / "snapshot", city=city)
        tasks = generate_didi_tasks(city, DidiConfig(n_tasks=30, seed=23))
        wl = Workload("porto-didi", city, workers, tasks)
        result = run_assignment(wl, "ppi", AssignmentConfig(batch_window=5.0), predictor=loaded)
        assert result.n_tasks == 30

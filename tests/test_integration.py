"""End-to-end integration tests spanning the whole pipeline."""

import numpy as np
import pytest

from repro.meta.maml import MAMLConfig
from repro.pipeline import (
    AssignmentConfig,
    PredictionConfig,
    WorkloadSpec,
    evaluate_prediction,
    make_workload,
    make_workload1,
    make_workload2,
    run_assignment,
    train_predictor,
)


def tiny_config(algorithm="gttaml", loss="task_oriented"):
    return PredictionConfig(
        algorithm=algorithm,
        loss=loss,
        hidden_size=8,
        fine_tune_steps=10,
        fine_tune_lr=0.02,
        maml=MAMLConfig(iterations=3, meta_batch=2, inner_steps=2, support_batch=8),
    )


@pytest.fixture(scope="module")
def pipeline_artifacts():
    workload, learning = make_workload1(WorkloadSpec(n_workers=8, n_tasks=80, n_train_days=4, seed=9))
    predictor = train_predictor(
        learning, workload.city, tiny_config(), workload.historical_tasks_xy
    )
    return workload, learning, predictor


class TestEndToEnd:
    def test_prediction_report_is_finite(self, pipeline_artifacts):
        workload, _, predictor = pipeline_artifacts
        report = evaluate_prediction(predictor, workload.workers)
        for value in report.as_row().values():
            assert np.isfinite(value)

    def test_all_algorithms_conserve_tasks(self, pipeline_artifacts):
        workload, _, predictor = pipeline_artifacts
        cfg = AssignmentConfig(batch_window=5.0)
        for algorithm in ("ppi", "km", "ub", "lb"):
            result = run_assignment(workload, algorithm, cfg, predictor=predictor)
            assert result.n_completed + result.n_expired == result.n_tasks
            assert result.n_rejections <= result.n_assignments

    def test_completed_tasks_really_exist(self, pipeline_artifacts):
        workload, _, predictor = pipeline_artifacts
        result = run_assignment(workload, "ppi", AssignmentConfig(batch_window=5.0), predictor=predictor)
        task_ids = {t.task_id for t in workload.tasks}
        assert result.completed_task_ids <= task_ids

    def test_ub_dominates_lb_on_average(self):
        """Oracle knowledge should beat no knowledge across seeds."""
        ub_total, lb_total = 0.0, 0.0
        for seed in (3, 4, 5):
            workload, _ = make_workload1(
                WorkloadSpec(n_workers=10, n_tasks=200, n_train_days=2, seed=seed)
            )
            cfg = AssignmentConfig()
            ub_total += run_assignment(workload, "ub", cfg).metrics().completion_ratio
            lb_total += run_assignment(workload, "lb", cfg).metrics().completion_ratio
        assert ub_total > lb_total

    def test_detour_budget_zero_prevents_everything(self):
        workload, _ = make_workload1(WorkloadSpec(n_workers=6, n_tasks=50, detour_km=0.0, seed=2))
        result = run_assignment(workload, "lb", AssignmentConfig())
        # With a zero detour budget nothing within min(d/2, d^t)=0 exists.
        assert result.n_completed == 0

    def test_workload2_pipeline_runs(self):
        workload, learning = make_workload2(WorkloadSpec(n_workers=8, n_tasks=60, n_train_days=3, seed=9))
        predictor = train_predictor(
            learning, workload.city, tiny_config("maml", "mse"), workload.historical_tasks_xy
        )
        result = run_assignment(workload, "ppi", AssignmentConfig(batch_window=5.0), predictor=predictor)
        assert result.n_tasks == 60

    def test_make_workload_by_name(self):
        wl, learning = make_workload("porto-didi", WorkloadSpec(n_workers=4, n_tasks=20, n_train_days=2))
        assert wl.name == "porto-didi"
        with pytest.raises(ValueError):
            make_workload("nope")

    def test_acceptance_consistency_with_metrics(self, pipeline_artifacts):
        """Every recorded detour must respect the detour budget."""
        workload, _, predictor = pipeline_artifacts
        result = run_assignment(workload, "ppi", AssignmentConfig(batch_window=5.0), predictor=predictor)
        budget = max(w.detour_budget_km for w in workload.workers)
        assert all(d <= budget + 1e-9 for d in result.detours_km)

    def test_deterministic_given_seeds(self):
        def run_once():
            workload, learning = make_workload1(
                WorkloadSpec(n_workers=6, n_tasks=50, n_train_days=3, seed=13)
            )
            predictor = train_predictor(
                learning, workload.city, tiny_config("maml", "mse"), workload.historical_tasks_xy
            )
            result = run_assignment(
                workload, "km", AssignmentConfig(batch_window=5.0), predictor=predictor
            )
            return result.metrics()

        a, b = run_once(), run_once()
        assert a.completion_ratio == b.completion_ratio
        assert a.rejection_ratio == b.rejection_ratio
        assert a.worker_cost_km == pytest.approx(b.worker_cost_km)

"""Tests for the observability core: metrics, spans, recorder, sinks."""

import json
import time

import numpy as np
import pytest

from repro import obs
from repro.obs import (
    NOOP,
    NULL_SPAN,
    Counter,
    Gauge,
    Histogram,
    JsonlSink,
    MemorySink,
    MetricsRegistry,
    TraceRecorder,
    percentile,
    read_trace,
)


class TestPercentile:
    def test_matches_numpy_linear_interpolation(self, rng):
        values = list(rng.normal(size=101))
        for q in (0.0, 25.0, 50.0, 90.0, 99.0, 100.0):
            assert percentile(values, q) == pytest.approx(np.percentile(values, q))

    def test_single_value(self):
        assert percentile([7.5], 90.0) == 7.5

    def test_rejects_empty_and_bad_q(self):
        with pytest.raises(ValueError):
            percentile([], 50.0)
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)


class TestMetrics:
    def test_counter_accumulates_and_rejects_negative(self):
        c = Counter()
        c.add()
        c.add(4.0)
        assert c.value == 5.0
        with pytest.raises(ValueError):
            c.add(-1.0)

    def test_gauge_last_write_wins(self):
        g = Gauge()
        g.set(3.0)
        g.set(1.0)
        assert g.value == 1.0
        assert g.updates == 2

    def test_histogram_summary(self):
        h = Histogram()
        for v in range(1, 101):
            h.observe(float(v))
        s = h.summary()
        assert s["count"] == 100
        assert s["min"] == 1.0 and s["max"] == 100.0
        assert s["mean"] == pytest.approx(50.5)
        assert s["p50"] == pytest.approx(np.percentile(h.values, 50))
        assert s["p90"] == pytest.approx(np.percentile(h.values, 90))
        assert s["p99"] == pytest.approx(np.percentile(h.values, 99))

    def test_empty_histogram_summary(self):
        assert Histogram().summary() == {"count": 0}

    def test_registry_kind_uniqueness(self):
        reg = MetricsRegistry()
        reg.counter("x.steps").add(2)
        with pytest.raises(ValueError):
            reg.gauge("x.steps")
        with pytest.raises(ValueError):
            reg.histogram("x.steps")
        # Same kind is idempotent.
        assert reg.counter("x.steps").value == 2

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("a").add(3)
        reg.gauge("b").set(1.5)
        reg.histogram("c").observe(2.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"a": 3.0}
        assert snap["gauges"] == {"b": 1.5}
        assert snap["histograms"]["c"]["count"] == 1


class TestNoopRecorder:
    def test_default_recorder_is_noop(self):
        assert obs.get_recorder() is NOOP
        assert not obs.enabled()

    def test_free_functions_are_silent(self):
        # No recorder installed: spans are the shared null span, metrics vanish.
        with obs.span("anything", x=1) as s:
            assert s is NULL_SPAN
            assert s.set(y=2) is NULL_SPAN
        obs.counter("nope")
        obs.gauge("nope2", 1.0)
        obs.histogram("nope3", 1.0)
        assert obs.get_recorder() is NOOP


class TestTraceRecorder:
    def test_span_nesting_ids_and_depth(self):
        sink = MemorySink()
        with obs.recording(sink):
            with obs.span("outer", stage="a"):
                with obs.span("inner"):
                    pass
                with obs.span("inner"):
                    pass
        spans = {(_r["name"], _r["span_id"]): _r for _r in sink.spans}
        assert sink.span_names() == ["inner", "inner", "outer"]  # close order
        outer = next(r for r in sink.spans if r["name"] == "outer")
        inners = [r for r in sink.spans if r["name"] == "inner"]
        assert outer["parent_id"] is None and outer["depth"] == 0
        assert all(r["parent_id"] == outer["span_id"] for r in inners)
        assert all(r["depth"] == 1 for r in inners)
        assert len({r["span_id"] for r in spans.values()}) == 3

    def test_span_times_the_block(self):
        sink = MemorySink()
        with obs.recording(sink):
            with obs.span("sleepy"):
                time.sleep(0.02)
        record = sink.spans[0]
        assert record["duration_s"] >= 0.015
        assert record["start_unix"] > 0

    def test_set_merges_attrs(self):
        sink = MemorySink()
        with obs.recording(sink):
            with obs.span("s", a=1) as span:
                span.set(b=2)
        assert sink.spans[0]["attrs"] == {"a": 1, "b": 2}

    def test_exception_recorded_and_reraised(self):
        sink = MemorySink()
        with pytest.raises(KeyError):
            with obs.recording(sink):
                with obs.span("boom"):
                    raise KeyError("x")
        assert sink.spans[0]["error"] == "KeyError"
        # The recorder was still finished: metrics record present, recorder restored.
        assert sink.metrics is not None
        assert obs.get_recorder() is NOOP

    def test_out_of_order_close_raises(self):
        rec = TraceRecorder(MemorySink())
        a = rec.span("a")
        b = rec.span("b")
        a.__enter__()
        b.__enter__()
        with pytest.raises(RuntimeError, match="out of order"):
            a.__exit__(None, None, None)

    def test_finish_strict_rejects_open_spans(self):
        rec = TraceRecorder(MemorySink())
        rec.span("left-open").__enter__()
        with pytest.raises(RuntimeError, match="still open"):
            rec.finish()

    def test_finish_lenient_force_closes(self):
        sink = MemorySink()
        rec = TraceRecorder(sink)
        rec.span("left-open").__enter__()
        rec.finish(strict=False)
        assert sink.spans[0]["error"] == "unclosed"
        assert sink.metrics is not None

    def test_metrics_via_free_functions(self):
        sink = MemorySink()
        with obs.recording(sink):
            obs.counter("steps", 3)
            obs.counter("steps")
            obs.gauge("depth", 2)
            obs.histogram("loss", 0.5)
            obs.histogram("loss", 1.5)
        metrics = sink.metrics
        assert metrics["counters"]["steps"] == 4.0
        assert metrics["gauges"]["depth"] == 2.0
        assert metrics["histograms"]["loss"]["count"] == 2

    def test_recording_restores_previous_recorder(self):
        with obs.recording(MemorySink()) as outer_rec:
            assert obs.get_recorder() is outer_rec
            with obs.recording(MemorySink()) as inner_rec:
                assert obs.get_recorder() is inner_rec
            assert obs.get_recorder() is outer_rec
        assert obs.get_recorder() is NOOP


class TestJsonlSink:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "deep" / "run.trace.jsonl"
        with obs.recording(JsonlSink(path)):
            with obs.span("root", n=np.int64(3), arr=np.array([1.0, 2.0])):
                obs.counter("hits", np.float64(2.0))
        records = read_trace(path)
        assert [r["type"] for r in records] == ["span", "metrics"]
        assert records[0]["attrs"] == {"n": 3, "arr": [1.0, 2.0]}
        assert records[1]["counters"]["hits"] == 2.0
        # Every line independently parseable (the JSONL contract).
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_emit_after_close_raises(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.close()
        with pytest.raises(ValueError):
            sink.emit({"type": "span"})

"""Warm-started matching: cold vs warm plans bit-identical.

The warm path has two tiers (identical edge list -> cached matching;
changed edge list -> dual-seeded re-augmentation) and both must
reproduce the cold solve exactly under unique optima — which generic
float weights give.  The stream test drives the full serving engine for
50+ batches of worker churn (staggered check-ins/outs, prediction-cache
deviation invalidations) and compares ``result_signature``.
"""

import numpy as np
import pytest

from repro.assignment.hungarian import Edge, WarmStartState, maximum_weight_matching
from repro.assignment.ppi import ppi_assign, ppi_assign_candidates
from repro.dist import WarmMatchCache, component_candidate_assign
from repro.serve import (
    DeadReckoningProvider,
    ServeConfig,
    ServeEngine,
    StreamConfig,
    make_task_stream,
    make_worker_fleet,
    result_signature,
)


class TestWarmStartSolver:
    def test_identical_edges_reuse_cached_matching(self):
        edges = [Edge(0, 10, 2.0), Edge(1, 11, 3.0), Edge(0, 11, 1.0)]
        warm = WarmStartState()
        first = maximum_weight_matching(edges, warm=warm)
        again = maximum_weight_matching(edges, warm=warm)
        assert first == again == maximum_weight_matching(edges)
        assert warm.identical_hits == 1
        assert again is not warm.matching  # caller gets a copy

    def test_first_warm_solve_equals_cold(self):
        rng = np.random.default_rng(3)
        edges = [
            Edge(l, 100 + r, float(rng.random() + 0.01))
            for l in range(8)
            for r in range(6)
            if rng.random() < 0.7
        ]
        assert maximum_weight_matching(edges, warm=WarmStartState()) == (
            maximum_weight_matching(edges)
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_churned_sequences_match_cold(self, seed):
        """Random add/remove/reweight churn: every step equals cold."""
        rng = np.random.default_rng(seed)
        lefts = list(range(12))
        rights = list(range(100, 112))
        edges = {
            (l, r): float(rng.random() * 10 + 0.01)
            for l in lefts
            for r in rights
            if rng.random() < 0.5
        }
        warm = WarmStartState()
        for _ in range(25):
            for k in list(edges):
                if rng.random() < 0.15:
                    del edges[k]
            for l in lefts:
                for r in rights:
                    if (l, r) not in edges and rng.random() < 0.05:
                        edges[(l, r)] = float(rng.random() * 10 + 0.01)
            edge_list = [Edge(l, r, w) for (l, r), w in sorted(edges.items())]
            assert maximum_weight_matching(edge_list, warm=warm) == (
                maximum_weight_matching(edge_list)
            )
        assert warm.warm_solves > 0
        # The point of warm starting: most rows never re-augment.
        assert warm.rows_reaugmented < warm.rows_total

    def test_orientation_flip_is_safe(self):
        """More lefts than rights transposes the matrix; a flip between
        solves must not seed garbage."""
        warm = WarmStartState()
        wide = [Edge(l, 100 + r, float(3 + l + 0.1 * r)) for l in range(3) for r in range(6)]
        tall = [Edge(l, 100 + r, float(3 + l + 0.1 * r)) for l in range(6) for r in range(3)]
        for edges in (wide, tall, wide, tall):
            assert maximum_weight_matching(edges, warm=warm) == (
                maximum_weight_matching(edges)
            )

    def test_empty_and_zero_weight_edges(self):
        warm = WarmStartState()
        assert maximum_weight_matching([], warm=warm) == []
        assert maximum_weight_matching([], warm=warm) == []
        zero = [Edge(0, 10, 0.0), Edge(1, 11, 5.0)]
        assert maximum_weight_matching(zero, warm=warm) == (
            maximum_weight_matching(zero)
        )
        with_zero = maximum_weight_matching(zero, allow_zero_weight=True, warm=warm)
        assert with_zero == maximum_weight_matching(zero, allow_zero_weight=True)

    def test_allow_zero_weight_change_busts_the_fast_path(self):
        """Same edges, different zero policy: the cached matching from
        one policy must not serve the other."""
        edges = [Edge(0, 10, 0.0), Edge(1, 11, 2.0)]
        warm = WarmStartState()
        drop = maximum_weight_matching(edges, warm=warm)
        keep = maximum_weight_matching(edges, allow_zero_weight=True, warm=warm)
        assert drop != keep
        assert warm.identical_hits == 0

    def test_negative_weights_still_rejected(self):
        with pytest.raises(ValueError):
            maximum_weight_matching([Edge(0, 1, -1.0)], warm=WarmStartState())


class TestWarmMatchCache:
    def test_states_keyed_per_call_and_component(self):
        cache = WarmMatchCache()
        cache.begin_round()
        a = cache.state_for((cache.next_call(), "c", 0))
        b = cache.state_for((cache.next_call(), "c", 0))
        assert a is not b
        cache.begin_round()
        assert cache.state_for((cache.next_call(), "c", 0)) is a

    def test_stale_states_evicted(self):
        cache = WarmMatchCache(keep_rounds=2)
        cache.begin_round()
        cache.state_for((0, "c", 0))
        for _ in range(5):
            cache.begin_round()
        assert len(cache) == 0


def _run_stream(seed, warm_start, n_batches=52):
    """One serving run over ``n_batches`` one-minute batches with churn:
    staggered worker shifts plus noisy predictions against a deviation
    threshold, so cache entries invalidate mid-stream."""
    horizon = float(n_batches)
    stream = StreamConfig(
        n_workers=25, n_tasks=80, t_end=horizon, seed=seed, min_shift_fraction=0.3
    )
    tasks = make_task_stream(stream)
    workers = make_worker_fleet(stream)
    engine = ServeEngine(
        workers,
        DeadReckoningProvider(seed=seed, noise_km=0.3),
        ServeConfig(
            batch_window=1.0,
            use_index=True,
            cache_ttl=5.0,
            cache_deviation_km=0.5,
        ),
        assign_fn=ppi_assign,
        candidate_assign_fn=component_candidate_assign("ppi", warm_start=warm_start),
    )
    return engine.run(tasks, 0.0, horizon)


class TestStreamParity:
    @pytest.mark.parametrize("seed", [0, 3])
    def test_50_batch_churn_stream_bit_identical(self, seed):
        cold = _run_stream(seed, warm_start=False)
        warmed = _run_stream(seed, warm_start=True)
        assert cold.n_batches >= 50
        assert result_signature(warmed) == result_signature(cold)

    def test_warm_cache_actually_engages(self):
        fn = component_candidate_assign("ppi", warm_start=True)
        stream = StreamConfig(n_workers=20, n_tasks=60, t_end=40.0, seed=1)
        engine = ServeEngine(
            make_worker_fleet(stream),
            DeadReckoningProvider(seed=1),
            ServeConfig(batch_window=1.0, use_index=True, cache_ttl=5.0),
            assign_fn=ppi_assign,
            candidate_assign_fn=fn,
        )
        ref = ServeEngine(
            make_worker_fleet(stream),
            DeadReckoningProvider(seed=1),
            ServeConfig(batch_window=1.0, use_index=True, cache_ttl=5.0),
            assign_fn=ppi_assign,
            candidate_assign_fn=ppi_assign_candidates,
        )
        tasks = make_task_stream(stream)
        got = engine.run(tasks, 0.0, 40.0)
        want = ref.run(tasks, 0.0, 40.0)
        assert result_signature(got) == result_signature(want)
        cache = fn.warm_cache
        assert cache.identical_hits > 0 or cache.rows_reaugmented < cache.rows_total

"""Coverage for remaining public surface: CLI compare, feature helpers,
tree repr, plan repr, and similarity renormalisation."""

import numpy as np
import pytest

from repro.assignment.plan import AssignmentPair, AssignmentPlan
from repro.meta.features import renormalize
from repro.meta.task_tree import LearningTaskTree
from repro.similarity.quality import normalize_similarity_matrix


class TestCLICompare:
    def test_compare_prints_all_algorithms(self, capsys):
        from repro.cli import main

        code = main([
            "compare", "--n-workers", "4", "--n-tasks", "20",
            "--n-train-days", "2", "--iterations", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        for algo in ("ppi", "km", "ggpso", "ub", "lb"):
            assert algo in out


class TestFeatureHelpers:
    def test_renormalize_maps_all(self, rng):
        raw = {
            "a": (lambda m: (m + m.T) / 2)(rng.uniform(0, 5, size=(4, 4))),
            "b": (lambda m: (m + m.T) / 2)(rng.uniform(-1, 1, size=(4, 4))),
        }
        out = renormalize(raw)
        assert set(out) == {"a", "b"}
        for mat in out.values():
            assert mat.min() >= 0.0 and mat.max() <= 1.0
            assert np.allclose(np.diag(mat), 1.0)

    def test_normalize_single_element(self):
        out = normalize_similarity_matrix(np.array([[0.3]]))
        assert out[0, 0] == 1.0


class TestReprs:
    def test_tree_repr_mentions_kind(self):
        leaf = LearningTaskTree(cluster=[])
        assert "leaf" in repr(leaf)
        root = LearningTaskTree(cluster=[])
        root.add_child(leaf)
        assert "node[1]" in repr(root)

    def test_plan_repr_counts_stages(self):
        plan = AssignmentPlan([
            AssignmentPair(0, 0, 1.0, stage=1),
            AssignmentPair(1, 1, 1.0, stage=1),
            AssignmentPair(2, 2, 1.0, stage=3),
        ])
        text = repr(plan)
        assert "n=3" in text

    def test_trajectory_repr(self, line_trajectory):
        text = repr(line_trajectory)
        assert "n=11" in text
        assert "km" in text

    def test_tensor_repr(self):
        from repro.nn.tensor import Tensor

        t = Tensor(np.zeros((2, 3)), requires_grad=True, name="w")
        assert "w" in repr(t)
        assert "grad" in repr(t)


class TestPublicImports:
    def test_top_level_api(self):
        import repro

        assert repro.__version__ == "1.0.0"
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    @pytest.mark.parametrize("module", [
        "repro.geo", "repro.nn", "repro.cluster", "repro.similarity",
        "repro.meta", "repro.assignment", "repro.sc", "repro.data",
        "repro.pipeline", "repro.eval",
    ])
    def test_subpackage_all_resolves(self, module):
        import importlib

        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert getattr(mod, name) is not None, f"{module}.{name} missing"

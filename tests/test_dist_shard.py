"""Sharded candidate generation and component matching vs. the dense path.

The exactness ladder, tested rung by rung:

1. ``cells_in_radius`` is the same arithmetic the grid index queries
   with (boundary cells included);
2. shard membership via that helper makes the merged per-shard
   candidate graphs EQUAL the dense ``build_candidates`` output;
3. ``ComponentMatcher`` reproduces the global KM matching;
4. therefore sharded PPI/KM plans equal the dense plans — including an
   adversarial workload where one worker's Theorem-2 disk straddles
   three shards.
"""

import numpy as np
import pytest

from repro.assignment.baselines import km_assign_candidates
from repro.assignment.hungarian import maximum_weight_matching
from repro.assignment.ppi import PPIConfig, ppi_assign_candidates
from repro.dist import (
    ComponentMatcher,
    ProcessBackend,
    ShardLayout,
    ShardPlanner,
    ShardStats,
    WarmMatchCache,
    connected_components,
    make_shards,
    shard_memberships,
    sharded_build_candidates,
    sharded_km_assign,
    sharded_ppi_assign,
)
from repro.geo.point import Point
from repro.sc.entities import SpatialTask, WorkerSnapshot
from repro.serve import UniformGridIndex, build_candidates, cells_in_radius, latest_horizon


def make_task(task_id, x, y, deadline=60.0, release=0.0):
    return SpatialTask(task_id, Point(float(x), float(y)), release, deadline)


def make_snapshot(worker_id, points, detour=4.0, speed=1.0, mr=0.9):
    xy = np.asarray(points, dtype=float).reshape(-1, 2)
    here = Point(float(xy[0, 0]), float(xy[0, 1])) if len(xy) else Point(0.0, 0.0)
    return WorkerSnapshot(
        worker_id=worker_id,
        current_location=here,
        predicted_xy=xy,
        predicted_times=10.0 * np.arange(1, len(xy) + 1),
        detour_budget_km=detour,
        speed_km_per_min=speed,
        matching_rate=mr,
    )


def random_workload(rng, n_tasks=40, n_workers=30, extent=30.0):
    tasks = [
        make_task(i, *rng.uniform(0, extent, 2), deadline=float(rng.uniform(5.0, 60.0)))
        for i in range(n_tasks)
    ]
    snaps = [
        make_snapshot(
            w,
            rng.uniform(0, extent, size=(4, 2)),
            detour=float(rng.uniform(2.0, 6.0)),
            speed=float(rng.uniform(0.5, 1.5)),
            mr=float(rng.uniform(0.1, 1.0)),
        )
        for w in range(n_workers)
    ]
    return tasks, snaps


def plan_tuples(plan):
    return [(p.task_id, p.worker_id, p.score, p.stage) for p in plan]


class TestCellsInRadius:
    def test_point_exactly_on_cell_edge(self):
        """Floor semantics: a point on the edge belongs to the higher
        cell, and a zero-radius query touches only that cell."""
        assert cells_in_radius(2.0, 3.0, 0.0, 1.0) == [(2, 3)]
        # Shifted epsilon below the edge: the lower cell.
        assert cells_in_radius(np.nextafter(2.0, -np.inf), 3.0, 0.0, 1.0) == [(1, 3)]

    def test_radius_spanning_three_plus_shards(self):
        """A disk wider than a stripe touches every column it overlaps."""
        cells = cells_in_radius(5.0, 0.5, 4.0, 1.0)
        cols = {cx for cx, _ in cells}
        assert cols == set(range(1, 10))  # floor(1.0)..floor(9.0)

    def test_matches_index_query_cells(self):
        """The helper must return exactly the buckets the index scans:
        every indexed point the query returns lives in a listed cell."""
        rng = np.random.default_rng(0)
        items = [(i, float(x), float(y)) for i, (x, y) in enumerate(rng.uniform(-5, 15, (50, 2)))]
        index = UniformGridIndex(cell_km=1.3).build(items)
        for qx, qy in rng.uniform(-5, 15, size=(8, 2)):
            listed = set(cells_in_radius(float(qx), float(qy), 2.0, 1.3))
            for item_id, _ in index.query(float(qx), float(qy), 2.0):
                _, x, y = items[item_id]
                cell = (int(np.floor(x / 1.3)), int(np.floor(y / 1.3)))
                assert cell in listed

    def test_validation(self):
        with pytest.raises(ValueError):
            cells_in_radius(0.0, 0.0, -1.0, 1.0)
        with pytest.raises(ValueError):
            cells_in_radius(0.0, 0.0, 1.0, 0.0)


class TestMakeShards:
    def test_disjoint_contiguous_cover(self):
        rng = np.random.default_rng(1)
        tasks, _ = random_workload(rng)
        specs = make_shards(tasks, 4, cell_km=1.0)
        assert [s.shard_id for s in specs] == list(range(len(specs)))
        for a, b in zip(specs, specs[1:]):
            assert a.col_hi < b.col_lo  # disjoint, ordered
        # Every task column is owned by exactly one stripe.
        for task in tasks:
            col = int(np.floor(task.location.x / 1.0))
            owners = [s.shard_id for s in specs if s.owns_column(col)]
            assert len(owners) == 1

    def test_k_capped_at_occupied_columns(self):
        tasks = [make_task(i, 0.5 + i, 0.0) for i in range(3)]
        assert len(make_shards(tasks, 10, cell_km=1.0)) == 3

    def test_empty_and_validation(self):
        assert make_shards([], 4) == []
        with pytest.raises(ValueError):
            make_shards([make_task(0, 0, 0)], 0)
        with pytest.raises(ValueError):
            make_shards([make_task(0, 0, 0)], 2, cell_km=0.0)


class TestShardedCandidates:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("shards", [1, 2, 3, 5])
    @pytest.mark.parametrize("max_candidates", [None, 3])
    def test_merged_graph_equals_dense(self, seed, shards, max_candidates):
        rng = np.random.default_rng(seed)
        tasks, snaps = random_workload(rng)
        dense = build_candidates(tasks, snaps, 0.0, cell_km=1.5, max_candidates=max_candidates)
        merged = sharded_build_candidates(
            tasks, snaps, 0.0, shards=shards, cell_km=1.5, max_candidates=max_candidates
        )
        assert merged == dense  # keys, worker lists, AND list order

    def test_adversarial_straddle_three_shards(self):
        """One worker whose Theorem-2 disk spans three stripes: it must
        be shipped to all three and the merge must still equal dense."""
        tasks = [make_task(i, 3 * i + 0.5, 0.5) for i in range(6)]  # cols 0..15
        wide = make_snapshot(0, [(9.0, 0.0)], detour=14.0, speed=2.0)  # radius 7
        rng = np.random.default_rng(9)
        snaps = [wide] + [make_snapshot(w + 1, rng.uniform(0, 18, (3, 2))) for w in range(8)]
        specs = make_shards(tasks, 3, cell_km=1.0)
        horizon = latest_horizon(tasks, 0.0)
        members = shard_memberships(specs, snaps, horizon, cell_km=1.0)
        shards_with_wide = [s for s, posns in enumerate(members) if 0 in posns]
        assert len(shards_with_wide) == 3  # the straddler reaches every stripe
        stats = ShardStats()
        merged = sharded_build_candidates(tasks, snaps, 0.0, shards=3, cell_km=1.0, stats=stats)
        assert merged == build_candidates(tasks, snaps, 0.0, cell_km=1.0)
        assert stats.n_boundary_workers >= 1
        assert stats.n_shards == 3
        assert sum(stats.pairs_per_shard) == sum(len(v) for v in merged.values())

    def test_zero_radius_workers_join_nothing(self):
        tasks = [make_task(0, 0.5, 0.5)]
        dead = make_snapshot(1, [(0.5, 0.5)], detour=0.0)
        empty = make_snapshot(2, np.zeros((0, 2)))
        specs = make_shards(tasks, 1, cell_km=1.0)
        members = shard_memberships(specs, [dead, empty], 60.0, 1.0)
        assert members == [[]]

    def test_process_backend_matches_serial(self):
        rng = np.random.default_rng(4)
        tasks, snaps = random_workload(rng, n_tasks=20, n_workers=12)
        serial = sharded_build_candidates(tasks, snaps, 0.0, shards=3, cell_km=1.5)
        with ProcessBackend(workers=2) as backend:
            pooled = sharded_build_candidates(
                tasks, snaps, 0.0, shards=3, cell_km=1.5, backend=backend
            )
        assert pooled == serial


class TestComponentMatcher:
    def _edges(self, rng, n_left=20, n_right=16, p=0.12):
        edges = []
        for t in range(n_left):
            for w in range(n_right):
                if rng.random() < p:
                    edges.append((t, w, float(rng.uniform(0.1, 5.0))))
        return edges

    def test_components_partition_edges(self):
        rng = np.random.default_rng(2)
        edges = self._edges(rng)
        comps = connected_components(edges)
        flat = [e for c in comps for e in c]
        assert sorted(flat) == sorted(edges)

    def test_task_and_worker_ids_are_separate_namespaces(self):
        """Task 0 and worker 0 are different vertices: these two edges
        share no endpoint and must be separate components."""
        comps = connected_components([(0, 1, 1.0), (1, 0, 1.0)])
        assert len(comps) == 2

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_global_solver(self, seed):
        rng = np.random.default_rng(seed)
        edges = self._edges(rng)
        matcher = ComponentMatcher(inline_below=0)
        assert matcher(edges) == maximum_weight_matching(edges)
        assert matcher.last_n_components >= 1

    def test_small_lists_solved_inline(self):
        matcher = ComponentMatcher(inline_below=16)
        edges = [(0, 0, 2.0), (1, 1, 3.0)]
        assert matcher(edges) == maximum_weight_matching(edges)
        assert matcher.last_n_components == 1  # never decomposed

    def test_empty(self):
        assert ComponentMatcher()([]) == []


class TestShardedAssignment:
    @pytest.mark.parametrize("seed", [0, 3])
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_ppi_plan_equals_dense(self, seed, shards):
        rng = np.random.default_rng(seed)
        tasks, snaps = random_workload(rng)
        dense_graph = build_candidates(tasks, snaps, 0.0, cell_km=1.5)
        dense = ppi_assign_candidates(tasks, snaps, 0.0, dense_graph, PPIConfig())
        sharded = sharded_ppi_assign(tasks, snaps, 0.0, shards=shards, cell_km=1.5)
        assert plan_tuples(sharded) == plan_tuples(dense)

    @pytest.mark.parametrize("seed", [1, 5])
    @pytest.mark.parametrize("shards", [2, 3])
    def test_km_plan_equals_dense(self, seed, shards):
        rng = np.random.default_rng(seed)
        tasks, snaps = random_workload(rng)
        dense_graph = build_candidates(tasks, snaps, 0.0, cell_km=1.5)
        dense = km_assign_candidates(tasks, snaps, 0.0, dense_graph)
        sharded = sharded_km_assign(tasks, snaps, 0.0, shards=shards, cell_km=1.5)
        assert plan_tuples(sharded) == plan_tuples(dense)

    def test_adversarial_straddle_plans_match(self):
        tasks = [make_task(i, 3 * i + 0.5, 0.5) for i in range(6)]
        wide = make_snapshot(0, [(9.0, 0.0)], detour=14.0, speed=2.0)
        rng = np.random.default_rng(11)
        snaps = [wide] + [make_snapshot(w + 1, rng.uniform(0, 18, (3, 2))) for w in range(8)]
        dense_graph = build_candidates(tasks, snaps, 0.0, cell_km=1.0)
        dense = ppi_assign_candidates(tasks, snaps, 0.0, dense_graph, PPIConfig())
        stats = ShardStats()
        sharded = sharded_ppi_assign(tasks, snaps, 0.0, shards=3, cell_km=1.0, stats=stats)
        assert plan_tuples(sharded) == plan_tuples(dense)
        assert stats.n_boundary_workers >= 1


class TestShardPlanner:
    def test_layout_is_a_total_map(self):
        tasks = [make_task(0, 0.5, 0.5), make_task(1, 10.5, 0.5), make_task(2, 20.5, 0.5)]
        layout = ShardLayout.from_specs(make_shards(tasks, 3, 1.0), 1.0)
        seen = {layout.shard_for_column(col) for col in range(-50, 80)}
        assert seen == {0, 1, 2}
        # Columns between stripes clamp to the nearest one.
        assert layout.shard_for_column(-100) == 0
        assert layout.shard_for_column(100) == 2

    def test_sticky_layout_build_equals_dense_across_batches(self):
        """The planner keeps batch 1's layout; batch 2's tasks land in
        different columns, and the build must still equal dense."""
        rng = np.random.default_rng(9)
        planner = ShardPlanner(shards=4, cell_km=1.5)
        for batch in range(4):
            tasks, snaps = random_workload(rng, n_tasks=25, n_workers=20)
            got = sharded_build_candidates(
                tasks, snaps, 0.0, shards=4, cell_km=1.5, planner=planner
            )
            assert got == build_candidates(tasks, snaps, 0.0, cell_km=1.5)
        assert planner._layout is not None
        assert planner._layout.generation == 1  # never re-laid-out

    def test_halo_cache_hits_on_stable_tracks(self):
        rng = np.random.default_rng(3)
        tasks, snaps = random_workload(rng, n_tasks=20, n_workers=15)
        planner = ShardPlanner(shards=3, cell_km=1.5)
        for _ in range(3):
            sharded_build_candidates(tasks, snaps, 0.0, shards=3, cell_km=1.5, planner=planner)
        assert planner.halo_hits > 0
        # Identity-keyed: a changed track for one worker is a miss.
        first_misses = planner.halo_misses
        moved = list(snaps)
        moved[0] = make_snapshot(snaps[0].worker_id, rng.uniform(0, 30, (4, 2)))
        sharded_build_candidates(tasks, moved, 0.0, shards=3, cell_km=1.5, planner=planner)
        assert planner.halo_misses == first_misses + 1

    def test_planner_with_warm_matcher_plan_equals_dense(self):
        rng = np.random.default_rng(12)
        planner = ShardPlanner(shards=3, cell_km=1.5)
        warm = WarmMatchCache()
        for _ in range(3):
            tasks, snaps = random_workload(rng, n_tasks=30, n_workers=25)
            dense_graph = build_candidates(tasks, snaps, 0.0, cell_km=1.5)
            dense = ppi_assign_candidates(tasks, snaps, 0.0, dense_graph, PPIConfig())
            sharded = sharded_ppi_assign(
                tasks, snaps, 0.0, shards=3, cell_km=1.5, planner=planner, warm=warm
            )
            assert plan_tuples(sharded) == plan_tuples(dense)

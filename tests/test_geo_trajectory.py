"""Tests for repro.geo.trajectory."""

import numpy as np
import pytest

from repro.geo.point import Point
from repro.geo.trajectory import Trajectory, TrajectoryPoint

from tests.conftest import straight_trajectory


class TestConstruction:
    def test_rejects_non_increasing_times(self):
        with pytest.raises(ValueError):
            Trajectory([
                TrajectoryPoint(Point(0, 0), 0.0),
                TrajectoryPoint(Point(1, 0), 0.0),
            ])

    def test_from_arrays(self):
        traj = Trajectory.from_arrays(np.array([[0, 0], [1, 1]]), [0.0, 5.0])
        assert len(traj) == 2
        assert traj[1].location == Point(1.0, 1.0)

    def test_from_arrays_length_mismatch(self):
        with pytest.raises(ValueError):
            Trajectory.from_arrays(np.zeros((2, 2)), [0.0])

    def test_iteration_and_indexing(self, line_trajectory):
        pts = list(line_trajectory)
        assert pts[0] == line_trajectory[0]
        assert len(pts) == len(line_trajectory)


class TestGeometry:
    def test_length(self, line_trajectory):
        assert line_trajectory.length_km() == pytest.approx(10.0)

    def test_duration(self, line_trajectory):
        assert line_trajectory.duration() == pytest.approx(100.0)

    def test_xy_shape(self, line_trajectory):
        assert line_trajectory.xy.shape == (11, 2)


class TestInterpolation:
    def test_position_at_samples(self, line_trajectory):
        for p in line_trajectory:
            got = line_trajectory.position_at(p.time)
            assert got.distance_to(p.location) < 1e-9

    def test_position_between_samples(self, line_trajectory):
        mid = line_trajectory.position_at(5.0)  # halfway through first segment
        assert mid.x == pytest.approx(0.5)

    def test_clamps_before_and_after(self, line_trajectory):
        assert line_trajectory.position_at(-10.0) == line_trajectory[0].location
        assert line_trajectory.position_at(1e6) == line_trajectory[-1].location

    def test_constant_speed(self):
        traj = straight_trajectory(end=(10.0, 0.0), t1=10.0)
        for t in np.linspace(0, 10, 21):
            p = traj.position_at(float(t))
            assert p.x == pytest.approx(t, abs=1e-9)


class TestSlicing:
    def test_slice_time(self, line_trajectory):
        sub = line_trajectory.slice_time(20.0, 50.0)
        assert sub.start_time >= 20.0
        assert sub.end_time <= 50.0

    def test_slice_empty_raises(self, line_trajectory):
        with pytest.raises(ValueError):
            line_trajectory.slice_time(1000.0, 2000.0)

    def test_slice_reversed_raises(self, line_trajectory):
        with pytest.raises(ValueError):
            line_trajectory.slice_time(50.0, 20.0)

    def test_future_points(self, line_trajectory):
        fut = line_trajectory.future_points(45.0, 3)
        assert len(fut) == 3
        assert all(p.time > 45.0 for p in fut)

    def test_future_points_at_end(self, line_trajectory):
        assert line_trajectory.future_points(100.0, 5) == []


class TestResample:
    def test_uniform_step(self, line_trajectory):
        res = line_trajectory.resampled(25.0)
        times = np.asarray(res.times)
        assert np.allclose(np.diff(times), 25.0)

    def test_preserves_endpoints(self, line_trajectory):
        res = line_trajectory.resampled(10.0)
        assert res.start_time == pytest.approx(line_trajectory.start_time)
        assert res[-1].location.distance_to(line_trajectory[-1].location) < 1e-6

    def test_rejects_bad_step(self, line_trajectory):
        with pytest.raises(ValueError):
            line_trajectory.resampled(0.0)

    def test_single_point_trajectory(self):
        traj = Trajectory([TrajectoryPoint(Point(1, 1), 0.0)])
        assert len(traj.resampled(5.0)) == 1

"""Tests for newcomer onboarding (cold start, Challenge I)."""

import numpy as np
import pytest

from repro.data import PortoConfig, generate_porto_workers
from repro.data.didi import historical_task_locations
from repro.data.windows import build_learning_tasks
from repro.meta.maml import MAMLConfig
from repro.pipeline.config import PredictionConfig
from repro.pipeline.newcomer import onboard_worker
from repro.pipeline.training import train_predictor


def tiny_config(algorithm):
    return PredictionConfig(
        algorithm=algorithm,
        loss="mse",
        hidden_size=8,
        fine_tune_optimizer="sgd",
        fine_tune_steps=4,
        fine_tune_lr=0.1,
        maml=MAMLConfig(iterations=3, meta_batch=2, inner_steps=2, support_batch=8),
    )


@pytest.fixture(scope="module")
def population():
    city, workers = generate_porto_workers(PortoConfig(n_workers=10, n_train_days=3, seed=17))
    newcomer = workers.pop()
    hist = historical_task_locations(city, 100, seed=18)
    learning = build_learning_tasks({w.worker_id: w.history for w in workers}, city, 5, 1)
    return city, workers, newcomer, hist, learning


@pytest.mark.parametrize("algorithm,expected_source", [
    ("gttaml", "tree"),
    ("ctml", "ctml"),
    ("maml", "shared"),
])
def test_onboarding_selects_right_source(population, algorithm, expected_source):
    city, workers, newcomer, hist, learning = population
    predictor = train_predictor(learning, city, tiny_config(algorithm), hist)
    result = onboard_worker(predictor, newcomer.worker_id, newcomer.history[:1])
    assert result.source == expected_source
    assert newcomer.worker_id in predictor.worker_params
    assert 0.0 <= result.matching_rate <= 1.0


def test_onboarded_worker_predicts(population):
    city, workers, newcomer, hist, learning = population
    predictor = train_predictor(learning, city, tiny_config("gttaml"), hist)
    onboard_worker(predictor, newcomer.worker_id, newcomer.history[:1])
    model = predictor.model_for(newcomer.worker_id)
    pred = model.predict(np.random.default_rng(0).uniform(0, 1, size=(5, 2)))
    assert pred.shape == (1, 2)
    assert np.isfinite(pred).all()


def test_onboarding_rejects_empty_history(population):
    city, workers, newcomer, hist, learning = population
    predictor = train_predictor(learning, city, tiny_config("gttaml"), hist)
    short = [newcomer.history[0].slice_time(0.0, 15.0)]  # too few samples
    with pytest.raises(ValueError):
        onboard_worker(predictor, newcomer.worker_id, short)


def test_tree_placement_node_level_recorded(population):
    city, workers, newcomer, hist, learning = population
    predictor = train_predictor(learning, city, tiny_config("gttaml"), hist)
    result = onboard_worker(predictor, newcomer.worker_id, newcomer.history[:1])
    assert result.node_level is not None
    assert result.node_level >= 0

"""Decision provenance: parity, reconciliation, tolerant reading, consumers.

The contract under test (see ``docs/OBSERVABILITY.md``, "Decision
provenance & SLOs"):

* ``ServeConfig.decisions=None`` leaves the engine's observable outcome
  **bit-identical** to a run that never heard of decision logging;
* with a log, every task gets exactly one terminal record whose counts
  reconcile exactly with the run result, single-shard and sharded alike
  (sharded engines merge per-stripe spools into one log at close);
* readers tolerate truncated tails, interleaved shard spools, and
  crash-replay duplicates — warning, never double-counting;
* ``diff_decisions`` attributes 100% of the completion delta between
  two runs to reason-code transitions, by construction.
"""

import json
import warnings
from collections import Counter

import pytest

from repro.assignment.ppi import ppi_assign, ppi_assign_candidates
from repro.cli import main as cli_main
from repro.obs import RunManifest
from repro.obs.decisions import (
    ABSENT,
    DecisionConfig,
    DecisionLog,
    decision_records,
    diff_decisions,
    explain_task,
    find_decision_log,
    merge_decision_spools,
    read_decisions,
    reconcile,
    render_explain,
    render_run_diff,
    write_decisions,
)
from repro.serve import (
    DeadReckoningProvider,
    ServeConfig,
    ServeEngine,
    StreamConfig,
    make_task_stream,
    make_worker_fleet,
    result_signature,
)

#: Full reason taxonomy a record may carry.
REASONS = {
    "completed",
    "shed:queue_full",
    "shed:deadline_slack",
    "cancelled:requester",
    "cancelled:window_closed",
    "expired:dead_on_arrival",
    "expired:deadline",
    "expired:horizon",
}


def seeded_scenario(seed=0, n_workers=20, n_tasks=40, t_end=40.0):
    cfg = StreamConfig(n_workers=n_workers, n_tasks=n_tasks, t_end=t_end, seed=seed)
    return make_task_stream(cfg), make_worker_fleet(cfg)


def run_engine(tasks, workers, seed=0, t_end=40.0, **config):
    engine = ServeEngine(
        workers,
        DeadReckoningProvider(seed=seed),
        ServeConfig(**config),
        assign_fn=ppi_assign,
        candidate_assign_fn=ppi_assign_candidates,
    )
    return engine.run(tasks, 0.0, t_end)


class TestNoOpContract:
    def test_logged_run_is_bit_identical(self, tmp_path):
        tasks, workers = seeded_scenario()
        plain = run_engine(tasks, workers, use_index=True, cache_ttl=5.0)
        log_path = tmp_path / "run.decisions.jsonl"
        logged = run_engine(
            tasks,
            workers,
            use_index=True,
            cache_ttl=5.0,
            decisions=DecisionConfig(path=str(log_path)),
        )
        assert result_signature(logged) == result_signature(plain)
        assert plain.n_decisions == 0
        assert logged.n_decisions == len(tasks)
        assert log_path.exists()

    def test_every_task_logged_exactly_once(self, tmp_path):
        tasks, workers = seeded_scenario(seed=3)
        log_path = tmp_path / "run.decisions.jsonl"
        run_engine(
            tasks, workers, max_pending=8, decisions=DecisionConfig(path=str(log_path))
        )
        records = read_decisions(log_path)
        assert sorted(r["task"] for r in records) == sorted(t.task_id for t in tasks)
        assert all(r["reason"] in REASONS for r in records)

    def test_reconciles_with_result(self, tmp_path):
        tasks, workers = seeded_scenario(seed=1)
        log_path = tmp_path / "run.decisions.jsonl"
        result = run_engine(
            tasks, workers, max_pending=6, decisions=DecisionConfig(path=str(log_path))
        )
        check = reconcile(read_decisions(log_path), result)
        assert check["ok"], check
        assert check["observed"]["completed"] == result.n_completed
        assert check["observed"]["shed"] == result.n_shed


class TestTolerantReading:
    def _records(self):
        return [
            {"type": "decision", "task": i, "terminal": "completed",
             "reason": "completed", "t": float(i)}
            for i in range(4)
        ]

    def test_truncated_final_record(self, tmp_path):
        path = tmp_path / "d.jsonl"
        write_decisions(path, self._records())
        raw = path.read_bytes()
        path.write_bytes(raw[:-15])  # chop into the final JSON line
        with pytest.warns(UserWarning, match="truncated"):
            records = read_decisions(path)
        assert [r["task"] for r in records] == [0, 1, 2]

    def test_crash_replay_duplicates_warn_without_double_counting(self, tmp_path):
        path = tmp_path / "d.jsonl"
        records = self._records()
        # A replayed coordinator re-appends its tail with a newer state.
        replayed = dict(records[-1], reason="expired:horizon", terminal="expired")
        write_decisions(path, records + [replayed])
        with pytest.warns(UserWarning, match="duplicate"):
            loaded = read_decisions(path)
        assert len(loaded) == len(records)
        assert Counter(r["terminal"] for r in loaded) == {"completed": 3, "expired": 1}
        # Last copy wins.
        assert loaded[-1]["reason"] == "expired:horizon"

    def test_interleaved_shard_spools_merge_sorted(self, tmp_path):
        spool_dir = tmp_path / "log.shards"
        spool_dir.mkdir()
        evens = [r for r in self._records() if r["task"] % 2 == 0]
        odds = [r for r in self._records() if r["task"] % 2 == 1]
        write_decisions(spool_dir / "decisions-shard0.jsonl", evens)
        # Shard 1 also replays task 0 (cross-spool duplicate).
        write_decisions(spool_dir / "decisions-shard1.jsonl", odds + [dict(evens[0])])
        with pytest.warns(UserWarning, match="duplicate"):
            merged = merge_decision_spools(spool_dir)
        assert [r["task"] for r in merged] == [0, 1, 2, 3]

    def test_non_decision_records_ignored(self):
        mixed = [{"type": "decisions_start"}, *self._records(), {"type": "noise"}]
        assert len(decision_records(mixed)) == 4


class TestExplain:
    def test_explain_renders_the_path(self, tmp_path):
        tasks, workers = seeded_scenario(seed=2)
        log_path = tmp_path / "run.decisions.jsonl"
        result = run_engine(
            tasks,
            workers,
            use_index=True,
            decisions=DecisionConfig(path=str(log_path)),
        )
        records = read_decisions(log_path)
        done = next(r for r in records if r["terminal"] == "completed")
        text = render_explain(explain_task(records, done["task"]))
        assert f"task {done['task']}" in text
        assert f"assigned to worker {done['worker']}" in text
        assert "terminal: completed" in text
        assert result.n_completed > 0

    def test_unknown_task_raises(self):
        with pytest.raises(KeyError):
            explain_task([], 99)


class TestDiff:
    def test_attributes_full_completion_delta(self, tmp_path):
        tasks, workers = seeded_scenario(seed=4, n_tasks=60)
        a_path, b_path = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        ra = run_engine(
            tasks, workers, max_pending=4, decisions=DecisionConfig(path=str(a_path))
        )
        rb = run_engine(
            tasks, workers, max_pending=None, decisions=DecisionConfig(path=str(b_path))
        )
        diff = diff_decisions(read_decisions(a_path), read_decisions(b_path))
        assert diff["delta_completed"] == rb.n_completed - ra.n_completed
        assert diff["attributed_delta"] == diff["delta_completed"]
        assert sum(r["count"] for r in diff["transitions"]) == len(tasks)
        text = render_run_diff(diff, label_a="tight", label_b="loose")
        assert "tight → loose" in text

    def test_one_sided_tasks_land_in_absent_bucket(self):
        a = [{"task": 1, "terminal": "completed", "reason": "completed"}]
        b = []
        diff = diff_decisions(a, b)
        assert diff["delta_completed"] == -1
        assert diff["attributed_delta"] == -1
        (row,) = diff["transitions"]
        assert (row["from"], row["to"]) == ("completed", ABSENT)


class TestFindLog:
    def _write_run(self, tmp_path):
        log = tmp_path / "run.decisions.jsonl"
        write_decisions(log, [{"type": "decision", "task": 0,
                               "terminal": "completed", "reason": "completed"}])
        manifest = RunManifest.start(command="t", argv=[], config={}, seed=0)
        path = tmp_path / "run.manifest.json"
        manifest.finalize(metrics={}, artifacts={"decisions": str(log)}).write(path)
        return log, path

    def test_resolves_file_manifest_and_directory(self, tmp_path):
        log, manifest = self._write_run(tmp_path)
        assert find_decision_log(log) == log
        assert find_decision_log(manifest) == log
        assert find_decision_log(tmp_path) == log

    def test_moved_directory_falls_back_to_sibling(self, tmp_path):
        src = tmp_path / "src"
        src.mkdir()
        log, manifest = self._write_run(src)
        moved = tmp_path / "moved"
        src.rename(moved)
        found = find_decision_log(moved / manifest.name)
        assert found == moved / log.name

    def test_missing_log_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            find_decision_log(tmp_path / "absent.jsonl")
        empty = tmp_path / "emptydir"
        empty.mkdir()
        with pytest.raises(FileNotFoundError):
            find_decision_log(empty)


class TestShardedLog:
    def test_merged_log_reconciles_and_carries_shards(self, tmp_path):
        from repro.dist import DistConfig, ShardedEngine, component_candidate_assign

        cfg = StreamConfig(n_workers=30, n_tasks=60, t_end=40.0, seed=7,
                           width_km=24.0, height_km=12.0)
        tasks, workers = make_task_stream(cfg), make_worker_fleet(cfg)

        def build(decisions):
            return ShardedEngine(
                workers,
                DeadReckoningProvider(seed=7),
                ServeConfig(decisions=decisions),
                assign_fn=ppi_assign,
                candidate_assign_fn=component_candidate_assign("ppi"),
                dist=DistConfig(shards=2),
            )

        plain_engine = build(None)
        try:
            plain = plain_engine.run(tasks, 0.0, cfg.t_end)
        finally:
            plain_engine.close()
        log_path = tmp_path / "sharded.decisions.jsonl"
        engine = build(DecisionConfig(path=str(log_path)))
        try:
            result = engine.run(tasks, 0.0, cfg.t_end)
        finally:
            engine.close()
        assert result_signature(result) == result_signature(plain)
        records = read_decisions(log_path)
        assert reconcile(records, result)["ok"]
        spools = sorted((tmp_path / "sharded.decisions.jsonl.shards").glob("*.jsonl"))
        assert len(spools) >= 2
        assert {r["shard"] for r in records} >= {0, 1}


class TestRegistrySweepDiff:
    def test_sweep_cells_diff_attributes_everything(self, tmp_path):
        """The acceptance check: two registry cells' logs join exactly."""
        from repro.scenarios import (
            decision_diff_tables,
            get_policy,
            get_scenario,
            RunSpec,
            run_sweep,
        )

        spec = RunSpec(
            scenario=get_scenario("smoke"),
            policy=get_policy("indexed"),
            name="diff-smoke",
            sweep={"policy.shedding.max_pending": [4, 40]},
        )
        rows = run_sweep(spec, out_dir=tmp_path, decisions=True)
        assert all(r["decisions"] for r in rows)
        logs = [read_decisions(r["decisions"]) for r in rows]
        diff = diff_decisions(*logs)
        delta = (rows[1]["metrics"]["completion_ratio"]
                 - rows[0]["metrics"]["completion_ratio"])
        assert diff["attributed_delta"] == diff["delta_completed"]
        assert diff["delta_completed"] == round(delta * diff["n_a"])
        tables = decision_diff_tables(rows, out_dir=tmp_path)
        assert tables is not None and "run diff" in tables


class TestCli:
    def _run_with_log(self, tmp_path):
        log = tmp_path / "run.decisions.jsonl"
        cli_main([
            "serve-sim", "--n-workers", "10", "--n-tasks", "20",
            "--horizon", "15", "--decisions", str(log),
            "--trace", str(tmp_path / "run.trace.jsonl"),
        ])
        return log

    def test_serve_sim_records_log_and_artifact(self, tmp_path, capsys):
        log = self._run_with_log(tmp_path)
        capsys.readouterr()
        assert log.exists()
        manifest = json.loads((tmp_path / "run.manifest.json").read_text())
        assert manifest["artifacts"]["decisions"] == str(log)

    def test_explain_and_run_diff_commands(self, tmp_path, capsys):
        log = self._run_with_log(tmp_path)
        task = read_decisions(log)[0]["task"]
        capsys.readouterr()
        assert cli_main(["explain", str(log), "--task", str(task)]) == 0
        assert f"task {task}" in capsys.readouterr().out
        assert cli_main(["run-diff", str(log), str(log), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["delta_completed"] == 0
        assert payload["attributed_delta"] == 0

    def test_explain_missing_task_exits_cleanly(self, tmp_path, capsys):
        log = self._run_with_log(tmp_path)
        capsys.readouterr()
        with pytest.raises(SystemExit, match="no record"):
            cli_main(["explain", str(log), "--task", "999999"])

    def test_scenarios_report_missing_dir_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="no sweep directory"):
            cli_main(["scenarios-report", str(tmp_path / "never-ran")])


class TestDecisionLogUnit:
    def test_close_is_idempotent(self, tmp_path):
        log = DecisionLog(DecisionConfig(path=str(tmp_path / "d.jsonl")))
        log.close()
        log.close()

    def test_terminal_counts(self):
        log = DecisionLog()
        counts = log.terminal_counts()
        assert counts == {}

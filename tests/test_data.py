"""Tests for the synthetic dataset generators and windowing."""

import numpy as np
import pytest

from repro.data import (
    DidiConfig,
    FoursquareConfig,
    GowallaConfig,
    PortoConfig,
    build_learning_task,
    build_learning_tasks,
    generate_didi_tasks,
    generate_foursquare_tasks,
    generate_gowalla_workers,
    generate_porto_workers,
    make_city,
    sliding_windows,
)
from repro.data.didi import TIME_UNIT_MINUTES, historical_task_locations
from repro.data.generators import ARCHETYPES, PatternMix
from repro.data.workload import Workload


class TestCity:
    def test_pois_inside_grid(self):
        city = make_city(seed=1)
        for poi in city.pois:
            assert city.grid.contains(poi.location)

    def test_deterministic(self):
        a = make_city(seed=5)
        b = make_city(seed=5)
        assert np.allclose(a.district_centers, b.district_centers)

    def test_validates(self):
        with pytest.raises(ValueError):
            make_city(n_districts=0)


class TestArchetypes:
    @pytest.mark.parametrize("name", list(ARCHETYPES))
    def test_daily_trajectory_is_sane(self, name):
        city = make_city(seed=2)
        rng = np.random.default_rng(3)
        pattern = ARCHETYPES[name](city, rng, day_minutes=360.0)
        day = pattern.daily(day_start=0.0, sample_step=10.0)
        assert len(day) >= 2
        assert day.start_time >= 0.0
        times = np.asarray(day.times)
        assert np.all(np.diff(times) > 0)
        for p in day:
            assert city.grid.contains(p.location)

    @pytest.mark.parametrize("name", list(ARCHETYPES))
    def test_days_repeat_with_noise(self, name):
        """Same pattern, different days: similar but not identical."""
        city = make_city(seed=2)
        pattern = ARCHETYPES[name](city, np.random.default_rng(3), day_minutes=360.0)
        d1 = pattern.daily(0.0, 10.0)
        d2 = pattern.daily(0.0, 10.0)
        n = min(len(d1), len(d2))
        dists = np.sqrt(((d1.xy[:n] - d2.xy[:n]) ** 2).sum(axis=1))
        assert dists.mean() < 5.0  # same skeleton
        assert dists.max() > 0.0  # but noisy

    def test_pattern_mix_sampling(self):
        mix = PatternMix(commuter=1.0, roamer=0.0, zone_loyal=0.0, courier=0.0)
        rng = np.random.default_rng(0)
        assert all(mix.sample(rng) == "commuter" for _ in range(5))

    def test_pattern_mix_validates(self):
        with pytest.raises(ValueError):
            PatternMix(0.0, 0.0, 0.0, 0.0).sample(np.random.default_rng(0))


class TestPorto:
    def test_worker_population(self):
        city, workers = generate_porto_workers(PortoConfig(n_workers=5, n_train_days=3))
        assert len(workers) == 5
        for w in workers:
            assert len(w.history) == 3
            assert len(w.routine) > 2

    def test_deterministic(self):
        _, w1 = generate_porto_workers(PortoConfig(n_workers=3, seed=9))
        _, w2 = generate_porto_workers(PortoConfig(n_workers=3, seed=9))
        assert np.allclose(w1[0].routine.xy, w2[0].routine.xy)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PortoConfig(n_workers=0)
        with pytest.raises(ValueError):
            PortoConfig(sample_step=0.0)


class TestDidi:
    def test_task_stream(self):
        city = make_city(seed=1)
        tasks = generate_didi_tasks(city, DidiConfig(n_tasks=50, seed=2))
        assert len(tasks) == 50
        arrivals = [t.release_time for t in tasks]
        assert arrivals == sorted(arrivals)
        for t in tasks:
            assert city.grid.contains(t.location)

    def test_valid_time_interval(self):
        city = make_city(seed=1)
        lo, hi = 2.0, 3.0
        tasks = generate_didi_tasks(city, DidiConfig(n_tasks=40, valid_time_units=(lo, hi)))
        for t in tasks:
            units = t.valid_minutes / TIME_UNIT_MINUTES
            assert lo <= units <= hi

    def test_rush_hour_peaks(self):
        """More arrivals near the AM/PM peaks than in the middle."""
        city = make_city(seed=1)
        cfg = DidiConfig(n_tasks=2000, day_minutes=360.0, seed=3)
        tasks = generate_didi_tasks(city, cfg)
        arrivals = np.array([t.release_time for t in tasks]) / 360.0
        peak = ((np.abs(arrivals - 0.25) < 0.08) | (np.abs(arrivals - 0.75) < 0.08)).mean()
        trough = (np.abs(arrivals - 0.5) < 0.08).mean()
        assert peak > 2 * trough

    def test_id_offset(self):
        city = make_city(seed=1)
        tasks = generate_didi_tasks(city, DidiConfig(n_tasks=5), id_offset=100)
        assert [t.task_id for t in tasks] == list(range(100, 105))

    def test_historical_locations_shape(self):
        city = make_city(seed=1)
        xy = historical_task_locations(city, 30)
        assert xy.shape == (30, 2)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DidiConfig(valid_time_units=(0.0, 1.0))
        with pytest.raises(ValueError):
            DidiConfig(valid_time_units=(3.0, 2.0))


class TestGowallaFoursquare:
    def test_workers_anchor_to_venues(self):
        city, workers = generate_gowalla_workers(GowallaConfig(n_workers=4, n_train_days=2))
        assert len(workers) == 4
        for w in workers:
            assert len(w.history) == 2

    def test_tasks_snap_to_venues(self):
        city, _ = generate_gowalla_workers(GowallaConfig(n_workers=2))
        tasks = generate_foursquare_tasks(city, FoursquareConfig(n_tasks=30, seed=4))
        poi_xy = np.array([[p.location.x, p.location.y] for p in city.pois])
        for t in tasks:
            d = np.sqrt(((poi_xy - [t.location.x, t.location.y]) ** 2).sum(axis=1)).min()
            assert d < 0.5  # within noise of some venue

    def test_foursquare_requires_venues(self):
        city = make_city(seed=1)
        city.pois.clear()
        with pytest.raises(ValueError):
            generate_foursquare_tasks(city)

    def test_shared_distribution_property(self):
        """Workload 2's signature: worker and task locations share anchors,
        so the typical worker-to-nearest-task distance is small."""
        city, workers = generate_gowalla_workers(GowallaConfig(n_workers=6, seed=1))
        tasks = generate_foursquare_tasks(city, FoursquareConfig(n_tasks=100, seed=2))
        task_xy = np.array([[t.location.x, t.location.y] for t in tasks])
        dists = []
        for w in workers:
            for sample in w.routine.xy:
                dists.append(np.sqrt(((task_xy - sample) ** 2).sum(axis=1)).min())
        assert np.median(dists) < 2.0


class TestSlidingWindows:
    def test_counts(self):
        xy = np.arange(20).reshape(10, 2).astype(float)
        x, y = sliding_windows(xy, seq_in=3, seq_out=2)
        assert x.shape == (6, 3, 2)
        assert y.shape == (6, 2, 2)

    def test_contiguity(self):
        xy = np.arange(20).reshape(10, 2).astype(float)
        x, y = sliding_windows(xy, 3, 1)
        assert np.allclose(y[0, 0], xy[3])
        assert np.allclose(x[1, 0], xy[1])

    def test_stride(self):
        xy = np.zeros((10, 2))
        x, _ = sliding_windows(xy, 2, 1, stride=3)
        assert len(x) == 3

    def test_short_sequence_empty(self):
        x, y = sliding_windows(np.zeros((2, 2)), 3, 1)
        assert len(x) == 0

    def test_validates(self):
        with pytest.raises(ValueError):
            sliding_windows(np.zeros((5, 2)), 0, 1)


class TestBuildLearningTasks:
    def test_builds_for_all_workers(self, small_city_and_workers):
        city, workers = small_city_and_workers
        tasks = build_learning_tasks({w.worker_id: w.history for w in workers}, city, 4, 1)
        assert len(tasks) == len(workers)
        for t in tasks:
            assert t.support_x.max() <= 1.0 + 1e-9  # normalised space
            assert len(t.location_sample) > 0

    def test_short_history_returns_none(self, small_city_and_workers):
        city, workers = small_city_and_workers
        short = [workers[0].history[0].slice_time(0.0, 15.0)]  # 2 samples
        task = build_learning_task(0, short, city, seq_in=4, seq_out=1, rng=np.random.default_rng(0))
        assert task is None

    def test_location_sample_capped(self, small_city_and_workers):
        city, workers = small_city_and_workers
        task = build_learning_task(
            0, workers[0].history, city, 4, 1, np.random.default_rng(0), max_location_sample=10
        )
        assert len(task.location_sample) <= 10


class TestWorkload:
    def test_horizon_covers_tasks(self, small_workload):
        t0, t1 = small_workload.horizon()
        assert t0 <= min(t.release_time for t in small_workload.tasks)
        assert t1 >= max(t.deadline for t in small_workload.tasks)

    def test_worker_histories(self, small_workload):
        hist = small_workload.worker_histories()
        assert set(hist) == {w.worker_id for w in small_workload.workers}

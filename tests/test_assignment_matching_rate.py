"""Tests for matching rate (Def. 7) and Theorem 2 machinery."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.assignment.matching_rate import (
    completion_probability,
    completion_radius,
    feasible_prediction_points,
    matching_rate,
    theorem2_bound,
)


class TestMatchingRate:
    def test_perfect_prediction(self, rng):
        r = rng.normal(size=(10, 2))
        assert matching_rate(r, r, a=0.0) == 1.0

    def test_all_misses(self, rng):
        r = rng.normal(size=(10, 2))
        assert matching_rate(r, r + 100.0, a=1.0) == 0.0

    def test_partial(self):
        real = np.zeros((4, 2))
        pred = np.array([[0.0, 0.0], [0.5, 0.0], [2.0, 0.0], [3.0, 0.0]])
        assert matching_rate(real, pred, a=1.0) == pytest.approx(0.5)

    def test_threshold_inclusive(self):
        real = np.zeros((1, 2))
        pred = np.array([[1.0, 0.0]])
        assert matching_rate(real, pred, a=1.0) == 1.0

    def test_empty_routine(self):
        assert matching_rate(np.zeros((0, 2)), np.zeros((0, 2)), a=1.0) == 0.0

    def test_validates(self, rng):
        with pytest.raises(ValueError):
            matching_rate(np.zeros((2, 2)), np.zeros((3, 2)), a=1.0)
        with pytest.raises(ValueError):
            matching_rate(np.zeros((2, 2)), np.zeros((2, 2)), a=-1.0)

    @given(a=st.floats(0, 10))
    @settings(max_examples=20, deadline=None)
    def test_monotone_in_threshold(self, a):
        rng = np.random.default_rng(0)
        real = rng.normal(size=(20, 2))
        pred = real + rng.normal(0, 2, size=(20, 2))
        assert matching_rate(real, pred, a) <= matching_rate(real, pred, a + 1.0)


class TestTheorem2Bound:
    def test_detour_binds(self):
        # d/2 = 2 < d^t = 50
        assert theorem2_bound(4.0, deadline=100.0, current_time=0.0, speed_km_per_min=0.5) == 2.0

    def test_deadline_binds(self):
        # d^t = 0.5 * 2 = 1 < d/2 = 5
        assert theorem2_bound(10.0, deadline=2.0, current_time=0.0, speed_km_per_min=0.5) == 1.0

    def test_expired_task_negative(self):
        assert theorem2_bound(10.0, deadline=0.0, current_time=5.0, speed_km_per_min=1.0) < 0

    def test_validates(self):
        with pytest.raises(ValueError):
            theorem2_bound(-1.0, 10.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            theorem2_bound(1.0, 10.0, 0.0, 0.0)


class TestFeasiblePredictionPoints:
    def test_collects_within_bound(self):
        pred = np.array([[0.0, 0.0], [1.0, 0.0], [5.0, 0.0]])
        b = feasible_prediction_points(pred, np.array([0.0, 0.0]), a=0.5, bound=2.0)
        assert len(b) == 2  # distances 0 and 1 pass (0+0.5<=2, 1+0.5<=2); 5 fails
        assert b.min() == 0.0

    def test_empty_when_all_far(self):
        pred = np.array([[10.0, 10.0]])
        b = feasible_prediction_points(pred, np.array([0.0, 0.0]), a=0.5, bound=2.0)
        assert len(b) == 0

    def test_validates(self):
        with pytest.raises(ValueError):
            feasible_prediction_points(np.zeros((2, 2)), np.zeros(3), 0.5, 1.0)
        with pytest.raises(ValueError):
            feasible_prediction_points(np.zeros((2, 2)), np.zeros(2), -0.5, 1.0)


class TestCompletionHelpers:
    def test_completion_radius(self):
        assert completion_radius(2.0, 0.5) == 1.5
        assert completion_radius(0.5, 2.0) == 0.0

    def test_completion_probability(self):
        assert completion_probability(0, 0.5) == 0.0
        assert completion_probability(1, 0.5) == 0.5
        assert completion_probability(2, 0.5) == pytest.approx(0.75)

    def test_completion_probability_validates(self):
        with pytest.raises(ValueError):
            completion_probability(-1, 0.5)
        with pytest.raises(ValueError):
            completion_probability(1, 1.5)

    @given(b=st.integers(0, 20), mr=st.floats(0, 1))
    @settings(max_examples=30, deadline=None)
    def test_probability_in_unit_interval(self, b, mr):
        p = completion_probability(b, mr)
        assert 0.0 <= p <= 1.0


class TestTheorem2EndToEnd:
    """Theorem 2's claim exercised: when prediction error <= a and the
    task is within b of a predicted point with a + b <= min(d/2, d^t),
    the real detour and deadline constraints hold."""

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_feasibility_implies_real_constraints(self, seed):
        rng = np.random.default_rng(seed)
        d = rng.uniform(2, 8)
        speed = rng.uniform(0.3, 1.0)
        deadline = rng.uniform(20, 60)
        t_now = 0.0
        a = rng.uniform(0.1, 0.5)

        real_point = rng.uniform(0, 10, size=2)
        # Prediction within a of the real location.
        angle = rng.uniform(0, 2 * np.pi)
        pred_point = real_point + a * rng.uniform(0, 1) * np.array([np.cos(angle), np.sin(angle)])

        bound = theorem2_bound(d, deadline, t_now, speed)
        if bound <= a:
            return  # no feasible b exists; nothing to check
        # Task within b of the predicted point, with a + b <= bound.
        b = rng.uniform(0, bound - a)
        angle2 = rng.uniform(0, 2 * np.pi)
        task = pred_point + b * np.array([np.cos(angle2), np.sin(angle2)])

        dist_real = float(np.linalg.norm(task - real_point))
        # Detour: out-and-back from the real location is within d.
        assert 2 * dist_real <= d + 1e-9
        # Deadline: reachable from the real location in time.
        assert t_now + dist_real / speed <= deadline + 1e-9

"""Tests for repro.geo.point."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geo.point import (
    Point,
    euclidean,
    haversine,
    pairwise_distances,
    path_length,
)

finite = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False)


class TestPoint:
    def test_distance_to_self_is_zero(self):
        p = Point(3.0, 4.0)
        assert p.distance_to(p) == 0.0

    def test_distance_345(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_as_array_roundtrip(self):
        p = Point(1.5, -2.5)
        assert Point.from_array(p.as_array()) == p

    def test_from_array_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            Point.from_array([1.0, 2.0, 3.0])

    def test_translated(self):
        assert Point(1, 1).translated(2, -1) == Point(3, 0)

    def test_is_hashable(self):
        assert len({Point(0, 0), Point(0, 0), Point(1, 0)}) == 2

    def test_unpacking(self):
        x, y = Point(7.0, 8.0)
        assert (x, y) == (7.0, 8.0)

    @given(finite, finite, finite, finite)
    def test_symmetry(self, ax, ay, bx, by):
        a, b = Point(ax, ay), Point(bx, by)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(finite, finite, finite, finite, finite, finite)
    def test_triangle_inequality(self, ax, ay, bx, by, cx, cy):
        a, b, c = Point(ax, ay), Point(bx, by), Point(cx, cy)
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-9


class TestEuclidean:
    def test_accepts_points_and_tuples(self):
        assert euclidean(Point(0, 0), (3, 4)) == pytest.approx(5.0)

    def test_zero(self):
        assert euclidean((1, 1), (1, 1)) == 0.0


class TestHaversine:
    def test_zero_distance(self):
        assert haversine(41.15, -8.6, 41.15, -8.6) == pytest.approx(0.0)

    def test_one_degree_latitude_is_about_111km(self):
        assert haversine(0, 0, 1, 0) == pytest.approx(111.2, rel=0.01)

    def test_symmetry(self):
        d1 = haversine(41.0, -8.0, 41.2, -8.4)
        d2 = haversine(41.2, -8.4, 41.0, -8.0)
        assert d1 == pytest.approx(d2)


class TestPairwiseDistances:
    def test_shape(self):
        a = np.zeros((3, 2))
        b = np.ones((5, 2))
        assert pairwise_distances(a, b).shape == (3, 5)

    def test_values(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[3.0, 4.0], [0.0, 1.0]])
        got = pairwise_distances(a, b)
        assert got[0, 0] == pytest.approx(5.0)
        assert got[0, 1] == pytest.approx(1.0)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            pairwise_distances(np.zeros((3, 3)), np.zeros((3, 2)))

    def test_matches_manual_computation(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(4, 2))
        b = rng.normal(size=(6, 2))
        got = pairwise_distances(a, b)
        for i in range(4):
            for j in range(6):
                assert got[i, j] == pytest.approx(math.hypot(*(a[i] - b[j])))


class TestPathLength:
    def test_empty_and_single(self):
        assert path_length(np.zeros((0, 2))) == 0.0
        assert path_length([Point(1, 1)]) == 0.0

    def test_straight_line(self):
        pts = [Point(0, 0), Point(3, 4), Point(6, 8)]
        assert path_length(pts) == pytest.approx(10.0)

    def test_accepts_ndarray(self):
        arr = np.array([[0.0, 0.0], [0.0, 2.0]])
        assert path_length(arr) == pytest.approx(2.0)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            path_length(np.zeros((3, 3)))

"""Tests for PPI (Algorithm 4), the baselines, GGPSO, and plans."""

import numpy as np
import pytest

from repro.assignment.baselines import km_assign, lower_bound_assign, upper_bound_assign
from repro.assignment.ggpso import GGPSOConfig, ggpso_assign
from repro.assignment.plan import AssignmentPair, AssignmentPlan
from repro.assignment.ppi import PPIConfig, ppi_assign
from repro.geo.point import Point
from repro.sc.entities import SpatialTask, WorkerSnapshot


def snapshot(worker_id, points, mr=0.5, detour=4.0, speed=0.5, times=None, current=None):
    pts = np.asarray(points, dtype=float).reshape(-1, 2)
    if times is None:
        times = 10.0 * np.arange(1, len(pts) + 1)
    cur = current if current is not None else Point(float(pts[0, 0]), float(pts[0, 1]))
    return WorkerSnapshot(
        worker_id=worker_id,
        current_location=cur,
        predicted_xy=pts,
        predicted_times=np.asarray(times, dtype=float),
        detour_budget_km=detour,
        speed_km_per_min=speed,
        matching_rate=mr,
    )


def task(task_id, x, y, release=0.0, deadline=40.0):
    return SpatialTask(task_id=task_id, location=Point(x, y), release_time=release, deadline=deadline)


class TestAssignmentPlan:
    def test_rejects_duplicate_task(self):
        with pytest.raises(ValueError):
            AssignmentPlan([AssignmentPair(0, 0, 1.0), AssignmentPair(0, 1, 1.0)])

    def test_rejects_duplicate_worker(self):
        with pytest.raises(ValueError):
            AssignmentPlan([AssignmentPair(0, 0, 1.0), AssignmentPair(1, 0, 1.0)])

    def test_add_conflict(self):
        plan = AssignmentPlan([AssignmentPair(0, 0, 1.0)])
        with pytest.raises(ValueError):
            plan.add(AssignmentPair(1, 0, 1.0))

    def test_lookup(self):
        plan = AssignmentPlan([AssignmentPair(3, 7, 1.0)])
        assert plan.worker_for_task(3) == 7
        assert plan.worker_for_task(99) is None
        assert plan.task_ids() == {3}
        assert plan.worker_ids() == {7}


class TestPPI:
    def test_empty_inputs(self):
        assert len(ppi_assign([], [], 0.0)) == 0
        assert len(ppi_assign([task(0, 0, 0)], [], 0.0)) == 0

    def test_assigns_feasible_pair(self):
        workers = [snapshot(0, [[1.0, 0.0], [1.2, 0.0]], mr=0.9)]
        tasks = [task(0, 1.0, 0.1)]
        plan = ppi_assign(tasks, workers, 0.0)
        assert plan.worker_for_task(0) == 0

    def test_high_confidence_assigned_in_stage_one(self):
        # Two predicted points near the task, MR 0.9 -> |B|*MR = 1.8 >= 1.
        workers = [snapshot(0, [[1.0, 0.0], [1.1, 0.0], [0.9, 0.0]], mr=0.9)]
        plan = ppi_assign([task(0, 1.0, 0.0)], workers, 0.0, PPIConfig(a=0.3))
        assert plan.pairs[0].stage == 1

    def test_low_confidence_goes_to_stage_two(self):
        workers = [snapshot(0, [[1.0, 0.0]], mr=0.3)]  # |B|*MR = 0.3 < 1
        plan = ppi_assign([task(0, 1.0, 0.0)], workers, 0.0, PPIConfig(a=0.3))
        assert plan.pairs[0].stage == 2

    def test_out_of_radius_goes_to_stage_three(self):
        # Distance 1.8 + a 0.3 > bound 2.0 fails Theorem 2, but 1.8 <= 2.0
        # passes the plain stage-3 check.
        workers = [snapshot(0, [[1.8, 0.0]], mr=0.5, detour=4.0)]
        plan = ppi_assign([task(0, 0.0, 0.0)], workers, 0.0, PPIConfig(a=0.3))
        assert len(plan) == 1
        assert plan.pairs[0].stage == 3

    def test_infeasible_not_assigned(self):
        workers = [snapshot(0, [[50.0, 50.0]], mr=0.9)]
        plan = ppi_assign([task(0, 0.0, 0.0)], workers, 0.0)
        assert len(plan) == 0

    def test_prioritises_confident_worker(self):
        """One task, two equally-near workers: the one whose |B|*MR
        crosses the stage-1 threshold gets it."""
        confident = snapshot(0, [[1.0, 0.0], [1.0, 0.1]], mr=0.9)
        shaky = snapshot(1, [[1.0, 0.0], [1.0, 0.1]], mr=0.1)
        plan = ppi_assign([task(0, 1.0, 0.0)], [confident, shaky], 0.0, PPIConfig(a=0.3))
        assert plan.worker_for_task(0) == 0

    def test_each_worker_used_once(self):
        workers = [snapshot(0, [[0.0, 0.0]], mr=0.9)]
        tasks = [task(0, 0.0, 0.0), task(1, 0.1, 0.0)]
        plan = ppi_assign(tasks, workers, 0.0)
        assert len(plan) == 1

    def test_epsilon_chunking_still_covers_all(self):
        """Many stage-2 candidates with epsilon=1: every task that can be
        served still gets a worker."""
        workers = [snapshot(i, [[float(i), 0.0]], mr=0.2) for i in range(5)]
        tasks = [task(i, float(i), 0.2) for i in range(5)]
        plan = ppi_assign(tasks, workers, 0.0, PPIConfig(a=0.3, epsilon=1))
        assert len(plan) == 5

    def test_expired_task_skipped(self):
        workers = [snapshot(0, [[1.0, 0.0]], mr=0.9)]
        expired = task(0, 1.0, 0.0, release=0.0, deadline=5.0)
        plan = ppi_assign([expired], workers, current_time=10.0)
        assert len(plan) == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PPIConfig(a=-0.1)
        with pytest.raises(ValueError):
            PPIConfig(epsilon=0)


class TestKMBaseline:
    def test_matches_nearest_globally(self):
        workers = [snapshot(0, [[0.0, 0.0]]), snapshot(1, [[5.0, 0.0]])]
        tasks = [task(0, 0.1, 0.0), task(1, 5.1, 0.0)]
        plan = km_assign(tasks, workers, 0.0)
        assert plan.worker_for_task(0) == 0
        assert plan.worker_for_task(1) == 1

    def test_respects_bound(self):
        workers = [snapshot(0, [[0.0, 0.0]], detour=2.0)]
        plan = km_assign([task(0, 3.0, 0.0)], workers, 0.0)  # 3 > d/2 = 1
        assert len(plan) == 0


class TestUpperBound:
    def test_uses_real_route_feasibility(self):
        # Real route passes right by the task.
        oracle = snapshot(0, [[0.0, 0.0], [2.0, 0.0], [4.0, 0.0]], times=[0.0, 5.0, 10.0])
        plan = upper_bound_assign([task(0, 2.0, 0.1)], [oracle], 0.0)
        assert len(plan) == 1

    def test_deadline_enforced(self):
        oracle = snapshot(0, [[10.0, 0.0]], times=[100.0])
        # Task deadline long past the only reachable time.
        plan = upper_bound_assign([task(0, 10.0, 0.0, deadline=5.0)], [oracle], 0.0)
        assert len(plan) == 0

    def test_prefers_smaller_detour(self):
        near = snapshot(0, [[1.0, 0.1]], times=[1.0])
        far = snapshot(1, [[1.0, 1.5]], times=[1.0])
        plan = upper_bound_assign([task(0, 1.0, 0.0)], [near, far], 0.0)
        assert plan.worker_for_task(0) == 0


class TestLowerBound:
    def test_uses_current_location_only(self):
        w = snapshot(0, [[100.0, 100.0]], current=Point(1.0, 0.0))
        plan = lower_bound_assign([task(0, 1.0, 0.1)], [w], 0.0)
        assert len(plan) == 1

    def test_far_current_location_infeasible(self):
        w = snapshot(0, [[1.0, 0.0]], current=Point(100.0, 100.0))
        plan = lower_bound_assign([task(0, 1.0, 0.1)], [w], 0.0)
        assert len(plan) == 0


class TestGGPSO:
    def test_empty(self):
        assert len(ggpso_assign([], [], 0.0)) == 0

    def test_finds_obvious_assignment(self):
        workers = [snapshot(0, [[0.0, 0.0]]), snapshot(1, [[5.0, 0.0]])]
        tasks = [task(0, 0.1, 0.0), task(1, 5.1, 0.0)]
        plan = ggpso_assign(tasks, workers, 0.0, GGPSOConfig(generations=10))
        assert plan.worker_for_task(0) == 0
        assert plan.worker_for_task(1) == 1

    def test_plan_is_valid_matching(self):
        rng = np.random.default_rng(0)
        workers = [snapshot(i, rng.uniform(0, 5, size=(3, 2))) for i in range(6)]
        tasks = [task(i, *rng.uniform(0, 5, size=2)) for i in range(8)]
        plan = ggpso_assign(tasks, workers, 0.0, GGPSOConfig(generations=15))
        # AssignmentPlan construction already validates; double-check ids.
        assert plan.task_ids() <= {t.task_id for t in tasks}
        assert plan.worker_ids() <= {w.worker_id for w in workers}

    def test_never_worse_than_greedy_seed(self):
        """Elitism keeps the greedy seed, so total utility can only grow."""
        rng = np.random.default_rng(2)
        workers = [snapshot(i, rng.uniform(0, 6, size=(2, 2))) for i in range(5)]
        tasks = [task(i, *rng.uniform(0, 6, size=2)) for i in range(5)]
        short = ggpso_assign(tasks, workers, 0.0, GGPSOConfig(generations=1))
        long = ggpso_assign(tasks, workers, 0.0, GGPSOConfig(generations=40))
        assert sum(p.score for p in long) >= sum(p.score for p in short) - 1e-9

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GGPSOConfig(population_size=1)
        with pytest.raises(ValueError):
            GGPSOConfig(mutation_rate=2.0)
        with pytest.raises(ValueError):
            GGPSOConfig(elite=0)

"""Cross-module property-based tests (the invariants of DESIGN.md §7)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.assignment.hungarian import maximum_weight_matching
from repro.assignment.matching_rate import matching_rate, theorem2_bound
from repro.assignment.plan import AssignmentPair, AssignmentPlan
from repro.assignment.ppi import PPIConfig, ppi_assign
from repro.cluster.game import best_response_clustering
from repro.geo.detour import min_detour
from repro.geo.grid import Grid
from repro.geo.point import Point
from repro.sc.entities import SpatialTask, WorkerSnapshot
from repro.similarity.distribution import sliced_wasserstein

coord = st.floats(min_value=0.0, max_value=20.0, allow_nan=False)


@st.composite
def snapshots_and_tasks(draw):
    rng = np.random.default_rng(draw(st.integers(0, 10_000)))
    n_workers = draw(st.integers(1, 6))
    n_tasks = draw(st.integers(1, 8))
    workers = []
    for wid in range(n_workers):
        pts = rng.uniform(0, 10, size=(draw(st.integers(1, 5)), 2))
        workers.append(
            WorkerSnapshot(
                worker_id=wid,
                current_location=Point(*rng.uniform(0, 10, size=2)),
                predicted_xy=pts,
                predicted_times=10.0 * np.arange(1, len(pts) + 1),
                detour_budget_km=float(rng.uniform(0.5, 8.0)),
                speed_km_per_min=float(rng.uniform(0.2, 1.0)),
                matching_rate=float(rng.uniform(0, 1)),
            )
        )
    tasks = [
        SpatialTask(
            task_id=i,
            location=Point(*rng.uniform(0, 10, size=2)),
            release_time=0.0,
            deadline=float(rng.uniform(5, 60)),
        )
        for i in range(n_tasks)
    ]
    return tasks, workers


class TestPPIProperties:
    @settings(max_examples=40, deadline=None)
    @given(data=snapshots_and_tasks(), epsilon=st.integers(1, 6))
    def test_ppi_always_produces_valid_matching(self, data, epsilon):
        tasks, workers = data
        plan = ppi_assign(tasks, workers, 0.0, PPIConfig(a=0.3, epsilon=epsilon))
        # AssignmentPlan.add enforces injectivity; re-validate ids too.
        assert plan.task_ids() <= {t.task_id for t in tasks}
        assert plan.worker_ids() <= {w.worker_id for w in workers}

    @settings(max_examples=40, deadline=None)
    @given(data=snapshots_and_tasks())
    def test_ppi_edges_respect_theorem2_or_stage3_bound(self, data):
        tasks, workers = data
        cfg = PPIConfig(a=0.3)
        plan = ppi_assign(tasks, workers, 0.0, cfg)
        by_task = {t.task_id: t for t in tasks}
        by_worker = {w.worker_id: w for w in workers}
        for pair in plan:
            task, worker = by_task[pair.task_id], by_worker[pair.worker_id]
            bound = theorem2_bound(
                worker.detour_budget_km, task.deadline, 0.0, worker.speed_km_per_min
            )
            tloc = np.array([task.location.x, task.location.y])
            dis_min = float(np.sqrt(((worker.predicted_xy - tloc) ** 2).sum(axis=1)).min())
            assert dis_min <= bound + 1e-9, "every PPI edge obeys the stage-3 radius"


class TestMatchingProperties:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(1, 20))
    def test_max_weight_matching_beats_greedy(self, seed, n):
        rng = np.random.default_rng(seed)
        edges = [
            (int(rng.integers(6)), int(rng.integers(6)), float(rng.uniform(0.1, 5)))
            for _ in range(n)
        ]
        best = {}
        for l, r, w in edges:
            if w > best.get((l, r), 0.0):
                best[(l, r)] = w
        edges = [(l, r, w) for (l, r), w in best.items()]
        optimal = sum(w for _, _, w in maximum_weight_matching(edges))
        # Greedy by weight.
        used_l, used_r, greedy = set(), set(), 0.0
        for l, r, w in sorted(edges, key=lambda e: -e[2]):
            if l not in used_l and r not in used_r:
                greedy += w
                used_l.add(l)
                used_r.add(r)
        assert optimal >= greedy - 1e-9


class TestGameProperties:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(2, 12))
    def test_equilibrium_partition_and_potential(self, seed, n):
        rng = np.random.default_rng(seed)
        raw = rng.uniform(0, 1, size=(n, n))
        sim = (raw + raw.T) / 2
        np.fill_diagonal(sim, 1.0)
        init = rng.integers(0, max(n // 2, 1), size=n)
        result = best_response_clustering(sim, init, gamma=float(rng.uniform(0.05, 0.9)))
        assert result.converged
        assert sorted(i for c in result.clusters() for i in c) == list(range(n))
        trace = result.potential_trace
        assert all(b >= a - 1e-9 for a, b in zip(trace, trace[1:]))


class TestGeoProperties:
    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_detour_dominated_by_out_and_back(self, seed):
        """Insertion detour never exceeds twice the closest distance."""
        rng = np.random.default_rng(seed)
        route = rng.uniform(0, 10, size=(rng.integers(2, 8), 2))
        target = Point(*rng.uniform(0, 10, size=2))
        detour, _ = min_detour(route, target)
        closest = float(np.sqrt(((route - [target.x, target.y]) ** 2).sum(axis=1)).min())
        assert detour <= 2 * closest + 1e-9

    @settings(max_examples=50, deadline=None)
    @given(x=coord, y=coord)
    def test_grid_cell_roundtrip_error_bounded(self, x, y):
        grid = Grid(width_km=20.0, height_km=10.0, rows=100, cols=50)
        p = grid.clamp(Point(x, y))
        i, j = grid.to_cell(p)
        center = grid.cell_center(i, j)
        assert p.distance_to(center) <= np.hypot(grid.cell_width, grid.cell_height) / 2 + 1e-9


class TestSimilarityProperties:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000), shift=st.floats(0, 5))
    def test_sliced_wasserstein_monotone_in_shift(self, seed, shift):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(20, 2))
        rng0 = np.random.default_rng(0)
        near = sliced_wasserstein(a, a + shift / 2, rng=rng0)
        rng0 = np.random.default_rng(0)
        far = sliced_wasserstein(a, a + shift, rng=rng0)
        assert far >= near - 1e-9

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000), a=st.floats(0, 3))
    def test_matching_rate_identity(self, seed, a):
        rng = np.random.default_rng(seed)
        r = rng.normal(size=(15, 2))
        assert matching_rate(r, r, a) == 1.0


class TestPlanProperties:
    @settings(max_examples=40, deadline=None)
    @given(pairs=st.lists(st.tuples(st.integers(0, 30), st.integers(0, 30)), max_size=15))
    def test_plan_rejects_exactly_duplicates(self, pairs):
        tasks = [t for t, _ in pairs]
        workers = [w for _, w in pairs]
        has_dupe = len(set(tasks)) != len(tasks) or len(set(workers)) != len(workers)
        build = lambda: AssignmentPlan(
            [AssignmentPair(t, w, 1.0) for t, w in pairs]
        )
        if has_dupe:
            with pytest.raises(ValueError):
                build()
        else:
            assert len(build()) == len(pairs)

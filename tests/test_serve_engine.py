"""Tests for the event-driven serving engine and its building blocks."""

import pytest

from repro.geo.point import Point
from repro.sc.entities import SpatialTask
from repro.serve import (
    BatchTick,
    DemandAdaptiveTrigger,
    EventPhase,
    EventQueue,
    FixedWindowTrigger,
    ServeConfig,
    ServeEngine,
    ServeResult,
    TaskArrival,
    TaskCancel,
    TaskDeadline,
    WorkerCheckIn,
    WorkerCheckOut,
)

from tests.conftest import straight_trajectory
from tests.test_sc import greedy_assign, make_worker, oracle_provider


def task_at(task_id, x, y, release, deadline):
    return SpatialTask(task_id, Point(x, y), release, deadline)


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        q.push(TaskDeadline(time=5.0, task_id=1))
        q.push(TaskArrival(time=1.0, task=task_at(0, 0, 0, 1.0, 9.0)))
        q.push(BatchTick(time=3.0))
        assert [e.time for e in (q.pop(), q.pop(), q.pop())] == [1.0, 3.0, 5.0]

    def test_phase_order_at_equal_time(self):
        """At one timestamp: arrivals/check-ins, then the batch, then
        deadlines/cancellations/check-outs."""
        q = EventQueue()
        w = make_worker()
        q.push(TaskCancel(time=2.0, task_id=0))
        q.push(WorkerCheckOut(time=2.0, worker_id=0))
        q.push(BatchTick(time=2.0))
        q.push(TaskDeadline(time=2.0, task_id=1))
        q.push(WorkerCheckIn(time=2.0, worker=w))
        q.push(TaskArrival(time=2.0, task=task_at(0, 0, 0, 2.0, 9.0)))
        phases = [q.pop().phase for _ in range(6)]
        assert phases == [
            EventPhase.OPEN,
            EventPhase.OPEN,
            EventPhase.BATCH,
            EventPhase.CLOSE,
            EventPhase.CLOSE,
            EventPhase.CLOSE,
        ]

    def test_fifo_within_phase(self):
        q = EventQueue()
        for task_id in range(5):
            q.push(TaskDeadline(time=1.0, task_id=task_id))
        assert [q.pop().task_id for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_peek_and_len(self):
        q = EventQueue()
        assert not q
        q.push(BatchTick(time=4.0))
        q.push(BatchTick(time=2.0))
        assert len(q) == 2
        assert q.peek_time() == 2.0
        q.pop()
        assert q.peek_time() == 4.0


class TestTriggers:
    def test_fixed_never_fires_early(self):
        trig = FixedWindowTrigger(window=2.0)
        pending = {0: task_at(0, 0, 0, 0.0, 0.1)}
        assert not trig.should_fire_early(1.0, 0.0, pending)
        assert trig.next_tick(4.0) == 6.0

    def test_fixed_validates_window(self):
        with pytest.raises(ValueError):
            FixedWindowTrigger(window=0.0)

    def test_adaptive_fires_on_queue_pressure(self):
        trig = DemandAdaptiveTrigger(window=2.0, pending_threshold=2)
        near = {i: task_at(i, 0, 0, 0.0, 60.0) for i in range(2)}
        assert trig.should_fire_early(1.0, 0.0, near)
        assert not trig.should_fire_early(1.0, 0.0, {0: near[0]})

    def test_adaptive_fires_on_deadline_pressure(self):
        trig = DemandAdaptiveTrigger(window=2.0, deadline_slack=1.0)
        assert trig.should_fire_early(1.0, 0.0, {0: task_at(0, 0, 0, 0.0, 1.5)})
        assert not trig.should_fire_early(1.0, 0.0, {0: task_at(0, 0, 0, 0.0, 60.0)})

    def test_adaptive_respects_refractory_interval(self):
        trig = DemandAdaptiveTrigger(window=2.0, pending_threshold=1, min_interval=0.5)
        pending = {0: task_at(0, 0, 0, 0.0, 60.0)}
        assert not trig.should_fire_early(0.4, 0.0, pending)
        assert trig.should_fire_early(0.5, 0.0, pending)

    def test_adaptive_validates(self):
        with pytest.raises(ValueError):
            DemandAdaptiveTrigger(pending_threshold=0)
        with pytest.raises(ValueError):
            DemandAdaptiveTrigger(deadline_slack=-1.0)
        with pytest.raises(ValueError):
            DemandAdaptiveTrigger(min_interval=0.0)


class TestServeConfig:
    def test_defaults_are_batch_platform(self):
        cfg = ServeConfig()
        assert cfg.trigger == "fixed"
        assert cfg.max_pending is None
        assert cfg.cache_ttl == 0.0
        assert not cfg.use_index

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"batch_window": 0.0},
            {"assignment_window": 0.0},
            {"trigger": "eager"},
            {"max_pending": 0},
            {"cache_ttl": -1.0},
            {"index_cell_km": 0.0},
            {"max_candidates": 0},
        ],
    )
    def test_validates(self, kwargs):
        with pytest.raises(ValueError):
            ServeConfig(**kwargs)

    def test_makes_matching_trigger(self):
        assert isinstance(ServeConfig().make_trigger(), FixedWindowTrigger)
        adaptive = ServeConfig(trigger="adaptive", pending_threshold=3).make_trigger()
        assert isinstance(adaptive, DemandAdaptiveTrigger)
        assert adaptive.pending_threshold == 3


def make_engine(workers=None, config=None, assign_fn=greedy_assign, **kwargs):
    return ServeEngine(
        workers if workers is not None else [make_worker()],
        oracle_provider,
        config=config,
        assign_fn=assign_fn,
        **kwargs,
    )


class TestServeEngine:
    def test_requires_assign_fn(self):
        with pytest.raises(ValueError, match="assignment function"):
            ServeEngine([make_worker()], oracle_provider, assign_fn=None)

    def test_index_requires_candidate_fn(self):
        with pytest.raises(ValueError, match="candidate-aware"):
            make_engine(config=ServeConfig(use_index=True))

    def test_rejects_duplicate_worker_ids(self):
        with pytest.raises(ValueError, match="unique"):
            make_engine(workers=[make_worker(0), make_worker(0)])

    def test_rejects_duplicate_task_ids(self):
        engine = make_engine()
        tasks = [task_at(0, 1, 0, 0.0, 10.0), task_at(0, 2, 0, 0.0, 10.0)]
        with pytest.raises(ValueError, match="unique"):
            engine.run(tasks, 0.0, 10.0)

    def test_rejects_inverted_horizon(self):
        with pytest.raises(ValueError):
            make_engine().run([], 10.0, 0.0)

    def test_completes_easy_task(self):
        result = make_engine().run([task_at(0, 5.0, 0.0, 0.0, 60.0)], 0.0, 60.0)
        assert result.n_completed == 1
        assert result.n_batches == len(result.batches) >= 1

    def test_counts_are_conserved(self):
        tasks = [
            task_at(i, 1.0 + i, (i % 3) * 2.0, float(i), float(i) + 15.0) for i in range(12)
        ]
        result = make_engine().run(tasks, 0.0, 30.0)
        assert result.n_completed + result.n_expired + result.n_shed == result.n_tasks

    def test_counts_conserved_under_shedding(self):
        tasks = [task_at(i, 50.0, 50.0, 0.5, 30.0 + i) for i in range(10)]
        engine = make_engine(config=ServeConfig(max_pending=3))
        result = engine.run(tasks, 0.0, 30.0)
        assert result.n_shed == 7
        assert result.n_completed + result.n_expired + result.n_shed == result.n_tasks

    def test_shedding_prefers_least_slack_victim(self):
        """The queue keeps the tasks with the most deadline headroom."""
        far = [task_at(i, 50.0, 50.0, 0.0, 10.0 + i) for i in range(3)]
        # Arrives later with a later deadline than every queued task: the
        # queued task with the earliest deadline is shed to make room.
        late = task_at(99, 50.0, 50.0, 0.5, 60.0)
        engine = make_engine(config=ServeConfig(max_pending=3))
        batches = []

        def snooping_assign(batch_tasks, snapshots, t):
            batches.append(sorted(t.task_id for t in batch_tasks))
            return greedy_assign([], snapshots, t)

        engine.assign_fn = snooping_assign
        result = engine.run(far + [late], 0.0, 4.0)
        assert result.n_shed == 1
        # First batch (t=0) predates the late arrival; after it lands,
        # task 0 (deadline 10.0, the least slack) has been shed.
        assert batches[-1] == [1, 2, 99]

    def test_new_task_shed_when_it_has_least_slack(self):
        roomy = [task_at(i, 50.0, 50.0, 0.0, 60.0 + i) for i in range(3)]
        urgent = task_at(99, 50.0, 50.0, 0.5, 5.0)
        engine = make_engine(config=ServeConfig(max_pending=3))
        batches = []

        def snooping_assign(batch_tasks, snapshots, t):
            batches.append(sorted(t.task_id for t in batch_tasks))
            return greedy_assign([], snapshots, t)

        engine.assign_fn = snooping_assign
        result = engine.run(roomy + [urgent], 0.0, 4.0)
        assert result.n_shed == 1
        assert batches[-1] == [0, 1, 2]  # the urgent newcomer was shed

    def test_adaptive_trigger_fires_early_batches(self):
        tasks = [task_at(i, 1.0, 0.0, 0.5 + 0.01 * i, 60.0) for i in range(5)]
        engine = make_engine(
            config=ServeConfig(trigger="adaptive", pending_threshold=3, min_trigger_interval=0.25)
        )
        result = engine.run(tasks, 0.0, 10.0)
        assert result.n_early_batches >= 1
        early_times = [b.batch_time for b in result.batches]
        # An early batch fired between the scheduled t=0 and t=2 ticks.
        assert any(0.0 < t < 2.0 for t in early_times)

    def test_fixed_trigger_keeps_cadence(self):
        tasks = [task_at(i, 1.0, 0.0, 0.5, 60.0) for i in range(5)]
        result = make_engine().run(tasks, 0.0, 10.0)
        assert result.n_early_batches == 0
        for record in result.batches:
            assert record.batch_time == pytest.approx(round(record.batch_time / 2.0) * 2.0)

    def test_worker_checkin_checkout_window(self):
        """Batches only see workers inside their routine time span."""
        w = make_worker(routine=straight_trajectory(t0=10.0, t1=20.0))
        engine = make_engine(workers=[w])
        tasks = [task_at(0, 5.0, 0.0, 0.0, 60.0)]
        result = engine.run(tasks, 0.0, 30.0)
        for record in result.batches:
            assert 10.0 <= record.batch_time <= 20.0

    def test_dead_on_arrival_expires_without_attempt(self):
        engine = make_engine(config=ServeConfig(batch_window=4.0, assignment_window=1.0))
        # Window closes at t=2; the first tick after release is t=4.
        tasks = [task_at(0, 5.0, 0.0, 1.0, 60.0)]
        result = engine.run(tasks, 0.0, 12.0)
        assert result.n_assignments == 0
        assert result.n_expired == 1

    def test_outcome_listener_sees_assignments(self):
        seen = []
        engine = make_engine()
        engine.run(
            [task_at(0, 5.0, 0.0, 0.0, 60.0)],
            0.0,
            60.0,
            outcome_listener=lambda task_id, worker_id, ok, t: seen.append((task_id, ok)),
        )
        assert seen and seen[0][0] == 0

    def test_result_properties_guard_zero_division(self):
        result = ServeResult(n_tasks=0, n_completed=0, n_assignments=0, n_rejections=0, n_expired=0)
        assert result.cache_hit_rate == 0.0
        assert result.candidate_sparsity == 0.0

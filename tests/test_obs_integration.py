"""Integration tests: the instrumented pipeline under a live recorder.

The hot layers (meta-training, clustering, assignment, the platform
loop) carry ``obs`` instrumentation that is inert by default; these
tests install a real recorder around the shipped entry points and
check the span tree and metric names the observability docs promise.
"""

import json
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.assignment.hungarian import solve_assignment
from repro.cli import main
from repro.meta.maml import MAMLConfig
from repro.obs import MemorySink, aggregate, read_manifest, read_trace
from repro.pipeline.config import AssignmentConfig, PredictionConfig
from repro.pipeline.experiment import run_assignment
from repro.pipeline.training import train_predictor

sys.path.insert(0, str(Path(__file__).parent.parent / "benchmarks"))

from check_regression import attribute_phase, compare  # noqa: E402


class TestAssignmentSpans:
    @pytest.fixture(scope="class")
    def recorded_lb(self, small_workload):
        sink = MemorySink()
        with obs.recording(sink):
            result = run_assignment(small_workload, "lb", AssignmentConfig())
        return sink, result

    def test_run_assignment_span_tree(self, recorded_lb):
        sink, _ = recorded_lb
        report = aggregate(sink.records)
        paths = set(report.stats)
        assert ("experiment.run_assignment",) in paths
        assert ("experiment.run_assignment", "platform.batch") in paths
        assert ("experiment.run_assignment", "platform.batch", "platform.predict") in paths
        assert ("experiment.run_assignment", "platform.batch", "platform.assign") in paths

    def test_run_span_records_outcome(self, recorded_lb):
        sink, result = recorded_lb
        run_span = next(r for r in sink.spans if r["name"] == "experiment.run_assignment")
        assert run_span["attrs"]["algorithm"] == "lb"
        assert run_span["attrs"]["completed"] == result.n_completed
        assert run_span["attrs"]["rejections"] == result.n_rejections

    def test_platform_counters(self, recorded_lb):
        sink, result = recorded_lb
        counters = sink.metrics["counters"]
        assert counters["platform.assignments"] == result.n_assignments
        assert counters["acceptance.accepted"] == result.n_completed
        assert counters.get("acceptance.rejections", 0.0) == result.n_rejections

    def test_prediction_time_split_out(self, recorded_lb):
        # Satellite fix: running_seconds covers snapshot building too,
        # with the prediction share exposed separately.
        _, result = recorded_lb
        assert result.prediction_seconds >= 0.0
        assert result.metrics().running_seconds == pytest.approx(
            result.algorithm_seconds + result.prediction_seconds
        )

    def test_km_solver_metrics(self):
        sink = MemorySink()
        with obs.recording(sink):
            solve_assignment(np.array([[1.0, 2.0], [2.0, 1.0]]))
        metrics = sink.metrics
        assert metrics["counters"]["km.solves"] == 1.0
        assert metrics["histograms"]["km.matrix_size"]["max"] == 4.0
        assert metrics["histograms"]["km.solve_seconds"]["count"] == 1


class TestTrainingSpans:
    @pytest.fixture(scope="class")
    def recorded_training(self, small_workload, learning_tasks):
        config = PredictionConfig(
            algorithm="gttaml",
            loss="mse",
            hidden_size=8,
            fine_tune_steps=2,
            maml=MAMLConfig(iterations=2, meta_batch=2, inner_steps=2, support_batch=8),
        )
        sink = MemorySink()
        with obs.recording(sink):
            train_predictor(
                learning_tasks, small_workload.city, config, small_workload.historical_tasks_xy
            )
        return sink

    def test_offline_stage_span_tree(self, recorded_training):
        report = aggregate(recorded_training.records)
        names = {stat.path[-1] for stat in report.stats.values()}
        assert {
            "training.offline",
            "training.probe_paths",
            "training.cluster",
            "training.meta_train",
            "training.adapt",
            "gtmc.cluster",
            "taml.train",
            "maml.meta_train",
        } <= names
        # Everything nests under the offline stage root.
        root = report.stats[("training.offline",)]
        assert root.depth == 0 and root.count == 1

    def test_meta_training_metrics(self, recorded_training):
        metrics = recorded_training.metrics
        counters = metrics["counters"]
        assert counters["maml.inner_loop_steps"] > 0
        assert counters["maml.meta_iterations"] > 0
        assert counters["training.workers_adapted"] > 0
        assert metrics["histograms"]["maml.query_loss"]["count"] > 0
        assert metrics["histograms"]["training.worker_mr"]["count"] > 0
        assert metrics["gauges"]["taml.tree_nodes"] >= 1


class TestCliTracing:
    """End-to-end: the acceptance-criteria run of ISSUE 2."""

    @pytest.fixture(scope="class")
    def traced_ppi(self, tmp_path_factory):
        trace = tmp_path_factory.mktemp("obs") / "run.trace.jsonl"
        code = main([
            "assign", "--algorithm", "ppi", "--n-workers", "5",
            "--n-tasks", "30", "--n-train-days", "2", "--iterations", "2",
            "--trace", str(trace),
        ])
        assert code == 0
        return trace

    def test_trace_and_manifest_written(self, traced_ppi):
        trace = traced_ppi
        manifest_path = trace.with_name("run.manifest.json")
        assert trace.exists() and manifest_path.exists()
        manifest = read_manifest(manifest_path)
        assert manifest.command == "assign"
        assert "--algorithm" in manifest.argv and "ppi" in manifest.argv
        assert manifest.config["algorithm"] == "ppi"
        assert manifest.seed == 1
        assert manifest.trace_path == str(trace)
        assert "completion_ratio" in manifest.metrics

    def test_trace_covers_the_whole_pipeline(self, traced_ppi):
        report = aggregate(read_trace(traced_ppi))
        names = {stat.path[-1] for stat in report.stats.values()}
        assert {
            "training.offline",
            "training.cluster",
            "platform.predict",
            "ppi.stage1",
            "ppi.stage2",
            "ppi.stage3",
        } <= names
        counters = report.metrics["counters"]
        assert {"ppi.stage1.assigned", "ppi.stage2.assigned", "ppi.stage3.assigned"} <= set(
            counters
        )

    def test_trace_report_renders(self, traced_ppi, capsys):
        assert main(["trace-report", str(traced_ppi)]) == 0
        out = capsys.readouterr().out
        for name in ("training.offline", "ppi.stage1", "platform.assign", "km.solves"):
            assert name in out

    def test_trace_report_json(self, traced_ppi, capsys):
        assert main(["trace-report", str(traced_ppi), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_spans"] > 0
        paths = {tuple(s["path"]) for s in payload["spans"]}
        assert any(p[-1] == "ppi.stage1" for p in paths)
        assert "counters" in payload["metrics"]

    def test_assign_json_output(self, capsys):
        code = main([
            "assign", "--algorithm", "lb", "--n-workers", "5",
            "--n-tasks", "20", "--n-train-days", "2", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "lb"
        assert "completion_ratio" in payload["metrics"]
        assert "prediction_seconds" in payload and "algorithm_seconds" in payload


class TestRegressionAttribution:
    def _entry(self, tape, fused, batched):
        return {
            "speedup": {"single": tape / fused, "batched": tape / (batched / 12)},
            "phases": {
                "tape_step": {"count": 10, "best_s": tape, "p50_s": tape, "mean_s": tape},
                "fused_step": {"count": 10, "best_s": fused, "p50_s": fused, "mean_s": fused},
                "batched_step": {
                    "count": 10, "best_s": batched, "p50_s": batched, "mean_s": batched,
                },
            },
        }

    def test_failure_names_the_drifting_phase(self):
        baseline = {"shapes": {"s": self._entry(1.0, 0.25, 1.2)}}
        # The fused path got 2x slower; tape and batched unchanged.
        current = {"shapes": {"s": self._entry(1.0, 0.5, 1.2)}}
        failures = compare(baseline, current)
        assert len(failures) == 1
        assert "s/single" in failures[0]
        assert "fused_step" in failures[0]

    def test_attribution_without_phase_data(self):
        base = {"speedup": {"single": 4.0, "batched": 8.0}}
        cur = {"speedup": {"single": 1.0, "batched": 8.0}}
        assert "no per-phase timings" in attribute_phase(base, cur)

    def test_no_failures_within_tolerance(self):
        baseline = {"shapes": {"s": self._entry(1.0, 0.25, 1.2)}}
        assert compare(baseline, baseline) == []

"""Tests for the sweep runner: grid expansion, manifests, reporting."""

import json

import pytest

from repro.scenarios import (
    Cell,
    RunSpec,
    expand_cells,
    load_cell_manifests,
    manifest_path,
    render_table,
    report_payload,
    resolve_run_spec,
    rows_from_manifests,
    run_sweep,
    set_path,
)

SWEEP_DOC = {
    "name": "grid",
    "scenario": {
        "generator": "uniform",
        "seed": 1,
        "params": {"n_workers": 25, "n_tasks": 50, "t_end": 15.0,
                   "width_km": 10.0, "height_km": 10.0},
    },
    "policy": {"index": {"enabled": True, "cell_km": 2.0}},
    "sweep": {
        "scenario.seed": [1, 2],
        "policy.trigger.kind": ["fixed", "adaptive"],
    },
}


def sweep_spec():
    return RunSpec.from_dict(SWEEP_DOC)


class TestSetPath:
    def test_overrides_leaf(self):
        doc = {"policy": {"cache": {"ttl": 0.0}}}
        set_path(doc, "policy.cache.ttl", 6.0)
        assert doc["policy"]["cache"]["ttl"] == 6.0

    def test_creates_missing_mappings(self):
        doc = {}
        set_path(doc, "scenario.params.n_tasks", 40)
        assert doc == {"scenario": {"params": {"n_tasks": 40}}}


class TestExpandCells:
    def test_grid_is_cross_product_in_axis_major_order(self):
        cells = expand_cells(sweep_spec())
        assert len(cells) == 4
        assert [c.overrides for c in cells] == [
            {"scenario.seed": 1, "policy.trigger.kind": "fixed"},
            {"scenario.seed": 1, "policy.trigger.kind": "adaptive"},
            {"scenario.seed": 2, "policy.trigger.kind": "fixed"},
            {"scenario.seed": 2, "policy.trigger.kind": "adaptive"},
        ]
        assert cells[0].label == "seed=1,trigger.kind=fixed"
        assert [c.index for c in cells] == [0, 1, 2, 3]

    def test_cells_carry_resolved_specs(self):
        cells = expand_cells(sweep_spec())
        assert cells[2].spec.scenario.seed == 2
        assert cells[1].spec.policy.trigger.kind == "adaptive"
        assert all(c.spec.sweep == {} for c in cells)

    def test_no_axes_yields_single_cell(self):
        spec = resolve_run_spec({"scenario": "smoke", "name": "solo"})
        cells = expand_cells(spec)
        assert [(c.index, c.label) for c in cells] == [(0, "solo")]

    def test_cli_axis_overrides_file_axis(self):
        cells = expand_cells(sweep_spec(), {"scenario.seed": [9]})
        assert len(cells) == 2
        assert all(c.spec.scenario.seed == 9 for c in cells)

    def test_axis_must_target_scenario_or_policy(self):
        with pytest.raises(ValueError, match="scenario\\."):
            expand_cells(sweep_spec(), {"index.enabled": [True, False]})

    def test_cell_values_revalidated(self):
        with pytest.raises(ValueError, match="adaptive"):
            expand_cells(sweep_spec(), {"policy.trigger.kind": ["psychic"]})


class TestManifestPath:
    def test_slug_is_filesystem_safe(self):
        path = manifest_path("/tmp/out", 3, "seed=1,trigger.kind=fixed")
        assert path.name == "cell003-seed-1-trigger.kind-fixed.manifest.json"


class TestRunSweep:
    @pytest.fixture(scope="class")
    def sweep_out(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("sweep")
        summaries = run_sweep(sweep_spec(), out_dir=out, argv=["test"])
        return out, summaries

    def test_one_manifest_per_cell(self, sweep_out):
        out, summaries = sweep_out
        assert len(summaries) == 4
        manifests = load_cell_manifests(out)
        assert len(manifests) == 4

    def test_manifest_schema(self, sweep_out):
        out, summaries = sweep_out
        for summary, manifest in zip(summaries, load_cell_manifests(out)):
            assert manifest.command == "scenarios-run"
            assert manifest.labels["sweep"] == "grid"
            assert manifest.labels["cell"] == str(summary["cell"])
            assert manifest.labels["cell_label"] == summary["label"]
            assert manifest.metrics["signature_digest"] == summary["signature_digest"]
            assert set(manifest.config["overrides"]) == {
                "scenario.seed",
                "policy.trigger.kind",
            }
            assert 0.0 <= manifest.metrics["completion_ratio"] <= 1.0
            assert manifest.metrics["throughput_tasks_per_s"] > 0.0

    def test_seed_axis_changes_digest_deterministically(self, sweep_out):
        _, summaries = sweep_out
        digests = {s["label"]: s["signature_digest"] for s in summaries}
        # Same policy, different seed: different outcome.
        assert digests["seed=1,trigger.kind=fixed"] != digests["seed=2,trigger.kind=fixed"]
        # Re-running the whole grid reproduces every digest.
        again = run_sweep(sweep_spec())
        assert [s["signature_digest"] for s in again] == [
            s["signature_digest"] for s in summaries
        ]

    def test_process_cell_backend_matches_serial(self, sweep_out):
        _, serial = sweep_out
        pooled = run_sweep(
            sweep_spec(), cell_backend="process", cell_workers=2
        )
        assert [s["signature_digest"] for s in pooled] == [
            s["signature_digest"] for s in serial
        ]

    def test_unknown_cell_backend_rejected(self):
        with pytest.raises(ValueError, match="cell backend"):
            run_sweep(sweep_spec(), cell_backend="quantum")


class TestReport:
    def test_rows_match_run_summaries(self, tmp_path):
        spec = RunSpec.from_dict(
            {**SWEEP_DOC, "sweep": {"scenario.seed": [1, 2]}}
        )
        summaries = run_sweep(spec, out_dir=tmp_path)
        rows = rows_from_manifests(load_cell_manifests(tmp_path))
        assert [r["signature_digest"] for r in rows] == [
            s["signature_digest"] for s in summaries
        ]
        assert [r["label"] for r in rows] == [s["label"] for s in summaries]
        table = render_table(rows, title="test sweep")
        assert "test sweep" in table
        for row in rows:
            assert row["signature_digest"][:12] in table
        payload = report_payload(rows, source=str(tmp_path))
        assert payload["n_cells"] == 2
        assert json.dumps(payload)  # JSON-serialisable end to end

    def test_report_survives_unknown_manifest_fields(self, tmp_path):
        spec = RunSpec.from_dict({**SWEEP_DOC, "sweep": {}})
        run_sweep(spec, out_dir=tmp_path)
        # Future writers may add fields; the reader must ignore them.
        path = next(tmp_path.glob("cell*.manifest.json"))
        doc = json.loads(path.read_text())
        doc["from_the_future"] = {"x": 1}
        path.write_text(json.dumps(doc))
        rows = rows_from_manifests(load_cell_manifests(tmp_path))
        assert len(rows) == 1

"""Tests for TAML (Algorithm 2), newcomer placement, and the CTML baseline."""

import numpy as np
import pytest

from repro.meta.ctml import CTMLConfig, ctml_train
from repro.meta.learning_task import LearningTask
from repro.meta.maml import MAMLConfig
from repro.meta.task_tree import LearningTaskTree
from repro.meta.taml import TAMLConfig, initialize_from_tree, place_learning_task, taml_train
from repro.nn.layers import MLP
from repro.nn.losses import mse_loss


def linear_task(worker_id, scale, seed=0, n=16):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, size=(n, 1, 2))
    y = x * scale
    half = max(n - 4, 1)
    return LearningTask(
        worker_id,
        x[:half],
        y[:half],
        x[half:],
        y[half:],
        location_sample=rng.normal(scale * 10, 0.5, size=(20, 2)),
    )


def factory():
    return MLP([2, 8, 2], np.random.default_rng(42))


def small_maml():
    return MAMLConfig(meta_lr=0.1, inner_lr=0.2, inner_steps=2, meta_batch=3, iterations=8)


@pytest.fixture
def two_group_tree():
    """Root with two leaves: scale-1 tasks and scale-2 tasks."""
    g1 = [linear_task(i, 1.0, seed=i) for i in range(3)]
    g2 = [linear_task(i + 10, 2.0, seed=i + 10) for i in range(3)]
    root = LearningTaskTree(cluster=g1 + g2)
    root.add_child(LearningTaskTree(cluster=g1))
    root.add_child(LearningTaskTree(cluster=g2))
    return root, g1, g2


class TestTAML:
    def test_trains_every_node(self, two_group_tree):
        tree, _, _ = two_group_tree
        taml_train(tree, factory, mse_loss, TAMLConfig(maml=small_maml()), rng=np.random.default_rng(0))
        for node in tree.iter_nodes():
            assert node.theta is not None

    def test_leaf_thetas_differ(self, two_group_tree):
        tree, _, _ = two_group_tree
        taml_train(tree, factory, mse_loss, TAMLConfig(maml=small_maml()), rng=np.random.default_rng(0))
        a, b = tree.children
        diffs = [np.abs(a.theta[k] - b.theta[k]).max() for k in a.theta]
        assert max(diffs) > 1e-4

    def test_root_theta_moves_toward_children_mean(self, two_group_tree):
        tree, _, _ = two_group_tree
        init = factory().state_dict()
        tree.theta = {k: v.copy() for k, v in init.items()}
        taml_train(tree, factory, mse_loss, TAMLConfig(maml=small_maml(), tree_rate=1.0), rng=np.random.default_rng(0))
        for key in tree.theta:
            mean_child = np.mean([c.theta[key] for c in tree.children], axis=0)
            assert np.allclose(tree.theta[key], mean_child)

    def test_returns_mean_loss(self, two_group_tree):
        tree, _, _ = two_group_tree
        loss = taml_train(tree, factory, mse_loss, TAMLConfig(maml=small_maml()), rng=np.random.default_rng(0))
        assert np.isfinite(loss)

    def test_tree_rate_validation(self):
        with pytest.raises(ValueError):
            TAMLConfig(tree_rate=0.0)

    def test_single_leaf_tree(self):
        tasks = [linear_task(i, 1.0, seed=i) for i in range(3)]
        tree = LearningTaskTree(cluster=tasks)
        loss = taml_train(tree, factory, mse_loss, TAMLConfig(maml=small_maml()), rng=np.random.default_rng(0))
        assert tree.theta is not None
        assert np.isfinite(loss)


class TestNewcomerPlacement:
    def _distribution_sim(self, a, b):
        da = a.location_sample.mean(axis=0)
        db = b.location_sample.mean(axis=0)
        return float(1.0 / (1.0 + np.linalg.norm(da - db)))

    def test_places_newcomer_with_similar_group(self, two_group_tree):
        tree, g1, g2 = two_group_tree
        taml_train(tree, factory, mse_loss, TAMLConfig(maml=small_maml()), rng=np.random.default_rng(0))
        newcomer = linear_task(99, 1.0, seed=99)  # similar to group 1
        node = place_learning_task(tree, newcomer, self._distribution_sim)
        g1_ids = {t.worker_id for t in g1}
        assert {t.worker_id for t in node.cluster} <= g1_ids | {t.worker_id for t in tree.cluster}
        # The chosen node should cover group 1's workers, not group 2's.
        covered = set(node.worker_ids())
        assert covered & g1_ids
        assert not covered & {t.worker_id for t in g2} or covered >= g1_ids

    def test_requires_trained_tree(self, two_group_tree):
        tree, _, _ = two_group_tree
        with pytest.raises(ValueError):
            place_learning_task(tree, linear_task(99, 1.0), self._distribution_sim)

    def test_initialize_from_tree_known_worker(self, two_group_tree):
        tree, g1, _ = two_group_tree
        taml_train(tree, factory, mse_loss, TAMLConfig(maml=small_maml()), rng=np.random.default_rng(0))
        model = initialize_from_tree(tree, g1[0].worker_id, factory)
        leaf = tree.find_leaf_for_worker(g1[0].worker_id)
        for name, arr in model.state_dict().items():
            assert np.allclose(arr, leaf.theta[name])

    def test_initialize_from_tree_unknown_worker_uses_root(self, two_group_tree):
        tree, _, _ = two_group_tree
        taml_train(tree, factory, mse_loss, TAMLConfig(maml=small_maml()), rng=np.random.default_rng(0))
        model = initialize_from_tree(tree, -1, factory)
        for name, arr in model.state_dict().items():
            assert np.allclose(arr, tree.theta[name])


class TestCTML:
    @pytest.fixture
    def tasks_and_paths(self):
        tasks = [linear_task(i, 1.0 if i < 3 else 2.0, seed=i) for i in range(6)]
        rng = np.random.default_rng(0)
        paths = {t.worker_id: rng.normal(size=(2, 20)) for t in tasks}
        return tasks, paths

    def test_returns_bank_with_cluster_inits(self, tasks_and_paths):
        tasks, paths = tasks_and_paths
        bank = ctml_train(tasks, paths, factory, mse_loss, CTMLConfig(n_clusters=2, maml=small_maml()))
        assert len(bank.initializations) == 2
        assert set(bank.responsibilities) == {t.worker_id for t in tasks}

    def test_responsibilities_normalised(self, tasks_and_paths):
        tasks, paths = tasks_and_paths
        bank = ctml_train(tasks, paths, factory, mse_loss, CTMLConfig(n_clusters=2, maml=small_maml()))
        for resp in bank.responsibilities.values():
            assert resp.sum() == pytest.approx(1.0)

    def test_blended_init_is_convex_combination(self, tasks_and_paths):
        tasks, paths = tasks_and_paths
        bank = ctml_train(tasks, paths, factory, mse_loss, CTMLConfig(n_clusters=2, maml=small_maml()))
        blend = bank.blended_init(np.array([0.5, 0.5]))
        for key in blend:
            manual = 0.5 * bank.initializations[0][key] + 0.5 * bank.initializations[1][key]
            assert np.allclose(blend[key], manual)

    def test_init_for_unseen_task(self, tasks_and_paths):
        tasks, paths = tasks_and_paths
        bank = ctml_train(tasks, paths, factory, mse_loss, CTMLConfig(n_clusters=2, maml=small_maml()))
        newcomer = linear_task(99, 1.0, seed=99)
        init = bank.init_for(newcomer)
        model = factory()
        model.load_state_dict(init)  # shapes must be compatible

    def test_blended_init_validates_length(self, tasks_and_paths):
        tasks, paths = tasks_and_paths
        bank = ctml_train(tasks, paths, factory, mse_loss, CTMLConfig(n_clusters=2, maml=small_maml()))
        with pytest.raises(ValueError):
            bank.blended_init(np.ones(5))

    def test_requires_tasks(self):
        with pytest.raises(ValueError):
            ctml_train([], {}, factory, mse_loss)

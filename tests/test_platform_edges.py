"""Edge-case tests for the batch platform loop.

Covers plan validation (a buggy ``assign_fn`` must fail loudly, not as
a ``KeyError`` deep in the acceptance loop) and the timing boundaries:
deadlines landing exactly on a batch tick, assignment windows racing a
release, workers becoming free exactly at batch time, and degenerate
zero-length horizons.
"""

import pytest

from repro.assignment.plan import AssignmentPair, AssignmentPlan
from repro.geo.point import Point
from repro.sc.entities import SpatialTask
from repro.sc.platform import BatchPlatform, validate_plan

from tests.conftest import straight_trajectory
from tests.test_sc import greedy_assign, make_worker, oracle_provider


def plan_of(*pairs):
    plan = AssignmentPlan()
    for task_id, worker_id in pairs:
        plan.add(AssignmentPair(task_id, worker_id, 1.0))
    return plan


class TestValidatePlan:
    PENDING = {0: None, 1: None}
    WORKERS = {10: None, 11: None}

    def test_accepts_valid_plan(self):
        validate_plan(plan_of((0, 10), (1, 11)), self.PENDING, self.WORKERS)

    def test_accepts_empty_plan(self):
        validate_plan(plan_of(), self.PENDING, self.WORKERS)

    def test_rejects_duplicate_task(self):
        # AssignmentPlan.add already guards duplicates, but assign_fn is
        # pluggable and may return any iterable of pairs — a raw list
        # models a buggy custom plan.
        pairs = [AssignmentPair(0, 10, 1.0), AssignmentPair(0, 11, 1.0)]
        with pytest.raises(ValueError, match="task 0 assigned more than once"):
            validate_plan(pairs, self.PENDING, self.WORKERS)

    def test_rejects_duplicate_worker(self):
        pairs = [AssignmentPair(0, 10, 1.0), AssignmentPair(1, 10, 1.0)]
        with pytest.raises(ValueError, match="worker 10 assigned more than once"):
            validate_plan(pairs, self.PENDING, self.WORKERS)

    def test_rejects_unknown_task(self):
        with pytest.raises(ValueError, match="task 7 is not pending"):
            validate_plan(plan_of((7, 10)), self.PENDING, self.WORKERS)

    def test_rejects_unknown_worker(self):
        with pytest.raises(ValueError, match="worker 99 is unknown"):
            validate_plan(plan_of((0, 99)), self.PENDING, self.WORKERS)

    def test_platform_surfaces_invalid_plan(self):
        """Regression: a buggy assign_fn used to die with a KeyError."""
        w = make_worker()
        platform = BatchPlatform([w], oracle_provider, batch_window=2.0)
        tasks = [SpatialTask(0, Point(5.0, 0.0), 0.0, 60.0)]

        def buggy_assign(batch_tasks, snapshots, t):
            return plan_of((12345, snapshots[0].worker_id))

        with pytest.raises(ValueError, match="task 12345 is not pending"):
            platform.run(tasks, buggy_assign, 0.0, 60.0)

    def test_platform_surfaces_phantom_worker(self):
        w = make_worker()
        platform = BatchPlatform([w], oracle_provider, batch_window=2.0)
        tasks = [SpatialTask(0, Point(5.0, 0.0), 0.0, 60.0)]

        def phantom_worker(batch_tasks, snapshots, t):
            return plan_of((batch_tasks[0].task_id, 777))

        with pytest.raises(ValueError, match="worker 777 is unknown"):
            platform.run(tasks, phantom_worker, 0.0, 60.0)


class TestDeadlineBoundary:
    def test_batch_at_deadline_still_assigns(self):
        """A batch firing exactly at the deadline gets one last attempt."""
        w = make_worker()
        platform = BatchPlatform([w], oracle_provider, batch_window=2.0)
        # Released between ticks; deadline lands exactly on the t=4 tick,
        # where the worker's routine passes right through the task.
        tasks = [SpatialTask(0, Point(0.4, 0.0), 3.0, 4.0)]
        result = platform.run(tasks, greedy_assign, 0.0, 10.0)
        assert result.n_completed == 1
        assert result.n_expired == 0
        assert result.batches[0].batch_time == pytest.approx(4.0)

    def test_expires_strictly_after_deadline(self):
        """Unserved past the deadline tick, the task expires at the next."""
        w = make_worker(detour=0.5)
        platform = BatchPlatform([w], oracle_provider, batch_window=2.0)
        # 3 km off-route: proposed and rejected at t=4, expired at t=6.
        tasks = [SpatialTask(0, Point(5.0, 3.0), 3.0, 4.0)]
        result = platform.run(tasks, greedy_assign, 0.0, 10.0)
        assert result.n_completed == 0
        assert result.n_expired == 1
        assert result.n_assignments == 1

    def test_deadline_between_ticks_gets_no_extra_batch(self):
        """A deadline strictly inside a window dies with the prior tick."""
        w = make_worker(detour=0.5)
        platform = BatchPlatform([w], oracle_provider, batch_window=2.0)
        tasks = [SpatialTask(0, Point(5.0, 3.0), 0.0, 3.0)]
        result = platform.run(tasks, greedy_assign, 0.0, 10.0)
        # Attempted at t=0 and t=2 only; t=4 is past the deadline.
        assert result.n_assignments == 2
        assert result.n_expired == 1


class TestAssignmentWindowBoundary:
    def test_window_closing_on_tick_still_assigns(self):
        """release + window == tick: the task is matchable at that tick."""
        w = make_worker()
        platform = BatchPlatform([w], oracle_provider, batch_window=2.0, assignment_window=3.0)
        # Released at t=1 (enters the t=2 batch); window closes at t=4,
        # exactly on a tick — expiry is strict (t > release + window).
        tasks = [SpatialTask(0, Point(5.0, 0.0), 1.0, 60.0)]
        result = platform.run(tasks, greedy_assign, 0.0, 10.0)
        assert result.n_completed == 1

    def test_window_expiry_races_release(self):
        """A task whose window closes before its first batch never matches."""
        w = make_worker(detour=0.5)
        platform = BatchPlatform([w], oracle_provider, batch_window=2.0, assignment_window=3.0)
        # Rejected at t=2 and t=4 (3 km off-route); cancelled at t=6
        # since 6 > 1 + 3, well before the deadline.
        tasks = [SpatialTask(0, Point(5.0, 3.0), 1.0, 60.0)]
        result = platform.run(tasks, greedy_assign, 0.0, 10.0)
        assert result.n_completed == 0
        assert result.n_expired == 1
        assert result.n_assignments == 2

    def test_release_after_window_would_close_is_dead_on_arrival(self):
        w = make_worker()
        platform = BatchPlatform([w], oracle_provider, batch_window=4.0, assignment_window=1.0)
        # Released at t=1, window closes at t=2, first tick after release
        # is t=4: released and cancelled in the same tick, no attempt.
        tasks = [SpatialTask(0, Point(5.0, 0.0), 1.0, 60.0)]
        result = platform.run(tasks, greedy_assign, 0.0, 12.0)
        assert result.n_assignments == 0
        assert result.n_expired == 1


class TestBusyBoundary:
    def test_busy_until_exactly_at_batch_time_is_available(self):
        """busy_until == t means free: the <= comparison is inclusive."""
        w = make_worker()
        platform = BatchPlatform([w], oracle_provider, batch_window=2.0)
        # Task 0 accepted on-route at t=0 -> busy_until = 0 + 2 + 0 = 2.0,
        # so the worker is available again exactly at the t=2 batch.
        tasks = [
            SpatialTask(0, Point(5.0, 0.0), 0.0, 60.0),
            SpatialTask(1, Point(6.0, 0.0), 1.0, 60.0),
        ]
        result = platform.run(tasks, greedy_assign, 0.0, 10.0)
        assert result.n_completed == 2
        times = [b.batch_time for b in result.batches if b.n_accepted]
        assert times == [pytest.approx(0.0), pytest.approx(2.0)]


class TestZeroBatchHorizons:
    def test_point_horizon_runs_exactly_one_batch(self):
        w = make_worker()
        platform = BatchPlatform([w], oracle_provider, batch_window=2.0)
        tasks = [SpatialTask(0, Point(5.0, 0.0), 0.0, 60.0)]
        result = platform.run(tasks, greedy_assign, 0.0, 0.0)
        assert len(result.batches) == 1
        assert result.n_completed == 1

    def test_point_horizon_with_nothing_released(self):
        w = make_worker()
        platform = BatchPlatform([w], oracle_provider, batch_window=2.0)
        # Released after the horizon: never pending, never expired.
        tasks = [SpatialTask(0, Point(5.0, 0.0), 5.0, 60.0)]
        result = platform.run(tasks, greedy_assign, 0.0, 0.0)
        assert result.batches == []
        assert result.n_completed == 0
        assert result.n_expired == 0

    def test_horizon_shorter_than_window_still_fires_start_batch(self):
        w = make_worker()
        platform = BatchPlatform([w], oracle_provider, batch_window=10.0)
        tasks = [SpatialTask(0, Point(5.0, 0.0), 0.0, 60.0)]
        result = platform.run(tasks, greedy_assign, 0.0, 1.0)
        assert len(result.batches) == 1
        assert result.n_completed == 1

"""Tests for weight initialisers."""

import numpy as np
import pytest

from repro.nn import init


class TestXavier:
    def test_shape_and_bounds(self, rng):
        w = init.xavier_uniform(rng, 10, 20)
        assert w.shape == (10, 20)
        limit = np.sqrt(6.0 / 30)
        assert np.abs(w).max() <= limit

    def test_deterministic_per_seed(self):
        a = init.xavier_uniform(np.random.default_rng(5), 4, 4)
        b = init.xavier_uniform(np.random.default_rng(5), 4, 4)
        assert np.allclose(a, b)

    def test_rejects_bad_fans(self, rng):
        with pytest.raises(ValueError):
            init.xavier_uniform(rng, 0, 5)


class TestOthers:
    def test_uniform_bounds(self, rng):
        w = init.uniform(rng, (3, 3), scale=0.5)
        assert np.abs(w).max() <= 0.5

    def test_zeros(self):
        assert np.allclose(init.zeros((2, 3)), 0.0)

    def test_lstm_bias_forget_gate_open(self):
        b = init.lstm_bias(4, forget_bias=1.5)
        assert b.shape == (16,)
        assert np.allclose(b[4:8], 1.5)
        assert np.allclose(b[:4], 0.0)
        assert np.allclose(b[8:], 0.0)

    def test_lstm_bias_validates(self):
        with pytest.raises(ValueError):
            init.lstm_bias(0)

"""Tests for simulation summaries."""

import numpy as np
import pytest

from repro.eval.summary import SimulationSummary, summarize
from repro.sc.platform import BatchRecord, SimulationResult


def make_result(**overrides):
    base = dict(
        n_tasks=10,
        n_completed=6,
        n_assignments=9,
        n_rejections=3,
        n_expired=4,
        detours_km=[0.5, 1.0, 1.5, 2.0, 2.5, 3.0],
        algorithm_seconds=0.2,
        batches=[
            BatchRecord(0.0, 2, 5, 2, 2, 0),
            BatchRecord(2.0, 5, 4, 3, 2, 1),
            BatchRecord(4.0, 3, 4, 2, 2, 0),
        ],
    )
    base.update(overrides)
    return SimulationResult(**base)


class TestSummarize:
    def test_ratios(self):
        s = summarize(make_result())
        assert s.completion_ratio == 0.6
        assert s.expiry_ratio == 0.4
        assert s.rejection_ratio == pytest.approx(3 / 9)

    def test_detour_percentiles_ordered(self):
        s = summarize(make_result())
        assert s.detour_p50_km <= s.detour_p90_km <= s.detour_max_km
        assert s.detour_max_km == 3.0

    def test_batch_statistics(self):
        s = summarize(make_result())
        assert s.n_batches == 3
        assert s.peak_pending == 5
        assert s.busiest_batch_time == 2.0
        assert s.mean_pending_per_batch == pytest.approx(10 / 3)

    def test_empty_result(self):
        s = summarize(make_result(
            n_tasks=0, n_completed=0, n_assignments=0, n_rejections=0,
            n_expired=0, detours_km=[], batches=[],
        ))
        assert s.completion_ratio == 0.0
        assert s.detour_max_km == 0.0
        assert s.n_batches == 0

    def test_lines_render(self):
        lines = summarize(make_result()).lines()
        assert len(lines) == 5
        assert any("p90" in line for line in lines)

    def test_from_real_simulation(self, small_workload):
        from repro.pipeline import AssignmentConfig, run_assignment

        result = run_assignment(small_workload, "lb", AssignmentConfig(batch_window=5.0))
        s = summarize(result)
        assert s.n_tasks == len(small_workload.tasks)
        assert 0.0 <= s.completion_ratio <= 1.0
        assert isinstance(s, SimulationSummary)

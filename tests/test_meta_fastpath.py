"""Fast path vs reference tape: the meta-training stack must produce the
same numbers either way.

``fast_path=True`` and ``fast_path=False`` runs are compared end-to-end
through ``adapt``, ``meta_train`` (both outer updates, batched and
sequential inner loops), ``taml_train``, and ``fine_tune``.  The two
engines share no backward code, so agreement here is a strong check on
both.
"""

import numpy as np
import pytest

from repro.meta.learning_task import LearningTask
from repro.meta.maml import MAMLConfig, adapt, meta_train, resolve_fast_path
from repro.meta.taml import TAMLConfig, taml_train
from repro.meta.task_tree import LearningTaskTree
from repro.nn.layers import MLP
from repro.nn.losses import TaskDensityWeighter, mse_loss
from repro.nn.seq2seq import make_mobility_model
from repro.pipeline.config import PredictionConfig
from repro.pipeline.training import fine_tune

RTOL = 1e-6
ATOL = 1e-8

SEQ_IN, SEQ_OUT = 4, 2


def traj_task(worker_id, seed, n=20, seq_in=SEQ_IN, seq_out=SEQ_OUT):
    """A drifting-random-walk trajectory task with (n, seq, 2) windows."""
    rng = np.random.default_rng(seed)
    x = 0.1 * rng.normal(size=(n, seq_in, 2)).cumsum(axis=1)
    y = x[:, -1:, :] + 0.05 * rng.normal(size=(n, seq_out, 2)).cumsum(axis=1)
    half = n - 6
    return LearningTask(worker_id, x[:half], y[:half], x[half:], y[half:])


def fresh_model(seq_out=SEQ_OUT):
    return make_mobility_model("lstm", hidden_size=6, seq_out=seq_out, rng=np.random.default_rng(42))


def assert_state_dicts_close(a, b):
    assert set(a) == set(b)
    for name in a:
        np.testing.assert_allclose(a[name], b[name], rtol=RTOL, atol=ATOL, err_msg=name)


class TestResolve:
    def test_true_on_unsupported_model_raises(self):
        with pytest.raises(ValueError):
            resolve_fast_path(True, MLP([2, 4, 2], np.random.default_rng(0)))

    def test_auto_falls_back_on_unsupported_model(self):
        assert resolve_fast_path("auto", MLP([2, 4, 2], np.random.default_rng(0))) is False
        assert resolve_fast_path("auto", fresh_model()) is True

    def test_config_validates_setting(self):
        with pytest.raises(ValueError):
            MAMLConfig(fast_path="yes")
        with pytest.raises(ValueError):
            TAMLConfig(fast_path="yes")


class TestAdaptEquivalence:
    @pytest.mark.parametrize(
        "loss_fn",
        [mse_loss, TaskDensityWeighter(np.array([[0.2, 0.3], [0.7, 0.8]])).loss],
        ids=["mse", "weighted_mse"],
    )
    def test_adapt_matches_tape(self, loss_fn):
        task = traj_task(0, seed=5)
        model = fresh_model()
        fast = adapt(model, task, loss_fn, inner_lr=0.05, inner_steps=4,
                     rng=np.random.default_rng(1), fast_path=True)
        tape = adapt(model, task, loss_fn, inner_lr=0.05, inner_steps=4,
                     rng=np.random.default_rng(1), fast_path=False)
        assert_state_dicts_close(
            {k: v.data for k, v in fast.items()}, {k: v.data for k, v in tape.items()}
        )

    def test_adapt_with_support_subsampling_matches(self):
        """support_batch < n draws from the rng; both engines must
        consume the stream identically."""
        task = traj_task(0, seed=6, n=30)
        model = fresh_model()
        kwargs = dict(inner_lr=0.05, inner_steps=3, support_batch=8)
        fast = adapt(model, task, mse_loss, rng=np.random.default_rng(2), fast_path=True, **kwargs)
        tape = adapt(model, task, mse_loss, rng=np.random.default_rng(2), fast_path=False, **kwargs)
        assert_state_dicts_close(
            {k: v.data for k, v in fast.items()}, {k: v.data for k, v in tape.items()}
        )


class TestMetaTrainEquivalence:
    def _run(self, tasks, outer, fast_path, support_batch=8):
        model = fresh_model()
        config = MAMLConfig(
            meta_lr=0.1, inner_lr=0.05, inner_steps=2, meta_batch=3,
            iterations=6, support_batch=support_batch, outer=outer, fast_path=fast_path,
        )
        history = meta_train(model, tasks, config, mse_loss, rng=np.random.default_rng(3))
        return model.state_dict(), history

    @pytest.mark.parametrize("outer", ["fomaml", "reptile"])
    def test_batched_matches_tape(self, outer):
        """Homogeneous shapes: fast path stacks all sampled workers into
        one padded pass; result must equal the tape run."""
        tasks = [traj_task(i, seed=10 + i, n=14 + 2 * i) for i in range(5)]
        fast_state, fast_hist = self._run(tasks, outer, fast_path=True)
        tape_state, tape_hist = self._run(tasks, outer, fast_path=False)
        assert_state_dicts_close(fast_state, tape_state)
        np.testing.assert_allclose(fast_hist, tape_hist, rtol=RTOL, atol=ATOL)

    def test_heterogeneous_shapes_fall_back_and_match(self):
        """Mixed seq_in disables stacking; the sequential fused loop
        must still agree with the tape."""
        tasks = [traj_task(i, seed=20 + i, seq_in=4 + (i % 2)) for i in range(4)]
        fast_state, fast_hist = self._run(tasks, "fomaml", fast_path=True)
        tape_state, tape_hist = self._run(tasks, "fomaml", fast_path=False)
        assert_state_dicts_close(fast_state, tape_state)
        np.testing.assert_allclose(fast_hist, tape_hist, rtol=RTOL, atol=ATOL)


class TestTAMLEquivalence:
    def _tree(self):
        g1 = [traj_task(i, seed=30 + i) for i in range(3)]
        g2 = [traj_task(i + 10, seed=40 + i) for i in range(3)]
        root = LearningTaskTree(cluster=g1 + g2)
        root.add_child(LearningTaskTree(cluster=g1))
        root.add_child(LearningTaskTree(cluster=g2))
        return root

    def test_tree_training_matches_tape(self):
        maml = MAMLConfig(meta_lr=0.1, inner_lr=0.05, inner_steps=2, meta_batch=2,
                          iterations=4, support_batch=8)
        states = {}
        for fast in (True, False):
            tree = self._tree()
            cfg = TAMLConfig(maml=maml, fast_path=fast)
            taml_train(tree, fresh_model, mse_loss, cfg, rng=np.random.default_rng(7))
            states[fast] = [node.theta for node in tree.iter_nodes()]
        for fast_theta, tape_theta in zip(states[True], states[False]):
            assert_state_dicts_close(fast_theta, tape_theta)


class TestFineTuneEquivalence:
    def _config(self, optimizer, fast_path):
        return PredictionConfig(
            seq_in=SEQ_IN, seq_out=SEQ_OUT, hidden_size=6,
            fine_tune_steps=5, fine_tune_lr=0.05, fine_tune_optimizer=optimizer,
            maml=MAMLConfig(fast_path=fast_path),
        )

    @pytest.mark.parametrize("optimizer", ["sgd", "adam"])
    def test_fine_tune_matches_tape(self, optimizer):
        task = traj_task(0, seed=50)
        states = {}
        for fast in (True, False):
            model = fresh_model()
            states[fast] = fine_tune(
                model, task, mse_loss, self._config(optimizer, fast), np.random.default_rng(9)
            )
        assert_state_dicts_close(states[True], states[False])

"""Tests for the GRU cell/layer and GRU encoder-decoder."""

import numpy as np
import pytest

from repro.nn.gru import GRU, GRUCell
from repro.nn.losses import mse_loss
from repro.nn.module import clone_parameters
from repro.nn.optim import Adam
from repro.nn.seq2seq import GRUEncoderDecoder, make_mobility_model
from repro.nn.tensor import Tensor


@pytest.fixture
def cell(rng):
    return GRUCell(input_size=3, hidden_size=4, rng=rng)


class TestGRUCell:
    def test_output_shape(self, cell):
        h = cell.zero_state(5)
        out = cell(Tensor(np.zeros((5, 3))), h)
        assert out.shape == (5, 4)

    def test_rejects_bad_sizes(self, rng):
        with pytest.raises(ValueError):
            GRUCell(0, 4, rng)

    def test_zero_update_gate_replaces_state(self, cell, rng):
        """With the update gate forced to 0, h' equals the candidate."""
        cell.bias.data[4:8] = -100.0  # update gate -> sigmoid(-100) = 0
        h0 = Tensor(np.ones((1, 4)) * 5.0)
        out = cell(Tensor(rng.normal(size=(1, 3))), h0)
        assert np.all(np.abs(out.numpy()) <= 1.0)  # tanh candidate only

    def test_one_update_gate_keeps_state(self, cell, rng):
        cell.bias.data[4:8] = 100.0  # update gate -> 1
        h0 = Tensor(np.ones((1, 4)) * 0.5)
        out = cell(Tensor(rng.normal(size=(1, 3))), h0)
        assert np.allclose(out.numpy(), 0.5, atol=1e-6)

    def test_gradient_matches_finite_difference(self, cell, rng):
        x = rng.normal(size=(2, 3))

        def loss_value():
            h = cell.zero_state(2)
            return float((cell(Tensor(x), h) ** 2).sum().item())

        cell.zero_grad()
        h = cell.zero_state(2)
        (cell(Tensor(x), h) ** 2).sum().backward()
        eps = 1e-6
        for name, p in cell.named_parameters():
            idx = (0,) if p.data.ndim == 1 else (0, 0)
            orig = p.data[idx]
            p.data[idx] = orig + eps
            fp = loss_value()
            p.data[idx] = orig - eps
            fm = loss_value()
            p.data[idx] = orig
            assert p.grad[idx] == pytest.approx((fp - fm) / (2 * eps), abs=1e-5), name


class TestGRULayer:
    def test_shapes(self, rng):
        gru = GRU(2, 6, rng)
        out, h = gru(Tensor(rng.normal(size=(3, 7, 2))))
        assert out.shape == (3, 7, 6)
        assert h.shape == (3, 6)

    def test_rejects_2d(self, rng):
        with pytest.raises(ValueError):
            GRU(2, 6, rng)(Tensor(np.zeros((3, 2))))

    def test_functional_call_identity(self, rng):
        gru = GRU(2, 4, rng)
        x = Tensor(rng.normal(size=(2, 5, 2)))
        direct, _ = gru(x)
        via_ctx, _ = gru.functional_call(clone_parameters(gru), x)
        assert np.allclose(direct.numpy(), via_ctx.numpy())


class TestGRUEncoderDecoder:
    def test_forward_shape(self, rng):
        model = GRUEncoderDecoder(2, 8, seq_out=3, rng=rng)
        assert model(Tensor(rng.normal(size=(4, 5, 2)))).shape == (4, 3, 2)

    def test_learns_constant_displacement(self, rng):
        model = GRUEncoderDecoder(2, 8, seq_out=1, rng=rng)
        delta = np.array([0.05, -0.02])
        starts = rng.uniform(0, 1, size=(64, 1, 2))
        steps = np.arange(5).reshape(1, 5, 1)
        x = starts + steps * delta
        y = x[:, -1:, :] + delta
        opt = Adam(model.parameters(), lr=0.01)
        first = None
        for _ in range(60):
            opt.zero_grad()
            loss = mse_loss(model(Tensor(x)), Tensor(y))
            first = first if first is not None else loss.item()
            loss.backward()
            opt.step()
        assert mse_loss(model(Tensor(x)), Tensor(y)).item() < first * 0.2

    def test_meta_learning_runs_on_gru(self, rng):
        """Model-agnosticism in practice: MAML over the GRU variant."""
        from repro.meta.learning_task import LearningTask
        from repro.meta.maml import MAMLConfig, meta_train

        def task(wid):
            x = rng.uniform(-1, 1, size=(12, 2, 2))
            return LearningTask(wid, x[:8], x[:8] * 1.2, x[8:], x[8:] * 1.2)

        model = GRUEncoderDecoder(2, 6, seq_out=2, rng=rng)
        history = meta_train(
            model,
            [task(i) for i in range(3)],
            MAMLConfig(iterations=3, meta_batch=2, inner_steps=1, support_batch=8),
            mse_loss,
        )
        assert len(history) == 3
        assert all(np.isfinite(h) for h in history)


class TestFactory:
    def test_dispatch(self, rng):
        from repro.nn.seq2seq import LSTMEncoderDecoder

        assert isinstance(make_mobility_model("lstm", rng=rng), LSTMEncoderDecoder)
        assert isinstance(make_mobility_model("gru", rng=rng), GRUEncoderDecoder)

    def test_unknown_cell(self, rng):
        with pytest.raises(ValueError):
            make_mobility_model("transformer", rng=rng)

    def test_pipeline_config_cell_flag(self):
        from repro.pipeline.config import PredictionConfig
        from repro.pipeline.training import make_model_factory
        from repro.nn.seq2seq import GRUEncoderDecoder as GED

        cfg = PredictionConfig(cell="gru", hidden_size=6)
        assert isinstance(make_model_factory(cfg)(), GED)
        with pytest.raises(ValueError):
            PredictionConfig(cell="rwkv")

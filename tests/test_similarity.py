"""Tests for the three learning-task similarities and the quality helpers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.similarity import (
    cosine,
    distribution_similarity,
    gaussian_poi_kernel,
    learning_path_similarity,
    normalize_similarity_matrix,
    similarity_matrix,
    sliced_wasserstein,
    spatial_similarity,
    wasserstein_1d,
    wasserstein_exact_2d,
)


class TestSpatial:
    def _features(self, center, cat, n=10, seed=0):
        rng = np.random.default_rng(seed)
        xy = rng.normal(center, 0.2, size=(n, 2))
        return np.column_stack([xy, np.full(n, float(cat))])

    def test_identical_sets_high(self):
        f = self._features([0, 0], 1)
        assert spatial_similarity(f, f) > 0.8

    def test_far_sets_low(self):
        a = self._features([0, 0], 1)
        b = self._features([100, 100], 1, seed=1)
        assert spatial_similarity(a, b) < 1e-6

    def test_category_mismatch_reduces(self):
        a = self._features([0, 0], 1)
        b = self._features([0, 0], 2, seed=1)
        same = self._features([0, 0], 1, seed=1)
        assert spatial_similarity(a, b, category_factor=0.5) < spatial_similarity(a, same)

    def test_empty_returns_zero(self):
        assert spatial_similarity(np.zeros((0, 3)), self._features([0, 0], 1)) == 0.0

    def test_kernel_in_unit_interval(self):
        a = self._features([0, 0], 1)
        b = self._features([1, 1], 2, seed=2)
        k = gaussian_poi_kernel(a, b)
        assert np.all(k >= 0) and np.all(k <= 1)

    def test_kernel_validates(self):
        a = self._features([0, 0], 1)
        with pytest.raises(ValueError):
            gaussian_poi_kernel(a, a, bandwidth_km=0.0)
        with pytest.raises(ValueError):
            gaussian_poi_kernel(a, a, category_factor=2.0)

    def test_symmetry(self):
        a = self._features([0, 0], 1)
        b = self._features([0.5, 0.5], 2, seed=3)
        assert spatial_similarity(a, b) == pytest.approx(spatial_similarity(b, a))


class TestLearningPath:
    def test_cosine_basics(self):
        assert cosine(np.array([1, 0]), np.array([1, 0])) == pytest.approx(1.0)
        assert cosine(np.array([1, 0]), np.array([0, 1])) == pytest.approx(0.0)
        assert cosine(np.array([1, 0]), np.array([-1, 0])) == pytest.approx(-1.0)
        assert cosine(np.zeros(2), np.array([1, 0])) == 0.0

    def test_cosine_shape_mismatch(self):
        with pytest.raises(ValueError):
            cosine(np.zeros(2), np.zeros(3))

    def test_identical_paths(self, rng):
        path = rng.normal(size=(3, 10))
        assert learning_path_similarity(path, path) == pytest.approx(1.0)

    def test_opposite_paths(self, rng):
        path = rng.normal(size=(3, 10))
        assert learning_path_similarity(path, -path) == pytest.approx(-1.0)

    def test_common_prefix_when_lengths_differ(self, rng):
        a = rng.normal(size=(5, 8))
        b = a[:3]
        assert learning_path_similarity(a, b) == pytest.approx(1.0)

    def test_dimension_mismatch(self, rng):
        with pytest.raises(ValueError):
            learning_path_similarity(rng.normal(size=(2, 4)), rng.normal(size=(2, 5)))


class TestWasserstein1D:
    def test_identical(self, rng):
        u = rng.normal(size=50)
        assert wasserstein_1d(u, u) == pytest.approx(0.0)

    def test_shift(self, rng):
        u = rng.normal(size=100)
        assert wasserstein_1d(u, u + 2.0) == pytest.approx(2.0, abs=1e-9)

    def test_unequal_sizes_match_scipy(self, rng):
        from scipy.stats import wasserstein_distance

        u = rng.normal(size=37)
        v = rng.normal(1.0, 2.0, size=53)
        assert wasserstein_1d(u, v) == pytest.approx(wasserstein_distance(u, v), rel=1e-6)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            wasserstein_1d(np.zeros(0), np.ones(3))

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 1000), shift=st.floats(-5, 5))
    def test_property_matches_scipy(self, seed, shift):
        from scipy.stats import wasserstein_distance

        rng = np.random.default_rng(seed)
        u = rng.normal(size=rng.integers(2, 40))
        v = rng.normal(shift, 1.5, size=rng.integers(2, 40))
        assert wasserstein_1d(u, v) == pytest.approx(wasserstein_distance(u, v), rel=1e-6, abs=1e-9)


class TestWassersteinPlanar:
    def test_exact_identical(self, rng):
        pts = rng.normal(size=(10, 2))
        assert wasserstein_exact_2d(pts, pts) == pytest.approx(0.0)

    def test_exact_translation(self, rng):
        pts = rng.normal(size=(15, 2))
        shifted = pts + np.array([3.0, 4.0])
        assert wasserstein_exact_2d(pts, shifted) == pytest.approx(5.0)

    def test_exact_requires_equal_sizes(self, rng):
        with pytest.raises(ValueError):
            wasserstein_exact_2d(rng.normal(size=(3, 2)), rng.normal(size=(4, 2)))

    def test_sliced_lower_bounds_exact(self, rng):
        a = rng.normal(size=(20, 2))
        b = rng.normal(2.0, 1.0, size=(20, 2))
        sliced = sliced_wasserstein(a, b, n_projections=128, rng=rng)
        exact = wasserstein_exact_2d(a, b)
        assert sliced <= exact + 1e-6

    def test_sliced_1d_is_exact(self, rng):
        u = rng.normal(size=30)
        v = rng.normal(1.0, size=30)
        assert sliced_wasserstein(u, v) == pytest.approx(wasserstein_1d(u, v))

    def test_sliced_symmetry(self, rng):
        a = rng.normal(size=(12, 2))
        b = rng.normal(size=(15, 2))
        s1 = sliced_wasserstein(a, b, rng=np.random.default_rng(0))
        s2 = sliced_wasserstein(b, a, rng=np.random.default_rng(0))
        assert s1 == pytest.approx(s2)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            sliced_wasserstein(rng.normal(size=(3, 2)), rng.normal(size=(3, 3)))
        with pytest.raises(ValueError):
            sliced_wasserstein(rng.normal(size=(3, 2)), rng.normal(size=(3, 2)), n_projections=0)


class TestDistributionSimilarity:
    def test_bounded_mode_in_unit_interval(self, rng):
        a = rng.normal(size=(20, 2))
        b = rng.normal(5.0, 1.0, size=(20, 2))
        s = distribution_similarity(a, b)
        assert 0.0 < s <= 1.0

    def test_identical_max(self, rng):
        a = rng.normal(size=(20, 2))
        assert distribution_similarity(a, a) == pytest.approx(1.0)

    def test_reciprocal_mode(self, rng):
        a = rng.normal(size=(16, 2))
        b = a + np.array([2.0, 0.0])
        s = distribution_similarity(a, b, method="exact", mode="reciprocal")
        assert s == pytest.approx(0.5)

    def test_ordering_preserved(self, rng):
        a = rng.normal(size=(20, 2))
        near = a + 0.5
        far = a + 5.0
        assert distribution_similarity(a, near) > distribution_similarity(a, far)

    def test_unknown_method(self, rng):
        with pytest.raises(ValueError):
            distribution_similarity(rng.normal(size=(3, 2)), rng.normal(size=(3, 2)), method="x")


class TestSimilarityMatrix:
    def test_symmetric_unit_diagonal(self, rng):
        items = [rng.normal(size=5) for _ in range(6)]
        sim = similarity_matrix(items, lambda a, b: float(np.dot(a, b)))
        assert np.allclose(sim, sim.T)
        assert np.allclose(np.diag(sim), 1.0)
        assert sim.min() >= 0.0 and sim.max() <= 1.0

    def test_normalize_constant_matrix(self):
        sim = np.full((4, 4), 0.5)
        out = normalize_similarity_matrix(sim)
        assert np.allclose(out, 1.0)

    def test_normalize_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            normalize_similarity_matrix(np.zeros((2, 3)))

    def test_normalize_range(self, rng):
        raw = rng.uniform(-3, 7, size=(5, 5))
        raw = (raw + raw.T) / 2
        out = normalize_similarity_matrix(raw)
        assert out.min() >= 0.0 and out.max() <= 1.0
        assert np.allclose(np.diag(out), 1.0)

    def test_single_item(self):
        sim = similarity_matrix([np.zeros(2)], lambda a, b: 0.0)
        assert sim.shape == (1, 1)
        assert sim[0, 0] == 1.0


class TestPairwiseSlicedWasserstein:
    """The bulk builder must reproduce the per-pair sliced distances."""

    def test_matches_per_pair(self, rng):
        from repro.similarity import pairwise_sliced_wasserstein

        samples = [rng.normal(size=(n, 2)) for n in (25, 25, 40, 13)]
        seed = 99
        matrix = pairwise_sliced_wasserstein(samples, rng=np.random.default_rng(seed))
        assert matrix.shape == (4, 4)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 0.0)
        for i in range(4):
            for j in range(i + 1, 4):
                ref = sliced_wasserstein(samples[i], samples[j], rng=np.random.default_rng(seed))
                assert matrix[i, j] == pytest.approx(ref, rel=1e-12, abs=1e-12)

    def test_one_dimensional_samples(self, rng):
        from repro.similarity import pairwise_sliced_wasserstein

        samples = [rng.normal(size=n) for n in (20, 20, 9)]
        matrix = pairwise_sliced_wasserstein(samples)
        for i in range(3):
            for j in range(i + 1, 3):
                assert matrix[i, j] == pytest.approx(
                    sliced_wasserstein(samples[i], samples[j]), rel=1e-12
                )

    def test_validation(self):
        from repro.similarity import pairwise_sliced_wasserstein

        assert pairwise_sliced_wasserstein([]).shape == (0, 0)
        with pytest.raises(ValueError):
            pairwise_sliced_wasserstein([np.zeros((0, 2))])
        with pytest.raises(ValueError):
            pairwise_sliced_wasserstein([np.zeros((3, 2)), np.zeros((3, 3))])
        with pytest.raises(ValueError):
            pairwise_sliced_wasserstein([np.zeros((3, 2))], n_projections=0)

    def test_finalize_matches_similarity_matrix(self, rng):
        from repro.similarity import finalize_similarity_matrix

        items = [rng.normal(size=2) for _ in range(5)]
        sim_fn = lambda a, b: float(1.0 / (1.0 + np.linalg.norm(a - b)))
        ref = similarity_matrix(items, sim_fn)
        raw = np.zeros((5, 5))
        for i in range(5):
            for j in range(5):
                if i != j:
                    raw[i, j] = sim_fn(items[i], items[j])
        assert np.allclose(finalize_similarity_matrix(raw), ref)

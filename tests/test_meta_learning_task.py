"""Tests for learning tasks and support/query splitting."""

import numpy as np
import pytest

from repro.meta.learning_task import LearningTask, split_support_query


def make_windows(n, seq_in=3, seq_out=1, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, seq_in, 2)), rng.normal(size=(n, seq_out, 2))


class TestLearningTask:
    def test_basic_construction(self):
        x, y = make_windows(10)
        task = LearningTask(0, x[:8], y[:8], x[8:], y[8:])
        assert task.seq_in == 3
        assert task.seq_out == 1

    def test_rejects_empty_support(self):
        x, y = make_windows(4)
        with pytest.raises(ValueError):
            LearningTask(0, x[:0], y[:0], x, y)

    def test_rejects_misaligned(self):
        x, y = make_windows(4)
        with pytest.raises(ValueError):
            LearningTask(0, x, y[:2], x, y)

    def test_rejects_2d_windows(self):
        with pytest.raises(ValueError):
            LearningTask(0, np.zeros((3, 2)), np.zeros((3, 2)), np.zeros((1, 1, 2)), np.zeros((1, 1, 2)))

    def test_support_batch_subsamples(self, rng):
        x, y = make_windows(20)
        task = LearningTask(0, x, y, x[:1], y[:1])
        bx, by = task.support_batch(5, rng)
        assert bx.shape == (5, 3, 2)

    def test_support_batch_returns_all_when_small(self, rng):
        x, y = make_windows(3)
        task = LearningTask(0, x, y, x[:1], y[:1])
        bx, _ = task.support_batch(10, rng)
        assert len(bx) == 3


class TestSplitSupportQuery:
    def test_split_sizes(self, rng):
        x, y = make_windows(20)
        sx, sy, qx, qy = split_support_query(x, y, query_fraction=0.25, rng=rng)
        assert len(sx) == 15 and len(qx) == 5
        assert len(sx) == len(sy) and len(qx) == len(qy)

    def test_split_partitions(self, rng):
        x, y = make_windows(12)
        sx, _, qx, _ = split_support_query(x, y, rng=rng)
        combined = np.concatenate([sx, qx])
        assert len(combined) == 12
        # Every original window appears exactly once.
        orig = {tuple(w.ravel()) for w in x}
        got = {tuple(w.ravel()) for w in combined}
        assert orig == got

    def test_single_window_all_support(self, rng):
        x, y = make_windows(1)
        sx, _, qx, _ = split_support_query(x, y, rng=rng)
        assert len(sx) == 1 and len(qx) == 0

    def test_two_windows_one_each(self, rng):
        x, y = make_windows(2)
        sx, _, qx, _ = split_support_query(x, y, rng=rng)
        assert len(sx) == 1 and len(qx) == 1

    def test_validates_fraction(self, rng):
        x, y = make_windows(5)
        with pytest.raises(ValueError):
            split_support_query(x, y, query_fraction=1.5, rng=rng)

    def test_validates_alignment(self, rng):
        x, y = make_windows(5)
        with pytest.raises(ValueError):
            split_support_query(x, y[:3], rng=rng)

    def test_empty_raises(self, rng):
        with pytest.raises(ValueError):
            split_support_query(np.zeros((0, 3, 2)), np.zeros((0, 1, 2)), rng=rng)

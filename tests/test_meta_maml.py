"""Tests for Algorithm 3 (Meta-Training) and the adaptation machinery."""

import numpy as np
import pytest

from repro.meta.learning_task import LearningTask
from repro.meta.maml import MAMLConfig, adapt, evaluate_adapted, learning_path, meta_train
from repro.nn.layers import MLP
from repro.nn.losses import mse_loss
from repro.nn.tensor import Tensor


def sine_family_task(worker_id, amplitude, phase, n=24, seed=0):
    """A sinusoid-regression family: the classic MAML testbed, with
    (seq, 2) windows so the same machinery drives the trajectory model."""
    rng = np.random.default_rng(seed + worker_id)
    t = rng.uniform(-3, 3, size=(n, 1, 1))
    x = np.concatenate([t, np.zeros_like(t)], axis=2)  # (n, 1, 2)
    y_val = amplitude * np.sin(t + phase)
    y = np.concatenate([y_val, np.zeros_like(y_val)], axis=2)
    half = n // 2
    return LearningTask(worker_id, x[:half], y[:half], x[half:], y[half:])


@pytest.fixture
def mlp_factory(rng):
    def factory():
        return MLP([2, 16, 2], np.random.default_rng(42))

    return factory


@pytest.fixture
def sine_tasks():
    rng = np.random.default_rng(0)
    return [
        sine_family_task(i, amplitude=rng.uniform(0.5, 2.0), phase=rng.uniform(0, np.pi))
        for i in range(6)
    ]


class TestMAMLConfig:
    def test_validates_rates(self):
        with pytest.raises(ValueError):
            MAMLConfig(meta_lr=0.0)
        with pytest.raises(ValueError):
            MAMLConfig(inner_steps=0)
        with pytest.raises(ValueError):
            MAMLConfig(outer="soml")


class TestAdapt:
    def test_reduces_support_loss(self, mlp_factory, sine_tasks):
        model = mlp_factory()
        task = sine_tasks[0]
        before = evaluate_adapted(model, dict(model.named_parameters()), task.support_x, task.support_y, mse_loss)
        adapted = adapt(model, task, mse_loss, inner_lr=0.05, inner_steps=10)
        after = evaluate_adapted(model, adapted, task.support_x, task.support_y, mse_loss)
        assert after < before

    def test_does_not_mutate_model(self, mlp_factory, sine_tasks):
        model = mlp_factory()
        snapshot = model.state_dict()
        adapt(model, sine_tasks[0], mse_loss, inner_lr=0.1, inner_steps=3)
        for name, arr in model.state_dict().items():
            assert np.allclose(arr, snapshot[name])

    def test_custom_init_respected(self, mlp_factory, sine_tasks):
        model = mlp_factory()
        zero_init = {n: Tensor(np.zeros_like(p.data), requires_grad=True) for n, p in model.named_parameters()}
        adapted = adapt(model, sine_tasks[0], mse_loss, inner_lr=0.0001, inner_steps=1, init=zero_init)
        # One tiny step from all-zeros stays near zero.
        for t in adapted.values():
            assert np.abs(t.data).max() < 0.1

    def test_evaluate_adapted_empty_inputs(self, mlp_factory):
        model = mlp_factory()
        val = evaluate_adapted(model, dict(model.named_parameters()), np.zeros((0, 1, 2)), np.zeros((0, 1, 2)), mse_loss)
        assert val == 0.0


class TestMetaTrain:
    def test_loss_decreases(self, mlp_factory, sine_tasks):
        model = mlp_factory()
        cfg = MAMLConfig(meta_lr=0.02, inner_lr=0.05, inner_steps=3, meta_batch=4, iterations=25)
        history = meta_train(model, sine_tasks, cfg, mse_loss, rng=np.random.default_rng(0))
        assert np.mean(history[-5:]) < np.mean(history[:5])

    def test_meta_initialization_adapts_faster_than_random(self):
        """The point of MAML: after meta-training, few-shot adaptation on a
        new task beats adapting from a random initialisation.

        Uses a linear family (y = s * x, s near 1.5) where the shared
        structure is unambiguous at this scale.
        """

        def linear_task(worker_id, scale, seed):
            rng = np.random.default_rng(seed)
            x = rng.uniform(-1, 1, size=(20, 1, 2))
            y = x * scale
            return LearningTask(worker_id, x[:12], y[:12], x[12:], y[12:])

        rng = np.random.default_rng(3)
        train_tasks = [linear_task(i, 1.5 + rng.uniform(-0.2, 0.2), seed=i) for i in range(5)]
        new_task = linear_task(99, 1.5, seed=99)

        meta_model = MLP([2, 16, 2], np.random.default_rng(42))
        cfg = MAMLConfig(meta_lr=0.1, inner_lr=0.2, inner_steps=3, meta_batch=5, iterations=60)
        meta_train(meta_model, train_tasks, cfg, mse_loss, rng=np.random.default_rng(0))

        def few_shot_loss(model):
            adapted = adapt(model, new_task, mse_loss, inner_lr=0.2, inner_steps=3)
            return evaluate_adapted(model, adapted, new_task.query_x, new_task.query_y, mse_loss)

        random_model = MLP([2, 16, 2], np.random.default_rng(777))
        assert few_shot_loss(meta_model) < 0.5 * few_shot_loss(random_model)

    def test_reptile_outer_also_trains(self, mlp_factory, sine_tasks):
        model = mlp_factory()
        cfg = MAMLConfig(meta_lr=0.5, inner_lr=0.05, inner_steps=3, meta_batch=4, iterations=25, outer="reptile")
        history = meta_train(model, sine_tasks, cfg, mse_loss, rng=np.random.default_rng(0))
        assert np.mean(history[-5:]) < np.mean(history[:5])

    def test_requires_tasks(self, mlp_factory):
        with pytest.raises(ValueError):
            meta_train(mlp_factory(), [], MAMLConfig(), mse_loss)


class TestLearningPath:
    def test_shape(self, mlp_factory, sine_tasks):
        model = mlp_factory()
        path = learning_path(model, sine_tasks[0], mse_loss, inner_lr=0.05, steps=4)
        assert path.shape == (4, model.n_parameters())

    def test_similar_tasks_have_similar_paths(self, mlp_factory):
        """Tasks from the same function should produce aligned gradients."""
        from repro.similarity.learning_path import learning_path_similarity

        model = mlp_factory()
        a1 = sine_family_task(0, 1.0, 0.5, seed=1)
        a2 = sine_family_task(1, 1.0, 0.5, seed=2)
        b = sine_family_task(2, 2.0, 2.5, seed=3)
        pa1 = learning_path(model, a1, mse_loss, 0.05, 3)
        pa2 = learning_path(model, a2, mse_loss, 0.05, 3)
        pb = learning_path(model, b, mse_loss, 0.05, 3)
        assert learning_path_similarity(pa1, pa2) > learning_path_similarity(pa1, pb)

    def test_rejects_zero_steps(self, mlp_factory, sine_tasks):
        with pytest.raises(ValueError):
            learning_path(mlp_factory(), sine_tasks[0], mse_loss, 0.05, 0)

"""Tests for the potential-game clustering engine (Theorem 1 in code)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.game import (
    ClusteringGame,
    best_response_clustering,
    cluster_quality,
    scaled_cluster_quality,
)


def block_similarity(sizes, within=0.9, across=0.1, noise=0.0, seed=0):
    """Block-structured similarity matrix: high within blocks."""
    n = sum(sizes)
    sim = np.full((n, n), across)
    start = 0
    for s in sizes:
        sim[start : start + s, start : start + s] = within
        start += s
    if noise:
        rng = np.random.default_rng(seed)
        pert = rng.uniform(-noise, noise, size=(n, n))
        sim = np.clip(sim + (pert + pert.T) / 2, 0.0, 1.0)
    np.fill_diagonal(sim, 1.0)
    return sim


class TestClusterQuality:
    def test_empty_is_zero(self):
        assert cluster_quality(np.eye(3), [], gamma=0.2) == 0.0

    def test_singleton_is_gamma(self):
        assert cluster_quality(np.eye(3), [1], gamma=0.2) == 0.2

    def test_pair_is_their_similarity(self):
        sim = np.array([[1.0, 0.7], [0.7, 1.0]])
        assert cluster_quality(sim, [0, 1], gamma=0.2) == pytest.approx(0.7)

    def test_average_over_pairs(self):
        sim = np.array([
            [1.0, 0.8, 0.4],
            [0.8, 1.0, 0.6],
            [0.4, 0.6, 1.0],
        ])
        q = cluster_quality(sim, [0, 1, 2], gamma=0.2)
        assert q == pytest.approx((0.8 + 0.4 + 0.6) / 3)


class TestClusteringGame:
    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            ClusteringGame(np.zeros((2, 3)), 2, 0.2)
        with pytest.raises(ValueError):
            ClusteringGame(np.array([[1.0, 0.2], [0.5, 1.0]]), 2, 0.2)  # asymmetric
        with pytest.raises(ValueError):
            ClusteringGame(np.eye(2), 2, 1.5)
        with pytest.raises(ValueError):
            ClusteringGame(np.eye(2), 0, 0.2)

    def test_incremental_quality_matches_direct(self):
        sim = block_similarity([3, 3], noise=0.05)
        game = ClusteringGame(sim, n_slots=3, gamma=0.2)
        labels = np.array([0, 0, 1, 1, 2, 2])
        game.assign(labels)
        for slot in range(3):
            members = [i for i, s in enumerate(labels) if s == slot]
            assert game.slot_quality(slot) == pytest.approx(
                cluster_quality(sim, members, 0.2)
            )

    def test_joining_utility_is_marginal_quality(self):
        sim = block_similarity([2, 2])
        game = ClusteringGame(sim, n_slots=3, gamma=0.2)
        game.assign(np.array([0, 0, 1, 1]))
        # Utility of joining an empty slot is gamma.
        # Evaluate for a hypothetical unassigned player: remove then check.
        game._remove(0)
        assert game.joining_utility(0, 2) == pytest.approx(0.2)
        game._add(0, 0)

    def test_potential_is_sum_of_scaled_qualities(self):
        sim = block_similarity([2, 3])
        game = ClusteringGame(sim, n_slots=3, gamma=0.2)
        game.assign(np.array([0, 0, 1, 1, 1]))
        expected = sum(
            scaled_cluster_quality(sim, [i for i in range(5) if [0, 0, 1, 1, 1][i] == s], 0.2)
            for s in range(3)
        )
        assert game.potential() == pytest.approx(expected)

    def test_scaled_quality_stabilises_large_clusters(self):
        """Homogeneous clusters of any size are stable when s > gamma —
        the property the size scaling exists to provide."""
        sim = block_similarity([6])
        game = ClusteringGame(sim, n_slots=8, gamma=0.2)
        game.assign(np.zeros(6, dtype=int))
        game._remove(0)
        stay = game.joining_utility(0, 0)
        secede = game.joining_utility(0, 5)  # empty slot
        game._add(0, 0)
        assert stay > secede


class TestBestResponse:
    def test_recovers_block_structure(self):
        sim = block_similarity([5, 5, 5], noise=0.05)
        init = np.random.default_rng(0).integers(0, 3, size=15)
        result = best_response_clustering(sim, init, gamma=0.2)
        assert result.converged
        clusters = result.clusters()
        # Each true block should end up in a single cluster.
        for block in (range(0, 5), range(5, 10), range(10, 15)):
            holders = {
                next(i for i, c in enumerate(clusters) if m in c) for m in block
            }
            assert len(holders) == 1

    def test_potential_trace_non_decreasing(self):
        """Theorem 1's proof, executed: every accepted move raises F."""
        rng = np.random.default_rng(7)
        raw = rng.uniform(0, 1, size=(12, 12))
        sim = (raw + raw.T) / 2
        np.fill_diagonal(sim, 1.0)
        init = rng.integers(0, 4, size=12)
        result = best_response_clustering(sim, init, gamma=0.3)
        trace = result.potential_trace
        assert all(b >= a - 1e-9 for a, b in zip(trace, trace[1:]))

    def test_nash_equilibrium_no_improving_move(self):
        sim = block_similarity([4, 4], noise=0.03)
        init = np.zeros(8, dtype=int)
        result = best_response_clustering(sim, init, gamma=0.2)
        assert result.converged
        # Verify no player can strictly improve by deviating.
        game = ClusteringGame(sim, n_slots=int(result.labels.max()) + 2, gamma=0.2)
        game.assign(result.labels)
        for player in range(8):
            current = int(game.labels[player])
            game._remove(player)
            current_u = game.joining_utility(player, current)
            for slot in range(game.n_slots):
                assert game.joining_utility(player, slot) <= current_u + 1e-9
            game._add(player, current)

    def test_gamma_controls_secession(self):
        """With a dissimilar pair, high gamma favours singletons."""
        sim = np.array([[1.0, 0.05], [0.05, 1.0]])
        init = np.zeros(2, dtype=int)
        together = best_response_clustering(sim, init, gamma=0.01)
        apart = best_response_clustering(sim, init, gamma=0.9)
        assert len(together.clusters()) == 1
        assert len(apart.clusters()) == 2

    def test_empty_input(self):
        result = best_response_clustering(np.zeros((0, 0)), np.zeros(0, dtype=int), gamma=0.2)
        assert result.converged
        assert len(result.labels) == 0

    def test_single_player(self):
        result = best_response_clustering(np.array([[1.0]]), np.array([0]), gamma=0.2)
        assert result.converged
        assert len(result.clusters()) == 1

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(2, 10),
        k=st.integers(1, 4),
        seed=st.integers(0, 10_000),
        gamma=st.floats(0.05, 0.95),
    )
    def test_property_converges_and_monotone(self, n, k, seed, gamma):
        rng = np.random.default_rng(seed)
        raw = rng.uniform(0, 1, size=(n, n))
        sim = (raw + raw.T) / 2
        np.fill_diagonal(sim, 1.0)
        init = rng.integers(0, k, size=n)
        result = best_response_clustering(sim, init, gamma=gamma)
        assert result.converged, "best response must reach Nash equilibrium"
        trace = result.potential_trace
        assert all(b >= a - 1e-9 for a, b in zip(trace, trace[1:]))
        # Labels form a partition of all players.
        assert sorted(i for c in result.clusters() for i in c) == list(range(n))

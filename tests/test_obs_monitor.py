"""The online monitor: cadence sampling, OpenMetrics, tolerant readers.

Covers the streaming half of ``repro.obs``:

* histogram/percentile edge cases and snapshot determinism that the
  monitor's windowed sampling relies on;
* :class:`MetricsMonitor` — one sample per crossed cadence boundary,
  windowed counter deltas, rolling histogram windows, the JSONL series
  file, and the OpenMetrics targets (file and HTTP endpoint);
* tolerant JSONL/manifest readers — a run killed mid-write leaves a
  truncated final line, which must not take the whole artifact with it.
"""

import json
import math
import urllib.request

import pytest

from repro import obs
from repro.obs import (
    Histogram,
    MetricsMonitor,
    MetricsRecorder,
    MetricsRegistry,
    MonitorConfig,
    RunManifest,
    percentile,
    read_jsonl,
    read_manifest,
    read_series,
    read_trace,
    render_openmetrics,
    write_openmetrics,
)
from repro.obs.openmetrics import ExpositionServer, metric_name


class TestHistogramEdgeCases:
    def test_percentile_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50.0)

    def test_percentile_out_of_range_q_raises(self):
        with pytest.raises(ValueError, match="0, 100"):
            percentile([1.0], 101.0)

    def test_percentile_single_sample_is_that_sample(self):
        assert percentile([4.2], 0.0) == 4.2
        assert percentile([4.2], 50.0) == 4.2
        assert percentile([4.2], 100.0) == 4.2

    def test_empty_summary_is_bare_count(self):
        assert Histogram().summary() == {"count": 0}

    def test_single_sample_summary(self):
        h = Histogram()
        h.observe(3.0)
        s = h.summary()
        assert s["count"] == 1
        assert s["min"] == s["max"] == s["p50"] == s["p99"] == 3.0

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_non_finite_observation_raises(self, bad):
        with pytest.raises(ValueError, match="finite"):
            Histogram().observe(bad)
        assert not math.isfinite(bad)  # the guard is about these exact values

    def test_window_summary_is_the_tail(self):
        h = Histogram()
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.window_summary(2) == Histogram(values=[3.0, 4.0]).summary()
        assert h.window_summary(4) == {"count": 0}
        with pytest.raises(ValueError, match="non-negative"):
            h.window_summary(-1)

    def test_snapshot_is_deterministic_and_sorted(self):
        def build(order):
            reg = MetricsRegistry()
            for name in order:
                reg.counter(f"c.{name}").add(2.0)
                reg.gauge(f"g.{name}").set(1.0)
                reg.histogram(f"h.{name}").observe(0.5)
            return reg.snapshot()

        a = build(["z", "a", "m"])
        b = build(["m", "z", "a"])
        assert a == b
        assert list(a["counters"]) == sorted(a["counters"])
        assert json.dumps(a) == json.dumps(b)


class TestMetricsRecorder:
    def test_records_metrics_without_spans(self):
        rec = MetricsRecorder()
        assert rec.enabled
        with rec.span("anything", x=1) as span:
            span.set(y=2)  # the null span swallows attributes
        rec.counter("c", 3.0)
        rec.gauge("g", 7.0)
        rec.histogram("h", 0.25)
        snap = rec.metrics.snapshot()
        assert snap["counters"]["c"] == 3.0
        assert snap["gauges"]["g"] == 7.0
        assert snap["histograms"]["h"]["count"] == 1


class TestMetricsMonitor:
    def test_one_sample_per_crossed_boundary(self, tmp_path):
        reg = MetricsRegistry()
        mon = MetricsMonitor(MonitorConfig(cadence=2.0, calibration=None), reg)
        mon.start(0.0)
        reg.counter("events").add(1.0)
        mon.advance(1.9)
        assert mon.samples == []
        mon.advance(2.1)  # crosses t=2
        reg.counter("events").add(4.0)
        mon.advance(9.0)  # crosses t=4, 6, 8 — one sample each
        mon.finish(9.0)
        times = [s["t"] for s in mon.samples]
        assert times == [2.0, 4.0, 6.0, 8.0, 9.0]
        assert mon.samples[-1]["final"] is True

    def test_counter_deltas_are_windowed(self):
        reg = MetricsRegistry()
        mon = MetricsMonitor(MonitorConfig(cadence=1.0, calibration=None), reg)
        mon.start(0.0)
        reg.counter("n").add(3.0)
        mon.advance(1.0)
        reg.counter("n").add(2.0)
        mon.advance(2.0)
        mon.finish(2.5)
        deltas = [s["counter_deltas"]["n"] for s in mon.samples]
        assert deltas == [3.0, 2.0, 0.0]
        assert mon.samples[-1]["counters"]["n"] == 5.0  # cumulative stays cumulative

    def test_histogram_windows_roll_without_reset(self):
        reg = MetricsRegistry()
        mon = MetricsMonitor(MonitorConfig(cadence=1.0, calibration=None), reg)
        mon.start(0.0)
        reg.histogram("lat").observe(1.0)
        reg.histogram("lat").observe(2.0)
        mon.advance(1.0)
        reg.histogram("lat").observe(10.0)
        mon.advance(2.0)
        mon.finish(2.0)
        first, second = mon.samples[0], mon.samples[1]
        assert first["histograms"]["lat"]["count"] == 2
        assert first["histograms"]["lat"]["max"] == 2.0
        assert second["histograms"]["lat"] == {
            "count": 1, "sum": 10.0, "mean": 10.0, "min": 10.0, "max": 10.0,
            "p50": 10.0, "p90": 10.0, "p99": 10.0,
        }
        # The registry histogram itself was never reset.
        assert reg.histograms["lat"].count == 3

    def test_series_file_and_reader(self, tmp_path):
        series = tmp_path / "run.series.jsonl"
        reg = MetricsRegistry()
        mon = MetricsMonitor(
            MonitorConfig(cadence=1.0, series_path=str(series), calibration=None), reg
        )
        mon.start(0.0)
        reg.counter("n").add(1.0)
        mon.advance(3.0)
        mon.finish(3.0)
        records = read_series(series)
        assert records[0]["type"] == "monitor_start"
        assert records[0]["cadence"] == 1.0
        assert [r["seq"] for r in records if r["type"] == "sample"] == [0, 1, 2, 3]

    def test_event_clock_requires_time(self):
        mon = MetricsMonitor(MonitorConfig(calibration=None), MetricsRegistry())
        with pytest.raises(ValueError, match="explicit time"):
            mon.start()

    def test_wall_clock_needs_no_time(self):
        mon = MetricsMonitor(
            MonitorConfig(clock="wall", cadence=60.0, calibration=None), MetricsRegistry()
        )
        mon.start()
        mon.advance()
        mon.finish()
        assert len(mon.samples) == 1  # just the final sample

    def test_config_validation(self):
        with pytest.raises(ValueError, match="cadence"):
            MonitorConfig(cadence=0.0)
        with pytest.raises(ValueError, match="clock"):
            MonitorConfig(clock="lamport")

    def test_finish_is_idempotent(self, tmp_path):
        series = tmp_path / "s.jsonl"
        mon = MetricsMonitor(
            MonitorConfig(series_path=str(series), calibration=None), MetricsRegistry()
        )
        mon.start(0.0)
        mon.finish(1.0)
        mon.finish(2.0)
        assert len([r for r in read_series(series) if r["type"] == "sample"]) == 1


class TestOpenMetrics:
    SNAPSHOT = {
        "counters": {"serve.accepted": 12.0},
        "gauges": {"serve.queue.pending": 3.0},
        "histograms": {
            "serve.batch.latency_s": {
                "count": 2, "sum": 0.3, "mean": 0.15, "min": 0.1, "max": 0.2,
                "p50": 0.15, "p90": 0.19, "p99": 0.199,
            }
        },
    }

    def test_metric_name_sanitises(self):
        assert metric_name("serve.queue.pending") == "repro_serve_queue_pending"
        assert metric_name("a-b c", prefix="") == "a_b_c"
        assert metric_name("9lives", prefix="") == "_9lives"

    def test_render_families_and_eof(self):
        text = render_openmetrics(self.SNAPSHOT)
        assert "# TYPE repro_serve_accepted counter" in text
        assert "repro_serve_accepted_total 12" in text
        assert "# TYPE repro_serve_queue_pending gauge" in text
        assert "repro_serve_queue_pending 3" in text
        assert 'repro_serve_batch_latency_s{quantile="0.5"} 0.15' in text
        assert "repro_serve_batch_latency_s_count 2" in text
        assert text.endswith("# EOF\n")

    def test_render_is_deterministic(self):
        assert render_openmetrics(self.SNAPSHOT) == render_openmetrics(dict(self.SNAPSHOT))

    def test_write_is_atomic_no_tmp_left(self, tmp_path):
        target = tmp_path / "metrics.om"
        write_openmetrics(target, self.SNAPSHOT)
        assert target.read_text().endswith("# EOF\n")
        assert list(tmp_path.iterdir()) == [target]

    def test_http_endpoint_serves_latest(self):
        server = ExpositionServer(port=0)
        try:
            text = render_openmetrics(self.SNAPSHOT)
            server.publish(text)
            url = f"http://127.0.0.1:{server.port}/metrics"
            with urllib.request.urlopen(url, timeout=5) as resp:
                assert resp.status == 200
                assert "openmetrics-text" in resp.headers["Content-Type"]
                assert resp.read().decode() == text
            bad = urllib.request.Request(f"http://127.0.0.1:{server.port}/nope")
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(bad, timeout=5)
        finally:
            server.close()


class TestTolerantReaders:
    def test_read_jsonl_skips_truncated_tail(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"type": "span", "name": "a"}\n{"type": "spa')
        with pytest.warns(UserWarning, match="trace.jsonl:2.*truncated"):
            records = read_trace(path)
        assert [r["name"] for r in records] == ["a"]

    def test_read_jsonl_strict_raises(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("not json\n")
        with pytest.raises(json.JSONDecodeError):
            read_jsonl(path, strict=True)

    def test_read_series_skips_truncated_tail(self, tmp_path):
        path = tmp_path / "run.series.jsonl"
        path.write_text('{"type": "sample", "seq": 0, "t": 1.0}\n{"type": "sam')
        with pytest.warns(UserWarning):
            records = read_series(path)
        assert len(records) == 1

    def test_corrupt_manifest_names_the_file(self, tmp_path):
        path = tmp_path / "run.manifest.json"
        path.write_text('{"command": "assi')
        with pytest.raises(ValueError, match="truncated or corrupt"):
            read_manifest(path)

    def test_intact_manifest_roundtrips(self, tmp_path):
        path = tmp_path / "ok.manifest.json"
        manifest = RunManifest.start(command="assign", argv=["--seed", "1"], config={}, seed=1)
        manifest.finalize(metrics={"x": 1.0}).write(path)
        assert read_manifest(path).command == "assign"


def test_noop_recorder_still_default():
    # The monitor machinery must not leak a live recorder into the
    # process-wide default (other tests depend on NOOP).
    assert obs.get_recorder() is obs.NOOP

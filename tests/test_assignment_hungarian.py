"""Tests for the from-scratch Kuhn-Munkres solver."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.optimize import linear_sum_assignment

from repro.assignment.hungarian import (
    Edge,
    assignment_cost,
    maximum_weight_matching,
    solve_assignment,
)


class TestSolveAssignment:
    def test_trivial_1x1(self):
        rows, cols = solve_assignment(np.array([[5.0]]))
        assert list(rows) == [0] and list(cols) == [0]

    def test_identity_optimal(self):
        cost = np.array([[0.0, 9.0], [9.0, 0.0]])
        rows, cols = solve_assignment(cost)
        assert assignment_cost(cost, rows, cols) == 0.0

    def test_maximize(self):
        cost = np.array([[1.0, 5.0], [5.0, 1.0]])
        rows, cols = solve_assignment(cost, maximize=True)
        assert assignment_cost(cost, rows, cols) == 10.0

    def test_rectangular_wide(self):
        cost = np.array([[9.0, 1.0, 9.0]])
        rows, cols = solve_assignment(cost)
        assert list(cols) == [1]

    def test_rectangular_tall(self):
        cost = np.array([[9.0], [1.0], [9.0]])
        rows, cols = solve_assignment(cost)
        assert list(rows) == [1]
        assert list(cols) == [0]

    def test_matching_is_injective(self):
        rng = np.random.default_rng(0)
        cost = rng.normal(size=(8, 12))
        rows, cols = solve_assignment(cost)
        assert len(set(rows)) == len(rows) == 8
        assert len(set(cols)) == len(cols)

    def test_empty_matrix(self):
        rows, cols = solve_assignment(np.zeros((0, 5)))
        assert len(rows) == 0

    def test_rejects_nan_inf(self):
        with pytest.raises(ValueError):
            solve_assignment(np.array([[np.inf, 1.0]]))
        with pytest.raises(ValueError):
            solve_assignment(np.array([[np.nan]]))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            solve_assignment(np.zeros(3))

    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(1, 10),
        m=st.integers(1, 10),
        seed=st.integers(0, 100_000),
        maximize=st.booleans(),
    )
    def test_property_matches_scipy(self, n, m, seed, maximize):
        rng = np.random.default_rng(seed)
        cost = rng.normal(size=(n, m)) * rng.uniform(0.1, 20)
        r1, c1 = solve_assignment(cost, maximize=maximize)
        r2, c2 = linear_sum_assignment(cost, maximize=maximize)
        assert cost[r1, c1].sum() == pytest.approx(cost[r2, c2].sum())

    def test_degenerate_equal_costs(self):
        cost = np.ones((4, 4))
        rows, cols = solve_assignment(cost)
        assert assignment_cost(cost, rows, cols) == 4.0


class TestMaximumWeightMatching:
    def test_empty(self):
        assert maximum_weight_matching([]) == []

    def test_prefers_total_weight_over_greedy(self):
        # Greedy would take (0,0,6); optimal takes (0,1,6)+(1,0,6).
        edges = [(0, 0, 6.0), (0, 1, 6.0), (1, 0, 6.0)]
        chosen = maximum_weight_matching(edges)
        total = sum(w for _, _, w in chosen)
        assert total == 12.0

    def test_respects_matching_constraints(self):
        rng = np.random.default_rng(1)
        edges = [
            (int(rng.integers(5)), int(rng.integers(7)), float(rng.uniform(0.1, 1)))
            for _ in range(30)
        ]
        chosen = maximum_weight_matching(edges)
        lefts = [l for l, _, _ in chosen]
        rights = [r for _, r, _ in chosen]
        assert len(set(lefts)) == len(lefts)
        assert len(set(rights)) == len(rights)

    def test_only_existing_edges_returned(self):
        edges = [(0, 0, 1.0), (1, 1, 1.0)]
        chosen = maximum_weight_matching(edges)
        assert set((l, r) for l, r, _ in chosen) == {(0, 0), (1, 1)}

    def test_sparse_ids_supported(self):
        edges = [(1000, 77, 2.0), (2000, 88, 3.0)]
        chosen = maximum_weight_matching(edges)
        assert {(l, r) for l, r, _ in chosen} == {(1000, 77), (2000, 88)}

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            maximum_weight_matching([(0, 0, -1.0)])

    def test_accepts_edge_dataclass(self):
        chosen = maximum_weight_matching([Edge(0, 0, 1.5)])
        assert chosen == [(0, 0, 1.5)]

    def test_duplicate_edges_keep_best(self):
        chosen = maximum_weight_matching([(0, 0, 1.0), (0, 0, 3.0)])
        assert chosen == [(0, 0, 3.0)]

    def test_zero_weight_dropped_by_default(self):
        assert maximum_weight_matching([(0, 0, 0.0)]) == []
        assert maximum_weight_matching([(0, 0, 0.0)], allow_zero_weight=True) == [(0, 0, 0.0)]

    def test_matches_networkx_on_random_graphs(self):
        import networkx as nx

        rng = np.random.default_rng(5)
        for _ in range(10):
            edges = [
                (int(l), int(r), float(rng.uniform(0.1, 5)))
                for l in range(rng.integers(1, 6))
                for r in range(rng.integers(1, 6))
                if rng.random() < 0.7
            ]
            if not edges:
                continue
            ours = sum(w for _, _, w in maximum_weight_matching(edges))
            g = nx.Graph()
            for l, r, w in edges:
                key = (("L", l), ("R", r))
                if not g.has_edge(*key) or g.edges[key]["weight"] < w:
                    g.add_edge(*key, weight=w)
            theirs = sum(g.edges[e]["weight"] for e in nx.max_weight_matching(g))
            assert ours == pytest.approx(theirs)

"""Failure-injection tests: degenerate inputs the pipeline must survive."""

import numpy as np
import pytest

from repro.assignment.baselines import km_assign, lower_bound_assign
from repro.assignment.ppi import ppi_assign
from repro.geo.point import Point
from repro.geo.trajectory import Trajectory, TrajectoryPoint
from repro.pipeline import AssignmentConfig
from repro.pipeline.prediction import CurrentLocationSnapshotProvider, _recent_shared_track
from repro.sc.entities import SpatialTask, Worker, WorkerSnapshot
from repro.sc.platform import BatchPlatform


def point_worker(worker_id=0, x=0.0, y=0.0, t0=0.0, t1=100.0):
    """A worker who never moves."""
    return Worker(
        worker_id=worker_id,
        routine=Trajectory([
            TrajectoryPoint(Point(x, y), t0),
            TrajectoryPoint(Point(x, y + 1e-9), t1),
        ]),
        detour_budget_km=4.0,
        speed_km_per_min=0.5,
    )


class TestDegenerateWorkers:
    def test_stationary_worker_serves_local_task(self):
        w = point_worker()
        provider = CurrentLocationSnapshotProvider()
        platform = BatchPlatform([w], provider, batch_window=5.0)
        tasks = [SpatialTask(0, Point(0.5, 0.0), 0.0, 60.0)]
        result = platform.run(tasks, lower_bound_assign, 0.0, 60.0)
        assert result.n_completed == 1

    def test_worker_with_zero_matching_rate(self):
        snap = WorkerSnapshot(
            worker_id=0,
            current_location=Point(0, 0),
            predicted_xy=np.array([[1.0, 0.0]]),
            predicted_times=np.array([10.0]),
            detour_budget_km=4.0,
            speed_km_per_min=0.5,
            matching_rate=0.0,
        )
        tasks = [SpatialTask(0, Point(1.0, 0.1), 0.0, 40.0)]
        plan = ppi_assign(tasks, [snap], 0.0)
        # Zero MR forces stage 2/3 but the pair is still assignable.
        assert len(plan) == 1
        assert plan.pairs[0].stage >= 2

    def test_recent_track_pads_before_first_sample(self):
        w = point_worker(t0=50.0, t1=100.0)
        xy, ts = _recent_shared_track(w, t=10.0, seq_in=5)
        assert len(xy) == 5  # padded by repetition
        assert np.isfinite(xy).all()


class TestDegenerateTasks:
    def test_all_tasks_expired_before_start(self):
        w = point_worker()
        provider = CurrentLocationSnapshotProvider()
        platform = BatchPlatform([w], provider, batch_window=5.0)
        tasks = [SpatialTask(i, Point(0.1, 0.0), 0.0, 5.0) for i in range(3)]
        result = platform.run(tasks, lower_bound_assign, 10.0, 60.0)
        assert result.n_completed == 0
        assert result.n_expired == 3

    def test_tasks_unreachable_by_anyone(self):
        w = point_worker()
        provider = CurrentLocationSnapshotProvider()
        platform = BatchPlatform([w], provider, batch_window=5.0)
        tasks = [SpatialTask(0, Point(500.0, 500.0), 0.0, 60.0)]
        result = platform.run(tasks, km_assign, 0.0, 60.0)
        assert result.n_assignments == 0
        assert result.n_expired == 1

    def test_simultaneous_release_burst(self):
        """A burst larger than the worker pool must not break matching."""
        workers = [point_worker(i, x=float(i)) for i in range(3)]
        provider = CurrentLocationSnapshotProvider()
        platform = BatchPlatform(workers, provider, batch_window=5.0, assignment_window=None)
        tasks = [SpatialTask(i, Point(float(i % 3), 0.2), 0.0, 120.0) for i in range(20)]
        result = platform.run(tasks, lower_bound_assign, 0.0, 120.0)
        assert result.n_completed > 0
        assert result.n_completed + result.n_expired == 20


class TestNumericalEdges:
    def test_snapshot_with_identical_predicted_points(self):
        pts = np.zeros((6, 2))
        snap = WorkerSnapshot(
            worker_id=0,
            current_location=Point(0, 0),
            predicted_xy=pts,
            predicted_times=10.0 * np.arange(1, 7),
            detour_budget_km=4.0,
            speed_km_per_min=0.5,
            matching_rate=0.5,
        )
        tasks = [SpatialTask(0, Point(0.0, 0.0), 0.0, 40.0)]
        plan = ppi_assign(tasks, [snap], 0.0)
        assert len(plan) == 1
        assert np.isfinite(plan.pairs[0].score)

    def test_task_exactly_on_bound(self):
        # dis_min == bound: stage 3 edge is inclusive.
        snap = WorkerSnapshot(
            worker_id=0,
            current_location=Point(0, 0),
            predicted_xy=np.array([[2.0, 0.0]]),
            predicted_times=np.array([10.0]),
            detour_budget_km=4.0,  # bound d/2 = 2.0
            speed_km_per_min=10.0,
            matching_rate=0.5,
        )
        tasks = [SpatialTask(0, Point(0.0, 0.0), 0.0, 1000.0)]
        plan = km_assign(tasks, [snap], 0.0)
        assert len(plan) == 1

    def test_assignment_window_none_disables_cancellation(self):
        w = point_worker()
        provider = CurrentLocationSnapshotProvider()
        platform = BatchPlatform([w], provider, batch_window=5.0, assignment_window=None)
        # Task released at 0 with a generous deadline; the worker can't be
        # matched in the first window but is still eligible at t=50.
        tasks = [SpatialTask(0, Point(0.1, 0.0), 0.0, 90.0)]
        result = platform.run(tasks, lower_bound_assign, 0.0, 90.0)
        assert result.n_completed == 1

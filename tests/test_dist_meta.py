"""Deterministic-reduction tests for parallel TAML meta-training.

The tentpole guarantee: ``dist_taml_train`` produces bit-identical
parameters on every tree node for ANY backend and ANY worker count —
``np.array_equal``, not ``allclose``.  The serial single-worker run is
the reference; gangs of 2 and 4 (stacked fused passes) and a real
process pool must reproduce it exactly.
"""

import numpy as np
import pytest

from repro.dist import DistConfig, SerialBackend, dist_taml_train
from repro.meta.learning_task import LearningTask
from repro.meta.maml import MAMLConfig
from repro.meta.taml import TAMLConfig, taml_train
from repro.meta.task_tree import LearningTaskTree
from repro.nn.layers import MLP
from repro.nn.losses import mse_loss
from repro.pipeline.training import MobilityModelFactory

SEQ_IN, SEQ_OUT = 4, 2


def traj_task(worker_id, seed, n=18, seq_in=SEQ_IN, seq_out=SEQ_OUT):
    rng = np.random.default_rng(seed)
    x = 0.1 * rng.normal(size=(n, seq_in, 2)).cumsum(axis=1)
    y = x[:, -1:, :] + 0.05 * rng.normal(size=(n, seq_out, 2)).cumsum(axis=1)
    half = n - 5
    return LearningTask(worker_id, x[:half], y[:half], x[half:], y[half:])


FACTORY = MobilityModelFactory(cell="lstm", hidden_size=6, seq_out=SEQ_OUT, seed=42)
MAML = MAMLConfig(
    meta_lr=0.1, inner_lr=0.05, inner_steps=2, meta_batch=2, iterations=3, support_batch=8
)


def two_level_tree(n_leaves=4, tasks_per_leaf=3):
    groups = [
        [traj_task(10 * g + i, seed=100 * g + i) for i in range(tasks_per_leaf)]
        for g in range(n_leaves)
    ]
    root = LearningTaskTree(cluster=[t for g in groups for t in g])
    mid = [
        LearningTaskTree(cluster=groups[0] + groups[1]),
        LearningTaskTree(cluster=groups[2] + groups[3]),
    ]
    for m in mid:
        root.add_child(m)
    mid[0].add_child(LearningTaskTree(cluster=groups[0]))
    mid[0].add_child(LearningTaskTree(cluster=groups[1]))
    mid[1].add_child(LearningTaskTree(cluster=groups[2]))
    mid[1].add_child(LearningTaskTree(cluster=groups[3]))
    return root


def run_dist(dist, factory=FACTORY, maml=MAML, seed=7, backend=None):
    tree = two_level_tree()
    loss = dist_taml_train(
        tree,
        factory,
        mse_loss,
        config=TAMLConfig(maml=maml),
        dist=dist,
        rng=np.random.default_rng(seed),
        backend=backend,
    )
    return loss, [node.theta for node in tree.iter_nodes()]


def assert_trees_identical(ref, got, context=""):
    assert len(ref) == len(got)
    for a, b in zip(ref, got):
        assert set(a) == set(b)
        for key in a:
            assert np.array_equal(a[key], b[key]), f"{context}: {key} differs"


class TestBitIdenticalReduction:
    @pytest.fixture(scope="class")
    def reference(self):
        return run_dist(DistConfig(backend="serial", workers=1))

    @pytest.mark.parametrize("workers", [2, 4])
    def test_gang_width_matches_serial(self, reference, workers):
        """Serial vs 2-worker vs 4-worker gangs: bit-identical thetas."""
        ref_loss, ref = reference
        loss, got = run_dist(DistConfig(backend="serial", workers=workers))
        assert loss == ref_loss
        assert_trees_identical(ref, got, f"gang-{workers}")

    def test_process_pool_matches_serial(self, reference):
        ref_loss, ref = reference
        loss, got = run_dist(DistConfig(backend="process", workers=2))
        assert loss == ref_loss
        assert_trees_identical(ref, got, "process-2")

    def test_explicit_backend_reused(self, reference):
        """Passing a backend skips resolution and must not change results."""
        ref_loss, ref = reference
        backend = SerialBackend()
        loss, got = run_dist(DistConfig(workers=1), backend=backend)
        assert loss == ref_loss
        assert_trees_identical(ref, got, "explicit-backend")


class TestFallbacks:
    def test_non_fused_model_gang_falls_back_identically(self):
        """MLPs have no fused kernels: the gang executor must run the
        per-leaf path and still be bit-identical to workers=1."""

        def mlp_tree():
            def lin(worker_id, seed, n=14):
                rng = np.random.default_rng(seed)
                x = rng.uniform(-1, 1, size=(n, 1, 2))
                y = 2.0 * x
                return LearningTask(worker_id, x[:-4], y[:-4], x[-4:], y[-4:])

            g1 = [lin(i, seed=i) for i in range(3)]
            g2 = [lin(i + 10, seed=i + 50) for i in range(3)]
            root = LearningTaskTree(cluster=g1 + g2)
            root.add_child(LearningTaskTree(cluster=g1))
            root.add_child(LearningTaskTree(cluster=g2))
            return root

        def mlp_factory():
            return MLP([2, 6, 2], np.random.default_rng(1))

        results = {}
        for workers in (1, 3):
            tree = mlp_tree()
            dist_taml_train(
                tree,
                mlp_factory,
                mse_loss,
                config=TAMLConfig(maml=MAML),
                dist=DistConfig(workers=workers),
                rng=np.random.default_rng(5),
            )
            results[workers] = [node.theta for node in tree.iter_nodes()]
        assert_trees_identical(results[1], results[3], "mlp-gang")

    def test_mixed_shape_leaves_stay_identical(self):
        """Leaves whose window shapes differ cannot share a stacked
        pass; the per-iteration shape grouping must keep any gang width
        bit-identical anyway."""

        def tree():
            groups = [
                [traj_task(10 * g + i, seed=g * 7 + i, n=14 + 2 * g) for i in range(2)]
                for g in range(4)
            ]
            # One leaf with a different seq_in: ineligible for ganging.
            groups[3] = [traj_task(90 + i, seed=300 + i, seq_in=SEQ_IN + 1) for i in range(2)]
            root = LearningTaskTree(cluster=[t for g in groups for t in g])
            for g in groups:
                root.add_child(LearningTaskTree(cluster=g))
            return root

        results = {}
        for workers in (1, 4):
            t = tree()
            dist_taml_train(
                t,
                FACTORY,
                mse_loss,
                config=TAMLConfig(maml=MAML),
                dist=DistConfig(workers=workers),
                rng=np.random.default_rng(3),
            )
            results[workers] = [node.theta for node in t.iter_nodes()]
        assert_trees_identical(results[1], results[4], "mixed-shapes")


class TestSemantics:
    def test_interior_aggregation_matches_legacy_fold(self):
        """The dist fold replays taml_train's arithmetic: with
        tree_rate=1 the root equals the mean of its children."""
        tree = two_level_tree()
        dist_taml_train(
            tree,
            FACTORY,
            mse_loss,
            config=TAMLConfig(maml=MAML, tree_rate=1.0),
            dist=DistConfig(workers=2),
            rng=np.random.default_rng(7),
        )
        for key in tree.theta:
            mean_child = np.mean([c.theta[key] for c in tree.children], axis=0)
            np.testing.assert_array_equal(tree.theta[key], mean_child)

    def test_reptile_outer_also_identical(self):
        maml = MAMLConfig(
            meta_lr=0.1, inner_lr=0.05, inner_steps=2, meta_batch=2,
            iterations=3, support_batch=8, outer="reptile",
        )
        ref_loss, ref = run_dist(DistConfig(workers=1), maml=maml)
        loss, got = run_dist(DistConfig(workers=4), maml=maml)
        assert loss == ref_loss
        assert_trees_identical(ref, got, "reptile")

    def test_dist_family_differs_from_legacy_schedule(self):
        """dist_taml_train has its own per-leaf RNG schedule; the legacy
        taml_train threads one generator sequentially.  They are both
        valid trainings but deliberately NOT the same numbers — pinned
        here so nobody 'fixes' one into the other silently."""
        t1, t2 = two_level_tree(), two_level_tree()
        taml_train(t1, FACTORY, mse_loss, TAMLConfig(maml=MAML), rng=np.random.default_rng(7))
        dist_taml_train(
            t2, FACTORY, mse_loss, config=TAMLConfig(maml=MAML),
            dist=DistConfig(workers=1), rng=np.random.default_rng(7),
        )
        same = all(
            np.array_equal(a.theta[k], b.theta[k])
            for a, b in zip(t1.iter_nodes(), t2.iter_nodes())
            for k in a.theta
        )
        assert not same

    def test_seeds_root_theta_when_missing(self):
        tree = two_level_tree()
        assert tree.theta is None
        dist_taml_train(
            tree, FACTORY, mse_loss, config=TAMLConfig(maml=MAML),
            dist=DistConfig(workers=2), rng=np.random.default_rng(0),
        )
        for node in tree.iter_nodes():
            assert node.theta is not None

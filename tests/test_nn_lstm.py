"""Tests for the LSTM cell/layer, including numeric gradient checks."""

import numpy as np
import pytest

from repro.nn.lstm import LSTM, LSTMCell
from repro.nn.module import clone_parameters
from repro.nn.tensor import Tensor


@pytest.fixture
def cell(rng):
    return LSTMCell(input_size=3, hidden_size=4, rng=rng)


class TestLSTMCell:
    def test_output_shapes(self, cell):
        h, c = cell.zero_state(5)
        x = Tensor(np.zeros((5, 3)))
        h2, c2 = cell(x, (h, c))
        assert h2.shape == (5, 4)
        assert c2.shape == (5, 4)

    def test_forget_bias_initialised_open(self, cell):
        bias = cell.bias.data
        assert np.allclose(bias[4:8], 1.0)
        assert np.allclose(bias[:4], 0.0)

    def test_rejects_bad_sizes(self, rng):
        with pytest.raises(ValueError):
            LSTMCell(0, 4, rng)

    def test_state_evolves(self, cell, rng):
        h, c = cell.zero_state(1)
        x = Tensor(rng.normal(size=(1, 3)))
        h2, _ = cell(x, (h, c))
        assert not np.allclose(h2.numpy(), 0.0)

    def test_gradient_matches_finite_difference(self, cell, rng):
        x_data = rng.normal(size=(2, 3))
        params = dict(cell.named_parameters())

        def loss_value() -> float:
            h, c = cell.zero_state(2)
            h2, c2 = cell(Tensor(x_data), (h, c))
            return float((h2 * h2).sum().item() + c2.sum().item())

        # Analytic gradient.
        cell.zero_grad()
        h, c = cell.zero_state(2)
        h2, c2 = cell(Tensor(x_data), (h, c))
        ((h2 * h2).sum() + c2.sum()).backward()

        eps = 1e-6
        for name in ("w_ih", "w_hh", "bias"):
            p = params[name]
            idx = (0,) if p.data.ndim == 1 else (0, 1)
            orig = p.data[idx]
            p.data[idx] = orig + eps
            fp = loss_value()
            p.data[idx] = orig - eps
            fm = loss_value()
            p.data[idx] = orig
            num = (fp - fm) / (2 * eps)
            assert p.grad[idx] == pytest.approx(num, abs=1e-5), name


class TestLSTMLayer:
    def test_output_shapes(self, rng):
        lstm = LSTM(2, 6, rng)
        x = Tensor(rng.normal(size=(3, 7, 2)))
        out, (h, c) = lstm(x)
        assert out.shape == (3, 7, 6)
        assert h.shape == (3, 6)

    def test_rejects_2d_input(self, rng):
        lstm = LSTM(2, 6, rng)
        with pytest.raises(ValueError):
            lstm(Tensor(np.zeros((3, 2))))

    def test_last_output_equals_final_state(self, rng):
        lstm = LSTM(2, 4, rng)
        x = Tensor(rng.normal(size=(2, 5, 2)))
        out, (h, _) = lstm(x)
        assert np.allclose(out.numpy()[:, -1, :], h.numpy())

    def test_functional_call_matches_direct(self, rng):
        lstm = LSTM(2, 4, rng)
        x = Tensor(rng.normal(size=(2, 5, 2)))
        direct, _ = lstm(x)
        overrides = clone_parameters(lstm)
        via_ctx, _ = lstm.functional_call(overrides, x)
        assert np.allclose(direct.numpy(), via_ctx.numpy())

    def test_gradient_flows_through_time(self, rng):
        lstm = LSTM(2, 4, rng)
        x = Tensor(rng.normal(size=(1, 6, 2)), requires_grad=True)
        out, _ = lstm(x)
        out.sum().backward()
        # Even the first time step receives gradient.
        assert np.any(np.abs(x.grad[0, 0]) > 0)

"""Engine-level monitoring: no-op parity, series output, drift detection.

The contract under test (see ``docs/OBSERVABILITY.md``):

* ``ServeConfig.monitor=None`` leaves the engine's observable outcome
  **bit-identical** to a run that never heard of monitoring;
* with a monitor, a seeded run streams a JSONL time series and an
  OpenMetrics exposition while still producing the identical plan;
* a provider whose confidence outlives its accuracy — calibrated early,
  overconfident late — trips the drift detector deterministically.
"""

import json

import numpy as np
import pytest

from repro import obs
from repro.assignment.ppi import ppi_assign, ppi_assign_candidates
from repro.cli import main as cli_main
from repro.geo.point import Point
from repro.obs import MemorySink, MonitorConfig, read_series
from repro.sc.acceptance import oracle_future_route
from repro.sc.entities import SpatialTask, Worker, WorkerSnapshot
from repro.serve import (
    DeadReckoningProvider,
    ServeConfig,
    ServeEngine,
    StreamConfig,
    make_task_stream,
    make_worker_fleet,
    result_signature,
)

from tests.conftest import straight_trajectory


def seeded_scenario(seed=0, n_workers=20, n_tasks=40, t_end=40.0):
    cfg = StreamConfig(n_workers=n_workers, n_tasks=n_tasks, t_end=t_end, seed=seed)
    return make_task_stream(cfg), make_worker_fleet(cfg)


def run_engine(tasks, workers, seed=0, t_end=40.0, **config):
    engine = ServeEngine(
        workers,
        DeadReckoningProvider(seed=seed),
        ServeConfig(**config),
        assign_fn=ppi_assign,
        candidate_assign_fn=ppi_assign_candidates,
    )
    return engine.run(tasks, 0.0, t_end)


class TestNoOpContract:
    def test_monitored_run_is_bit_identical(self, tmp_path):
        tasks, workers = seeded_scenario()
        plain = run_engine(tasks, workers)
        monitored = run_engine(
            tasks,
            workers,
            monitor=MonitorConfig(cadence=2.0, series_path=str(tmp_path / "s.jsonl")),
        )
        assert result_signature(monitored) == result_signature(plain)
        assert plain.n_monitor_samples == 0
        assert plain.calibration is None
        assert monitored.n_monitor_samples > 0

    def test_recorder_restored_after_monitored_run(self):
        tasks, workers = seeded_scenario(n_workers=5, n_tasks=10, t_end=10.0)
        run_engine(tasks, workers, t_end=10.0, monitor=MonitorConfig(cadence=5.0))
        assert obs.get_recorder() is obs.NOOP

    def test_recorder_restored_when_run_raises(self, tmp_path):
        tasks, workers = seeded_scenario(n_workers=5, n_tasks=10, t_end=10.0)

        def broken_assign(tasks, snapshots, t):
            raise RuntimeError("assignment exploded")

        series = tmp_path / "crash.series.jsonl"
        engine = ServeEngine(
            workers,
            DeadReckoningProvider(seed=0),
            ServeConfig(monitor=MonitorConfig(cadence=5.0, series_path=str(series))),
            assign_fn=broken_assign,
        )
        with pytest.raises(RuntimeError, match="exploded"):
            engine.run(tasks, 0.0, 10.0)
        assert obs.get_recorder() is obs.NOOP
        # The series file was closed with a final sample, so the partial
        # run is still inspectable.
        assert any(r.get("final") for r in read_series(series))

    def test_external_recorder_is_not_displaced(self):
        tasks, workers = seeded_scenario(n_workers=5, n_tasks=10, t_end=10.0)
        with obs.recording(MemorySink()) as rec:
            result = run_engine(tasks, workers, t_end=10.0, monitor=MonitorConfig(cadence=5.0))
            assert obs.get_recorder() is rec
        assert result.n_monitor_samples > 0
        # The monitor sampled the recorder's registry, not a private one.
        assert "serve.loop.heap_depth" in rec.metrics.gauges


class TestMonitoredRunOutputs:
    def test_series_and_openmetrics_files(self, tmp_path):
        tasks, workers = seeded_scenario()
        series = tmp_path / "run.series.jsonl"
        exposition = tmp_path / "run.om"
        result = run_engine(
            tasks,
            workers,
            use_index=True,
            cache_ttl=4.0,
            monitor=MonitorConfig(
                cadence=4.0, series_path=str(series), openmetrics_path=str(exposition)
            ),
        )
        records = read_series(series)
        samples = [r for r in records if r["type"] == "sample"]
        assert len(samples) == result.n_monitor_samples
        assert [s["seq"] for s in samples] == list(range(len(samples)))
        assert records[-1]["type"] == "calibration"
        assert result.calibration["n_samples"] == records[-1]["n_samples"]
        text = exposition.read_text()
        assert text.endswith("# EOF\n")
        assert "repro_serve_assignments_total" in text
        assert "repro_serve_loop_heap_depth" in text

    def test_engine_health_metrics_present(self, tmp_path):
        tasks, workers = seeded_scenario()
        result = run_engine(
            tasks,
            workers,
            use_index=True,
            cache_ttl=4.0,
            monitor=MonitorConfig(cadence=4.0, series_path=str(tmp_path / "s.jsonl")),
        )
        final = [r for r in read_series(tmp_path / "s.jsonl") if r["type"] == "sample"][-1]
        for hist in ("serve.loop.lag_s", "serve.batch.latency_s", "serve.index.candidates",
                     "serve.task.time_to_assign"):
            assert hist in final["histograms"], hist
        for gauge in ("serve.loop.heap_depth", "serve.cache.hit_rate", "serve.queue.pending"):
            assert gauge in final["gauges"], gauge
        # The candidate histogram sums to the engine's own pair count.
        candidate_windows = [
            s["histograms"].get("serve.index.candidates", {"count": 0})
            for s in read_series(tmp_path / "s.jsonl")
            if s.get("type") == "sample"
        ]
        assert sum(w.get("sum", 0.0) for w in candidate_windows) == result.n_candidate_pairs

    def test_deterministic_reruns_produce_identical_series(self, tmp_path):
        tasks, workers = seeded_scenario()

        def series_of(name):
            path = tmp_path / name
            run_engine(
                tasks, workers,
                monitor=MonitorConfig(cadence=4.0, series_path=str(path)),
            )
            records = read_series(path)
            for r in records:  # wall timestamps legitimately differ
                r.pop("wall_unix", None)
                for h in r.get("histograms", {}).values():
                    h.pop("sum", None) or None
            # Wall-time histograms (latency, lag) differ between runs;
            # the event-time axis and counting metrics must not.
            return [
                (r["type"], r.get("t"), r.get("counters"), r.get("counter_deltas"))
                for r in records
            ]

        assert series_of("a.jsonl") == series_of("b.jsonl")


# ---------------------------------------------------------------------
# The synthetic drift scenario: a provider whose claims stop being true.
# ---------------------------------------------------------------------

HOTSPOT_FAR = (5.0, 30.0)   # 30 km off every worker's route


def overconfident_provider(worker, t):
    """True near-term route plus a phantom hotspot, all claimed at MR=0.9.

    While tasks land on the real route the confident claims are
    honoured; once tasks move to the phantom hotspot the same
    confidence is systematically wrong.
    """
    xy, times = oracle_future_route(worker, t, horizon=4)
    claims = np.vstack([xy, [HOTSPOT_FAR]])
    return WorkerSnapshot(
        worker_id=worker.worker_id,
        current_location=worker.last_shared_location(t),
        predicted_xy=claims,
        predicted_times=np.append(times, t + 5.0),
        detour_budget_km=worker.detour_budget_km,
        speed_km_per_min=worker.speed_km_per_min,
        matching_rate=0.9,
    )


def drift_scenario():
    """Calibrated for 40 minutes, then the stream leaves the model behind.

    Workers advance 0.1 km/min along straight eastbound routes.  Early
    tasks drop just ahead of that progress (x = 0.1 t + 0.5), so the
    provider's confident claims are honoured — tiny detour, reachable
    branch points, per-sample error ~0.01.  From t=40 every task lands
    at the far hotspot the workers never actually visit: the provider
    keeps claiming ~0.9, the workers keep rejecting, and the error
    jumps to ~0.9 — a clean mean shift for the Page-Hinkley test.
    """
    workers = [
        Worker(
            worker_id=k,
            routine=straight_trajectory(start=(0.0, 0.2 * k), end=(10.0, 0.2 * k), t1=100.0),
            detour_budget_km=4.0,
            speed_km_per_min=1.0,
        )
        for k in range(4)
    ]
    tasks = [
        SpatialTask(
            task_id=i,
            location=(
                Point(0.1 * i + 0.5, 0.3) if i < 40 else Point(*HOTSPOT_FAR)
            ),
            release_time=float(i),
            deadline=float(i) + 15.0,
        )
        for i in range(80)
    ]
    return tasks, workers


class TestDriftDetection:
    def test_stale_model_trips_detector(self, tmp_path):
        tasks, workers = drift_scenario()
        series = tmp_path / "drift.series.jsonl"
        engine = ServeEngine(
            workers,
            overconfident_provider,
            ServeConfig(monitor=MonitorConfig(cadence=5.0, series_path=str(series))),
            assign_fn=ppi_assign,
        )
        result = engine.run(tasks, 0.0, 90.0)
        assert result.n_drift_events >= 1
        drifts = [r for r in read_series(series) if r["type"] == "drift"]
        assert len(drifts) == result.n_drift_events
        # The alarm fires in the stale regime, not during the calibrated
        # warm-up.
        assert drifts[0]["t"] > 40.0
        assert drifts[0]["detector"] == "page_hinkley"
        # The drift counter made it into the sampled series too.
        final = [r for r in read_series(series) if r["type"] == "sample"][-1]
        assert final["counters"]["serve.calibration.drift"] >= 1
        # Reliability split: confident claims were honoured early
        # (high-p bin mixes accepts and the late rejects).
        high_bin = result.calibration["bins"][-1]  # p in [0.9, 1.0]
        assert high_bin["n"] > 0
        assert high_bin["frac_accepted"] < high_bin["mean_predicted"]

    def test_calibrated_regime_alone_stays_quiet(self, tmp_path):
        tasks, workers = drift_scenario()
        engine = ServeEngine(
            workers,
            overconfident_provider,
            ServeConfig(monitor=MonitorConfig(cadence=5.0)),
            assign_fn=ppi_assign,
        )
        # Stop the run before the stream drifts: no alarm.
        result = engine.run([t for t in tasks if t.task_id < 40], 0.0, 40.0)
        assert result.n_drift_events == 0
        assert result.calibration["n_samples"] > 0
        assert result.calibration["brier"] < 0.1


class TestCli:
    def test_serve_sim_monitor_and_serve_report(self, tmp_path, capsys):
        series = tmp_path / "cli.series.jsonl"
        exposition = tmp_path / "cli.om"
        rc = cli_main([
            "serve-sim", "--n-workers", "20", "--n-tasks", "40", "--horizon", "30",
            "--seed", "3", "--monitor", str(series), "--openmetrics", str(exposition),
            "--monitor-cadence", "5", "--json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics"]["n_monitor_samples"] > 0
        assert "brier" in payload["metrics"]
        assert series.exists() and exposition.read_text().endswith("# EOF\n")

        rc = cli_main(["serve-report", str(series)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "counters (windowed deltas per phase)" in out
        assert "ramp-up" in out and "drain" in out
        assert "calibration" in out

        rc = cli_main(["serve-report", str(series), "--json", "--phases", "2"])
        report = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert [p["name"] for p in report["phases"]] == ["phase 1", "phase 2"]
        assert report["n_samples"] == payload["metrics"]["n_monitor_samples"]

    def test_serve_sim_without_monitor_unchanged(self, capsys):
        rc = cli_main([
            "serve-sim", "--n-workers", "10", "--n-tasks", "20", "--horizon", "20",
            "--seed", "3", "--json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert "n_monitor_samples" not in payload["metrics"]

"""Pickling round-trips for everything a repro.dist payload carries.

The process backend ships jobs through ``multiprocessing``; under the
``spawn`` start method every payload attribute must survive
``pickle.dumps``/``loads``.  These tests pin that property for the
configs, the model factory, the models themselves (whose parameters are
autograd ``Tensor`` objects carrying unpicklable backward closures —
pickling detaches them), and the composed :class:`LeafJob` payload.
"""

import pickle

import numpy as np

from repro.dist import DistConfig, LeafJob, run_leaf_job
from repro.meta.learning_task import LearningTask
from repro.meta.maml import MAMLConfig
from repro.meta.taml import TAMLConfig
from repro.nn.losses import TaskDensityWeighter, make_loss, mse_loss
from repro.nn.seq2seq import make_mobility_model
from repro.nn.tensor import Tensor
from repro.pipeline.config import PredictionConfig
from repro.pipeline.training import MobilityModelFactory, make_model_factory


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


class TestConfigs:
    def test_maml_config(self):
        cfg = MAMLConfig(meta_lr=0.2, inner_steps=5, outer="reptile", fast_path=True)
        assert roundtrip(cfg) == cfg

    def test_taml_config(self):
        cfg = TAMLConfig(maml=MAMLConfig(iterations=7), tree_rate=0.5)
        assert roundtrip(cfg) == cfg

    def test_dist_config(self):
        cfg = DistConfig(backend="process", workers=3, shards=2, start_method="spawn")
        assert roundtrip(cfg) == cfg

    def test_prediction_config_with_dist(self):
        cfg = PredictionConfig(dist=DistConfig(workers=2))
        assert roundtrip(cfg) == cfg


class TestTensorDetach:
    def test_plain_tensor_roundtrips(self):
        t = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True, name="w")
        t.grad = np.ones((2, 3))
        back = roundtrip(t)
        assert np.array_equal(back.data, t.data)
        assert np.array_equal(back.grad, t.grad)
        assert back.requires_grad and back.name == "w"

    def test_graph_tensor_detaches(self):
        """A tensor mid-graph carries a backward closure; the pickled
        copy must come back as a detached leaf, not try to pickle it."""
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.full((2, 2), 3.0), requires_grad=True)
        c = a @ b  # has _backward and _prev
        back = roundtrip(c)
        assert np.array_equal(back.data, c.data)
        assert back._backward is None
        assert back._prev == ()
        back.backward(np.ones_like(back.data))  # detached leaf: a no-op, not a crash


class TestModels:
    def test_factory_roundtrips_and_builds_identically(self):
        factory = MobilityModelFactory(cell="gru", hidden_size=5, seq_out=2, seed=9)
        clone = roundtrip(factory)
        a, b = factory().state_dict(), clone().state_dict()
        assert set(a) == set(b)
        for name in a:
            assert np.array_equal(a[name], b[name])

    def test_make_model_factory_is_picklable(self):
        factory = make_model_factory(PredictionConfig(hidden_size=4))
        assert roundtrip(factory) == factory

    def test_seq2seq_model_roundtrips(self):
        model = make_mobility_model("lstm", hidden_size=4, seq_out=1, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(3, 5, 2))
        model.predict(x)  # leave some graph state behind
        clone = roundtrip(model)
        a, b = model.state_dict(), clone.state_dict()
        for name in a:
            assert np.array_equal(a[name], b[name])
        assert np.array_equal(model.predict(x), clone.predict(x))


class TestLossesAndJobs:
    def _task(self, worker_id=0, seed=0):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(10, 4, 2))
        y = rng.normal(size=(10, 1, 2))
        return LearningTask(worker_id, x[:7], y[:7], x[7:], y[7:])

    def test_task_oriented_loss_roundtrips(self):
        weighter = TaskDensityWeighter(np.array([[0.1, 0.2], [0.8, 0.9]]))
        loss = make_loss("task_oriented", weighter)
        back = roundtrip(loss)
        pred = Tensor(np.zeros((2, 1, 2)))
        target = Tensor(np.array([[[0.1, 0.2]], [[0.8, 0.9]]]))
        assert back(pred, target).data == loss(pred, target).data

    def test_leaf_job_roundtrips_and_runs(self):
        job = LeafJob(
            factory=MobilityModelFactory(hidden_size=4, seed=3),
            tasks=(self._task(0, 0), self._task(1, 1)),
            config=MAMLConfig(iterations=2, meta_batch=2, inner_steps=1, support_batch=4),
            loss_fn=mse_loss,
            theta=MobilityModelFactory(hidden_size=4, seed=3)().state_dict(),
            rng=np.random.default_rng(11),
        )
        shipped = roundtrip(job)  # before running: the run consumes job.rng
        direct_theta, direct_hist = run_leaf_job(job)
        shipped_theta, shipped_hist = run_leaf_job(shipped)
        assert direct_hist == shipped_hist
        for name in direct_theta:
            assert np.array_equal(direct_theta[name], shipped_theta[name])

    def test_learning_task_roundtrips(self):
        task = self._task(5, 2)
        back = roundtrip(task)
        assert back.worker_id == 5
        assert np.array_equal(back.support_x, task.support_x)
        assert np.array_equal(back.query_y, task.query_y)

"""Tests for online matching-rate recalibration."""

import numpy as np
import pytest

from repro.pipeline.adaptive import AdaptiveMRSnapshotProvider, MatchingRateTracker


class TestTracker:
    def test_prior_dominates_initially(self):
        tracker = MatchingRateTracker(strength=8.0)
        assert tracker.posterior(0, 0.7) == pytest.approx(0.7)

    def test_rejections_demote(self):
        tracker = MatchingRateTracker(strength=4.0)
        for _ in range(8):
            tracker.record(0, accepted=False)
        assert tracker.posterior(0, 0.9) < 0.5

    def test_accepts_promote(self):
        tracker = MatchingRateTracker(strength=4.0)
        for _ in range(8):
            tracker.record(0, accepted=True)
        assert tracker.posterior(0, 0.1) > 0.5

    def test_converges_to_empirical_rate(self):
        tracker = MatchingRateTracker(strength=2.0)
        for i in range(300):
            tracker.record(0, accepted=(i % 4 != 0))  # 75% accept
        assert tracker.posterior(0, 0.2) == pytest.approx(0.75, abs=0.03)

    def test_workers_tracked_independently(self):
        tracker = MatchingRateTracker()
        tracker.record(0, True)
        tracker.record(1, False)
        assert tracker.posterior(0, 0.5) > tracker.posterior(1, 0.5)

    def test_observations(self):
        tracker = MatchingRateTracker()
        tracker.record(3, True)
        tracker.record(3, False)
        tracker.record(3, False)
        assert tracker.observations(3) == (1, 2)
        assert tracker.observations(99) == (0, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MatchingRateTracker(strength=0.0)
        with pytest.raises(ValueError):
            MatchingRateTracker().posterior(0, 1.5)


class TestAdaptiveProvider:
    class _FakeBase:
        """Stands in for PredictiveSnapshotProvider."""

        def __call__(self, worker, t):
            from repro.geo.point import Point
            from repro.sc.entities import WorkerSnapshot

            return WorkerSnapshot(
                worker_id=worker.worker_id,
                current_location=Point(0, 0),
                predicted_xy=np.array([[1.0, 0.0]]),
                predicted_times=np.array([t + 10.0]),
                detour_budget_km=4.0,
                speed_km_per_min=0.5,
                matching_rate=0.6,
            )

    class _FakeWorker:
        worker_id = 7

    def test_substitutes_posterior(self):
        provider = AdaptiveMRSnapshotProvider(base=self._FakeBase())
        snap = provider(self._FakeWorker(), 0.0)
        assert snap.matching_rate == pytest.approx(0.6)  # prior only
        for _ in range(10):
            provider.outcome_listener(0, 7, False, 0.0)
        snap = provider(self._FakeWorker(), 2.0)
        assert snap.matching_rate < 0.4

    def test_end_to_end_with_platform(self):
        """The wiring advertised in the docstring actually works."""
        from repro.assignment.baselines import km_assign
        from repro.geo.point import Point
        from repro.geo.trajectory import Trajectory, TrajectoryPoint
        from repro.sc.entities import SpatialTask, Worker
        from repro.sc.platform import BatchPlatform

        worker = Worker(
            worker_id=7,
            routine=Trajectory([
                TrajectoryPoint(Point(0, 0), 0.0),
                TrajectoryPoint(Point(5, 0), 50.0),
            ]),
            detour_budget_km=4.0,
            speed_km_per_min=0.5,
        )
        provider = AdaptiveMRSnapshotProvider(base=self._FakeBase())
        platform = BatchPlatform([worker], provider, batch_window=5.0)
        tasks = [SpatialTask(0, Point(1.0, 0.1), 0.0, 60.0)]
        result = platform.run(
            tasks, km_assign, 0.0, 30.0, outcome_listener=provider.outcome_listener
        )
        accepts, rejects = provider.tracker.observations(7)
        assert accepts + rejects == result.n_assignments

"""Tests for the end-to-end pipeline: training, prediction, experiments."""

import numpy as np
import pytest

from repro.meta.maml import MAMLConfig
from repro.pipeline.config import AssignmentConfig, ExperimentConfig, PredictionConfig
from repro.pipeline.experiment import (
    ASSIGNMENT_ALGORITHMS,
    evaluate_prediction,
    run_assignment,
)
from repro.pipeline.prediction import (
    CurrentLocationSnapshotProvider,
    OracleSnapshotProvider,
    PredictiveSnapshotProvider,
    rollout,
)
from repro.pipeline.training import (
    build_loss,
    make_model_factory,
    probe_learning_paths,
    train_predictor,
)


def tiny_prediction_config(algorithm="gttaml", loss="mse", **kwargs):
    return PredictionConfig(
        algorithm=algorithm,
        loss=loss,
        hidden_size=8,
        fine_tune_steps=3,
        maml=MAMLConfig(iterations=3, meta_batch=2, inner_steps=2, support_batch=8),
        **kwargs,
    )


@pytest.fixture(scope="module")
def trained(small_workload_module, learning_tasks_module):
    wl = small_workload_module
    return train_predictor(
        learning_tasks_module, wl.city, tiny_prediction_config(), wl.historical_tasks_xy
    )


# Module-scoped copies of the session fixtures (training is expensive).
@pytest.fixture(scope="module")
def small_workload_module():
    from repro.data import DidiConfig, PortoConfig, generate_didi_tasks, generate_porto_workers
    from repro.data.didi import historical_task_locations
    from repro.data.workload import Workload

    city, workers = generate_porto_workers(PortoConfig(n_workers=6, n_train_days=4, seed=3))
    tasks = generate_didi_tasks(city, DidiConfig(n_tasks=30, seed=5))
    hist = historical_task_locations(city, 100, seed=6)
    return Workload("porto-didi", city, workers, tasks, hist)


@pytest.fixture(scope="module")
def learning_tasks_module(small_workload_module):
    from repro.data import build_learning_tasks

    wl = small_workload_module
    return build_learning_tasks(
        {w.worker_id: w.history for w in wl.workers}, wl.city, seq_in=4, seq_out=1, seed=7
    )


class TestConfigs:
    def test_prediction_config_validates(self):
        with pytest.raises(ValueError):
            PredictionConfig(algorithm="nope")
        with pytest.raises(ValueError):
            PredictionConfig(loss="nope")
        with pytest.raises(ValueError):
            PredictionConfig(seq_in=0)

    def test_assignment_config_validates(self):
        with pytest.raises(ValueError):
            AssignmentConfig(batch_window=0.0)
        with pytest.raises(ValueError):
            AssignmentConfig(horizon_points=0)

    def test_experiment_config_defaults(self):
        cfg = ExperimentConfig()
        assert cfg.prediction.algorithm == "gttaml"
        assert cfg.assignment.batch_window == 2.0


class TestTraining:
    def test_trains_all_workers(self, trained, learning_tasks_module):
        assert set(trained.worker_params) == {t.worker_id for t in learning_tasks_module}
        assert all(0.0 <= mr <= 1.0 for mr in trained.matching_rates.values())
        assert trained.training_seconds > 0

    def test_gttaml_builds_tree(self, trained):
        assert trained.tree is not None
        assert trained.tree.theta is not None

    @pytest.mark.parametrize("algorithm", ["maml", "ctml", "gttaml_gt"])
    def test_other_algorithms_train(self, algorithm, small_workload_module, learning_tasks_module):
        wl = small_workload_module
        pred = train_predictor(
            learning_tasks_module, wl.city, tiny_prediction_config(algorithm=algorithm), wl.historical_tasks_xy
        )
        assert len(pred.worker_params) == len(learning_tasks_module)
        if algorithm == "ctml":
            assert pred.bank is not None

    def test_task_oriented_loss_trains(self, small_workload_module, learning_tasks_module):
        wl = small_workload_module
        pred = train_predictor(
            learning_tasks_module,
            wl.city,
            tiny_prediction_config(algorithm="maml", loss="task_oriented"),
            wl.historical_tasks_xy,
        )
        assert len(pred.worker_params) == len(learning_tasks_module)

    def test_factor_restriction(self, small_workload_module, learning_tasks_module):
        wl = small_workload_module
        pred = train_predictor(
            learning_tasks_module,
            wl.city,
            tiny_prediction_config(),
            wl.historical_tasks_xy,
            factors=("distribution",),
        )
        assert pred.tree is not None

    def test_requires_tasks(self, small_workload_module):
        with pytest.raises(ValueError):
            train_predictor([], small_workload_module.city, tiny_prediction_config())

    def test_model_for_roundtrip(self, trained, learning_tasks_module):
        wid = learning_tasks_module[0].worker_id
        model = trained.model_for(wid)
        for name, arr in model.state_dict().items():
            assert np.allclose(arr, trained.worker_params[wid][name])

    def test_probe_paths_shapes(self, small_workload_module, learning_tasks_module):
        from repro.nn.losses import mse_loss

        factory = make_model_factory(tiny_prediction_config())
        paths = probe_learning_paths(learning_tasks_module[:2], factory, mse_loss, steps=2, lr=0.1)
        for p in paths.values():
            assert p.shape[0] == 2

    def test_build_loss_mse_vs_task_oriented(self, small_workload_module):
        wl = small_workload_module
        mse = build_loss(tiny_prediction_config(loss="mse"), wl.city, wl.historical_tasks_xy)
        oriented = build_loss(
            tiny_prediction_config(loss="task_oriented"), wl.city, wl.historical_tasks_xy
        )
        from repro.nn.tensor import Tensor

        pred = Tensor(np.random.default_rng(0).uniform(0, 1, (3, 1, 2)))
        target = Tensor(np.random.default_rng(1).uniform(0, 1, (3, 1, 2)))
        assert mse(pred, target).item() != oriented(pred, target).item()


class TestEvaluation:
    def test_report_fields(self, trained, small_workload_module):
        report = evaluate_prediction(trained, small_workload_module.workers)
        assert report.rmse_cells > 0
        assert report.mae_cells > 0
        assert report.mae_cells <= report.rmse_cells + 1e-9
        assert 0.0 <= report.matching_rate <= 1.0
        assert set(report.as_row()) == {"RMSE", "MAE", "MR", "TT"}

    def test_per_worker_populated(self, trained, small_workload_module):
        report = evaluate_prediction(trained, small_workload_module.workers)
        assert len(report.per_worker) == len(small_workload_module.workers)


class TestPrediction:
    def test_rollout_shapes(self, trained):
        model = trained.model_for(next(iter(trained.worker_params)))
        recent = np.random.default_rng(0).uniform(0, 1, size=(4, 2))
        out = rollout(model, recent, horizon_points=5, seq_out=1)
        assert out.shape == (5, 2)

    def test_predictive_provider_snapshot(self, trained, small_workload_module):
        provider = PredictiveSnapshotProvider(trained, AssignmentConfig(horizon_points=4))
        w = small_workload_module.workers[0]
        t = w.routine.start_time + 30.0
        snap = provider(w, t)
        assert snap.predicted_xy.shape == (4, 2)
        assert np.all(snap.predicted_times > t)
        assert snap.matching_rate == trained.matching_rates[w.worker_id]

    def test_oracle_provider_snapshot(self, small_workload_module):
        provider = OracleSnapshotProvider(horizon_points=3)
        w = small_workload_module.workers[0]
        snap = provider(w, w.routine.start_time + 10.0)
        assert snap.matching_rate == 1.0
        assert len(snap.predicted_xy) >= 1

    def test_current_location_provider(self, small_workload_module):
        provider = CurrentLocationSnapshotProvider()
        w = small_workload_module.workers[0]
        t = w.routine.start_time + 10.0
        snap = provider(w, t)
        assert len(snap.predicted_xy) == 1
        here = w.location_at(t)
        assert np.allclose(snap.predicted_xy[0], [here.x, here.y])


class TestRunAssignment:
    @pytest.mark.parametrize("algorithm", ["ppi", "km", "ub", "lb"])
    def test_algorithms_run(self, algorithm, trained, small_workload_module):
        result = run_assignment(
            small_workload_module,
            algorithm,
            AssignmentConfig(batch_window=5.0),
            predictor=trained,
        )
        m = result.metrics()
        assert 0.0 <= m.completion_ratio <= 1.0
        assert 0.0 <= m.rejection_ratio <= 1.0
        assert result.n_completed + result.n_expired == result.n_tasks

    def test_ggpso_runs(self, trained, small_workload_module):
        from repro.assignment.ggpso import GGPSOConfig

        result = run_assignment(
            small_workload_module,
            "ggpso",
            AssignmentConfig(batch_window=10.0),
            predictor=trained,
            ggpso_config=GGPSOConfig(generations=5, population_size=6),
        )
        assert result.n_tasks == len(small_workload_module.tasks)

    def test_ub_never_rejected(self, small_workload_module):
        result = run_assignment(small_workload_module, "ub", AssignmentConfig(batch_window=5.0))
        assert result.n_rejections == 0

    def test_predictive_requires_predictor(self, small_workload_module):
        with pytest.raises(ValueError):
            run_assignment(small_workload_module, "ppi")

    def test_unknown_algorithm(self, small_workload_module):
        with pytest.raises(ValueError):
            run_assignment(small_workload_module, "magic")

    def test_registry_is_complete(self):
        assert set(ASSIGNMENT_ALGORITHMS) == {"ppi", "ppi_loss", "km", "km_loss", "ggpso", "ub", "lb"}


class TestConfigFromDict:
    def test_experiment_from_dict_round(self):
        from repro.pipeline.config import ExperimentConfig

        config = ExperimentConfig.from_dict(
            {
                "prediction": {"algorithm": "maml", "seq_in": 3,
                               "maml": {"iterations": 5}},
                "assignment": {"batch_window": 4.0},
            }
        )
        assert config.prediction.algorithm == "maml"
        assert config.prediction.maml.iterations == 5
        assert config.assignment.batch_window == 4.0

    def test_unknown_key_names_itself(self):
        import pytest

        from repro.pipeline.config import ExperimentConfig

        with pytest.raises(ValueError, match="seq_inn"):
            ExperimentConfig.from_dict({"prediction": {"seq_inn": 3}})
        with pytest.raises(ValueError, match="predicton"):
            ExperimentConfig.from_dict({"predicton": {}})

    def test_value_validation_still_runs(self):
        import pytest

        from repro.pipeline.config import PredictionConfig

        with pytest.raises(ValueError, match="algorithm"):
            PredictionConfig.from_dict({"algorithm": "nope"})

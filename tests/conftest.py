"""Shared fixtures: a small city, workers, tasks, and learning tasks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    DidiConfig,
    PortoConfig,
    build_learning_tasks,
    generate_didi_tasks,
    generate_porto_workers,
)
from repro.data.didi import historical_task_locations
from repro.data.workload import Workload
from repro.geo.grid import Grid
from repro.geo.point import Point
from repro.geo.trajectory import Trajectory, TrajectoryPoint


@pytest.fixture(scope="session")
def small_city_and_workers():
    city, workers = generate_porto_workers(PortoConfig(n_workers=8, n_train_days=4, seed=3))
    return city, workers


@pytest.fixture(scope="session")
def small_workload(small_city_and_workers):
    city, workers = small_city_and_workers
    tasks = generate_didi_tasks(city, DidiConfig(n_tasks=40, seed=5))
    hist = historical_task_locations(city, 150, seed=6)
    return Workload("porto-didi", city, workers, tasks, hist)


@pytest.fixture(scope="session")
def learning_tasks(small_city_and_workers):
    city, workers = small_city_and_workers
    return build_learning_tasks(
        {w.worker_id: w.history for w in workers}, city, seq_in=4, seq_out=1, seed=7
    )


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def unit_grid():
    return Grid(width_km=10.0, height_km=10.0, rows=10, cols=10)


def straight_trajectory(
    start: tuple[float, float] = (0.0, 0.0),
    end: tuple[float, float] = (10.0, 0.0),
    t0: float = 0.0,
    t1: float = 100.0,
    n: int = 11,
) -> Trajectory:
    xs = np.linspace(start[0], end[0], n)
    ys = np.linspace(start[1], end[1], n)
    ts = np.linspace(t0, t1, n)
    return Trajectory(
        TrajectoryPoint(Point(float(x), float(y)), float(t)) for x, y, t in zip(xs, ys, ts)
    )


@pytest.fixture
def line_trajectory():
    return straight_trajectory()

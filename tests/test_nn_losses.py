"""Tests for losses, especially the task assignment-oriented loss (Eqs. 6-7)."""

import numpy as np
import pytest

from repro.nn.losses import (
    TaskDensityWeighter,
    mae_loss,
    make_loss,
    mse_loss,
    weighted_mse_loss,
)
from repro.nn.tensor import Tensor


class TestBasicLosses:
    def test_mse_zero_on_equal(self, rng):
        x = Tensor(rng.normal(size=(3, 2)))
        assert mse_loss(x, x.clone()).item() == pytest.approx(0.0)

    def test_mse_value(self):
        pred = Tensor([[1.0, 1.0]])
        target = Tensor([[0.0, 0.0]])
        assert mse_loss(pred, target).item() == pytest.approx(1.0)

    def test_mae_value(self):
        pred = Tensor([[2.0, -2.0]])
        target = Tensor([[0.0, 0.0]])
        assert mae_loss(pred, target).item() == pytest.approx(2.0)

    def test_mse_gradient(self):
        pred = Tensor(np.array([[1.0, 2.0]]), requires_grad=True)
        target = Tensor([[0.0, 0.0]])
        mse_loss(pred, target).backward()
        assert np.allclose(pred.grad, [[1.0, 2.0]])  # 2*(p-t)/n, n=2


class TestWeightedMSE:
    def test_uniform_weights_equal_mse(self, rng):
        pred = Tensor(rng.normal(size=(4, 3, 2)))
        target = Tensor(rng.normal(size=(4, 3, 2)))
        w = np.ones((4, 3))
        assert weighted_mse_loss(pred, target, w).item() == pytest.approx(
            mse_loss(pred, target).item()
        )

    def test_weight_scales_contribution(self):
        pred = Tensor([[[1.0, 0.0]], [[1.0, 0.0]]])
        target = Tensor([[[0.0, 0.0]], [[0.0, 0.0]]])
        heavy = weighted_mse_loss(pred, target, np.array([[2.0], [0.0]])).item()
        light = weighted_mse_loss(pred, target, np.array([[0.0], [2.0]])).item()
        assert heavy == pytest.approx(light)  # symmetric here
        uniform = weighted_mse_loss(pred, target, np.ones((2, 1))).item()
        assert heavy == pytest.approx(uniform)

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            weighted_mse_loss(Tensor(np.zeros((1, 1, 2))), Tensor(np.zeros((1, 1, 2))), np.array([[-1.0]]))

    def test_gradient_respects_weights(self):
        pred = Tensor(np.ones((2, 1, 2)), requires_grad=True)
        target = Tensor(np.zeros((2, 1, 2)))
        weighted_mse_loss(pred, target, np.array([[3.0], [1.0]])).backward()
        # Row with weight 3 has triple the gradient of the weight-1 row.
        assert np.allclose(pred.grad[0], 3.0 * pred.grad[1])


class TestTaskDensityWeighter:
    @pytest.fixture
    def weighter(self):
        # Historical tasks clumped at the origin.
        tasks = np.concatenate([
            np.random.default_rng(0).normal(0, 0.3, size=(80, 2)),
            np.random.default_rng(1).uniform(5, 10, size=(20, 2)),
        ])
        return TaskDensityWeighter(tasks, d_q=1.0, kappa=0.5, delta=0.5)

    def test_weight_higher_near_tasks(self, weighter):
        near = weighter.weights(np.array([[0.0, 0.0]]))[0]
        far = weighter.weights(np.array([[100.0, 100.0]]))[0]
        assert near > far
        assert far == pytest.approx(weighter.delta)

    def test_weights_shape_follows_leading_dims(self, weighter):
        pts = np.zeros((4, 3, 2))
        assert weighter.weights(pts).shape == (4, 3)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            TaskDensityWeighter(np.zeros((1, 2)), d_q=0.0)
        with pytest.raises(ValueError):
            TaskDensityWeighter(np.zeros((1, 2)), kappa=1.5)
        with pytest.raises(ValueError):
            TaskDensityWeighter(np.zeros((1, 2)), delta=0.0)

    def test_empty_corpus_gives_constant_delta(self):
        w = TaskDensityWeighter(np.zeros((0, 2)), d_q=1.0, kappa=0.5, delta=0.7)
        vals = w.weights(np.random.default_rng(2).normal(size=(10, 2)))
        assert np.allclose(vals, 0.7)

    def test_loss_prefers_accuracy_near_tasks(self, weighter):
        """Within a batch, the same raw error costs more at points in
        task-dense regions (the paper's point).  Weights are normalised
        to batch mean 1, so the comparison must hold both points in one
        batch."""
        targets = Tensor(np.array([[[0.0, 0.0]], [[100.0, 100.0]]]))  # near, far
        err = np.array([[[0.5, 0.0]], [[0.0, 0.0]]])  # error only at the near point
        err_swapped = np.array([[[0.0, 0.0]], [[0.5, 0.0]]])  # error only far
        loss_near_err = weighter.loss(Tensor(targets.numpy() + err), targets).item()
        loss_far_err = weighter.loss(Tensor(targets.numpy() + err_swapped), targets).item()
        assert loss_near_err > loss_far_err

    def test_loss_weights_normalised_to_mean_one(self, weighter):
        """A single-point batch reduces to plain MSE after normalisation."""
        target = Tensor(np.zeros((1, 1, 2)))
        pred = Tensor(np.array([[[0.5, 0.0]]]))
        assert weighter.loss(pred, target).item() == pytest.approx(
            mse_loss(pred, target).item()
        )


class TestMakeLoss:
    def test_known_names(self):
        assert make_loss("mse") is mse_loss
        assert make_loss("mae") is mae_loss

    def test_task_oriented_requires_weighter(self):
        with pytest.raises(ValueError):
            make_loss("task_oriented")

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_loss("nope")

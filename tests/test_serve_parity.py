"""Equivalence tests: the serving engine vs. the batch platform.

Two exactness claims anchor the serving layer:

1. Configured fixed-window / unbounded queue / no index / no cache, the
   event-driven engine reproduces ``BatchPlatform.run`` **exactly** —
   same completion/rejection/expiry counts, same detours, same
   per-batch records.
2. The sparse candidate graph from the uniform-grid index is a superset
   of every Theorem-2-feasible pair, so candidate-aware PPI/KM return
   the identical plans the dense scan would.

The horizons here are multiples of the batch window: the fixed-step
loop only releases tasks at ticks, so a ragged horizon would leave the
tail tasks unreleased on one side (documented in
:mod:`repro.serve.adapters`).
"""

import pytest

from repro.assignment.baselines import km_assign, km_assign_candidates
from repro.assignment.ppi import ppi_assign, ppi_assign_candidates
from repro.sc.platform import BatchPlatform
from repro.serve import (
    DeadReckoningProvider,
    ServeConfig,
    ServeEngine,
    StreamConfig,
    batch_platform_config,
    make_task_stream,
    make_worker_fleet,
    result_signature,
    run_like_batch_platform,
)

from tests.test_sc import greedy_assign, oracle_provider


def scenario(seed, **overrides):
    cfg = StreamConfig(
        n_workers=overrides.pop("n_workers", 30),
        n_tasks=overrides.pop("n_tasks", 60),
        t_end=overrides.pop("t_end", 60.0),
        seed=seed,
        **overrides,
    )
    return make_task_stream(cfg), make_worker_fleet(cfg)


class TestBatchPlatformParity:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("assign_fn", [ppi_assign, km_assign, greedy_assign])
    def test_counts_and_batches_match(self, seed, assign_fn):
        tasks, workers = scenario(seed)
        provider = DeadReckoningProvider(seed=seed)
        platform = BatchPlatform(workers, provider, batch_window=2.0, assignment_window=10.0)
        reference = platform.run(tasks, assign_fn, 0.0, 60.0)
        streamed = run_like_batch_platform(
            workers, provider, tasks, assign_fn, 0.0, 60.0,
            batch_window=2.0, assignment_window=10.0,
        )
        assert result_signature(streamed) == result_signature(reference)

    def test_parity_without_assignment_window(self):
        tasks, workers = scenario(5)
        provider = DeadReckoningProvider(seed=5)
        platform = BatchPlatform(workers, provider, batch_window=2.0, assignment_window=None)
        reference = platform.run(tasks, ppi_assign, 0.0, 60.0)
        streamed = run_like_batch_platform(
            workers, provider, tasks, ppi_assign, 0.0, 60.0,
            batch_window=2.0, assignment_window=None,
        )
        assert result_signature(streamed) == result_signature(reference)

    def test_parity_with_oracle_provider(self):
        tasks, workers = scenario(6, n_workers=10, n_tasks=30)
        platform = BatchPlatform(workers, oracle_provider, batch_window=3.0)
        reference = platform.run(tasks, ppi_assign, 0.0, 60.0)
        streamed = run_like_batch_platform(
            workers, oracle_provider, tasks, ppi_assign, 0.0, 60.0, batch_window=3.0
        )
        assert result_signature(streamed) == result_signature(reference)

    def test_parity_of_outcome_listener_streams(self):
        tasks, workers = scenario(7)
        provider = DeadReckoningProvider(seed=7)
        ref_events, got_events = [], []
        platform = BatchPlatform(workers, provider, batch_window=2.0)
        platform.run(
            tasks, ppi_assign, 0.0, 60.0,
            outcome_listener=lambda *event: ref_events.append(event),
        )
        run_like_batch_platform(
            workers, provider, tasks, ppi_assign, 0.0, 60.0,
            outcome_listener=lambda *event: got_events.append(event),
        )
        assert got_events == ref_events

    def test_batch_platform_config_disables_serving_features(self):
        cfg = batch_platform_config(batch_window=1.5, assignment_window=None)
        assert cfg.trigger == "fixed"
        assert cfg.max_pending is None
        assert cfg.cache_ttl == 0.0
        assert not cfg.use_index
        assert cfg.batch_window == 1.5
        assert cfg.assignment_window is None


class TestSparseDenseExactness:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize(
        "dense_fn,candidate_fn",
        [(ppi_assign, ppi_assign_candidates), (km_assign, km_assign_candidates)],
        ids=["ppi", "km"],
    )
    def test_sparse_plans_match_dense(self, seed, dense_fn, candidate_fn):
        # A wide extent so the index actually prunes.
        tasks, workers = scenario(seed, width_km=40.0, height_km=40.0)
        provider = DeadReckoningProvider(seed=seed)
        dense = ServeEngine(workers, provider, ServeConfig(), assign_fn=dense_fn)
        sparse = ServeEngine(
            workers,
            provider,
            ServeConfig(use_index=True, index_cell_km=2.0),
            assign_fn=dense_fn,
            candidate_assign_fn=candidate_fn,
        )
        r_dense = dense.run(tasks, 0.0, 60.0)
        r_sparse = sparse.run(tasks, 0.0, 60.0)
        assert result_signature(r_sparse) == result_signature(r_dense)
        assert r_sparse.n_candidate_pairs < r_sparse.n_dense_pairs

    def test_sparse_matches_when_everything_is_in_range(self):
        """A tiny extent: the candidate graph is (nearly) dense and the
        plans still coincide."""
        tasks, workers = scenario(4, width_km=2.0, height_km=2.0)
        provider = DeadReckoningProvider(seed=4)
        dense = ServeEngine(workers, provider, ServeConfig(), assign_fn=ppi_assign)
        sparse = ServeEngine(
            workers,
            provider,
            ServeConfig(use_index=True, index_cell_km=0.5),
            assign_fn=ppi_assign,
            candidate_assign_fn=ppi_assign_candidates,
        )
        assert result_signature(sparse.run(tasks, 0.0, 60.0)) == result_signature(
            dense.run(tasks, 0.0, 60.0)
        )

    def test_cache_passthrough_preserves_parity(self):
        """ttl=0 caching must not change a single outcome."""
        tasks, workers = scenario(8)
        provider = DeadReckoningProvider(seed=8)
        plain = ServeEngine(workers, provider, ServeConfig(), assign_fn=ppi_assign)
        cached = ServeEngine(
            workers, provider, ServeConfig(cache_ttl=0.0), assign_fn=ppi_assign
        )
        assert result_signature(cached.run(tasks, 0.0, 60.0)) == result_signature(
            plain.run(tasks, 0.0, 60.0)
        )

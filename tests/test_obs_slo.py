"""SLO layer: objective grammar, burn-rate alerting, report rendering.

The contract under test (see ``docs/OBSERVABILITY.md``, "Decision
provenance & SLOs"):

* ``parse_slo`` accepts exactly the two grammar forms and rejects the
  rest with a message naming the expected shapes;
* burn rates are weighted-average bad fractions over short/long
  windows divided by the error budget; an alert fires on the rising
  edge of *both* windows exceeding the threshold, then re-arms;
* ``serve-report`` renders an SLO section and stays graceful on
  empty / single-sample series.
"""

import json

import pytest

from repro.obs import (
    MonitorConfig,
    SLOEvaluator,
    SLOSpec,
    parse_slo,
    read_series,
    render_serve_report,
)


def ratio_spec(**overrides):
    base = dict(
        name="assign_rate",
        kind="ratio",
        target=0.9,
        numerator="ok",
        denominator="total",
        short_window=2,
        long_window=4,
        burn_threshold=2.0,
    )
    base.update(overrides)
    return SLOSpec(**base)


def sample(good, total, t=0.0):
    return {
        "type": "sample",
        "t": t,
        "counter_deltas": {"ok": float(good), "total": float(total)},
        "histograms": {},
    }


class TestParse:
    def test_ratio_form(self):
        spec = parse_slo("assign_rate=serve.accepted/serve.assignments>=0.95")
        assert spec.kind == "ratio"
        assert spec.numerator == "serve.accepted"
        assert spec.denominator == "serve.assignments"
        assert spec.target == 0.95
        assert spec.resolved_budget() == pytest.approx(0.05)

    def test_quantile_form(self):
        spec = parse_slo("p99_batch = p99(serve.batch.latency_s) <= 0.5")
        assert spec.kind == "quantile"
        assert spec.metric == "serve.batch.latency_s"
        assert spec.quantile == "p99"
        assert spec.target == 0.5
        assert spec.resolved_budget() == pytest.approx(0.05)

    @pytest.mark.parametrize("bad", [
        "no-equals-here",
        "x=serve.accepted>=0.95",            # neither ratio nor quantile body
        "x=p99(serve.batch.latency_s)>=0.5", # quantile must use <=
        "x=a/b<=0.95",                       # ratio must use >=
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_slo(bad)

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="kind"):
            SLOSpec(name="x", kind="other", target=0.5)
        with pytest.raises(ValueError, match="numerator"):
            SLOSpec(name="x", kind="ratio", target=0.5)
        with pytest.raises(ValueError, match="windows"):
            ratio_spec(short_window=5, long_window=2)

    def test_monitor_config_coerces_strings(self):
        cfg = MonitorConfig(slos=("r=a/b>=0.9",))
        (spec,) = cfg.slos
        assert isinstance(spec, SLOSpec)
        assert spec.name == "r"


class TestBurnRate:
    def test_burn_is_weighted_bad_fraction_over_budget(self):
        ev = SLOEvaluator([ratio_spec()])
        # 50% bad at weight 10, 0% bad at weight 30 → bad = 5/40 = 0.125;
        # budget 0.1 → burn 1.25 on both windows.
        ev.observe(sample(good=5, total=10))
        status, fired = ev.observe(sample(good=30, total=30))
        s = status["assign_rate"]
        assert s["burn_short"] == pytest.approx(1.25)
        assert s["burn_long"] == pytest.approx(1.25)
        assert not s["alerting"] and not fired

    def test_idle_windows_carry_no_weight(self):
        ev = SLOEvaluator([ratio_spec()])
        status, _ = ev.observe(sample(good=0, total=0))
        assert status["assign_rate"]["burn_short"] is None
        assert not status["assign_rate"]["alerting"]

    def test_alert_fires_on_rising_edge_once(self):
        ev = SLOEvaluator([ratio_spec()])
        fired_total = []
        for t in range(4):
            _, fired = ev.observe(sample(good=0, total=10, t=float(t)))
            fired_total.extend(fired)
        assert len(fired_total) == 1
        assert fired_total[0]["slo"] == "assign_rate"
        assert ev.alerts == fired_total

    def test_alert_rearms_after_recovery(self):
        ev = SLOEvaluator([ratio_spec(short_window=1, long_window=2)])
        n_fired = 0
        for good in (0, 10, 10, 0):
            _, fired = ev.observe(sample(good=good, total=10))
            n_fired += len(fired)
        assert n_fired == 2  # first breach, recovery, second breach

    def test_quantile_windows_binary(self):
        spec = SLOSpec(
            name="lat", kind="quantile", target=0.5,
            metric="m", quantile="p99", short_window=1, long_window=2,
        )
        ev = SLOEvaluator([spec])
        bad = {"type": "sample", "counter_deltas": {},
               "histograms": {"m": {"count": 4, "p99": 0.9}}}
        good = {"type": "sample", "counter_deltas": {},
                "histograms": {"m": {"count": 4, "p99": 0.1}}}
        status, _ = ev.observe(bad)
        assert status["lat"]["burn_short"] == pytest.approx(1.0 / 0.05)
        status, _ = ev.observe(good)
        assert status["lat"]["burn_short"] == pytest.approx(0.0)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            SLOEvaluator([ratio_spec(), ratio_spec()])


class TestEndToEnd:
    def _series(self, tmp_path, slo):
        from repro.cli import main as cli_main

        series = tmp_path / "run.series.jsonl"
        cli_main([
            "serve-sim", "--n-workers", "10", "--n-tasks", "30",
            "--horizon", "20", "--monitor", str(series), "--slo", slo,
        ])
        return series

    def test_slo_flag_streams_specs_samples_and_report(self, tmp_path, capsys):
        # An unreachable target guarantees a breach on a seeded run.
        series = self._series(tmp_path, "ar=serve.accepted/serve.assignments>=0.999")
        capsys.readouterr()
        records = read_series(series)
        assert any(r.get("type") == "slo_spec" for r in records)
        samples = [r for r in records if r.get("type") == "sample"]
        assert all("slos" in s for s in samples)
        assert any(r.get("type") == "slo_alert" for r in records)
        report = render_serve_report(records, title="t")
        assert "service-level objectives" in report
        # The breach fired mid-run; the section names it either as a
        # live ALERTING status or as a past alert with its timestamp.
        assert "ALERTING" in report or "alert: ar" in report

    def test_slo_flag_alone_implies_monitoring(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        cli_main([
            "serve-sim", "--n-workers", "5", "--n-tasks", "10",
            "--horizon", "10", "--json",
            "--slo", "ar=serve.accepted/serve.assignments>=0.5",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics"]["n_monitor_samples"] > 0


class TestReportHardening:
    def test_empty_series_renders_gracefully(self, tmp_path):
        path = tmp_path / "empty.series.jsonl"
        path.write_text('{"type": "monitor_start", "cadence": 2.0}\n')
        report = render_serve_report(read_series(path), title="empty")
        assert "no samples" in report

    def test_single_sample_series_renders(self, tmp_path):
        from repro.cli import main as cli_main

        series = tmp_path / "one.series.jsonl"
        # Cadence longer than the horizon → only the final sample.
        cli_main([
            "serve-sim", "--n-workers", "5", "--n-tasks", "10",
            "--horizon", "10", "--monitor", str(series),
            "--monitor-cadence", "500",
        ])
        records = read_series(series)
        samples = [r for r in records if r.get("type") == "sample"]
        assert len(samples) == 1
        report = render_serve_report(records, title="one")
        assert "one" in report

    def test_partial_histogram_summary_merges(self):
        from repro.obs.dashboard import Phase

        phase = Phase(
            name="p", t0=0.0, t1=1.0,
            samples=[
                {"histograms": {"m": {"count": 2, "sum": 1.0}}},  # no max key
                {"histograms": {"m": {"count": 1, "sum": 0.5, "max": None}}},
            ],
        )
        merged = phase.histogram_merge("m")
        assert merged["count"] == 3

"""Tests for the learning task tree, GTMC, and the k-means ablation."""

import numpy as np
import pytest

from repro.meta.features import (
    build_factor_embeddings,
    build_similarity_matrices,
    distribution_embedding,
    path_embedding,
    spatial_embedding,
)
from repro.meta.gtmc import GTMCConfig, gtmc_cluster, kmeans_multilevel_cluster
from repro.meta.learning_task import LearningTask
from repro.meta.task_tree import LearningTaskTree


def grouped_tasks(n_groups=3, per_group=4, seed=0):
    """Learning tasks whose location samples form distinct blobs."""
    rng = np.random.default_rng(seed)
    tasks = []
    wid = 0
    for g in range(n_groups):
        center = np.array([g * 20.0, g * 10.0])
        for _ in range(per_group):
            sample = rng.normal(center, 0.5, size=(40, 2))
            x = rng.normal(size=(6, 3, 2))
            y = rng.normal(size=(6, 1, 2))
            pois = np.column_stack([rng.normal(center, 0.5, size=(5, 2)), np.full(5, float(g % 3))])
            tasks.append(
                LearningTask(wid, x[:4], y[:4], x[4:], y[4:], location_sample=sample, poi_features=pois)
            )
            wid += 1
    return tasks


@pytest.fixture(scope="module")
def tasks():
    return grouped_tasks()


@pytest.fixture(scope="module")
def sims(tasks):
    return build_similarity_matrices(tasks, factors=("distribution", "spatial"))


class TestTaskTree:
    def test_add_child_sets_links(self):
        root = LearningTaskTree(cluster=[])
        child = LearningTaskTree(cluster=[])
        root.add_child(child)
        assert child.parent is root
        assert child.level == 1
        assert not root.is_leaf

    def test_traversals(self):
        root = LearningTaskTree(cluster=[])
        a, b = LearningTaskTree(cluster=[]), LearningTaskTree(cluster=[])
        root.add_child(a)
        root.add_child(b)
        c = LearningTaskTree(cluster=[])
        a.add_child(c)
        pre = list(root.iter_nodes())
        post = list(root.iter_postorder())
        assert pre[0] is root and post[-1] is root
        assert root.n_nodes() == 4
        assert root.depth() == 2
        assert len(root.leaves()) == 2

    def test_find_leaf_for_worker(self, tasks):
        root = LearningTaskTree(cluster=tasks)
        leaf = LearningTaskTree(cluster=tasks[:2])
        root.add_child(leaf)
        assert root.find_leaf_for_worker(tasks[0].worker_id) is leaf
        assert root.find_leaf_for_worker(-99) is None


class TestGTMCConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            GTMCConfig(k=0)
        with pytest.raises(ValueError):
            GTMCConfig(gamma=1.0)
        with pytest.raises(ValueError):
            GTMCConfig(factors=())
        with pytest.raises(ValueError):
            GTMCConfig(factors=("a", "b"), thresholds=(0.5,))


class TestGTMC:
    def test_builds_tree_recovering_groups(self, tasks, sims):
        cfg = GTMCConfig(k=3, gamma=0.2, factors=("distribution",), thresholds=(0.9,))
        tree = gtmc_cluster(tasks, sims, cfg, rng=np.random.default_rng(0))
        leaves = tree.leaves()
        assert len(leaves) >= 3
        # Workers of one blob should share a leaf.
        leaf_of = {t.worker_id: id(leaf) for leaf in leaves for t in leaf.cluster}
        for g in range(3):
            ids = {leaf_of[wid] for wid in range(g * 4, g * 4 + 4)}
            assert len(ids) == 1, f"group {g} split across leaves"

    def test_multilevel_descends_on_low_quality(self, tasks, sims):
        # Impossible threshold forces descent to the second factor.
        cfg = GTMCConfig(k=3, gamma=0.2, factors=("distribution", "spatial"), thresholds=(1.1, 1.1))
        tree = gtmc_cluster(tasks, sims, cfg, rng=np.random.default_rng(0))
        levels = {n.level for n in tree.iter_nodes()}
        assert 2 in levels, "expected second-level clustering"
        factors_used = {n.factor for n in tree.iter_nodes() if n.factor}
        assert factors_used == {"distribution", "spatial"}

    def test_missing_similarity_raises(self, tasks):
        with pytest.raises(KeyError):
            gtmc_cluster(tasks, {}, GTMCConfig(factors=("distribution",), thresholds=(0.5,)))

    def test_wrong_shape_raises(self, tasks):
        with pytest.raises(ValueError):
            gtmc_cluster(
                tasks,
                {"distribution": np.eye(3)},
                GTMCConfig(factors=("distribution",), thresholds=(0.5,)),
            )

    def test_leaf_clusters_partition_tasks(self, tasks, sims):
        cfg = GTMCConfig(k=3, gamma=0.2, factors=("distribution", "spatial"), thresholds=(1.1, 1.1))
        tree = gtmc_cluster(tasks, sims, cfg, rng=np.random.default_rng(1))
        ids = sorted(tree.worker_ids())
        assert ids == sorted(t.worker_id for t in tasks)

    def test_single_task_stays_root(self, tasks, sims):
        only = [tasks[0]]
        sub = {k: v[:1, :1] for k, v in sims.items()}
        cfg = GTMCConfig(factors=("distribution",), thresholds=(0.5,))
        tree = gtmc_cluster(only, sub, cfg)
        assert tree.is_leaf


class TestKMeansMultilevel:
    def test_builds_comparable_tree(self, tasks, sims):
        embeddings = build_factor_embeddings(tasks, factors=("distribution", "spatial"))
        cfg = GTMCConfig(k=3, gamma=0.2, factors=("distribution", "spatial"), thresholds=(1.1, 1.1))
        tree = kmeans_multilevel_cluster(tasks, embeddings, sims, cfg, rng=np.random.default_rng(0))
        assert len(tree.leaves()) >= 3
        assert sorted(tree.worker_ids()) == sorted(t.worker_id for t in tasks)

    def test_missing_embedding_raises(self, tasks, sims):
        with pytest.raises(KeyError):
            kmeans_multilevel_cluster(tasks, {}, sims, GTMCConfig(factors=("distribution",), thresholds=(0.5,)))


class TestEmbeddings:
    def test_distribution_embedding_shape(self, tasks):
        assert distribution_embedding(tasks[0]).shape == (5,)

    def test_distribution_embedding_empty(self):
        t = LearningTask(0, np.zeros((1, 2, 2)), np.zeros((1, 1, 2)), np.zeros((0, 2, 2)), np.zeros((0, 1, 2)))
        assert np.allclose(distribution_embedding(t), 0.0)

    def test_spatial_embedding_histogram_normalised(self, tasks):
        emb = spatial_embedding(tasks[0])
        assert emb.shape == (10,)
        assert emb[2:].sum() == pytest.approx(1.0)

    def test_path_embedding_deterministic(self, rng):
        path = rng.normal(size=(3, 50))
        assert np.allclose(path_embedding(path, dim=8), path_embedding(path, dim=8))

    def test_path_embedding_direction_invariant_to_scale(self, rng):
        path = rng.normal(size=(3, 50))
        assert np.allclose(path_embedding(path, dim=8), path_embedding(path * 7.0, dim=8))

    def test_build_similarity_requires_paths_for_learning_path(self, tasks):
        with pytest.raises(ValueError):
            build_similarity_matrices(tasks, paths=None, factors=("learning_path",))

    def test_similarity_matrices_are_normalised(self, sims):
        for mat in sims.values():
            assert mat.min() >= 0.0 and mat.max() <= 1.0
            assert np.allclose(mat, mat.T)

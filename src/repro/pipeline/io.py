"""Saving and loading trained predictors.

The offline stage is the expensive part of TAMP; platforms retrain
nightly and serve from a snapshot.  A predictor round-trips through a
single ``.npz`` (all per-worker parameter arrays plus matching rates)
and a small JSON sidecar (the prediction config and the grid).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.data.generators import City
from repro.geo.grid import Grid
from repro.meta.maml import MAMLConfig
from repro.pipeline.config import PredictionConfig
from repro.pipeline.training import TrainedPredictor, make_model_factory

_FORMAT_VERSION = 1


def save_predictor(predictor: TrainedPredictor, path: str | Path) -> Path:
    """Write a predictor snapshot to ``<path>.npz`` + ``<path>.json``.

    Only the serving artefacts are saved (per-worker parameters,
    matching rates, config, grid); the learning task tree and CTML bank
    are training-time state and are not persisted.
    """
    path = Path(path)
    arrays: dict[str, np.ndarray] = {}
    for worker_id, params in predictor.worker_params.items():
        for name, arr in params.items():
            arrays[f"w{worker_id}::{name}"] = arr
    arrays["__matching_rates__"] = np.array(
        [[wid, mr] for wid, mr in sorted(predictor.matching_rates.items())], dtype=float
    ).reshape(-1, 2)
    np.savez_compressed(path.with_suffix(".npz"), **arrays)

    cfg = predictor.config
    meta = {
        "format_version": _FORMAT_VERSION,
        "config": {
            "algorithm": cfg.algorithm,
            "loss": cfg.loss,
            "seq_in": cfg.seq_in,
            "seq_out": cfg.seq_out,
            "hidden_size": cfg.hidden_size,
            "mr_threshold_km": cfg.mr_threshold_km,
            "seed": cfg.seed,
            "fine_tune_steps": cfg.fine_tune_steps,
            "fine_tune_lr": cfg.fine_tune_lr,
            "fine_tune_optimizer": cfg.fine_tune_optimizer,
            "maml_iterations": cfg.maml.iterations,
        },
        "grid": {
            "width_km": predictor.city.grid.width_km,
            "height_km": predictor.city.grid.height_km,
            "rows": predictor.city.grid.rows,
            "cols": predictor.city.grid.cols,
        },
        "training_seconds": predictor.training_seconds,
        "loss_name": predictor.loss_name,
    }
    path.with_suffix(".json").write_text(json.dumps(meta, indent=2))
    return path.with_suffix(".npz")


def load_predictor(path: str | Path, city: City | None = None) -> TrainedPredictor:
    """Load a snapshot written by :func:`save_predictor`.

    ``city`` may supply the full POI layer; otherwise a bare city with
    the persisted grid (sufficient for prediction and assignment, which
    never read POIs online) is reconstructed.
    """
    path = Path(path)
    meta = json.loads(path.with_suffix(".json").read_text())
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported predictor format: {meta.get('format_version')}")

    cfg_meta = meta["config"]
    config = PredictionConfig(
        algorithm=cfg_meta["algorithm"],
        loss=cfg_meta["loss"],
        seq_in=cfg_meta["seq_in"],
        seq_out=cfg_meta["seq_out"],
        hidden_size=cfg_meta["hidden_size"],
        mr_threshold_km=cfg_meta["mr_threshold_km"],
        seed=cfg_meta["seed"],
        fine_tune_steps=cfg_meta["fine_tune_steps"],
        fine_tune_lr=cfg_meta["fine_tune_lr"],
        fine_tune_optimizer=cfg_meta["fine_tune_optimizer"],
        maml=MAMLConfig(iterations=cfg_meta["maml_iterations"]),
    )
    if city is None:
        g = meta["grid"]
        grid = Grid(width_km=g["width_km"], height_km=g["height_km"], rows=g["rows"], cols=g["cols"])
        city = City(grid=grid, pois=[], district_centers=np.zeros((0, 2)))

    with np.load(path.with_suffix(".npz")) as data:
        worker_params: dict[int, dict[str, np.ndarray]] = {}
        for key in data.files:
            if key == "__matching_rates__":
                continue
            worker_tag, name = key.split("::", 1)
            worker_id = int(worker_tag[1:])
            worker_params.setdefault(worker_id, {})[name] = data[key]
        matching_rates = {int(wid): float(mr) for wid, mr in data["__matching_rates__"]}

    return TrainedPredictor(
        worker_params=worker_params,
        matching_rates=matching_rates,
        model_factory=make_model_factory(config),
        config=config,
        city=city,
        training_seconds=float(meta.get("training_seconds", 0.0)),
        loss_name=meta.get("loss_name", config.loss),
    )

"""Online matching-rate recalibration (extension beyond the paper).

The paper estimates each worker's matching rate ``MR`` offline on
held-out windows and keeps it fixed all day.  But the online stage
continuously observes the very event MR models — whether a worker
really could serve a task matched against their predicted trajectory.
This module closes that loop: a Beta-Bernoulli tracker treats each
accept/reject as a draw of the completion probability Theorem 2 ties
to MR, and blends the posterior mean with the offline estimate.

Workers whose offline MR was optimistic (their day deviates from their
history) get demoted within the day; reliable workers get promoted —
sharpening exactly the signal PPI's stage ordering consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pipeline.prediction import PredictiveSnapshotProvider
from repro.sc.entities import Worker, WorkerSnapshot


@dataclass
class MatchingRateTracker:
    """Per-worker Beta-Bernoulli posterior over acceptance.

    ``strength`` is the pseudo-count weight of the offline prior: the
    offline MR enters as ``Beta(strength * mr, strength * (1 - mr))``,
    so early in the day the offline estimate dominates and the observed
    outcomes take over as evidence accumulates.
    """

    strength: float = 8.0
    _accepts: dict[int, int] = field(default_factory=dict)
    _rejects: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.strength <= 0:
            raise ValueError("prior strength must be positive")

    def record(self, worker_id: int, accepted: bool) -> None:
        book = self._accepts if accepted else self._rejects
        book[worker_id] = book.get(worker_id, 0) + 1

    def posterior(self, worker_id: int, offline_mr: float) -> float:
        """Posterior mean acceptance probability for the worker."""
        if not 0.0 <= offline_mr <= 1.0:
            raise ValueError("offline MR must lie in [0, 1]")
        alpha = self.strength * offline_mr + self._accepts.get(worker_id, 0)
        beta = self.strength * (1.0 - offline_mr) + self._rejects.get(worker_id, 0)
        return alpha / (alpha + beta)

    def observations(self, worker_id: int) -> tuple[int, int]:
        return self._accepts.get(worker_id, 0), self._rejects.get(worker_id, 0)


@dataclass
class AdaptiveMRSnapshotProvider:
    """Wraps a predictive provider, substituting recalibrated MRs.

    Wire the same instance as both the platform's snapshot provider and
    (via :meth:`outcome_listener`) its outcome listener::

        provider = AdaptiveMRSnapshotProvider(base_provider)
        platform = BatchPlatform(workers, provider, ...)
        platform.run(tasks, assign_fn, t0, t1,
                     outcome_listener=provider.outcome_listener)
    """

    base: PredictiveSnapshotProvider
    tracker: MatchingRateTracker = field(default_factory=MatchingRateTracker)

    def __call__(self, worker: Worker, t: float) -> WorkerSnapshot:
        snapshot = self.base(worker, t)
        snapshot.matching_rate = self.tracker.posterior(
            worker.worker_id, snapshot.matching_rate
        )
        return snapshot

    def outcome_listener(self, task_id: int, worker_id: int, accepted: bool, t: float) -> None:
        self.tracker.record(worker_id, accepted)

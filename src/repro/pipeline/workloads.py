"""Workload factories for the two experimental settings.

Workload 1 pairs Porto-like workers with Didi-like tasks; workload 2
pairs Gowalla-like workers with Foursquare-like tasks (Section IV-A).
Both return a ready-to-simulate :class:`~repro.data.workload.Workload`
plus the learning tasks the offline stage trains on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.didi import DidiConfig, generate_didi_tasks, historical_task_locations
from repro.data.foursquare import (
    FoursquareConfig,
    generate_foursquare_tasks,
    historical_venue_locations,
)
from repro.data.gowalla import GowallaConfig, generate_gowalla_workers
from repro.data.porto import PortoConfig, generate_porto_workers
from repro.data.windows import build_learning_tasks
from repro.data.workload import Workload
from repro.meta.learning_task import LearningTask


@dataclass(frozen=True)
class WorkloadSpec:
    """The parameters Table III sweeps, plus scale and seeds."""

    n_workers: int = 16
    n_tasks: int = 300
    n_train_days: int = 5
    detour_km: float = 4.0
    valid_time_units: tuple[float, float] = (3.0, 4.0)
    seq_in: int = 5
    seq_out: int = 1
    seed: int = 0
    n_historical_tasks: int = 300
    extra_worker_kwargs: dict = field(default_factory=dict)
    extra_task_kwargs: dict = field(default_factory=dict)


def make_workload1(spec: WorkloadSpec | None = None) -> tuple[Workload, list[LearningTask]]:
    """Porto-like workers + Didi-like tasks."""
    s = spec if spec is not None else WorkloadSpec()
    worker_cfg = PortoConfig(
        n_workers=s.n_workers,
        n_train_days=s.n_train_days,
        detour_budget_km=s.detour_km,
        seed=s.seed,
        **s.extra_worker_kwargs,
    )
    city, workers = generate_porto_workers(worker_cfg)
    task_cfg = DidiConfig(
        n_tasks=s.n_tasks,
        day_minutes=worker_cfg.day_minutes,
        valid_time_units=s.valid_time_units,
        seed=s.seed + 1,
        **s.extra_task_kwargs,
    )
    tasks = generate_didi_tasks(city, task_cfg)
    hist = historical_task_locations(city, s.n_historical_tasks, seed=s.seed + 2)
    workload = Workload("porto-didi", city, workers, tasks, hist)
    learning = build_learning_tasks(
        {w.worker_id: w.history for w in workers}, city, s.seq_in, s.seq_out, seed=s.seed + 3
    )
    return workload, learning


def make_workload2(spec: WorkloadSpec | None = None) -> tuple[Workload, list[LearningTask]]:
    """Gowalla-like workers + Foursquare-like tasks."""
    s = spec if spec is not None else WorkloadSpec()
    worker_cfg = GowallaConfig(
        n_workers=s.n_workers,
        n_train_days=s.n_train_days,
        detour_budget_km=s.detour_km,
        seed=s.seed + 10,
        **s.extra_worker_kwargs,
    )
    city, workers = generate_gowalla_workers(worker_cfg)
    task_cfg = FoursquareConfig(
        n_tasks=s.n_tasks,
        day_minutes=worker_cfg.day_minutes,
        valid_time_units=s.valid_time_units,
        seed=s.seed + 11,
        **s.extra_task_kwargs,
    )
    tasks = generate_foursquare_tasks(city, task_cfg)
    hist = historical_venue_locations(city, s.n_historical_tasks, seed=s.seed + 12)
    workload = Workload("gowalla-foursquare", city, workers, tasks, hist)
    learning = build_learning_tasks(
        {w.worker_id: w.history for w in workers}, city, s.seq_in, s.seq_out, seed=s.seed + 13
    )
    return workload, learning


WORKLOADS = {"porto-didi": make_workload1, "gowalla-foursquare": make_workload2}


def make_workload(name: str, spec: WorkloadSpec | None = None):
    """Factory by name; see :data:`WORKLOADS` for the options."""
    try:
        builder = WORKLOADS[name]
    except KeyError:
        raise ValueError(f"unknown workload '{name}'; pick one of {sorted(WORKLOADS)}") from None
    return builder(spec)

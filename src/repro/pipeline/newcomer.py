"""Newcomer onboarding: cold-start initialisation for new workers.

The paper's Challenge I: workers join the platform continually, with
little history.  GTTAML's answer (Section III-B, closing paragraphs)
is a depth-first post-order traversal of the trained learning task
tree: the newcomer's model starts from the most similar node's
initialisation and is then adapted on whatever little data the worker
has.  The CTML bank and the plain MAML initialisation are supported as
comparison points so the cold-start benefit is measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.data.generators import City
from repro.data.windows import build_learning_task
from repro.geo.trajectory import Trajectory
from repro.meta.ctml import CTMLModelBank
from repro.meta.learning_task import LearningTask
from repro.meta.task_tree import LearningTaskTree
from repro.meta.taml import place_learning_task
from repro.pipeline.training import TrainedPredictor, build_loss, fine_tune
from repro.similarity.distribution import distribution_similarity
from repro.similarity.spatial import spatial_similarity


@dataclass(frozen=True, slots=True)
class OnboardingResult:
    """What onboarding produced for one newcomer."""

    worker_id: int
    source: str  # "tree", "ctml", or "shared"
    node_level: int | None
    matching_rate: float


def default_newcomer_similarity(a: LearningTask, b: LearningTask) -> float:
    """Similarity used for tree placement of a newcomer.

    Combines the two factors computable *without* a probe model
    (distribution and spatial); a brand-new worker has no stable
    learning path yet.
    """
    sim_d = distribution_similarity(
        a.location_sample, b.location_sample, rng=np.random.default_rng(0)
    )
    if len(a.poi_features) and len(b.poi_features):
        sim_s = spatial_similarity(a.poi_features, b.poi_features)
        return 0.5 * (sim_d + sim_s)
    return sim_d


def onboard_worker(
    predictor: TrainedPredictor,
    worker_id: int,
    history: Sequence[Trajectory],
    similarity_fn=default_newcomer_similarity,
) -> OnboardingResult:
    """Add a newcomer to a trained predictor, in place.

    Builds the newcomer's learning task from their (typically short)
    history, selects an initialisation — the most similar tree node for
    GTTAML variants, the responsibility blend for CTML, the shared
    initialisation otherwise — adapts it on the newcomer's support set,
    and registers the adapted parameters and held-out matching rate in
    the predictor.

    Raises :class:`ValueError` when the history is too short to form a
    single training window (the platform should fall back to LB-style
    assignment for such workers).
    """
    city: City = predictor.city
    cfg = predictor.config
    rng = np.random.default_rng(cfg.seed + worker_id)
    task = build_learning_task(
        worker_id, list(history), city, cfg.seq_in, cfg.seq_out, rng
    )
    if task is None:
        raise ValueError(
            f"worker {worker_id}: history too short for a {cfg.seq_in}+{cfg.seq_out}-point window"
        )

    theta, source, node_level = _select_initialisation(predictor, task, similarity_fn)
    model = predictor.model_factory()
    model.load_state_dict(dict(theta))
    loss_fn = build_loss(cfg, city, np.zeros((0, 2))) if cfg.loss == "mse" else _reuse_loss(predictor)
    params = fine_tune(model, task, loss_fn, cfg, rng)
    predictor.worker_params[worker_id] = params

    from repro.pipeline.training import _held_out_matching_rate

    mr = _held_out_matching_rate(model, params, task, city, cfg)
    predictor.matching_rates[worker_id] = mr
    return OnboardingResult(
        worker_id=worker_id, source=source, node_level=node_level, matching_rate=mr
    )


def _select_initialisation(
    predictor: TrainedPredictor,
    task: LearningTask,
    similarity_fn,
) -> tuple[Mapping[str, np.ndarray], str, int | None]:
    tree = predictor.tree
    if isinstance(tree, LearningTaskTree) and tree.theta is not None:
        node = place_learning_task(tree, task, similarity_fn)
        return node.theta, "tree", node.level
    bank = predictor.bank
    if isinstance(bank, CTMLModelBank):
        return bank.init_for(task), "ctml", None
    # MAML: every trained worker shares the same post-meta initialisation
    # only implicitly (each has adapted params); fall back to the average.
    if predictor.worker_params:
        keys = next(iter(predictor.worker_params.values())).keys()
        mean = {
            k: np.mean([p[k] for p in predictor.worker_params.values()], axis=0) for k in keys
        }
        return mean, "shared", None
    return predictor.model_factory().state_dict(), "shared", None


def _reuse_loss(predictor: TrainedPredictor):
    """Rebuild the task-oriented loss from the predictor's city corpus.

    The trained predictor does not retain the historical task corpus;
    onboarding approximates it with plain MSE when the corpus is gone.
    Callers needing the exact oriented loss can pass their own via
    :func:`repro.pipeline.training.build_loss` and ``fine_tune``.
    """
    from repro.nn.losses import mse_loss

    return mse_loss

"""Online prediction: building worker snapshots per assignment batch.

The platform knows each worker's *shared location track* up to the
current batch time (workers "merely share their current location ...
when they are online", Section II); the predictive provider feeds the
last ``seq_in`` shared samples to the worker's adapted model and rolls
it out autoregressively for the assignment horizon.  The oracle and
current-location providers implement the UB and LB baselines' views.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

from repro.nn.tensor import Tensor
from repro.pipeline.config import AssignmentConfig
from repro.pipeline.training import TrainedPredictor
from repro.sc.acceptance import oracle_future_route
from repro.sc.entities import Worker, WorkerSnapshot


def rollout(model, recent_norm: np.ndarray, horizon_points: int, seq_out: int) -> np.ndarray:
    """Autoregressive rollout: predict ``horizon_points`` future points.

    ``recent_norm`` is the ``(seq_in, 2)`` normalised input window;
    each model call emits ``seq_out`` points which are appended to the
    window for the next call.
    """
    window = np.asarray(recent_norm, dtype=float).copy()
    out: list[np.ndarray] = []
    while sum(len(o) for o in out) < horizon_points:
        pred = model(Tensor(window[None, :, :])).numpy()[0]
        out.append(pred)
        window = np.concatenate([window, pred])[-len(recent_norm) :]
    return np.concatenate(out)[:horizon_points]


@dataclass
class PredictiveSnapshotProvider:
    """Snapshots from the trained per-worker mobility models."""

    predictor: TrainedPredictor
    assignment: AssignmentConfig
    sample_step: float = 10.0

    def __post_init__(self) -> None:
        self._models: dict[int, object] = {}

    def _model(self, worker_id: int):
        if worker_id not in self._models:
            self._models[worker_id] = self.predictor.model_for(worker_id)
        return self._models[worker_id]

    def __call__(self, worker: Worker, t: float) -> WorkerSnapshot:
        city = self.predictor.city
        seq_in = self.predictor.config.seq_in
        recent_xy, _ = _recent_shared_track(worker, t, seq_in)
        recent_norm = city.grid.normalize(recent_xy)
        model = self._model(worker.worker_id)
        pred_norm = rollout(model, recent_norm, self.assignment.horizon_points, self.predictor.config.seq_out)
        pred_xy = city.grid.denormalize(pred_norm)
        pred_times = t + self.sample_step * np.arange(1, len(pred_xy) + 1)
        return WorkerSnapshot(
            worker_id=worker.worker_id,
            current_location=worker.last_shared_location(t),
            predicted_xy=pred_xy,
            predicted_times=pred_times,
            detour_budget_km=worker.detour_budget_km,
            speed_km_per_min=worker.speed_km_per_min,
            matching_rate=self.predictor.matching_rates.get(worker.worker_id, 0.0),
        )


@dataclass
class OracleSnapshotProvider:
    """UB's view: the real future route, matching rate 1."""

    horizon_points: int = 6

    def __call__(self, worker: Worker, t: float) -> WorkerSnapshot:
        xy, times = oracle_future_route(worker, t, self.horizon_points)
        return WorkerSnapshot(
            worker_id=worker.worker_id,
            current_location=worker.location_at(t),
            predicted_xy=xy,
            predicted_times=times,
            detour_budget_km=worker.detour_budget_km,
            speed_km_per_min=worker.speed_km_per_min,
            matching_rate=1.0,
        )


@dataclass
class CurrentLocationSnapshotProvider:
    """LB's view: nothing but the last *shared* location report.

    Between reports the platform's view is stale by up to one sample
    step - exactly the information gap mobility prediction closes.
    """

    def __call__(self, worker: Worker, t: float) -> WorkerSnapshot:
        here = worker.last_shared_location(t)
        return WorkerSnapshot(
            worker_id=worker.worker_id,
            current_location=here,
            predicted_xy=np.array([[here.x, here.y]]),
            predicted_times=np.array([t]),
            detour_budget_km=worker.detour_budget_km,
            speed_km_per_min=worker.speed_km_per_min,
            matching_rate=0.0,
        )


def _recent_shared_track(worker: Worker, t: float, seq_in: int) -> tuple[np.ndarray, np.ndarray]:
    """The last ``seq_in`` locations the worker shared up to time ``t``.

    Pads by repeating the earliest sample when the worker just came
    online, so the model always receives a full window.
    """
    times = list(worker.routine.times)
    hi = bisect.bisect_right(times, t)
    lo = max(hi - seq_in, 0)
    xy = worker.routine.xy[lo:hi]
    ts = np.asarray(times[lo:hi])
    if len(xy) == 0:
        here = worker.routine.position_at(t)
        xy = np.array([[here.x, here.y]])
        ts = np.array([t])
    while len(xy) < seq_in:
        xy = np.concatenate([xy[:1], xy])
        ts = np.concatenate([ts[:1] - 1.0, ts])
    return xy, ts

"""Offline training stage: cluster, meta-train, and per-worker adaptation.

Produces a :class:`TrainedPredictor` holding a per-worker parameter set
plus the matching rate each worker's model achieved on held-out
windows — the two artefacts the online stage consumes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro import obs
from repro.data.generators import City
from repro.meta.ctml import CTMLConfig, ctml_train
from repro.meta.features import build_factor_embeddings, build_similarity_matrices
from repro.meta.gtmc import gtmc_cluster, kmeans_multilevel_cluster
from repro.meta.learning_task import LearningTask
from repro.meta.maml import adapt, learning_path, meta_train
from repro.meta.taml import TAMLConfig, taml_train
from repro.nn.losses import TaskDensityWeighter, make_loss
from repro.nn.module import Module
from repro.nn.seq2seq import make_mobility_model
from repro.nn.tensor import Tensor
from repro.assignment.matching_rate import matching_rate
from repro.pipeline.config import PredictionConfig


@dataclass
class TrainedPredictor:
    """The offline stage's output.

    Attributes
    ----------
    worker_params:
        Per-worker adapted parameter state dicts.
    matching_rates:
        Per-worker MR (Def. 7) on held-out query windows, in km units
        against ``config.mr_threshold_km``.
    model_factory:
        Builds a fresh architecture-compatible model.
    training_seconds:
        Wall-clock TT of the full offline stage (clustering features,
        meta-training, adaptation).
    tree / bank:
        The trained learning task tree (GTTAML variants) or the CTML
        model bank, exposed for newcomer placement and inspection.
    """

    worker_params: dict[int, dict[str, np.ndarray]]
    matching_rates: dict[int, float]
    model_factory: Callable[[], Module]
    config: PredictionConfig
    city: City
    training_seconds: float = 0.0
    tree: object | None = None
    bank: object | None = None
    loss_name: str = "mse"
    meta_history: list[float] = field(default_factory=list)

    def model_for(self, worker_id: int) -> Module:
        """A fresh model carrying the worker's adapted parameters."""
        model = self.model_factory()
        if worker_id in self.worker_params:
            model.load_state_dict(self.worker_params[worker_id])
        return model


def probe_learning_paths(
    tasks: Sequence[LearningTask],
    model_factory: Callable[[], Module],
    loss_fn,
    steps: int,
    lr: float,
    seed: int = 0,
) -> dict[int, np.ndarray]:
    """Record each task's k-step gradient path against one shared probe.

    All tasks are probed from the *same* randomly initialised learner
    (fixed seed) so paths are comparable — the premise of Eq. 2.
    """
    probe = model_factory()
    init = {name: p.clone(requires_grad=True) for name, p in probe.named_parameters()}
    paths: dict[int, np.ndarray] = {}
    for task in tasks:
        paths[task.worker_id] = learning_path(probe, task, loss_fn, inner_lr=lr, steps=steps, init=init)
    return paths


@dataclass(frozen=True)
class MobilityModelFactory:
    """Deterministic, *picklable* mobility-model factory.

    A module-level class rather than a closure so the factory can ride
    a ``multiprocessing`` payload to a pool worker (the ``repro.dist``
    backends ship it alongside each leaf's learning tasks).  Calling it
    always builds the same freshly initialised model: the RNG is
    re-seeded per call.
    """

    cell: str = "lstm"
    input_size: int = 2
    hidden_size: int = 16
    seq_out: int = 1
    seed: int = 0

    def __call__(self) -> Module:
        rng = np.random.default_rng(self.seed)
        return make_mobility_model(
            self.cell,
            input_size=self.input_size,
            hidden_size=self.hidden_size,
            seq_out=self.seq_out,
            rng=rng,
        )


def make_model_factory(config: PredictionConfig) -> MobilityModelFactory:
    """Deterministic mobility-model factory (LSTM or GRU per config)."""
    return MobilityModelFactory(
        cell=config.cell,
        input_size=2,
        hidden_size=config.hidden_size,
        seq_out=config.seq_out,
        seed=config.seed,
    )


def build_loss(config: PredictionConfig, city: City, historical_tasks_xy: np.ndarray):
    """The training loss: plain MSE or the task-oriented weighted MSE.

    The weighter operates in the model's normalised coordinate space,
    so the historical task corpus and the radius ``d_q`` are converted
    with the grid extent.
    """
    if config.loss == "mse":
        return make_loss("mse")
    tasks_xy = np.asarray(historical_tasks_xy, dtype=float).reshape(-1, 2)
    norm_tasks = city.grid.normalize(tasks_xy) if len(tasks_xy) else tasks_xy
    # Normalise the radius by the mean axis scale.
    scale = (city.grid.width_km + city.grid.height_km) / 2.0
    weighter = TaskDensityWeighter(
        norm_tasks,
        d_q=config.loss_d_q_km / scale,
        kappa=config.loss_kappa,
        delta=config.loss_delta,
    )
    return make_loss("task_oriented", weighter)


def train_predictor(
    tasks: Sequence[LearningTask],
    city: City,
    config: PredictionConfig,
    historical_tasks_xy: np.ndarray | None = None,
    factors: Sequence[str] | None = None,
) -> TrainedPredictor:
    """Run the offline stage for one predictor variant.

    ``factors`` optionally restricts the clustering factors (the
    Table IV ablation); defaults to the config's GTMC factor order.
    """
    if not tasks:
        raise ValueError("train_predictor needs at least one learning task")
    rng = np.random.default_rng(config.seed)
    factory = make_model_factory(config)
    hist = historical_tasks_xy if historical_tasks_xy is not None else np.zeros((0, 2))
    loss_fn = build_loss(config, city, hist)

    started = time.perf_counter()
    tree = None
    bank = None
    init_for_worker: Callable[[LearningTask], Mapping[str, np.ndarray]]

    with obs.span("training.offline", algorithm=config.algorithm, loss=config.loss, workers=len(tasks)):
        if config.algorithm == "maml":
            with obs.span("training.meta_train", algorithm="maml"):
                model = factory()
                history = meta_train(model, list(tasks), config.maml, loss_fn, rng=rng)
            shared = model.state_dict()
            init_for_worker = lambda task: shared
        elif config.algorithm == "ctml":
            with obs.span("training.probe_paths"):
                paths = probe_learning_paths(tasks, factory, loss_fn, config.probe_steps, config.probe_lr, config.seed)
            with obs.span("training.meta_train", algorithm="ctml"):
                bank = ctml_train(
                    list(tasks),
                    paths,
                    factory,
                    loss_fn,
                    CTMLConfig(n_clusters=config.ctml_clusters, maml=config.maml),
                    rng=rng,
                )
            history = []
            init_for_worker = lambda task: bank.init_for(task, None)
        else:
            use_factors = tuple(factors) if factors is not None else config.gtmc.factors
            need_paths = "learning_path" in use_factors
            if need_paths:
                with obs.span("training.probe_paths"):
                    paths = probe_learning_paths(
                        tasks, factory, loss_fn, config.probe_steps, config.probe_lr, config.seed
                    )
            else:
                paths = None
            with obs.span("training.cluster", algorithm=config.algorithm, factors=list(use_factors)):
                sims = build_similarity_matrices(tasks, paths, factors=use_factors, rng=rng)
                gtmc_cfg = _with_factors(config.gtmc, use_factors)
                if config.algorithm == "gttaml":
                    tree = gtmc_cluster(tasks, sims, gtmc_cfg, rng=rng)
                else:  # gttaml_gt
                    embeddings = build_factor_embeddings(tasks, paths, factors=use_factors)
                    tree = kmeans_multilevel_cluster(tasks, embeddings, sims, gtmc_cfg, rng=rng)
            with obs.span("training.meta_train", algorithm=config.algorithm):
                taml_cfg = TAMLConfig(maml=config.maml)
                if config.dist is not None:
                    from repro.dist.meta import dist_taml_train

                    final_loss = dist_taml_train(
                        tree, factory, loss_fn, config=taml_cfg, dist=config.dist, rng=rng
                    )
                else:
                    final_loss = taml_train(tree, factory, loss_fn, taml_cfg, rng=rng)
            history = [final_loss]
            leaf_theta = {
                t.worker_id: leaf.theta for leaf in tree.leaves() for t in leaf.cluster
            }
            root_theta = tree.theta
            init_for_worker = lambda task: leaf_theta.get(task.worker_id, root_theta)

        # Per-worker adaptation from the selected initialisation.
        worker_params: dict[int, dict[str, np.ndarray]] = {}
        matching_rates: dict[int, float] = {}
        eval_model = factory()
        with obs.span("training.adapt", workers=len(tasks)):
            for task in tasks:
                theta = dict(init_for_worker(task))
                eval_model.load_state_dict(theta)
                params = fine_tune(eval_model, task, loss_fn, config, rng)
                worker_params[task.worker_id] = params
                matching_rates[task.worker_id] = _held_out_matching_rate(eval_model, params, task, city, config)
                obs.counter("training.workers_adapted")
                obs.histogram("training.worker_mr", matching_rates[task.worker_id])
    elapsed = time.perf_counter() - started

    return TrainedPredictor(
        worker_params=worker_params,
        matching_rates=matching_rates,
        model_factory=factory,
        config=config,
        city=city,
        training_seconds=elapsed,
        tree=tree,
        bank=bank,
        loss_name=config.loss,
        meta_history=list(history),
    )


def fine_tune(
    model: Module,
    task: LearningTask,
    loss_fn,
    config: PredictionConfig,
    rng: np.random.Generator,
) -> dict[str, np.ndarray]:
    """Per-worker adaptation from the model's current parameters.

    ``"sgd"`` reuses the MAML inner loop (the few-shot regime where
    meta-initialisation quality shows); ``"adam"`` trains the worker's
    personal model to convergence for the online assignment stage.
    Both honour ``config.maml.fast_path`` — adaptation is the per-worker
    hot path as workers churn, so it runs on the fused BPTT kernels
    whenever the model supports them.  Returns the adapted state dict;
    the model is left loaded with it.
    """
    if config.fine_tune_optimizer == "sgd":
        adapted = adapt(
            model,
            task,
            loss_fn,
            inner_lr=config.fine_tune_lr,
            inner_steps=config.fine_tune_steps,
            rng=rng,
            fast_path=config.maml.fast_path,
        )
        params = {name: t.data.copy() for name, t in adapted.items()}
        model.load_state_dict(params)
        return params

    from repro.meta.maml import resolve_fast_path
    from repro.nn import fused
    from repro.nn.optim import Adam

    optimizer = Adam(model.parameters(), lr=config.fine_tune_lr)
    if resolve_fast_path(config.maml.fast_path, model):
        own = dict(model.named_parameters())
        for _ in range(config.fine_tune_steps):
            optimizer.zero_grad()
            _, grads = fused.loss_and_grads(model, own, task.support_x, task.support_y, loss_fn)
            for name, param in own.items():
                param.grad = grads[name]
            optimizer.step()
        return model.state_dict()
    x, y = Tensor(task.support_x), Tensor(task.support_y)
    for _ in range(config.fine_tune_steps):
        optimizer.zero_grad()
        loss_fn(model(x), y).backward()
        optimizer.step()
    return model.state_dict()


def _with_factors(gtmc_cfg, factors: tuple[str, ...]):
    """A GTMC config restricted to a factor subset (ablation support)."""
    from repro.meta.gtmc import GTMCConfig

    return GTMCConfig(
        k=gtmc_cfg.k,
        gamma=gtmc_cfg.gamma,
        factors=tuple(factors),
        thresholds=gtmc_cfg.thresholds[: max(len(factors), 1)]
        if len(gtmc_cfg.thresholds) >= len(factors)
        else tuple(gtmc_cfg.thresholds[0] for _ in factors),
        max_rounds=gtmc_cfg.max_rounds,
    )


def _held_out_matching_rate(
    model: Module,
    params: dict[str, np.ndarray],
    task: LearningTask,
    city: City,
    config: PredictionConfig,
) -> float:
    """MR of the adapted model on the task's query windows (km units)."""
    qx, qy = task.query_x, task.query_y
    if len(qx) == 0:
        qx, qy = task.support_x, task.support_y
    model.load_state_dict(params)
    pred = model.predict(np.asarray(qx, dtype=float))
    pred_km = city.grid.denormalize(pred.reshape(-1, 2))
    real_km = city.grid.denormalize(np.asarray(qy).reshape(-1, 2))
    return matching_rate(real_km, pred_km, a=config.mr_threshold_km)

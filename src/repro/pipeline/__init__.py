"""End-to-end TAMP pipeline: offline training, online prediction, experiments."""

from repro.pipeline.config import ExperimentConfig, PredictionConfig, AssignmentConfig
from repro.pipeline.training import (
    TrainedPredictor,
    train_predictor,
    probe_learning_paths,
)
from repro.pipeline.prediction import (
    PredictiveSnapshotProvider,
    OracleSnapshotProvider,
    CurrentLocationSnapshotProvider,
)
from repro.pipeline.workloads import (
    WorkloadSpec,
    make_workload,
    make_workload1,
    make_workload2,
)
from repro.pipeline.newcomer import OnboardingResult, onboard_worker
from repro.pipeline.adaptive import AdaptiveMRSnapshotProvider, MatchingRateTracker
from repro.pipeline.io import save_predictor, load_predictor
from repro.pipeline.experiment import (
    PredictionReport,
    evaluate_prediction,
    run_assignment,
    ASSIGNMENT_ALGORITHMS,
)

__all__ = [
    "ExperimentConfig",
    "PredictionConfig",
    "AssignmentConfig",
    "TrainedPredictor",
    "train_predictor",
    "probe_learning_paths",
    "PredictiveSnapshotProvider",
    "OracleSnapshotProvider",
    "CurrentLocationSnapshotProvider",
    "PredictionReport",
    "evaluate_prediction",
    "run_assignment",
    "ASSIGNMENT_ALGORITHMS",
    "WorkloadSpec",
    "make_workload",
    "make_workload1",
    "make_workload2",
    "OnboardingResult",
    "onboard_worker",
    "AdaptiveMRSnapshotProvider",
    "MatchingRateTracker",
    "save_predictor",
    "load_predictor",
]

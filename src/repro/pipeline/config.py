"""Experiment configuration objects.

Mirrors Table III's parameter grid: ``seq_in``/``seq_out`` for the
predictors; detour, task count, and valid time for assignment; plus
the hyper-parameters Section IV fixes (2-minute batch window,
``gamma = 0.2``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.dist.backend import DistConfig
from repro.meta.gtmc import GTMCConfig
from repro.meta.maml import MAMLConfig
from repro.tools import check_keys, dataclass_from_mapping


@dataclass(frozen=True)
class PredictionConfig:
    """Offline-stage knobs.

    Attributes
    ----------
    algorithm:
        ``"maml"``, ``"ctml"``, ``"gttaml"``, or ``"gttaml_gt"``.
    loss:
        ``"mse"`` (the *-loss* variants) or ``"task_oriented"``.
    seq_in / seq_out:
        Input/output window lengths (Table III: defaults 5 and 1).
    hidden_size:
        LSTM width of the encoder-decoder.
    fine_tune_steps:
        Per-worker adaptation steps from the selected initialisation.
        ``fine_tune_optimizer`` picks plain SGD (the few-shot regime
        that separates the meta-learners, used by the Table IV/V
        benches) or Adam (longer adaptation for the assignment
        experiments, where online prediction quality matters).
    probe_steps:
        Inner steps used to record learning paths for ``Sim_l``.
    mr_threshold_km:
        The matching-rate distance threshold ``a`` (Def. 7).
    dist:
        Parallel-execution knobs (:class:`repro.dist.backend.DistConfig`)
        for the tree-structured meta-training fan-out.  ``None`` (the
        default) keeps the legacy serial path byte for byte; any
        non-``None`` value routes ``gttaml``/``gttaml_gt`` training
        through :func:`repro.dist.meta.dist_taml_train`, whose result is
        bit-identical at every worker count (but uses its own per-leaf
        RNG schedule, so it differs numerically from the legacy path).
    """

    algorithm: str = "gttaml"
    loss: str = "task_oriented"
    seq_in: int = 5
    seq_out: int = 1
    hidden_size: int = 16
    cell: str = "lstm"
    fine_tune_steps: int = 40
    fine_tune_lr: float = 0.01
    fine_tune_optimizer: str = "adam"
    probe_steps: int = 3
    probe_lr: float = 0.1
    mr_threshold_km: float = 0.3
    seed: int = 0
    maml: MAMLConfig = field(default_factory=lambda: MAMLConfig(iterations=20))
    gtmc: GTMCConfig = field(default_factory=GTMCConfig)
    ctml_clusters: int = 3
    loss_d_q_km: float = 1.0
    loss_kappa: float = 0.5
    loss_delta: float = 0.5
    dist: DistConfig | None = None

    _ALGORITHMS = ("maml", "ctml", "gttaml", "gttaml_gt")
    _LOSSES = ("mse", "task_oriented")

    def __post_init__(self) -> None:
        if self.algorithm not in self._ALGORITHMS:
            raise ValueError(f"algorithm must be one of {self._ALGORITHMS}")
        if self.loss not in self._LOSSES:
            raise ValueError(f"loss must be one of {self._LOSSES}")
        if self.seq_in < 1 or self.seq_out < 1:
            raise ValueError("sequence lengths must be positive")
        if self.mr_threshold_km < 0:
            raise ValueError("mr_threshold_km must be non-negative")
        if self.cell not in ("lstm", "gru"):
            raise ValueError("cell must be 'lstm' or 'gru'")
        if self.fine_tune_optimizer not in ("sgd", "adam"):
            raise ValueError("fine_tune_optimizer must be 'sgd' or 'adam'")

    @classmethod
    def from_dict(cls, data: Mapping, owner: str = "prediction") -> "PredictionConfig":
        """Build from a plain mapping; unknown keys fail naming themselves.

        Nested blocks (``maml``, ``gtmc``, ``dist``) may be given as
        mappings and are validated against their own config dataclasses.
        """
        data = dict(data)
        for name, block_cls in (
            ("maml", MAMLConfig),
            ("gtmc", GTMCConfig),
            ("dist", DistConfig),
        ):
            if isinstance(data.get(name), Mapping):
                data[name] = dataclass_from_mapping(
                    block_cls, data[name], owner=f"{owner}.{name}"
                )
        return dataclass_from_mapping(cls, data, owner=owner)


@dataclass(frozen=True)
class AssignmentConfig:
    """Online-stage knobs.

    ``horizon_points`` is how many future points the predictor rolls
    out for each batch snapshot; with a 10-minute sample step and the
    paper's [3, 4]-unit valid times, 6 points cover every reachable
    deadline.  ``assignment_window`` is how long a requester waits for
    a match before cancelling (see
    :class:`repro.sc.platform.BatchPlatform`).
    """

    batch_window: float = 2.0
    horizon_points: int = 6
    ppi_epsilon: int = 8
    ppi_a_km: float = 0.3
    assignment_window: float | None = 6.0

    def __post_init__(self) -> None:
        if self.batch_window <= 0:
            raise ValueError("batch window must be positive")
        if self.horizon_points < 1:
            raise ValueError("need at least one horizon point")
        if self.assignment_window is not None and self.assignment_window <= 0:
            raise ValueError("assignment window must be positive (or None)")

    @classmethod
    def from_dict(cls, data: Mapping, owner: str = "assignment") -> "AssignmentConfig":
        return dataclass_from_mapping(cls, data, owner=owner)


@dataclass(frozen=True)
class ExperimentConfig:
    """A full experiment: prediction + assignment settings."""

    prediction: PredictionConfig = field(default_factory=PredictionConfig)
    assignment: AssignmentConfig = field(default_factory=AssignmentConfig)

    @classmethod
    def from_dict(cls, data: Mapping) -> "ExperimentConfig":
        check_keys("experiment", data, ["prediction", "assignment"])
        return cls(
            prediction=PredictionConfig.from_dict(data.get("prediction", {})),
            assignment=AssignmentConfig.from_dict(data.get("assignment", {})),
        )

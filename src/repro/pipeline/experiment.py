"""Experiment runners: prediction evaluation and assignment simulation.

``evaluate_prediction`` reproduces the mobility-prediction metric rows
(RMSE / MAE / MR / TT, in the paper's grid-cell units);
``run_assignment`` wires a snapshot provider and an assignment
algorithm into the batch platform and returns the four assignment
metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro import obs
from repro.assignment.baselines import km_assign, lower_bound_assign, upper_bound_assign
from repro.assignment.ggpso import GGPSOConfig, ggpso_assign
from repro.assignment.ppi import PPIConfig, ppi_assign
from repro.assignment.matching_rate import matching_rate
from repro.data.windows import sliding_windows, trajectory_to_normalized
from repro.data.workload import Workload
from repro.nn.tensor import Tensor
from repro.pipeline.config import AssignmentConfig
from repro.pipeline.prediction import (
    CurrentLocationSnapshotProvider,
    OracleSnapshotProvider,
    PredictiveSnapshotProvider,
)
from repro.pipeline.training import TrainedPredictor
from repro.sc.entities import Worker
from repro.sc.platform import BatchPlatform, SimulationResult

#: The algorithm families of Section IV-A.  ``predictive`` entries need a
#: trained predictor; the loss variant (``task_oriented`` vs ``mse``) is
#: chosen by the caller when training it.
ASSIGNMENT_ALGORITHMS = ("ppi", "ppi_loss", "km", "km_loss", "ggpso", "ub", "lb")


@dataclass
class PredictionReport:
    """Mobility-prediction metrics in the paper's units.

    RMSE and MAE are measured in grid-cell units (the paper maps Porto
    onto a 100x50 grid and reports ~0.9 RMSE); MR uses the km threshold
    ``a`` from the prediction config; TT is the offline training time.
    """

    rmse_cells: float
    mae_cells: float
    matching_rate: float
    training_seconds: float
    per_worker: dict[int, dict[str, float]] = field(default_factory=dict)

    def as_row(self) -> dict[str, float]:
        return {
            "RMSE": self.rmse_cells,
            "MAE": self.mae_cells,
            "MR": self.matching_rate,
            "TT": self.training_seconds,
        }


def evaluate_prediction(
    predictor: TrainedPredictor,
    workers: Sequence[Worker],
) -> PredictionReport:
    """Evaluate per-worker models on the held-out test day.

    Windows slide over each worker's test routine; predictions and
    targets are compared in grid-cell units (RMSE/MAE) and in km for
    the matching rate.
    """
    with obs.span("experiment.evaluate_prediction", workers=len(workers)):
        return _evaluate_prediction(predictor, workers)


def _evaluate_prediction(
    predictor: TrainedPredictor,
    workers: Sequence[Worker],
) -> PredictionReport:
    city = predictor.city
    cfg = predictor.config
    cell_scale = np.array([city.grid.rows, city.grid.cols], dtype=float)
    per_worker: dict[int, dict[str, float]] = {}
    sq_errors: list[np.ndarray] = []
    abs_errors: list[np.ndarray] = []
    mrs: list[float] = []

    for worker in workers:
        if worker.worker_id not in predictor.worker_params:
            continue
        norm = trajectory_to_normalized(worker.routine, city)
        x, y = sliding_windows(norm, cfg.seq_in, cfg.seq_out)
        if len(x) == 0:
            continue
        model = predictor.model_for(worker.worker_id)
        pred = model(Tensor(x)).numpy()
        diff_cells = (pred - y) * cell_scale  # unit square -> cell units
        sq = (diff_cells**2).sum(axis=-1)  # squared Euclidean error per point
        ab = np.sqrt(sq)
        sq_errors.append(sq.ravel())
        abs_errors.append(ab.ravel())
        pred_km = city.grid.denormalize(pred.reshape(-1, 2))
        real_km = city.grid.denormalize(y.reshape(-1, 2))
        mr = matching_rate(real_km, pred_km, a=cfg.mr_threshold_km)
        mrs.append(mr)
        per_worker[worker.worker_id] = {
            "rmse": float(np.sqrt(sq.mean())),
            "mae": float(ab.mean()),
            "mr": mr,
        }

    if not sq_errors:
        raise ValueError("no worker produced test windows; test routines too short")
    return PredictionReport(
        rmse_cells=float(np.sqrt(np.concatenate(sq_errors).mean())),
        mae_cells=float(np.concatenate(abs_errors).mean()),
        matching_rate=float(np.mean(mrs)),
        training_seconds=predictor.training_seconds,
        per_worker=per_worker,
    )


def run_assignment(
    workload: Workload,
    algorithm: str,
    assignment_config: AssignmentConfig | None = None,
    predictor: TrainedPredictor | None = None,
    ggpso_config: GGPSOConfig | None = None,
    sample_step: float = 10.0,
) -> SimulationResult:
    """Simulate one algorithm over the workload's test day.

    ``predictor`` is required for the predictive algorithms ("ppi",
    "ppi_loss", "km", "km_loss", "ggpso"); the caller decides which
    loss the predictor was trained with (that is the only difference
    between "ppi" and "ppi_loss" / "km" and "km_loss").
    """
    cfg = assignment_config if assignment_config is not None else AssignmentConfig()
    if algorithm not in ASSIGNMENT_ALGORITHMS:
        raise ValueError(f"unknown algorithm '{algorithm}'; pick one of {ASSIGNMENT_ALGORITHMS}")

    if algorithm == "ub":
        provider = OracleSnapshotProvider(horizon_points=cfg.horizon_points)
        assign_fn = upper_bound_assign
    elif algorithm == "lb":
        provider = CurrentLocationSnapshotProvider()
        assign_fn = lower_bound_assign
    else:
        if predictor is None:
            raise ValueError(f"algorithm '{algorithm}' needs a trained predictor")
        provider = PredictiveSnapshotProvider(predictor, cfg, sample_step=sample_step)
        if algorithm in ("ppi", "ppi_loss"):
            ppi_cfg = PPIConfig(a=cfg.ppi_a_km, epsilon=cfg.ppi_epsilon)
            assign_fn = lambda tasks, snaps, t: ppi_assign(tasks, snaps, t, ppi_cfg)
        elif algorithm in ("km", "km_loss"):
            assign_fn = km_assign
        else:  # ggpso
            g_cfg = ggpso_config if ggpso_config is not None else GGPSOConfig()
            assign_fn = lambda tasks, snaps, t: ggpso_assign(tasks, snaps, t, g_cfg)

    platform = BatchPlatform(
        workload.workers,
        provider,
        batch_window=cfg.batch_window,
        assignment_window=cfg.assignment_window,
    )
    t_start, t_end = workload.horizon()
    with obs.span(
        "experiment.run_assignment",
        algorithm=algorithm,
        tasks=len(workload.tasks),
        workers=len(workload.workers),
    ) as run_span:
        result = platform.run(workload.tasks, assign_fn, t_start, t_end)
        run_span.set(
            completed=result.n_completed,
            rejections=result.n_rejections,
            expired=result.n_expired,
        )
    return result

"""Pairwise similarity matrices and normalisation (the ``Norm`` of Eq. 1).

GTMC consumes an ``(n, n)`` similarity matrix per clustering factor.
This module builds one from any pairwise similarity callable and
rescales it into ``[0, 1]`` so cluster quality (Eq. 4) is comparable
against the singleton utility ``gamma``.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

import numpy as np

T = TypeVar("T")

SimilarityFunction = Callable[[T, T], float]


def similarity_matrix(
    items: Sequence[T],
    sim_fn: SimilarityFunction,
    normalize: bool = True,
) -> np.ndarray:
    """Symmetric pairwise similarity matrix over ``items``.

    ``sim_fn`` is evaluated once per unordered pair; the diagonal is
    fixed at the matrix maximum (an item is maximally similar to
    itself) before optional normalisation.
    """
    n = len(items)
    sim = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            value = float(sim_fn(items[i], items[j]))
            sim[i, j] = value
            sim[j, i] = value
    return finalize_similarity_matrix(sim, normalize=normalize)


def finalize_similarity_matrix(sim: np.ndarray, normalize: bool = True) -> np.ndarray:
    """Apply the diagonal convention and optional normalisation.

    Takes a matrix whose off-diagonal entries are pairwise similarities
    (the diagonal is ignored), pins the diagonal at the off-diagonal
    maximum, and min-max rescales — the same post-processing
    :func:`similarity_matrix` applies, usable with matrices built in
    bulk (e.g. :func:`repro.similarity.distribution.pairwise_sliced_wasserstein`).
    """
    sim = np.array(sim, dtype=float)
    if sim.ndim != 2 or sim.shape[0] != sim.shape[1]:
        raise ValueError(f"similarity matrix must be square, got {sim.shape}")
    n = len(sim)
    if n:
        np.fill_diagonal(sim, 0.0)
        off_max = sim.max() if n > 1 else 1.0
        np.fill_diagonal(sim, max(off_max, 1.0) if not normalize else off_max)
    if normalize:
        sim = normalize_similarity_matrix(sim)
    return sim


def normalize_similarity_matrix(sim: np.ndarray) -> np.ndarray:
    """Min-max rescale a similarity matrix into ``[0, 1]``.

    The diagonal is excluded from the statistics (self-similarity is
    definitional, not evidence) and then set to 1.  A constant matrix
    maps to all-ones: indistinguishable items are all alike.
    """
    sim = np.asarray(sim, dtype=float)
    if sim.ndim != 2 or sim.shape[0] != sim.shape[1]:
        raise ValueError(f"similarity matrix must be square, got {sim.shape}")
    n = len(sim)
    if n <= 1:
        out = np.ones_like(sim)
        return out
    mask = ~np.eye(n, dtype=bool)
    values = sim[mask]
    lo, hi = float(values.min()), float(values.max())
    if hi - lo < 1e-12:
        out = np.ones_like(sim)
        return out
    out = (sim - lo) / (hi - lo)
    out = np.clip(out, 0.0, 1.0)
    np.fill_diagonal(out, 1.0)
    # Re-symmetrise against floating point drift.
    return (out + out.T) / 2.0

"""Spatial feature similarity ``Sim_s`` (Eq. 1).

Each learning task is represented by the POI sequence
``V = {<x, y, a>}`` its worker visited.  Similarity is the mean kernel
value over all cross pairs (a kernel two-sample statistic, following
the kernel-density modelling of human location data in the paper's
references [23, 24]):

    Sim_s(i, j) = Norm( mean_{a in V_i, b in V_j} K_h(v_a, v_b) )

The kernel is a Gaussian on the planar coordinates multiplied by a
category-agreement factor, so POIs of the same type reinforce the
similarity the way the mixture-of-kernels model in [24] mixes geography
with preference.
"""

from __future__ import annotations

import numpy as np


def gaussian_poi_kernel(
    features_a: np.ndarray,
    features_b: np.ndarray,
    bandwidth_km: float = 1.0,
    category_factor: float = 0.5,
) -> np.ndarray:
    """Pairwise kernel values between two ``(n, 3)`` POI feature matrices.

    Feature rows are ``<x, y, category>``.  Returns an ``(n_a, n_b)``
    matrix of values in ``[0, 1]``; pairs with differing categories are
    scaled by ``category_factor``.
    """
    a = np.asarray(features_a, dtype=float).reshape(-1, 3)
    b = np.asarray(features_b, dtype=float).reshape(-1, 3)
    if bandwidth_km <= 0:
        raise ValueError("bandwidth must be positive")
    if not 0.0 <= category_factor <= 1.0:
        raise ValueError("category_factor must lie in [0, 1]")
    diff = a[:, None, :2] - b[None, :, :2]
    sq = (diff**2).sum(axis=2)
    geo = np.exp(-sq / (2.0 * bandwidth_km**2))
    same_cat = a[:, None, 2] == b[None, :, 2]
    return geo * np.where(same_cat, 1.0, category_factor)


def spatial_similarity(
    features_a: np.ndarray,
    features_b: np.ndarray,
    bandwidth_km: float = 1.0,
    category_factor: float = 0.5,
) -> float:
    """``Sim_s`` between two POI feature sequences.

    The mean of all cross-pair kernel values.  Already in ``[0, 1]``
    because the kernel is; empty sequences yield 0 (nothing is known
    about the worker's spatial footprint, so no similarity evidence).
    """
    a = np.asarray(features_a, dtype=float).reshape(-1, 3)
    b = np.asarray(features_b, dtype=float).reshape(-1, 3)
    if len(a) == 0 or len(b) == 0:
        return 0.0
    kernel = gaussian_poi_kernel(a, b, bandwidth_km=bandwidth_km, category_factor=category_factor)
    return float(kernel.mean())

"""Distribution similarity ``Sim_d`` (Eq. 3) via Wasserstein distance.

The paper scores two learning tasks' data distributions with the
reciprocal of their Wasserstein-1 distance.  Three estimators are
provided:

* :func:`wasserstein_1d` — exact for one-dimensional empirical
  distributions (quantile coupling);
* :func:`wasserstein_exact_2d` — exact for equal-size planar samples
  via optimal assignment (our Hungarian solver);
* :func:`sliced_wasserstein` — the sliced approximation (mean of 1-D
  distances over random projections), the default in the pipeline for
  its O(n log n)-per-slice cost.

``Sim_d`` itself maps distance to similarity with ``1 / (1 + W)``
rather than the paper's bare ``1 / W``: the bare reciprocal is
unbounded (and singular at ``W = 0``) while the cluster quality of
Eq. 4 is compared against ``gamma`` in ``(0, 1)``; the bounded form
preserves the ordering, which is all the game uses.  The bare form is
available via ``mode="reciprocal"``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def wasserstein_1d(u: np.ndarray, v: np.ndarray) -> float:
    """Exact W1 between two 1-D empirical distributions (uniform weights)."""
    u = np.sort(np.asarray(u, dtype=float).ravel())
    v = np.sort(np.asarray(v, dtype=float).ravel())
    if len(u) == 0 or len(v) == 0:
        raise ValueError("distributions must be non-empty")
    return _wasserstein_1d_sorted(u, v)


def _wasserstein_1d_sorted(u: np.ndarray, v: np.ndarray) -> float:
    """W1 between two already-sorted 1-D samples (sorting hoisted out)."""
    if len(u) == len(v):
        return float(np.abs(u - v).mean())
    # General case: integrate |F_u^{-1}(q) - F_v^{-1}(q)| over quantiles.
    all_q = np.concatenate([(np.arange(1, len(u) + 1)) / len(u), (np.arange(1, len(v) + 1)) / len(v)])
    all_q = np.unique(np.concatenate([[0.0], all_q]))
    widths = np.diff(all_q)
    mids = (all_q[:-1] + all_q[1:]) / 2.0
    uq = u[np.minimum((mids * len(u)).astype(int), len(u) - 1)]
    vq = v[np.minimum((mids * len(v)).astype(int), len(v) - 1)]
    return float((widths * np.abs(uq - vq)).sum())


def wasserstein_exact_2d(a: np.ndarray, b: np.ndarray) -> float:
    """Exact W1 between equal-size planar samples via optimal assignment.

    For uniform empirical measures with equal support sizes, the optimal
    transport plan is a permutation (Birkhoff), so the distance is the
    mean cost of the minimal assignment.
    """
    from repro.assignment.hungarian import solve_assignment

    a = np.asarray(a, dtype=float).reshape(-1, 2)
    b = np.asarray(b, dtype=float).reshape(-1, 2)
    if len(a) != len(b):
        raise ValueError("exact 2-D W1 requires equal sample sizes; subsample first")
    if len(a) == 0:
        raise ValueError("distributions must be non-empty")
    diff = a[:, None, :] - b[None, :, :]
    cost = np.sqrt((diff**2).sum(axis=2))
    rows, cols = solve_assignment(cost, maximize=False)
    return float(cost[rows, cols].mean())


def sliced_wasserstein(
    a: np.ndarray,
    b: np.ndarray,
    n_projections: int = 32,
    rng: np.random.Generator | None = None,
) -> float:
    """Sliced W1: mean 1-D W1 over random unit directions."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.ndim == 1:
        a = a[:, None]
    if b.ndim == 1:
        b = b[:, None]
    if a.shape[1] != b.shape[1]:
        raise ValueError("sample dimensionalities differ")
    if len(a) == 0 or len(b) == 0:
        raise ValueError("distributions must be non-empty")
    if n_projections <= 0:
        raise ValueError("need at least one projection")
    d = a.shape[1]
    if d == 1:
        return wasserstein_1d(a.ravel(), b.ravel())
    rng = rng if rng is not None else np.random.default_rng(0)
    directions = rng.normal(size=(n_projections, d))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    total = 0.0
    for direction in directions:
        total += wasserstein_1d(a @ direction, b @ direction)
    return total / n_projections


def pairwise_sliced_wasserstein(
    samples: Sequence[np.ndarray],
    n_projections: int = 32,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Pairwise sliced-W1 distance matrix over many samples.

    Equivalent to calling :func:`sliced_wasserstein` on every pair with
    the same generator seed (the shared-projection convention the
    clustering features use), but each sample is projected onto the
    random directions and sorted exactly once instead of once per pair:
    ``O(m * P * n log n)`` preprocessing for ``m`` samples rather than
    ``O(m^2 * P * n log n)`` inside the pair loop.
    """
    arrays: list[np.ndarray] = []
    for s in samples:
        a = np.asarray(s, dtype=float)
        if a.ndim == 1:
            a = a[:, None]
        if len(a) == 0:
            raise ValueError("distributions must be non-empty")
        arrays.append(a)
    m = len(arrays)
    out = np.zeros((m, m))
    if m == 0:
        return out
    if len({a.shape[1] for a in arrays}) != 1:
        raise ValueError("sample dimensionalities differ")
    if n_projections <= 0:
        raise ValueError("need at least one projection")
    d = arrays[0].shape[1]
    if d == 1:
        # One dimension needs no projections (matches sliced_wasserstein).
        projected = [np.sort(a, axis=0) for a in arrays]
    else:
        rng = rng if rng is not None else np.random.default_rng(0)
        directions = rng.normal(size=(n_projections, d))
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        projected = [np.sort(a @ directions.T, axis=0) for a in arrays]
    for i in range(m):
        for j in range(i + 1, m):
            pi, pj = projected[i], projected[j]
            if len(pi) == len(pj):
                # Mean over samples and slices at once == mean of
                # per-slice W1 when sizes match.
                w = float(np.abs(pi - pj).mean())
            else:
                w = sum(
                    _wasserstein_1d_sorted(pi[:, k], pj[:, k]) for k in range(pi.shape[1])
                ) / pi.shape[1]
            out[i, j] = w
            out[j, i] = w
    return out


def distribution_similarity(
    a: np.ndarray,
    b: np.ndarray,
    method: str = "sliced",
    mode: str = "bounded",
    n_projections: int = 32,
    rng: np.random.Generator | None = None,
    eps: float = 1e-9,
) -> float:
    """``Sim_d`` between two empirical samples.

    Parameters
    ----------
    method:
        ``"sliced"`` (default) or ``"exact"`` (requires equal planar
        sample sizes).
    mode:
        ``"bounded"`` maps ``W`` to ``1 / (1 + W)`` (range ``(0, 1]``);
        ``"reciprocal"`` is the paper's literal ``1 / W`` (unbounded,
        clamped by ``eps`` near zero).
    """
    if method == "sliced":
        w = sliced_wasserstein(a, b, n_projections=n_projections, rng=rng)
    elif method == "exact":
        w = wasserstein_exact_2d(a, b)
    else:
        raise ValueError(f"unknown method '{method}'")
    if mode == "bounded":
        return 1.0 / (1.0 + w)
    if mode == "reciprocal":
        return 1.0 / max(w, eps)
    raise ValueError(f"unknown mode '{mode}'")

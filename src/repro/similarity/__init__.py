"""Similarity measures between learning tasks (Section III-B).

GTMC clusters learning tasks by three factors, each with its own
similarity function:

* ``Sim_s`` — spatial features via kernel density over POI sequences
  (Eq. 1);
* ``Sim_l`` — learning paths via average cosine similarity of k-step
  gradients (Eq. 2);
* ``Sim_d`` — data distributions via Wasserstein distance (Eq. 3).

:mod:`repro.similarity.quality` turns any of them into the cluster
quality ``Q(G)`` of Eq. 4.
"""

from repro.similarity.spatial import spatial_similarity, gaussian_poi_kernel
from repro.similarity.learning_path import learning_path_similarity, cosine
from repro.similarity.distribution import (
    wasserstein_1d,
    wasserstein_exact_2d,
    sliced_wasserstein,
    pairwise_sliced_wasserstein,
    distribution_similarity,
)
from repro.similarity.quality import (
    similarity_matrix,
    finalize_similarity_matrix,
    normalize_similarity_matrix,
    SimilarityFunction,
)

__all__ = [
    "spatial_similarity",
    "gaussian_poi_kernel",
    "learning_path_similarity",
    "cosine",
    "wasserstein_1d",
    "wasserstein_exact_2d",
    "sliced_wasserstein",
    "pairwise_sliced_wasserstein",
    "distribution_similarity",
    "similarity_matrix",
    "finalize_similarity_matrix",
    "normalize_similarity_matrix",
    "SimilarityFunction",
]

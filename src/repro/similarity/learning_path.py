"""Learning-path similarity ``Sim_l`` (Eq. 2).

A learning task's *learning path* is the sequence of gradients taken
during the first ``k`` adaptation steps of a meta-learner on that task
(Section III-B).  Two tasks are similar when, step for step, their
gradients point the same way:

    Sim_l(a, b) = (1/k) * sum_i cos(z_i^(a), z_i^(b))
"""

from __future__ import annotations

import numpy as np


def cosine(u: np.ndarray, v: np.ndarray) -> float:
    """Cosine similarity of two flat vectors; 0 when either is zero."""
    u = np.asarray(u, dtype=float).ravel()
    v = np.asarray(v, dtype=float).ravel()
    if u.shape != v.shape:
        raise ValueError(f"vector shapes differ: {u.shape} vs {v.shape}")
    nu = float(np.linalg.norm(u))
    nv = float(np.linalg.norm(v))
    if nu == 0.0 or nv == 0.0:
        return 0.0
    return float(np.dot(u, v) / (nu * nv))


def learning_path_similarity(path_a: np.ndarray, path_b: np.ndarray) -> float:
    """Mean per-step cosine similarity of two gradient paths.

    Parameters
    ----------
    path_a, path_b:
        ``(k, p)`` arrays of the k-step gradients ``Z^(i)`` (one flat
        gradient vector per adaptation step).  Paths shorter than each
        other are compared over the common prefix.

    Returns a value in ``[-1, 1]``; callers that need ``[0, 1]`` (the
    cluster-quality scale) should pass the result through
    :func:`repro.similarity.quality.normalize_similarity_matrix` or map
    with ``(s + 1) / 2``.
    """
    a = np.atleast_2d(np.asarray(path_a, dtype=float))
    b = np.atleast_2d(np.asarray(path_b, dtype=float))
    if a.shape[1] != b.shape[1]:
        raise ValueError(f"gradient dimensionality differs: {a.shape[1]} vs {b.shape[1]}")
    k = min(len(a), len(b))
    if k == 0:
        return 0.0
    return float(np.mean([cosine(a[i], b[i]) for i in range(k)]))

"""Soft (fuzzy) k-means.

The CTML baseline (Peng & Pan, 2023) clusters learning tasks by *soft*
k-means over concatenated input-feature and learning-path embeddings;
membership weights then blend cluster initialisations.  We reproduce
the soft assignment with a temperature-controlled responsibility
matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.kmeans import _kmeans_pp_seed


@dataclass
class SoftKMeans:
    """Result of a soft k-means run.

    Attributes
    ----------
    centers:
        ``(k, d)`` cluster centres.
    responsibilities:
        ``(n, k)`` soft membership weights (rows sum to 1).
    labels:
        Hard labels (argmax of responsibilities), for convenience.
    n_iter:
        EM sweeps performed.
    """

    centers: np.ndarray
    responsibilities: np.ndarray
    labels: np.ndarray
    n_iter: int


def soft_kmeans(
    x: np.ndarray,
    k: int,
    beta: float = 5.0,
    rng: np.random.Generator | None = None,
    max_iter: int = 100,
    tol: float = 1e-8,
) -> SoftKMeans:
    """Soft k-means with stiffness ``beta``.

    Responsibilities are ``softmax(-beta * ||x - c||^2)`` over centres;
    larger ``beta`` approaches hard k-means.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 2:
        raise ValueError(f"expected (n, d) data, got shape {x.shape}")
    if beta <= 0:
        raise ValueError("beta must be positive")
    n = len(x)
    if n == 0:
        raise ValueError("cannot cluster zero points")
    k = min(max(k, 1), n)
    rng = rng if rng is not None else np.random.default_rng(0)

    centers = _kmeans_pp_seed(x, k, rng)
    resp = np.full((n, k), 1.0 / k)
    n_iter = 0
    for n_iter in range(1, max_iter + 1):
        d2 = ((x[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        logits = -beta * d2
        logits -= logits.max(axis=1, keepdims=True)
        new_resp = np.exp(logits)
        new_resp /= new_resp.sum(axis=1, keepdims=True)
        weights = new_resp.sum(axis=0)
        new_centers = (new_resp.T @ x) / np.maximum(weights[:, None], 1e-12)
        shift = float(np.abs(new_resp - resp).max())
        centers, resp = new_centers, new_resp
        if shift < tol:
            break
    return SoftKMeans(
        centers=centers,
        responsibilities=resp,
        labels=resp.argmax(axis=1),
        n_iter=n_iter,
    )

"""Clustering substrate.

GTMC (Algorithm 1) seeds each level with k-medoids, then refines via
best-response dynamics on an exact potential game; the CTML baseline
uses soft k-means; the GTTAML-GT ablation replaces the game with plain
k-means.  All three plus the game engine live here.
"""

from repro.cluster.kmeans import KMeans, kmeans
from repro.cluster.kmedoids import KMedoids, kmedoids
from repro.cluster.soft_kmeans import SoftKMeans, soft_kmeans
from repro.cluster.game import (
    ClusteringGame,
    BestResponseResult,
    best_response_clustering,
    cluster_quality,
    scaled_cluster_quality,
)

__all__ = [
    "KMeans",
    "kmeans",
    "KMedoids",
    "kmedoids",
    "SoftKMeans",
    "soft_kmeans",
    "ClusteringGame",
    "BestResponseResult",
    "best_response_clustering",
    "cluster_quality",
    "scaled_cluster_quality",
]

"""Lloyd's k-means with k-means++ seeding."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class KMeans:
    """Result of a k-means run.

    Attributes
    ----------
    centers:
        ``(k, d)`` cluster centres.
    labels:
        ``(n,)`` index of each point's cluster.
    inertia:
        Sum of squared distances to assigned centres.
    n_iter:
        Lloyd iterations until convergence (or the cap).
    """

    centers: np.ndarray
    labels: np.ndarray
    inertia: float
    n_iter: int
    history: list[float] = field(default_factory=list)


def _kmeans_pp_seed(x: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread initial centres by squared distance."""
    n = len(x)
    centers = np.empty((k, x.shape[1]))
    centers[0] = x[rng.integers(n)]
    closest_sq = ((x - centers[0]) ** 2).sum(axis=1)
    for j in range(1, k):
        total = closest_sq.sum()
        if total <= 0:
            centers[j:] = x[rng.integers(n, size=k - j)]
            break
        probs = closest_sq / total
        centers[j] = x[rng.choice(n, p=probs)]
        closest_sq = np.minimum(closest_sq, ((x - centers[j]) ** 2).sum(axis=1))
    return centers


def kmeans(
    x: np.ndarray,
    k: int,
    rng: np.random.Generator | None = None,
    max_iter: int = 100,
    tol: float = 1e-6,
) -> KMeans:
    """Cluster ``(n, d)`` points into ``k`` groups with Lloyd's algorithm.

    ``k`` is clamped to ``n`` so degenerate inputs never fail; empty
    clusters are re-seeded with the farthest point from its centre.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 2:
        raise ValueError(f"expected (n, d) data, got shape {x.shape}")
    n = len(x)
    if n == 0:
        raise ValueError("cannot cluster zero points")
    if k <= 0:
        raise ValueError("k must be positive")
    k = min(k, n)
    rng = rng if rng is not None else np.random.default_rng(0)

    centers = _kmeans_pp_seed(x, k, rng)
    labels = np.zeros(n, dtype=int)
    history: list[float] = []
    inertia = np.inf
    n_iter = 0
    for n_iter in range(1, max_iter + 1):
        d2 = ((x[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        labels = d2.argmin(axis=1)
        new_inertia = float(d2[np.arange(n), labels].sum())
        history.append(new_inertia)
        for j in range(k):
            members = x[labels == j]
            if len(members):
                centers[j] = members.mean(axis=0)
            else:
                # Re-seed an empty cluster with the worst-fit point.
                worst = int(d2[np.arange(n), labels].argmax())
                centers[j] = x[worst]
        if abs(inertia - new_inertia) <= tol * max(abs(inertia), 1.0):
            inertia = new_inertia
            break
        inertia = new_inertia
    return KMeans(centers=centers, labels=labels, inertia=inertia, n_iter=n_iter, history=history)

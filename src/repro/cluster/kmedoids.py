"""K-medoids in the Park & Jun (2009) style, on a precomputed distance matrix.

GTMC (Algorithm 1, line 5) seeds each game with k-medoids using
``1 / Sim`` as the distance between learning tasks; learning tasks are
not vectors, so a medoid-based method over an arbitrary dissimilarity
matrix is required.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class KMedoids:
    """Result of a k-medoids run.

    Attributes
    ----------
    medoids:
        Indices of the ``k`` medoid points.
    labels:
        ``(n,)`` cluster index per point (into ``medoids``).
    cost:
        Total distance of points to their medoid.
    n_iter:
        Update sweeps until convergence (or the cap).
    """

    medoids: np.ndarray
    labels: np.ndarray
    cost: float
    n_iter: int


def _validate_distance_matrix(dist: np.ndarray) -> np.ndarray:
    d = np.asarray(dist, dtype=float)
    if d.ndim != 2 or d.shape[0] != d.shape[1]:
        raise ValueError(f"distance matrix must be square, got {d.shape}")
    if np.any(d < 0):
        raise ValueError("distances must be non-negative")
    return d


def kmedoids(
    dist: np.ndarray,
    k: int,
    rng: np.random.Generator | None = None,
    max_iter: int = 100,
) -> KMedoids:
    """Cluster via the simple-and-fast k-medoids update.

    Parameters
    ----------
    dist:
        ``(n, n)`` symmetric dissimilarity matrix.
    k:
        Number of clusters (clamped to ``n``).

    The Park-Jun initialisation picks the ``k`` points with the lowest
    normalised total distance to everything else; each sweep reassigns
    points to the closest medoid and moves each medoid to the member
    minimising intra-cluster cost.
    """
    d = _validate_distance_matrix(dist)
    n = len(d)
    if n == 0:
        raise ValueError("cannot cluster zero points")
    if k <= 0:
        raise ValueError("k must be positive")
    k = min(k, n)
    rng = rng if rng is not None else np.random.default_rng(0)

    # Park & Jun initialisation: v_j = sum_i d_ij / sum_l d_il.
    row_sums = d.sum(axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        v = np.where(row_sums[None, :] > 0, d / row_sums[None, :], 0.0).sum(axis=1)
    medoids = np.argsort(v)[:k].copy()

    labels = d[:, medoids].argmin(axis=1)
    cost = float(d[np.arange(n), medoids[labels]].sum())
    n_iter = 0
    for n_iter in range(1, max_iter + 1):
        changed = False
        for j in range(k):
            members = np.nonzero(labels == j)[0]
            if len(members) == 0:
                continue
            intra = d[np.ix_(members, members)].sum(axis=0)
            best = members[int(intra.argmin())]
            if best != medoids[j]:
                medoids[j] = best
                changed = True
        new_labels = d[:, medoids].argmin(axis=1)
        new_cost = float(d[np.arange(n), medoids[new_labels]].sum())
        if not changed and np.array_equal(new_labels, labels):
            break
        labels = new_labels
        cost = new_cost
    return KMedoids(medoids=medoids, labels=labels, cost=cost, n_iter=n_iter)

"""Clustering as an exact potential game (Section III-B, Theorem 1).

Each learning task is a player; a strategy is the cluster slot the
player joins.  The utility of joining cluster ``G`` is the marginal
quality it contributes (Eq. 5):

    u(i, G) = Q(G + {i}) - Q(G)

with cluster quality ``Q`` the average pairwise similarity (Eq. 4),
``gamma`` for singletons and 0 for empty clusters.  The total quality
``F = sum_G Q(G)`` is an exact potential for this game (Appendix A-A),
so round-robin best-response dynamics terminate in a Nash equilibrium.
The engine exposes the potential trace so tests can assert the
monotonicity the proof guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def cluster_quality(sim: np.ndarray, members: list[int], gamma: float) -> float:
    """``Q(G)`` from Eq. 4 for a member index list."""
    n = len(members)
    if n == 0:
        return 0.0
    if n == 1:
        return gamma
    sub = sim[np.ix_(members, members)]
    # Off-diagonal sum over ordered pairs / (n * (n - 1)).
    total = float(sub.sum() - np.trace(sub))
    return total / (n * (n - 1))


def scaled_cluster_quality(sim: np.ndarray, members: list[int], gamma: float) -> float:
    """Size-scaled quality ``|G| * Q(G)`` used inside the game.

    Eq. 5's marginal utility of the *average* quality vanishes for any
    cluster of size >= 3 (adding a typical member leaves the average
    unchanged), so under the literal Eq. 5 every such cluster is
    unstable against gamma-singletons and best response fragments the
    population into pairs.  Scaling by ``|G|`` keeps the exact-potential
    property (Appendix A-A's proof never uses the form of Q) and gives
    the semantics the paper states for gamma: a member stays iff their
    average similarity to the cluster exceeds gamma.
    """
    n = len(members)
    if n == 0:
        return 0.0
    if n == 1:
        return gamma
    sub = sim[np.ix_(members, members)]
    total = float(sub.sum() - np.trace(sub))
    return total / (n - 1)


@dataclass
class BestResponseResult:
    """Outcome of best-response dynamics.

    Attributes
    ----------
    labels:
        ``(n,)`` cluster slot per player; slots may be empty (unused).
    potential_trace:
        Value of the potential ``F = sum_G Q(G)`` after every accepted
        move, starting with the initial assignment.  Non-decreasing by
        Theorem 1.
    n_moves:
        Accepted strategy changes.
    n_rounds:
        Full player sweeps executed.
    converged:
        Whether a full sweep produced no move (Nash equilibrium).
    """

    labels: np.ndarray
    potential_trace: list[float] = field(default_factory=list)
    n_moves: int = 0
    n_rounds: int = 0
    converged: bool = False

    def clusters(self) -> list[list[int]]:
        """Non-empty clusters as sorted member index lists."""
        out: dict[int, list[int]] = {}
        for player, slot in enumerate(self.labels):
            out.setdefault(int(slot), []).append(player)
        return [sorted(v) for _, v in sorted(out.items())]


class ClusteringGame:
    """Incremental state for best-response dynamics on one similarity matrix.

    Maintains, per cluster slot, its member set and the sum of pairwise
    similarities so utilities are O(|G|) instead of O(|G|^2).
    """

    def __init__(self, sim: np.ndarray, n_slots: int, gamma: float) -> None:
        sim = np.asarray(sim, dtype=float)
        if sim.ndim != 2 or sim.shape[0] != sim.shape[1]:
            raise ValueError(f"similarity matrix must be square, got {sim.shape}")
        if not np.allclose(sim, sim.T, atol=1e-9):
            raise ValueError("similarity matrix must be symmetric")
        if not 0.0 < gamma < 1.0:
            raise ValueError("gamma must lie in (0, 1)")
        if n_slots <= 0:
            raise ValueError("need at least one cluster slot")
        self.sim = sim
        self.n = len(sim)
        self.n_slots = n_slots
        self.gamma = gamma
        self._members: list[set[int]] = [set() for _ in range(n_slots)]
        self._pair_sum = np.zeros(n_slots)  # sum over unordered pairs, counted once
        self._labels = np.full(self.n, -1, dtype=int)

    # ------------------------------------------------------------------
    # assignment bookkeeping
    # ------------------------------------------------------------------
    def assign(self, labels: np.ndarray) -> None:
        """Set the initial assignment (e.g. from k-medoids)."""
        labels = np.asarray(labels, dtype=int)
        if labels.shape != (self.n,):
            raise ValueError("labels must have one entry per player")
        if labels.min() < 0 or labels.max() >= self.n_slots:
            raise ValueError("labels reference unknown cluster slots")
        self._members = [set() for _ in range(self.n_slots)]
        self._pair_sum = np.zeros(self.n_slots)
        self._labels = np.full(self.n, -1, dtype=int)
        for player, slot in enumerate(labels):
            self._add(player, int(slot))

    def _link_sum(self, player: int, slot: int) -> float:
        members = self._members[slot]
        if not members:
            return 0.0
        idx = np.fromiter(members, dtype=int)
        return float(self.sim[player, idx].sum())

    def _add(self, player: int, slot: int) -> None:
        self._pair_sum[slot] += self._link_sum(player, slot)
        self._members[slot].add(player)
        self._labels[player] = slot

    def _remove(self, player: int) -> None:
        slot = int(self._labels[player])
        self._members[slot].discard(player)
        self._pair_sum[slot] -= self._link_sum(player, slot)
        self._labels[player] = -1

    # ------------------------------------------------------------------
    # game quantities
    # ------------------------------------------------------------------
    def slot_quality(self, slot: int) -> float:
        """Average quality ``Q`` (Eq. 4) of a slot."""
        n = len(self._members[slot])
        if n == 0:
            return 0.0
        if n == 1:
            return self.gamma
        return 2.0 * self._pair_sum[slot] / (n * (n - 1))

    def slot_quality_scaled(self, slot: int) -> float:
        """Size-scaled quality ``|G| * Q(G)`` (see
        :func:`scaled_cluster_quality` for why the game uses this)."""
        n = len(self._members[slot])
        if n == 0:
            return 0.0
        if n == 1:
            return self.gamma
        return 2.0 * self._pair_sum[slot] / (n - 1)

    def joining_utility(self, player: int, slot: int) -> float:
        """``u(player, slot)`` assuming the player is currently unassigned."""
        before = self.slot_quality_scaled(slot)
        n = len(self._members[slot])
        link = self._link_sum(player, slot)
        if n == 0:
            after = self.gamma
        else:
            after = 2.0 * (self._pair_sum[slot] + link) / n
        return after - before

    def potential(self) -> float:
        """The exact potential ``F = sum_G |G| * Q(G)``."""
        return float(sum(self.slot_quality_scaled(s) for s in range(self.n_slots)))

    @property
    def labels(self) -> np.ndarray:
        return self._labels.copy()

    # ------------------------------------------------------------------
    # dynamics
    # ------------------------------------------------------------------
    def best_response(self, player: int) -> tuple[int, float]:
        """The slot maximising the player's utility, and that utility.

        Evaluated with the player lifted out of their current cluster,
        which matches Eq. 5 (the utility compares the joined cluster
        with and without the player).
        """
        current = int(self._labels[player])
        self._remove(player)
        best_slot, best_utility = current, -np.inf
        for slot in range(self.n_slots):
            u = self.joining_utility(player, slot)
            if u > best_utility + 1e-12:
                best_slot, best_utility = slot, u
        self._add(player, best_slot)
        return best_slot, best_utility


def best_response_clustering(
    sim: np.ndarray,
    init_labels: np.ndarray,
    gamma: float,
    n_slots: int | None = None,
    max_rounds: int = 200,
) -> BestResponseResult:
    """Run round-robin best-response dynamics to a Nash equilibrium.

    Parameters
    ----------
    sim:
        ``(n, n)`` symmetric similarity matrix in ``[0, 1]``-ish range.
    init_labels:
        Starting assignment, typically from k-medoids (Algorithm 1,
        line 5).
    gamma:
        Singleton-cluster utility (Eq. 4); effectively the minimum
        quality a cluster must offer to retain members.
    n_slots:
        Number of strategy slots; defaults to ``max(init) + 1`` plus one
        spare empty slot so any player can always secede into a
        singleton.
    max_rounds:
        Defensive cap; Theorem 1 guarantees finite convergence, the cap
        guards against floating-point livelock.
    """
    init_labels = np.asarray(init_labels, dtype=int)
    n = len(init_labels)
    if n == 0:
        return BestResponseResult(labels=np.zeros(0, dtype=int), converged=True)
    if n_slots is None:
        # One spare slot per player keeps "form a singleton" in every
        # player's strategy set at all times, making gamma a true quality
        # floor; empty slots cost O(1) per utility evaluation.
        n_slots = int(init_labels.max()) + 1 + n
    game = ClusteringGame(sim, n_slots=n_slots, gamma=gamma)
    game.assign(init_labels)

    trace = [game.potential()]
    n_moves = 0
    converged = False
    rounds = 0
    for rounds in range(1, max_rounds + 1):
        moved = False
        for player in range(n):
            old = int(game.labels[player])
            new, _ = game.best_response(player)
            if new != old:
                moved = True
                n_moves += 1
                trace.append(game.potential())
        if not moved:
            converged = True
            break
    return BestResponseResult(
        labels=game.labels,
        potential_trace=trace,
        n_moves=n_moves,
        n_rounds=rounds,
        converged=converged,
    )

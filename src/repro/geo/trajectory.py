"""Timestamped trajectories (the paper's "routines").

A routine ``r = {(l_1, t_1), ..., (l_n, t_n)}`` is a time-ordered
polyline.  Workers move along their routine at constant speed between
samples; :meth:`Trajectory.position_at` interpolates, which is what the
acceptance model and the UB oracle use to reason about where a worker
*actually* is.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.geo.point import Point, path_length


@dataclass(frozen=True, slots=True)
class TrajectoryPoint:
    """A single routine sample: a location with a timestamp (minutes)."""

    location: Point
    time: float

    def __iter__(self):
        yield self.location
        yield self.time


class Trajectory:
    """An immutable, time-ordered sequence of :class:`TrajectoryPoint`.

    Timestamps are minutes from the start of the simulated day and must
    be strictly increasing.
    """

    __slots__ = ("_points", "_times", "_xy")

    def __init__(self, points: Iterable[TrajectoryPoint]) -> None:
        pts = tuple(points)
        times = [p.time for p in pts]
        if any(t2 <= t1 for t1, t2 in zip(times, times[1:])):
            raise ValueError("trajectory timestamps must be strictly increasing")
        self._points = pts
        self._times = times
        self._xy = np.array([[p.location.x, p.location.y] for p in pts], dtype=float).reshape(len(pts), 2)

    @classmethod
    def from_arrays(cls, xy: np.ndarray, times: Sequence[float]) -> "Trajectory":
        """Build a trajectory from an ``(n, 2)`` array and matching times."""
        xy = np.asarray(xy, dtype=float)
        if len(xy) != len(times):
            raise ValueError("xy and times must have equal length")
        return cls(TrajectoryPoint(Point(float(x), float(y)), float(t)) for (x, y), t in zip(xy, times))

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[TrajectoryPoint]:
        return iter(self._points)

    def __getitem__(self, idx: int) -> TrajectoryPoint:
        return self._points[idx]

    @property
    def xy(self) -> np.ndarray:
        """Locations as an ``(n, 2)`` array (shared; treat as read-only)."""
        return self._xy

    @property
    def times(self) -> Sequence[float]:
        return tuple(self._times)

    @property
    def start_time(self) -> float:
        return self._times[0]

    @property
    def end_time(self) -> float:
        return self._times[-1]

    def length_km(self) -> float:
        """Total travelled distance along the polyline."""
        return path_length(self._xy)

    def duration(self) -> float:
        """Elapsed minutes from first to last sample."""
        return self.end_time - self.start_time if self._points else 0.0

    def position_at(self, t: float) -> Point:
        """Linearly interpolated position at time ``t``.

        Clamps to the endpoints outside the routine's time span, which
        models a worker idling at their first/last location.
        """
        if not self._points:
            raise ValueError("empty trajectory has no position")
        if t <= self._times[0]:
            return self._points[0].location
        if t >= self._times[-1]:
            return self._points[-1].location
        hi = bisect.bisect_right(self._times, t)
        lo = hi - 1
        t0, t1 = self._times[lo], self._times[hi]
        frac = (t - t0) / (t1 - t0)
        x0, y0 = self._xy[lo]
        x1, y1 = self._xy[hi]
        return Point(float(x0 + frac * (x1 - x0)), float(y0 + frac * (y1 - y0)))

    def slice_time(self, t_from: float, t_to: float) -> "Trajectory":
        """Sub-trajectory of samples with ``t_from <= t <= t_to``.

        Raises :class:`ValueError` when no sample falls in the window;
        callers that tolerate empty windows should catch it.
        """
        if t_to < t_from:
            raise ValueError("t_to must be >= t_from")
        selected = [p for p in self._points if t_from <= p.time <= t_to]
        if not selected:
            raise ValueError(f"no trajectory samples in [{t_from}, {t_to}]")
        return Trajectory(selected)

    def future_points(self, t: float, horizon: int) -> list[TrajectoryPoint]:
        """Up to ``horizon`` samples strictly after time ``t``."""
        start = bisect.bisect_right(self._times, t)
        return list(self._points[start : start + horizon])

    def resampled(self, step: float) -> "Trajectory":
        """Resample at a fixed time step via interpolation.

        The prediction pipeline trains on uniformly sampled sequences;
        raw generators may emit irregular timestamps.
        """
        if step <= 0:
            raise ValueError("step must be positive")
        if len(self._points) == 1:
            return Trajectory(self._points)
        ts = np.arange(self.start_time, self.end_time + 1e-9, step)
        pts = [TrajectoryPoint(self.position_at(float(t)), float(t)) for t in ts]
        return Trajectory(pts)

    def __repr__(self) -> str:
        if not self._points:
            return "Trajectory(empty)"
        return (
            f"Trajectory(n={len(self)}, t=[{self.start_time:.1f}, {self.end_time:.1f}], "
            f"len={self.length_km():.2f}km)"
        )

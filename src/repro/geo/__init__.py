"""Geometry substrate: points, grids, trajectories, detours, and POIs.

Everything in the TAMP pipeline measures space in one of two frames:

* a continuous planar frame (kilometres, used by workers, tasks and
  detour computations), and
* a discrete grid frame (the paper divides the city into ``100 x 50``
  cells and trains prediction models on grid indices).

:class:`~repro.geo.grid.Grid` converts between the two frames;
:mod:`repro.geo.trajectory` and :mod:`repro.geo.detour` implement the
movement model the platform and the workers share.
"""

from repro.geo.point import (
    Point,
    euclidean,
    haversine,
    pairwise_distances,
    path_length,
)
from repro.geo.grid import Grid
from repro.geo.trajectory import Trajectory, TrajectoryPoint
from repro.geo.detour import (
    detour_via_point,
    min_detour,
    min_distance_to_path,
    earliest_arrival_time,
)
from repro.geo.poi import POI, POICategory, nearest_poi

__all__ = [
    "Point",
    "euclidean",
    "haversine",
    "pairwise_distances",
    "path_length",
    "Grid",
    "Trajectory",
    "TrajectoryPoint",
    "detour_via_point",
    "min_detour",
    "min_distance_to_path",
    "earliest_arrival_time",
    "POI",
    "POICategory",
    "nearest_poi",
]

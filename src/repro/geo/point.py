"""Planar points and distance functions.

The simulator works in a planar frame measured in kilometres.  A thin
:class:`Point` value type keeps call sites readable while the hot paths
(`pairwise_distances`, `path_length`) accept raw numpy arrays.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

EARTH_RADIUS_KM = 6371.0088


@dataclass(frozen=True, slots=True)
class Point:
    """A location in the planar frame, in kilometres.

    ``Point`` is immutable and hashable so it can key dictionaries and
    live inside frozen task/worker records.
    """

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other`` in kilometres."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def as_array(self) -> np.ndarray:
        """Return the point as a ``(2,)`` float array."""
        return np.array([self.x, self.y], dtype=float)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a new point offset by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    @staticmethod
    def from_array(arr: Sequence[float]) -> "Point":
        """Build a point from any length-2 sequence."""
        if len(arr) != 2:
            raise ValueError(f"expected a length-2 sequence, got {len(arr)}")
        return Point(float(arr[0]), float(arr[1]))

    def __iter__(self):
        yield self.x
        yield self.y


def euclidean(a: Point | Sequence[float], b: Point | Sequence[float]) -> float:
    """Euclidean distance between two points (or length-2 sequences)."""
    ax, ay = a
    bx, by = b
    return math.hypot(ax - bx, ay - by)


def haversine(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance in kilometres between two lat/lon pairs.

    Used when importing raw latitude/longitude traces into the planar
    frame; the generators emit planar data directly, but the converter
    is part of the public data-ingestion surface.
    """
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlambda = math.radians(lon2 - lon1)
    h = math.sin(dphi / 2.0) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlambda / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))


def pairwise_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """All-pairs Euclidean distances between two ``(n, 2)``/``(m, 2)`` arrays.

    Returns an ``(n, m)`` matrix.  This is the hot path behind the
    spatial-similarity kernel and the assignment cost matrices.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.ndim != 2 or a.shape[1] != 2:
        raise ValueError(f"expected (n, 2) array, got {a.shape}")
    if b.ndim != 2 or b.shape[1] != 2:
        raise ValueError(f"expected (m, 2) array, got {b.shape}")
    diff = a[:, None, :] - b[None, :, :]
    return np.sqrt(np.einsum("nmk,nmk->nm", diff, diff))


def path_length(points: np.ndarray | Iterable[Point]) -> float:
    """Total polyline length of an ordered sequence of points."""
    arr = _as_xy_array(points)
    if len(arr) < 2:
        return 0.0
    segs = np.diff(arr, axis=0)
    return float(np.sqrt((segs**2).sum(axis=1)).sum())


def _as_xy_array(points: np.ndarray | Iterable[Point]) -> np.ndarray:
    """Coerce an iterable of points into an ``(n, 2)`` float array."""
    if isinstance(points, np.ndarray):
        arr = points.astype(float, copy=False)
    else:
        arr = np.array([[p.x, p.y] if isinstance(p, Point) else list(p) for p in points], dtype=float)
    if arr.size == 0:
        return arr.reshape(0, 2)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"expected (n, 2) points, got shape {arr.shape}")
    return arr

"""Discrete grid over the planar frame.

The paper divides the operating area into ``100 x 50`` cells and trains
the mobility models on grid indices (Section IV-A).  :class:`Grid`
converts between continuous kilometre coordinates and fractional or
integer cell coordinates, and provides the normalisation used to feed
neural models (cell coordinates scaled into ``[0, 1]``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo.point import Point


@dataclass(frozen=True, slots=True)
class Grid:
    """A rectangular grid of ``rows x cols`` cells over ``width x height`` km.

    Cell ``(i, j)`` covers ``[i * cell_w, (i+1) * cell_w) x
    [j * cell_h, (j+1) * cell_h)`` with ``i`` along x and ``j`` along y,
    mirroring the paper's ``(latitude_i, longitude_j)`` 2-tuples.
    """

    width_km: float = 20.0
    height_km: float = 10.0
    rows: int = 100
    cols: int = 50

    def __post_init__(self) -> None:
        if self.width_km <= 0 or self.height_km <= 0:
            raise ValueError("grid extent must be positive")
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("grid must have at least one cell per axis")

    @property
    def cell_width(self) -> float:
        return self.width_km / self.rows

    @property
    def cell_height(self) -> float:
        return self.height_km / self.cols

    @property
    def n_cells(self) -> int:
        return self.rows * self.cols

    def contains(self, point: Point) -> bool:
        """Whether ``point`` lies inside the grid extent."""
        return 0.0 <= point.x <= self.width_km and 0.0 <= point.y <= self.height_km

    def clamp(self, point: Point) -> Point:
        """Clamp a point into the grid extent."""
        return Point(
            min(max(point.x, 0.0), self.width_km),
            min(max(point.y, 0.0), self.height_km),
        )

    def to_cell(self, point: Point) -> tuple[int, int]:
        """Map a planar point to integer cell indices ``(i, j)``."""
        p = self.clamp(point)
        i = min(int(p.x / self.cell_width), self.rows - 1)
        j = min(int(p.y / self.cell_height), self.cols - 1)
        return i, j

    def to_fractional_cell(self, point: Point) -> tuple[float, float]:
        """Map a planar point to fractional cell coordinates.

        Fractional coordinates keep sub-cell resolution; the prediction
        models regress on these, and RMSE/MAE in the experiments are in
        cell units, matching the paper's magnitude (~0.9 cells on Porto).
        """
        p = self.clamp(point)
        return p.x / self.cell_width, p.y / self.cell_height

    def cell_center(self, i: int, j: int) -> Point:
        """Planar centre of cell ``(i, j)``."""
        self._check_cell(i, j)
        return Point((i + 0.5) * self.cell_width, (j + 0.5) * self.cell_height)

    def from_fractional_cell(self, ci: float, cj: float) -> Point:
        """Map fractional cell coordinates back to the planar frame."""
        return self.clamp(Point(ci * self.cell_width, cj * self.cell_height))

    def normalize(self, xy: np.ndarray) -> np.ndarray:
        """Scale planar ``(n, 2)`` coordinates into ``[0, 1]^2``.

        Models train in this normalised space; scale-sensitive losses
        stay well-conditioned regardless of the city extent.
        """
        arr = np.asarray(xy, dtype=float)
        return arr / np.array([self.width_km, self.height_km])

    def denormalize(self, unit_xy: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`normalize`."""
        arr = np.asarray(unit_xy, dtype=float)
        return arr * np.array([self.width_km, self.height_km])

    def to_cell_array(self, xy: np.ndarray) -> np.ndarray:
        """Vectorised fractional-cell mapping for an ``(n, 2)`` array."""
        arr = np.asarray(xy, dtype=float)
        clamped = np.clip(arr, [0.0, 0.0], [self.width_km, self.height_km])
        return clamped / np.array([self.cell_width, self.cell_height])

    def from_cell_array(self, cells: np.ndarray) -> np.ndarray:
        """Vectorised inverse of :meth:`to_cell_array`."""
        arr = np.asarray(cells, dtype=float)
        xy = arr * np.array([self.cell_width, self.cell_height])
        return np.clip(xy, [0.0, 0.0], [self.width_km, self.height_km])

    def _check_cell(self, i: int, j: int) -> None:
        if not (0 <= i < self.rows and 0 <= j < self.cols):
            raise IndexError(f"cell ({i}, {j}) outside {self.rows}x{self.cols} grid")

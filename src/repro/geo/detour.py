"""Detour and reachability computations.

The acceptance model (Definition 2) says a worker accepts a task iff
serving it adds at most ``w.d`` km of detour to their routine and the
task location is reached before its deadline.  The detour of serving a
task from segment ``(l_1, l_2)`` is the classic insertion cost

    ``dis(l_1, tau.l) + dis(tau.l, l_2) - dis(l_1, l_2)``

(Appendix A-B), minimised over the routine's segments.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.geo.point import Point
from repro.geo.trajectory import Trajectory


def detour_via_point(seg_a: Point, seg_b: Point, via: Point) -> float:
    """Insertion cost of visiting ``via`` between ``seg_a`` and ``seg_b``.

    Non-negative by the triangle inequality.
    """
    return seg_a.distance_to(via) + via.distance_to(seg_b) - seg_a.distance_to(seg_b)


def min_detour(route_xy: np.ndarray, target: Point) -> tuple[float, int]:
    """Minimum insertion detour of ``target`` over all route segments.

    Parameters
    ----------
    route_xy:
        ``(n, 2)`` array of route locations in visit order.
    target:
        Location to insert.

    Returns
    -------
    ``(detour_km, segment_index)`` where ``segment_index`` is the index
    of the segment start.  A single-point route degenerates to an
    out-and-back trip (``2 * dis``).
    """
    route = np.asarray(route_xy, dtype=float).reshape(-1, 2)
    if len(route) == 0:
        raise ValueError("route must contain at least one point")
    t = np.array([target.x, target.y])
    d_to = np.sqrt(((route - t) ** 2).sum(axis=1))
    if len(route) == 1:
        return float(2.0 * d_to[0]), 0
    seg = np.sqrt((np.diff(route, axis=0) ** 2).sum(axis=1))
    # detour for inserting between points k and k+1
    detours = d_to[:-1] + d_to[1:] - seg
    k = int(np.argmin(detours))
    return float(max(detours[k], 0.0)), k


def min_distance_to_path(route_xy: np.ndarray, target: Point) -> float:
    """Minimum point-to-sample distance from ``target`` to the route.

    This is the quantity Algorithm 4 uses (``min_{l in w.r} dis``); the
    paper works on sampled routine points rather than continuous
    segments.
    """
    route = np.asarray(route_xy, dtype=float).reshape(-1, 2)
    if len(route) == 0:
        raise ValueError("route must contain at least one point")
    t = np.array([target.x, target.y])
    return float(np.sqrt(((route - t) ** 2).sum(axis=1)).min())


def earliest_arrival_time(
    trajectory: Trajectory,
    target: Point,
    speed_km_per_min: float,
) -> float:
    """Earliest time the worker can stand at ``target``.

    The worker follows their routine and may branch off at any sampled
    point; branching at the sample at time ``t`` puts them at ``target``
    at ``t + dis / speed``.  Returns ``math.inf`` for a non-positive
    speed.
    """
    if speed_km_per_min <= 0:
        return math.inf
    xy = trajectory.xy
    t = np.array([target.x, target.y])
    dists = np.sqrt(((xy - t) ** 2).sum(axis=1))
    times = np.asarray(trajectory.times, dtype=float)
    return float((times + dists / speed_km_per_min).min())


def feasible_detour_points(
    route_xy: np.ndarray,
    route_times: Sequence[float],
    target: Point,
    max_detour: float,
    deadline: float,
    speed_km_per_min: float,
) -> list[int]:
    """Indices of route samples from which serving ``target`` is feasible.

    A sample ``k`` is feasible when the out-and-back detour from it is
    within ``max_detour`` (the paper bounds single-point service by
    ``2 * dis <= d``, i.e. ``dis <= d/2``) and the worker can reach the
    target before ``deadline`` when branching at that sample.
    """
    route = np.asarray(route_xy, dtype=float).reshape(-1, 2)
    times = np.asarray(route_times, dtype=float)
    if len(route) != len(times):
        raise ValueError("route and times must align")
    t = np.array([target.x, target.y])
    dists = np.sqrt(((route - t) ** 2).sum(axis=1))
    ok_detour = dists <= max_detour / 2.0
    if speed_km_per_min <= 0:
        ok_deadline = np.zeros(len(route), dtype=bool)
    else:
        ok_deadline = times + dists / speed_km_per_min <= deadline
    return [int(i) for i in np.nonzero(ok_detour & ok_deadline)[0]]

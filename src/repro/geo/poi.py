"""Points of interest.

GTMC's spatial-feature similarity (Eq. 1) represents each learning task
by the POI sequence ``V = {<x, y, a>}`` collected from the worker's
history, where ``a`` is a POI category.  The paper sources POIs from
OpenStreetMap; the offline generators synthesise a POI layer with the
same structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Sequence

import numpy as np

from repro.geo.point import Point


class POICategory(IntEnum):
    """Coarse OpenStreetMap-style POI categories."""

    RESIDENTIAL = 0
    OFFICE = 1
    RETAIL = 2
    FOOD = 3
    TRANSIT = 4
    LEISURE = 5
    EDUCATION = 6
    HEALTH = 7


@dataclass(frozen=True, slots=True)
class POI:
    """A point of interest: location plus category."""

    location: Point
    category: POICategory

    def as_feature(self) -> np.ndarray:
        """The ``<x, y, a>`` feature vector used by ``Sim_s``."""
        return np.array([self.location.x, self.location.y, float(self.category)], dtype=float)


def poi_feature_matrix(pois: Sequence[POI]) -> np.ndarray:
    """Stack POIs into an ``(n, 3)`` feature matrix."""
    if not pois:
        return np.zeros((0, 3), dtype=float)
    return np.stack([p.as_feature() for p in pois])


def nearest_poi(pois: Sequence[POI], location: Point) -> POI:
    """The POI closest to ``location``.

    Used to label trajectory samples with the POI a worker visited;
    raises :class:`ValueError` on an empty POI layer.
    """
    if not pois:
        raise ValueError("POI layer is empty")
    xy = np.array([[p.location.x, p.location.y] for p in pois])
    target = np.array([location.x, location.y])
    idx = int(np.argmin(((xy - target) ** 2).sum(axis=1)))
    return pois[idx]


def visited_pois(pois: Sequence[POI], route_xy: np.ndarray, radius_km: float) -> list[POI]:
    """POIs within ``radius_km`` of any route sample, in route order.

    This builds the per-worker POI sequence ``V^(i)`` that ``Sim_s``
    consumes.  A POI can appear multiple times if revisited, mirroring
    a sequence (not a set) in the paper.
    """
    if radius_km < 0:
        raise ValueError("radius must be non-negative")
    if not pois:
        return []
    poi_xy = np.array([[p.location.x, p.location.y] for p in pois])
    route = np.asarray(route_xy, dtype=float).reshape(-1, 2)
    out: list[POI] = []
    for sample in route:
        d2 = ((poi_xy - sample) ** 2).sum(axis=1)
        idx = int(np.argmin(d2))
        if d2[idx] <= radius_km**2:
            out.append(pois[idx])
    return out

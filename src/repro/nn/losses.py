"""Loss functions, including the task assignment-oriented loss (Eqs. 6-7).

The paper's key observation (Section III-C): prediction errors at
trajectory points near historically task-dense regions matter more for
assignment than errors in task deserts.  ``Eq. 6`` therefore re-weights
the squared error per point with ``f_w`` from ``Eq. 7``:

    f_w(l) = kappa * |{tau : dis(tau, l) < d_q}| / rho_t + delta

where ``rho_t`` is the expected task count per unit disc of radius
``d_q`` and ``kappa``/``delta`` bound the influence of history.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.nn.tensor import Tensor


def mse_loss(pred: Tensor, target: Tensor) -> Tensor:
    """Mean squared error over all elements."""
    diff = pred - Tensor.ensure(target)
    return (diff * diff).mean()


def mae_loss(pred: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error over all elements."""
    diff = pred - Tensor.ensure(target)
    return diff.abs().mean()


def weighted_mse_loss(pred: Tensor, target: Tensor, weights: np.ndarray) -> Tensor:
    """Per-point weighted MSE (the paper's Eq. 6).

    ``weights`` has one entry per trajectory point, i.e. shape
    broadcastable to ``pred.shape[:-1]``; the ``(x, y)`` components of a
    point share its weight.
    """
    target = Tensor.ensure(target)
    w = np.asarray(weights, dtype=float)
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    expanded = np.broadcast_to(w[..., None], pred.shape)
    diff = pred - target
    return (diff * diff * Tensor(expanded.copy())).mean()


class TaskDensityWeighter:
    """Computes ``f_w`` (Eq. 7) from a corpus of historical task locations.

    Parameters
    ----------
    historical_tasks_xy:
        ``(n, 2)`` planar locations of historical tasks.
    d_q:
        Query radius: tasks within ``d_q`` of a trajectory point count
        toward its weight.
    kappa:
        Influence factor in ``(0, 1)``.
    delta:
        Positive offset; the weight of a point with no nearby tasks.
    """

    def __init__(
        self,
        historical_tasks_xy: np.ndarray,
        d_q: float = 1.0,
        kappa: float = 0.5,
        delta: float = 0.5,
    ) -> None:
        tasks = np.asarray(historical_tasks_xy, dtype=float).reshape(-1, 2)
        if d_q <= 0:
            raise ValueError("d_q must be positive")
        if not 0.0 < kappa < 1.0:
            raise ValueError("kappa must lie in (0, 1)")
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.d_q = float(d_q)
        self.kappa = float(kappa)
        self.delta = float(delta)
        self._n_tasks = len(tasks)
        self._tree = cKDTree(tasks) if self._n_tasks else None
        # rho_t: mean number of tasks per unit disc of radius d_q, estimated
        # from the corpus extent so weights are scale-free.
        if self._n_tasks:
            extent = tasks.max(axis=0) - tasks.min(axis=0)
            area = float(max(extent[0], 1e-9) * max(extent[1], 1e-9))
            disc = np.pi * self.d_q**2
            self.rho_t = max(self._n_tasks * disc / area, 1.0)
        else:
            self.rho_t = 1.0

    def weights(self, points_xy: np.ndarray) -> np.ndarray:
        """``f_w`` for each point in an ``(..., 2)`` array.

        Returns an array of the leading shape of ``points_xy``.
        """
        pts = np.asarray(points_xy, dtype=float)
        lead_shape = pts.shape[:-1]
        flat = pts.reshape(-1, 2)
        if self._tree is None:
            counts = np.zeros(len(flat))
        else:
            counts = np.array(
                self._tree.query_ball_point(flat, r=self.d_q, return_length=True),
                dtype=float,
            )
        w = self.kappa * counts / self.rho_t + self.delta
        return w.reshape(lead_shape)

    def loss(self, pred: Tensor, target: Tensor) -> Tensor:
        """The full task assignment-oriented loss on normalised targets.

        Weights are computed at the *ground-truth* locations (the task
        distribution around where the worker actually goes), matching
        ``f_w(l_i)`` in Eq. 6, then rescaled to batch mean 1 so the
        loss magnitude (and hence the effective learning rate) is
        comparable with plain MSE — the comparison should isolate the
        *relative* re-weighting, not a global step-size change.
        """
        target = Tensor.ensure(target)
        w = self.weights(target.numpy())
        mean = float(w.mean())
        if mean > 0:
            w = w / mean
        return weighted_mse_loss(pred, target, w)


def make_loss(name: str, weighter: TaskDensityWeighter | None = None):
    """Factory mapping config names to loss callables.

    ``"mse"`` is the conventional baseline (the *-loss* variants in the
    experiments); ``"task_oriented"`` requires a fitted weighter.
    """
    if name == "mse":
        return mse_loss
    if name == "mae":
        return mae_loss
    if name == "task_oriented":
        if weighter is None:
            raise ValueError("task_oriented loss requires a TaskDensityWeighter")
        return weighter.loss
    raise ValueError(f"unknown loss '{name}'")

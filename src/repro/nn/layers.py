"""Basic layers: linear projection and small containers."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, ParamContext, Parameter
from repro.nn.tensor import Tensor


class Linear(Module):
    """Affine map ``y = x W + b`` for inputs of shape ``(..., in_features)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
        name: str = "linear",
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature sizes must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self._name = name
        self.weight = Parameter(init.xavier_uniform(rng, in_features, out_features), name=f"{name}.weight")
        self.has_bias = bias
        if bias:
            self.bias = Parameter(init.zeros((out_features,)), name=f"{name}.bias")

    def forward(self, x: Tensor, ctx: ParamContext | None = None) -> Tensor:
        weight = self._resolve(ctx, "weight", self.weight)
        out = x @ weight
        if self.has_bias:
            out = out + self._resolve(ctx, "bias", self.bias)
        return out

    def __repr__(self) -> str:
        return f"Linear(in={self.in_features}, out={self.out_features}, bias={self.has_bias})"


class MLP(Module):
    """A small feed-forward network with tanh activations.

    Used by tests and the micro-benchmarks as a minimal differentiable
    model; the production mobility model is the LSTM encoder-decoder.
    """

    def __init__(self, sizes: list[int], rng: np.random.Generator) -> None:
        super().__init__()
        if len(sizes) < 2:
            raise ValueError("MLP needs at least an input and an output size")
        self.sizes = list(sizes)
        self.n_layers = len(sizes) - 1
        for idx, (fan_in, fan_out) in enumerate(zip(sizes, sizes[1:])):
            setattr(self, f"layer{idx}", Linear(fan_in, fan_out, rng, name=f"layer{idx}"))

    def forward(self, x: Tensor, ctx: ParamContext | None = None) -> Tensor:
        h = x
        for idx in range(self.n_layers):
            layer: Linear = getattr(self, f"layer{idx}")
            sub = _sub_context(ctx, f"layer{idx}.")
            h = layer.forward(h, ctx=sub)
            if idx < self.n_layers - 1:
                h = h.tanh()
        return h


def _sub_context(ctx: ParamContext | None, prefix: str) -> ParamContext | None:
    """Narrow a parameter context to one sub-module's namespace."""
    if ctx is None or not ctx:
        return None
    return ctx.narrowed(prefix)

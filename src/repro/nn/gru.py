"""GRU cell and layer.

The encoder-decoder the paper cites ([27], Cho et al. 2014) is in fact
GRU-based; the paper instantiates it with LSTM units.  Both cells are
provided so the model-agnostic claim of Section III-B can be exercised:
the meta-learning stack runs unchanged on either recurrence.
"""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.layers import _sub_context
from repro.nn.module import Module, ParamContext, Parameter
from repro.nn.tensor import Tensor, stack


class GRUCell(Module):
    """A single GRU step: ``(x_t, h) -> h'``.

    Gate order in the fused matrices is ``[reset, update]``; the
    candidate state has its own parameters so the reset gate can be
    applied to the hidden state before the candidate projection.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator) -> None:
        super().__init__()
        if input_size <= 0 or hidden_size <= 0:
            raise ValueError("sizes must be positive")
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_ih = Parameter(init.xavier_uniform(rng, input_size, 2 * hidden_size), name="w_ih")
        self.w_hh = Parameter(init.xavier_uniform(rng, hidden_size, 2 * hidden_size), name="w_hh")
        self.bias = Parameter(init.zeros((2 * hidden_size,)), name="bias")
        self.w_ic = Parameter(init.xavier_uniform(rng, input_size, hidden_size), name="w_ic")
        self.w_hc = Parameter(init.xavier_uniform(rng, hidden_size, hidden_size), name="w_hc")
        self.bias_c = Parameter(init.zeros((hidden_size,)), name="bias_c")

    def forward(
        self,
        x: Tensor,
        h: Tensor,
        ctx: ParamContext | None = None,
    ) -> Tensor:
        w_ih = self._resolve(ctx, "w_ih", self.w_ih)
        w_hh = self._resolve(ctx, "w_hh", self.w_hh)
        bias = self._resolve(ctx, "bias", self.bias)
        w_ic = self._resolve(ctx, "w_ic", self.w_ic)
        w_hc = self._resolve(ctx, "w_hc", self.w_hc)
        bias_c = self._resolve(ctx, "bias_c", self.bias_c)

        gates = x @ w_ih + h @ w_hh + bias
        n = self.hidden_size
        reset = gates[..., 0:n].sigmoid()
        update = gates[..., n : 2 * n].sigmoid()
        candidate = (x @ w_ic + (reset * h) @ w_hc + bias_c).tanh()
        return update * h + (1.0 - update) * candidate

    def zero_state(self, batch: int) -> Tensor:
        return Tensor(np.zeros((batch, self.hidden_size)))


class GRU(Module):
    """Unidirectional single-layer GRU over ``(batch, time, features)``."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.cell = GRUCell(input_size, hidden_size, rng)

    def forward(
        self,
        x: Tensor,
        ctx: ParamContext | None = None,
        state: Tensor | None = None,
    ) -> tuple[Tensor, Tensor]:
        """Run the sequence; returns ``(outputs, h_T)``."""
        if x.ndim != 3:
            raise ValueError(f"expected (batch, time, features), got shape {x.shape}")
        batch, steps, _ = x.shape
        cell_ctx = _sub_context(ctx, "cell.")
        h = state if state is not None else self.cell.zero_state(batch)
        outputs: list[Tensor] = []
        for t in range(steps):
            h = self.cell.forward(x[:, t, :], h, ctx=cell_ctx)
            outputs.append(h)
        # One stack node at the end instead of a per-step reshape plus a
        # final concat: two fewer tape closures per timestep.
        return stack(outputs, axis=1), h

"""Neural-network substrate: numpy autograd, LSTM seq2seq, optimisers, losses.

Implemented from scratch because the reproduction environment has no
deep-learning framework; see ``DESIGN.md`` §3 for the substitution
rationale.  The engine is first-order (no double backprop), which is
all the first-order MAML stack requires.
"""

from repro.nn.tensor import Tensor, concat, stack, grad_of
from repro.nn.module import (
    Module,
    Parameter,
    ParamContext,
    clone_parameters,
    apply_gradient_step,
    flatten_parameters,
    flatten_gradients,
    average_state_dicts,
)
from repro.nn.layers import Linear, MLP
from repro.nn.lstm import LSTM, LSTMCell
from repro.nn.seq2seq import LSTMEncoderDecoder, GRUEncoderDecoder, make_mobility_model
from repro.nn.gru import GRU, GRUCell
from repro.nn.optim import SGD, Adam, Optimizer, clip_gradients
from repro.nn.losses import (
    mse_loss,
    mae_loss,
    weighted_mse_loss,
    TaskDensityWeighter,
    make_loss,
)
from repro.nn import fused

__all__ = [
    "Tensor",
    "concat",
    "stack",
    "grad_of",
    "Module",
    "Parameter",
    "ParamContext",
    "clone_parameters",
    "apply_gradient_step",
    "flatten_parameters",
    "flatten_gradients",
    "average_state_dicts",
    "Linear",
    "MLP",
    "LSTM",
    "LSTMCell",
    "LSTMEncoderDecoder",
    "GRUEncoderDecoder",
    "make_mobility_model",
    "GRU",
    "GRUCell",
    "SGD",
    "Adam",
    "Optimizer",
    "clip_gradients",
    "mse_loss",
    "mae_loss",
    "weighted_mse_loss",
    "TaskDensityWeighter",
    "make_loss",
    "fused",
]

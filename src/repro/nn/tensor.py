"""A small reverse-mode automatic differentiation engine over numpy.

The paper trains its mobility models with PyTorch; this repository runs
in an offline environment without it, so the gradient machinery the
meta-learning algorithms need is implemented here from scratch:

* :class:`Tensor` wraps an ``ndarray`` and records the operations that
  produced it;
* :meth:`Tensor.backward` walks the recorded graph in reverse
  topological order and accumulates gradients;
* all arithmetic supports numpy broadcasting, with gradients reduced
  back to the operand shapes (:func:`_unbroadcast`).

The engine is first-order: gradients are plain arrays, not tensors, so
double backprop is unsupported.  The meta-learning stack therefore uses
first-order MAML (see ``DESIGN.md`` §3/§5).
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

ArrayLike = "np.ndarray | float | int | list | tuple"


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` (the gradient of a broadcast result) to ``shape``."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the operand.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """An array with an autograd tape.

    Create leaf tensors with ``Tensor(data, requires_grad=True)``; all
    arithmetic on tensors produces non-leaf tensors whose ``backward``
    closures propagate gradients to their parents.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name")

    def __init__(
        self,
        data: "ArrayLike",
        requires_grad: bool = False,
        _prev: tuple["Tensor", ...] = (),
        name: str = "",
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._backward: Callable[[], None] | None = None
        self._prev = _prev
        self.name = name

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def ensure(value: "Tensor | ArrayLike") -> "Tensor":
        """Coerce a raw value into a constant tensor."""
        return value if isinstance(value, Tensor) else Tensor(value)

    # ------------------------------------------------------------------
    # pickling
    # ------------------------------------------------------------------
    def __getstate__(self) -> tuple:
        """Pickle a tensor as a detached leaf.

        The tape (``_backward`` closures and parent links) cannot cross
        a process boundary; values, gradients, and the leaf flag can.
        A round-tripped tensor therefore behaves like a freshly created
        leaf carrying the same data — which is all the multiprocessing
        backends ship (parameters in, parameters out).
        """
        return (self.data, self.grad, self.requires_grad, self.name)

    def __setstate__(self, state: tuple) -> None:
        self.data, self.grad, self.requires_grad, self.name = state
        self._backward = None
        self._prev = ()

    # ------------------------------------------------------------------
    # shape / dtype surface
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        """The underlying array (shared; callers must not mutate)."""
        return self.data

    def detach(self) -> "Tensor":
        """A new leaf tensor sharing this tensor's data, off the tape."""
        return Tensor(self.data, requires_grad=False)

    def clone(self, requires_grad: bool | None = None) -> "Tensor":
        """A copy of the data as a fresh leaf tensor."""
        rg = self.requires_grad if requires_grad is None else requires_grad
        return Tensor(self.data.copy(), requires_grad=rg)

    def __repr__(self) -> str:
        grad_flag = ", grad" if self.requires_grad else ""
        tag = f" '{self.name}'" if self.name else ""
        return f"Tensor{tag}(shape={self.shape}{grad_flag})"

    # ------------------------------------------------------------------
    # autograd core
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to ones (and must be supplied explicitly for
        non-scalar outputs to avoid silent mistakes).
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() on a non-scalar tensor requires an explicit gradient")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.data.shape:
            raise ValueError(f"gradient shape {grad.shape} does not match tensor shape {self.data.shape}")

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward()

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "Tensor | ArrayLike") -> "Tensor":
        other = Tensor.ensure(other)
        out = Tensor(self.data + other.data, _prev=(self, other))
        out.requires_grad = self.requires_grad or other.requires_grad

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(out.grad, other.data.shape))

        out._backward = _backward
        return out

    def __radd__(self, other: "ArrayLike") -> "Tensor":
        return Tensor.ensure(other) + self

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __sub__(self, other: "Tensor | ArrayLike") -> "Tensor":
        return self + (-Tensor.ensure(other))

    def __rsub__(self, other: "ArrayLike") -> "Tensor":
        return Tensor.ensure(other) + (-self)

    def __mul__(self, other: "Tensor | ArrayLike") -> "Tensor":
        other = Tensor.ensure(other)
        out = Tensor(self.data * other.data, _prev=(self, other))
        out.requires_grad = self.requires_grad or other.requires_grad

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad * other.data, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(out.grad * self.data, other.data.shape))

        out._backward = _backward
        return out

    def __rmul__(self, other: "ArrayLike") -> "Tensor":
        return self * other

    def __truediv__(self, other: "Tensor | ArrayLike") -> "Tensor":
        other = Tensor.ensure(other)
        out = Tensor(self.data / other.data, _prev=(self, other))
        out.requires_grad = self.requires_grad or other.requires_grad

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad / other.data, self.data.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-out.grad * self.data / (other.data**2), other.data.shape)
                )

        out._backward = _backward
        return out

    def __rtruediv__(self, other: "ArrayLike") -> "Tensor":
        return Tensor.ensure(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are unsupported; use exp/log")
        out = Tensor(self.data**exponent, _prev=(self,))
        out.requires_grad = self.requires_grad

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * exponent * self.data ** (exponent - 1))

        out._backward = _backward
        return out

    def __matmul__(self, other: "Tensor | ArrayLike") -> "Tensor":
        other = Tensor.ensure(other)
        out = Tensor(self.data @ other.data, _prev=(self, other))
        out.requires_grad = self.requires_grad or other.requires_grad

        def _backward() -> None:
            if self.requires_grad:
                grad = out.grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(_unbroadcast(grad, self.data.shape))
            if other.requires_grad:
                grad = np.swapaxes(self.data, -1, -2) @ out.grad
                other._accumulate(_unbroadcast(grad, other.data.shape))

        out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        out = Tensor(self.data.sum(axis=axis, keepdims=keepdims), _prev=(self,))
        out.requires_grad = self.requires_grad

        def _backward() -> None:
            if not self.requires_grad:
                return
            grad = out.grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else axis
                for ax in sorted(a % self.data.ndim for a in axes):
                    grad = np.expand_dims(grad, ax)
            self._accumulate(np.broadcast_to(grad, self.data.shape).copy())

        out._backward = _backward
        return out

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else axis
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # ------------------------------------------------------------------
    # elementwise nonlinearities
    # ------------------------------------------------------------------
    def tanh(self) -> "Tensor":
        value = np.tanh(self.data)
        out = Tensor(value, _prev=(self,))
        out.requires_grad = self.requires_grad

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * (1.0 - value**2))

        out._backward = _backward
        return out

    def sigmoid(self) -> "Tensor":
        value = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))
        out = Tensor(value, _prev=(self,))
        out.requires_grad = self.requires_grad

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * value * (1.0 - value))

        out._backward = _backward
        return out

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out = Tensor(self.data * mask, _prev=(self,))
        out.requires_grad = self.requires_grad

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * mask)

        out._backward = _backward
        return out

    def exp(self) -> "Tensor":
        value = np.exp(np.clip(self.data, -700.0, 700.0))
        out = Tensor(value, _prev=(self,))
        out.requires_grad = self.requires_grad

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * value)

        out._backward = _backward
        return out

    def log(self) -> "Tensor":
        out = Tensor(np.log(self.data), _prev=(self,))
        out.requires_grad = self.requires_grad

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad / self.data)

        out._backward = _backward
        return out

    def abs(self) -> "Tensor":
        out = Tensor(np.abs(self.data), _prev=(self,))
        out.requires_grad = self.requires_grad
        sign = np.sign(self.data)

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * sign)

        out._backward = _backward
        return out

    def sqrt(self) -> "Tensor":
        return self**0.5

    # ------------------------------------------------------------------
    # shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        out = Tensor(self.data.reshape(shape), _prev=(self,))
        out.requires_grad = self.requires_grad

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad.reshape(self.data.shape))

        out._backward = _backward
        return out

    def transpose(self, *axes: int) -> "Tensor":
        order = axes if axes else tuple(reversed(range(self.data.ndim)))
        out = Tensor(self.data.transpose(order), _prev=(self,))
        out.requires_grad = self.requires_grad
        inverse = np.argsort(order)

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad.transpose(inverse))

        out._backward = _backward
        return out

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, key) -> "Tensor":
        out = Tensor(self.data[key], _prev=(self,))
        out.requires_grad = self.requires_grad

        def _backward() -> None:
            if self.requires_grad:
                grad = np.zeros_like(self.data)
                np.add.at(grad, key, out.grad)
                self._accumulate(grad)

        out._backward = _backward
        return out


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = list(tensors)
    if not tensors:
        raise ValueError("cannot concatenate an empty list")
    out = Tensor(np.concatenate([t.data for t in tensors], axis=axis), _prev=tuple(tensors))
    out.requires_grad = any(t.requires_grad for t in tensors)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def _backward() -> None:
        for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                index: list = [slice(None)] * out.grad.ndim
                index[axis] = slice(int(lo), int(hi))
                t._accumulate(out.grad[tuple(index)])

    out._backward = _backward
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient support."""
    tensors = list(tensors)
    if not tensors:
        raise ValueError("cannot stack an empty list")
    out = Tensor(np.stack([t.data for t in tensors], axis=axis), _prev=tuple(tensors))
    out.requires_grad = any(t.requires_grad for t in tensors)

    def _backward() -> None:
        slices = np.split(out.grad, len(tensors), axis=axis)
        for t, g in zip(tensors, slices):
            if t.requires_grad:
                t._accumulate(g.reshape(t.data.shape))

    out._backward = _backward
    return out


def grad_of(loss: Tensor, params: Iterable[Tensor]) -> list[np.ndarray]:
    """Gradients of a scalar ``loss`` w.r.t. ``params``.

    Clears any stale gradients first so repeated calls do not
    accumulate; returns zero arrays for parameters the loss does not
    depend on.
    """
    params = list(params)
    for p in params:
        p.zero_grad()
    loss.backward()
    return [p.grad if p.grad is not None else np.zeros_like(p.data) for p in params]

"""LSTM cell and layer.

The paper's mobility model is an LSTM encoder-decoder (Section III-B,
Discussion).  The cell uses the standard fused formulation with gate
order ``[input, forget, cell-candidate, output]`` and the forget gate
biased open at initialisation.
"""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.layers import _sub_context
from repro.nn.module import Module, ParamContext, Parameter
from repro.nn.tensor import Tensor, stack


class LSTMCell(Module):
    """A single LSTM step: ``(x_t, h, c) -> (h', c')``."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator) -> None:
        super().__init__()
        if input_size <= 0 or hidden_size <= 0:
            raise ValueError("sizes must be positive")
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_ih = Parameter(init.xavier_uniform(rng, input_size, 4 * hidden_size), name="w_ih")
        self.w_hh = Parameter(init.xavier_uniform(rng, hidden_size, 4 * hidden_size), name="w_hh")
        self.bias = Parameter(init.lstm_bias(hidden_size), name="bias")

    def forward(
        self,
        x: Tensor,
        state: tuple[Tensor, Tensor],
        ctx: ParamContext | None = None,
    ) -> tuple[Tensor, Tensor]:
        h, c = state
        w_ih = self._resolve(ctx, "w_ih", self.w_ih)
        w_hh = self._resolve(ctx, "w_hh", self.w_hh)
        bias = self._resolve(ctx, "bias", self.bias)
        gates = x @ w_ih + h @ w_hh + bias
        n = self.hidden_size
        i_gate = gates[..., 0:n].sigmoid()
        f_gate = gates[..., n : 2 * n].sigmoid()
        g_cand = gates[..., 2 * n : 3 * n].tanh()
        o_gate = gates[..., 3 * n : 4 * n].sigmoid()
        c_new = f_gate * c + i_gate * g_cand
        h_new = o_gate * c_new.tanh()
        return h_new, c_new

    def zero_state(self, batch: int) -> tuple[Tensor, Tensor]:
        """All-zeros ``(h, c)`` for a batch."""
        return (
            Tensor(np.zeros((batch, self.hidden_size))),
            Tensor(np.zeros((batch, self.hidden_size))),
        )


class LSTM(Module):
    """Unidirectional single-layer LSTM over ``(batch, time, features)``."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.cell = LSTMCell(input_size, hidden_size, rng)

    def forward(
        self,
        x: Tensor,
        ctx: ParamContext | None = None,
        state: tuple[Tensor, Tensor] | None = None,
    ) -> tuple[Tensor, tuple[Tensor, Tensor]]:
        """Run the sequence; returns ``(outputs, (h_T, c_T))``.

        ``outputs`` stacks the hidden state at every step with shape
        ``(batch, time, hidden)``.
        """
        if x.ndim != 3:
            raise ValueError(f"expected (batch, time, features), got shape {x.shape}")
        batch, steps, _ = x.shape
        cell_ctx = _sub_context(ctx, "cell.")
        h, c = state if state is not None else self.cell.zero_state(batch)
        outputs: list[Tensor] = []
        for t in range(steps):
            h, c = self.cell.forward(x[:, t, :], (h, c), ctx=cell_ctx)
            outputs.append(h)
        # One stack node at the end instead of a per-step reshape plus a
        # final concat: two fewer tape closures per timestep.
        return stack(outputs, axis=1), (h, c)

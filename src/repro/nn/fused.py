"""Fused forward+backward (full BPTT) kernels for the recurrent stack.

The autograd tape in :mod:`repro.nn.tensor` is the *reference*
implementation: every gate of every timestep allocates tape closures,
so training throughput on the small mobility models is dominated by
Python/tape overhead rather than numpy FLOPs.  This module removes the
tape from the hot path with hand-derived kernels built around three
ideas:

* **One cached forward, one reverse sweep.**  The forward pass writes
  each step's gate activations into preallocated per-sequence stacks;
  the reverse sweep reads them back and overwrites them in place with
  the gate gradients — no per-op graph, no topological sort, and no
  per-step arrays are ever stacked or concatenated.
* **Factored backward.**  Everything in the backward recurrence that
  does not depend on the running carry ``dh``/``dc`` — the products of
  gate values with their activation jacobians — is precomputed once
  over the whole sequence with a handful of vectorized ufuncs, leaving
  fewer than ten numpy calls per reverse step.  Parameter gradients
  are then accumulated with one matmul per parameter, summing over
  batch and time at once.
* **Contiguity-aware memory layout.**  Scratch stacks are *time-major*
  (``(..., T, B, K)``), so the slice a step touches is one contiguous
  block rather than ``B`` scattered rows — on the stacked multi-worker
  path this roughly halves the cost of every in-place ufunc.  LSTM
  gate columns are additionally permuted from the module layout
  ``[i, f, g, o]`` to ``[i, f, o, g]`` (an involution on the weight
  columns) so the three sigmoid gates form one contiguous block and a
  single activation chain covers them all.

The seq2seq encoder-decoder unroll of :mod:`repro.nn.seq2seq` is fused
end to end, covering both decode modes (teacher forcing and
autoregressive feedback, where the gradient flows back through the
emitted points).

Losses stay generic: the loss (including the task assignment-oriented
weighted MSE of Eqs. 6-7) is evaluated through a *tiny* tape over the
prediction tensor only (:func:`loss_grad_wrt_pred`), which costs a
handful of nodes instead of thousands, so any ``LossFn`` the tape path
accepts works on the fast path with identical values; plain MSE/MAE
additionally get closed-form gradients.

Every kernel also runs **stacked**: give the arrays a leading worker
axis — inputs ``(W, B, T, F)``, parameters ``(W, F, 4H)`` — and numpy's
batched matmul adapts ``W`` workers' models in a single pass (the
batched meta-training fast path).  Padding rows are masked by zeroing
their entries of ``dL/dpred``; because every window's forward pass is
independent across the batch axis, zero upstream gradient makes a
padded row contribute exactly nothing to any parameter gradient.

Equivalence with the tape is exact up to floating-point associativity:
the forward pass replays the tape's operation order (including the
sigmoid input clamping), and the gradient checks in
``tests/test_nn_fused.py`` pin both paths together at ``rtol=1e-6``.
See ``DESIGN.md`` §8 for the derivation.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import numpy as np

from repro.nn.losses import mae_loss, mse_loss
from repro.nn.tensor import Tensor

Array = np.ndarray
LossFn = Callable[[Tensor, Tensor], Tensor]

# Above this element count, a strided sigmoid runs faster as one strided
# read + a contiguous in-place chain + one strided write-back; below it,
# the pure in-place chain wins on allocation cost.  Either branch emits
# bit-identical values.
_SIGMOID_ALLOC_THRESHOLD = 4096


def _sigmoid_(z: Array) -> Array:
    """In-place sigmoid on ``z``, bit-identical to ``Tensor.sigmoid``.

    The tape clips the input to ``[-60, 60]`` before ``exp``.  The lower
    clamp changes emitted values (``sigmoid(-70) != sigmoid(-60)`` in
    float64) and is kept; the upper clamp is dropped because for every
    ``z > 37`` — well below the 60 where it would bite — ``1 + exp(-z)``
    already rounds to exactly 1.0, so clamped and unclamped agree bit
    for bit.
    """
    if z.size >= _SIGMOID_ALLOC_THRESHOLD and not z.flags.c_contiguous:
        out = np.maximum(z, -60.0)
        np.negative(out, out=out)
        np.exp(out, out=out)
        out += 1.0
        np.reciprocal(out, out=out)
        z[...] = out
        return z
    np.maximum(z, -60.0, out=z)
    np.negative(z, out=z)
    np.exp(z, out=z)
    z += 1.0
    np.reciprocal(z, out=z)
    return z


def _mT(a: Array) -> Array:
    return a.swapaxes(-1, -2)


def _tmaj(a: Array) -> Array:
    # Batch-major (..., B, T, K) <-> time-major (..., T, B, K); a view.
    return a.swapaxes(-3, -2)


def _bc_w(w: Array) -> Array:
    # Align a worker-stacked weight for a time-stacked matmul:
    # (W, F, K) against inputs (W, T, B, F) needs a broadcast T axis.
    return w[..., None, :, :] if w.ndim > 2 else w


def _proj(x: Array, w: Array) -> Array:
    # Whole-sequence projection (..., T, B, F) @ (..., F, K) -> (..., T, B, K).
    # Worker-stacked weights flatten (T, B) first so each worker is one
    # gemm instead of T; 2-D weights already hit a single gemm.
    if w.ndim > 2:
        out = _flatten_tb(x) @ w
        return out.reshape(x.shape[:-1] + (w.shape[-1],))
    return x @ w


def _flatten_tb(a: Array) -> Array:
    # (..., T, B, K) -> (..., T*B, K) so one matmul sums over batch AND time.
    return a.reshape(a.shape[:-3] + (a.shape[-3] * a.shape[-2], a.shape[-1]))


def _perm_ifog(w: Array) -> Array:
    """Swap the last two LSTM gate blocks: ``[i,f,g,o]`` <-> ``[i,f,o,g]``.

    An involution on the last axis, applied to the weights on the way in
    and to the weight gradients on the way out.  Matmuls are column-exact
    under the permutation, so every emitted number matches the
    unpermuted computation bit for bit.
    """
    n = w.shape[-1] // 4
    return np.concatenate((w[..., : 2 * n], w[..., 3 * n :], w[..., 2 * n : 3 * n]), axis=-1)


def _as_array(value) -> Array:
    return value.data if isinstance(value, Tensor) else np.asarray(value, dtype=np.float64)


def as_param_arrays(params: Mapping[str, "Tensor | Array"]) -> dict[str, Array]:
    """Unwrap a parameter mapping (tensors or arrays) to plain arrays."""
    return {name: _as_array(value) for name, value in params.items()}


# ----------------------------------------------------------------------
# sequence kernels
# ----------------------------------------------------------------------
class _LSTMKernel:
    """One LSTM unroll: scratch stacks, forward steps, factored reverse.

    Derivation (module gate order ``[i, f, g, o]``, ``c' = f c + i g``,
    ``h' = o tanh(c')``): with ``T = tanh(c')``,

        do = dh' T            dc_tot = dc' + dh' o (1 - T^2)
        di = dc_tot g         df = dc_tot c        dg = dc_tot i
        dc_prev = dc_tot f    dh_prev = dgates W_hh^T

    and each pre-activation gets the matching sigmoid/tanh jacobian.
    Those jacobian products depend only on cached activations, so
    :meth:`prepare_backward` evaluates them for all steps at once and
    :meth:`back_step` is left with only the carry-dependent work.

    Scratch stacks are time-major (``(..., T, B, K)``); gate columns are
    held permuted as ``[i, f, o, g]`` (see :func:`_perm_ifog`) so one
    sigmoid chain covers all three sigmoid gates.
    """

    __slots__ = ("w_ih", "w_hh", "bias", "n", "h0", "c0", "state_in",
                 "x", "G", "C", "TC", "OUT", "_factors")

    def __init__(self, params, prefix: str, lead: tuple, steps: int, state=None):
        self.w_ih = _perm_ifog(_as_array(params[prefix + "w_ih"]))
        self.w_hh = _perm_ifog(_as_array(params[prefix + "w_hh"]))
        self.bias = _perm_ifog(_as_array(params[prefix + "bias"]))
        n = self.w_hh.shape[-2]
        self.n = n
        self.state_in = state is not None
        if state is not None:
            self.h0, self.c0 = state
        else:
            self.h0 = np.zeros(lead + (n,))
            self.c0 = np.zeros(lead + (n,))
        stack = lead[:-1] + (steps, lead[-1])
        self.x = None  # time-major inputs (..., T, B, F); set by the driver
        self.G = np.empty(stack + (4 * n,))  # gates, then dgates
        self.C = np.empty(stack + (n,))      # cell state
        self.TC = np.empty(stack + (n,))     # tanh(cell state)
        self.OUT = np.empty(stack + (n,))    # hidden state
        self._factors = None

    def input_proj(self, x: Array) -> Array:
        """Hoist the input projection out of the recurrence (one matmul)."""
        return _proj(x, self.w_ih)

    def step(self, t: int, xp_t: Array, h: Array, c: Array) -> tuple[Array, Array]:
        """One forward step; ``xp_t`` is ``x_t @ w_ih`` (bias not yet added)."""
        n = self.n
        g = self.G[..., t, :, :]
        np.add(xp_t, h @ self.w_hh, out=g)
        g += self.bias[..., None, :]
        _sigmoid_(g[..., : 3 * n])
        gg = g[..., 3 * n :]
        np.tanh(gg, out=gg)
        c_new = self.C[..., t, :, :]
        np.multiply(g[..., n : 2 * n], c, out=c_new)
        c_new += g[..., :n] * gg
        tc = self.TC[..., t, :, :]
        np.tanh(c_new, out=tc)
        h_new = self.OUT[..., t, :, :]
        np.multiply(g[..., 2 * n : 3 * n], tc, out=h_new)
        return h_new, c_new

    def prepare_backward(self) -> None:
        """Precompute the carry-independent jacobian factors, all steps.

        Each factor is built with allocating ufuncs over the whole
        stack: strided gate-block *reads* are cheap, and keeping the
        *outputs* contiguous beats packing the factors into one
        gate-shaped array (strided block writes cost more than the
        allocations save).
        """
        n = self.n
        G, TC, C = self.G, self.TC, self.C
        i = G[..., :n]
        f = G[..., n : 2 * n]
        o = G[..., 2 * n : 3 * n]
        g = G[..., 3 * n :]
        cp = np.empty_like(C)  # c_{t-1} aligned with step t
        cp[..., 0, :, :] = self.c0
        cp[..., 1:, :, :] = C[..., :-1, :, :]
        a = np.multiply(TC, TC)  # o (1 - T^2): dc_tot per unit dh
        np.subtract(1.0, a, out=a)
        a *= o
        eo = np.subtract(1.0, o)  # T o (1 - o): o-gate jacobian per unit dh
        eo *= o
        eo *= TC
        bi = np.subtract(1.0, i)  # g i (1 - i): i-gate jacobian per unit dc_tot
        bi *= i
        bi *= g
        cf = np.subtract(1.0, f)  # c_prev f (1 - f): f-gate jacobian per unit dc_tot
        cf *= f
        cf *= cp
        dg = np.multiply(g, g)  # i (1 - g^2): candidate jacobian per unit dc_tot
        np.subtract(1.0, dg, out=dg)
        dg *= i
        self._factors = (a, bi, cf, dg, eo)

    def back_step(self, t: int, dh: Array, dc: Array | None) -> tuple[Array, Array]:
        """Elementwise reverse of step ``t``; returns ``(dgates_t, dc_prev)``.

        Overwrites gate slice ``t`` with the pre-activation gradients.
        The caller owns the ``dgates @ w_hh^T`` matmul so sequence
        drivers can fold their own upstream terms into the carry.
        ``dc`` is ``None`` when the last step has no cell-state gradient.
        """
        n = self.n
        a, bi, cf, dg, eo = self._factors
        g = self.G[..., t, :, :]
        dct = dh * a[..., t, :, :]
        if dc is not None:
            dct += dc
        dc_prev = dct * g[..., n : 2 * n]  # read f before overwriting it
        np.multiply(dh, eo[..., t, :, :], out=g[..., 2 * n : 3 * n])
        np.multiply(dct, bi[..., t, :, :], out=g[..., :n])
        np.multiply(dct, cf[..., t, :, :], out=g[..., n : 2 * n])
        np.multiply(dct, dg[..., t, :, :], out=g[..., 3 * n :])
        return g, dc_prev

    def grads(self, out: dict[str, Array], prefix: str) -> dict[str, Array]:
        """Parameter gradients from the completed sweep, into ``out``."""
        DG = self.G  # overwritten in place by back_step
        dg_flat = _flatten_tb(DG)
        w_ih_g = _mT(_flatten_tb(self.x)) @ dg_flat
        # h_prev for step t is OUT[t-1]; the t=0 term uses h0, which is
        # identically zero unless an initial state was fed in.
        w_hh_g = _mT(_flatten_tb(self.OUT[..., :-1, :, :])) @ _flatten_tb(DG[..., 1:, :, :])
        if self.state_in:
            w_hh_g += _mT(self.h0) @ DG[..., 0, :, :]
        out[prefix + "w_ih"] = _perm_ifog(w_ih_g)
        out[prefix + "w_hh"] = _perm_ifog(w_hh_g)
        out[prefix + "bias"] = _perm_ifog(DG.sum(axis=(-3, -2)))
        return out

    def dx(self) -> Array:
        """Time-major input gradients for the whole sequence (one matmul)."""
        return _proj(self.G, _mT(self.w_ih))


class _GRUKernel:
    """One GRU unroll (gate order ``[r, z]``: both sigmoids, already one
    contiguous block, so no column permutation is needed).

    ``h' = z h + (1 - z) n`` with ``n = tanh(x W_ic + (r h) W_hc + b_c)``:

        dz = dh' (h - n)      dn = dh' (1 - z)     dh += dh' z
        dn_pre = dn (1 - n^2) d(rh) = dn_pre W_hc^T
        dr = d(rh) h          dh += d(rh) r

    As in :class:`_LSTMKernel`, the activation-jacobian factors are
    precomputed over the whole sequence; the candidate stack is
    overwritten in place by ``dn_pre`` during the sweep.
    """

    __slots__ = ("w_ih", "w_hh", "bias", "w_ic", "w_hc", "bias_c", "n",
                 "h0", "state_in", "x", "G", "RH", "CAND", "OUT", "_factors")

    def __init__(self, params, prefix: str, lead: tuple, steps: int, state=None):
        self.w_ih = _as_array(params[prefix + "w_ih"])
        self.w_hh = _as_array(params[prefix + "w_hh"])
        self.bias = _as_array(params[prefix + "bias"])
        self.w_ic = _as_array(params[prefix + "w_ic"])
        self.w_hc = _as_array(params[prefix + "w_hc"])
        self.bias_c = _as_array(params[prefix + "bias_c"])
        n = self.w_hh.shape[-2]
        self.n = n
        self.state_in = state is not None
        self.h0 = state if state is not None else np.zeros(lead + (n,))
        stack = lead[:-1] + (steps, lead[-1])
        self.x = None  # time-major inputs (..., T, B, F); set by the driver
        self.G = np.empty(stack + (2 * n,))  # [r, z] gates, then dgates
        self.RH = np.empty(stack + (n,))     # r * h_prev
        self.CAND = np.empty(stack + (n,))   # candidate, then dn_pre
        self.OUT = np.empty(stack + (n,))    # hidden state
        self._factors = None

    def input_proj(self, x: Array) -> tuple[Array, Array]:
        return _proj(x, self.w_ih), _proj(x, self.w_ic)

    def step(self, t: int, xp_t: Array, cp_t: Array, h: Array) -> Array:
        """One forward step; ``xp_t``/``cp_t`` are the two input
        projections ``x_t @ w_ih`` and ``x_t @ w_ic`` (biases pending)."""
        n = self.n
        g = self.G[..., t, :, :]
        np.add(xp_t, h @ self.w_hh, out=g)
        g += self.bias[..., None, :]
        _sigmoid_(g)
        r = g[..., :n]
        z = g[..., n:]
        rh = self.RH[..., t, :, :]
        np.multiply(r, h, out=rh)
        pre = self.CAND[..., t, :, :]
        np.add(cp_t, rh @ self.w_hc, out=pre)
        pre += self.bias_c[..., None, :]
        np.tanh(pre, out=pre)  # pre is now the candidate
        h_new = self.OUT[..., t, :, :]
        np.multiply(z, h, out=h_new)
        h_new += (1.0 - z) * pre
        return h_new

    def prepare_backward(self) -> None:
        n = self.n
        G, CAND = self.G, self.CAND
        r = G[..., :n]
        z = G[..., n:]
        hp = np.empty_like(self.OUT)  # h_{t-1} aligned with step t
        hp[..., 0, :, :] = self.h0
        hp[..., 1:, :, :] = self.OUT[..., :-1, :, :]
        omz = np.subtract(1.0, z)
        f_pre = np.multiply(CAND, CAND)  # (1 - z)(1 - n^2): dn_pre per unit dh
        np.subtract(1.0, f_pre, out=f_pre)
        f_pre *= omz
        f_z = np.subtract(hp, CAND)  # (h_prev - n) z (1 - z): z-gate jacobian
        f_z *= z
        f_z *= omz
        f_r = np.subtract(1.0, r)  # h_prev r (1 - r): r-gate jacobian per unit d(rh)
        f_r *= r
        f_r *= hp
        self._factors = (f_pre, f_z, f_r, hp)

    def back_step(self, t: int, dh: Array) -> tuple[Array, Array, Array]:
        """Reverse of step ``t``; returns ``(dgates_t, dn_pre_t, dh_partial)``.

        The caller finishes the carry with
        ``dh_prev = dh_partial + dgates @ w_hh^T``.
        """
        n = self.n
        f_pre, f_z, f_r, _ = self._factors
        g = self.G[..., t, :, :]
        r = g[..., :n]
        z = g[..., n:]
        dpre = self.CAND[..., t, :, :]
        np.multiply(dh, f_pre[..., t, :, :], out=dpre)
        drh = dpre @ _mT(self.w_hc)
        dh_partial = dh * z    # read z before overwriting it
        dh_partial += drh * r  # read r before overwriting it
        np.multiply(drh, f_r[..., t, :, :], out=r)
        np.multiply(dh, f_z[..., t, :, :], out=z)
        return g, dpre, dh_partial

    def grads(self, out: dict[str, Array], prefix: str) -> dict[str, Array]:
        DG, DP = self.G, self.CAND
        hp = self._factors[3]
        dg_flat = _flatten_tb(DG)
        dp_flat = _flatten_tb(DP)
        x_flat_t = _mT(_flatten_tb(self.x))
        out[prefix + "w_ih"] = x_flat_t @ dg_flat
        out[prefix + "w_hh"] = _mT(_flatten_tb(hp)) @ dg_flat
        out[prefix + "bias"] = DG.sum(axis=(-3, -2))
        out[prefix + "w_ic"] = x_flat_t @ dp_flat
        out[prefix + "w_hc"] = _mT(_flatten_tb(self.RH)) @ dp_flat
        out[prefix + "bias_c"] = DP.sum(axis=(-3, -2))
        return out

    def dx(self) -> Array:
        return _proj(self.CAND, _mT(self.w_ic)) + _proj(self.G, _mT(self.w_ih))


# ----------------------------------------------------------------------
# full-sequence layer kernels (the LSTM / GRU modules)
# ----------------------------------------------------------------------
def lstm_forward(
    x: Array,
    params: Mapping[str, Array],
    prefix: str = "cell.",
    state: tuple[Array, Array] | None = None,
) -> tuple[Array, tuple[Array, Array], _LSTMKernel]:
    """Fused :class:`repro.nn.lstm.LSTM` forward over ``(..., B, T, F)``.

    Returns ``(outputs, (h_T, c_T), cache)`` with ``outputs`` shaped
    ``(..., B, T, H)``; pass ``cache`` to :func:`lstm_backward`.
    """
    x = np.asarray(x, dtype=np.float64)
    steps = x.shape[-2]
    kern = _LSTMKernel(params, prefix, x.shape[:-2], steps, state=state)
    xt = _tmaj(x)
    kern.x = xt
    xp = kern.input_proj(xt)
    h, c = kern.h0, kern.c0
    for t in range(steps):
        h, c = kern.step(t, xp[..., t, :, :], h, c)
    return _tmaj(kern.OUT), (h, c), kern


def lstm_backward(
    cache: _LSTMKernel,
    params: Mapping[str, Array],
    d_outputs: Array | None = None,
    d_state: tuple[Array, Array] | None = None,
    prefix: str = "cell.",
) -> tuple[Array, tuple[Array, Array], dict[str, Array]]:
    """Reverse sweep matching :func:`lstm_forward`.

    ``d_outputs`` is the upstream gradient of the stacked outputs
    (``None`` for none) and ``d_state`` the gradient of the final
    ``(h_T, c_T)``.  Returns ``(dx, (dh_0, dc_0), grads)``.
    """
    kern = cache
    if d_state is not None:
        dh = np.asarray(d_state[0], dtype=np.float64)
        dc: Array | None = np.asarray(d_state[1], dtype=np.float64)
    else:
        dh = np.zeros(kern.h0.shape)
        dc = None
    if d_outputs is not None:
        d_outputs = _tmaj(np.asarray(d_outputs, dtype=np.float64))
    kern.prepare_backward()
    for t in range(kern.OUT.shape[-3] - 1, -1, -1):
        if d_outputs is not None:
            dh = dh + d_outputs[..., t, :, :]
        dgates, dc = kern.back_step(t, dh, dc)
        dh = dgates @ _mT(kern.w_hh)
    grads = kern.grads({}, prefix)
    return _tmaj(kern.dx()), (dh, dc), grads


def gru_forward(
    x: Array,
    params: Mapping[str, Array],
    prefix: str = "cell.",
    state: Array | None = None,
) -> tuple[Array, Array, _GRUKernel]:
    """Fused :class:`repro.nn.gru.GRU` forward; returns ``(outputs, h_T, cache)``."""
    x = np.asarray(x, dtype=np.float64)
    steps = x.shape[-2]
    kern = _GRUKernel(params, prefix, x.shape[:-2], steps, state=state)
    xt = _tmaj(x)
    kern.x = xt
    xp, cp = kern.input_proj(xt)
    h = kern.h0
    for t in range(steps):
        h = kern.step(t, xp[..., t, :, :], cp[..., t, :, :], h)
    return _tmaj(kern.OUT), h, kern


def gru_backward(
    cache: _GRUKernel,
    params: Mapping[str, Array],
    d_outputs: Array | None = None,
    d_state: Array | None = None,
    prefix: str = "cell.",
) -> tuple[Array, Array, dict[str, Array]]:
    """Reverse sweep matching :func:`gru_forward`; returns ``(dx, dh_0, grads)``."""
    kern = cache
    dh = np.asarray(d_state, dtype=np.float64) if d_state is not None else np.zeros(kern.h0.shape)
    if d_outputs is not None:
        d_outputs = _tmaj(np.asarray(d_outputs, dtype=np.float64))
    kern.prepare_backward()
    for t in range(kern.OUT.shape[-3] - 1, -1, -1):
        if d_outputs is not None:
            dh = dh + d_outputs[..., t, :, :]
        dgates, _, dh_partial = kern.back_step(t, dh)
        dh = dh_partial + dgates @ _mT(kern.w_hh)
    grads = kern.grads({}, prefix)
    return _tmaj(kern.dx()), dh, grads


# ----------------------------------------------------------------------
# seq2seq encoder-decoder kernels
# ----------------------------------------------------------------------
def _model_kind(model) -> str | None:
    from repro.nn.seq2seq import GRUEncoderDecoder, LSTMEncoderDecoder

    if isinstance(model, LSTMEncoderDecoder):
        return "lstm"
    if isinstance(model, GRUEncoderDecoder):
        return "gru"
    return None


def supports(model) -> bool:
    """Whether the fused seq2seq kernels cover this model type."""
    return _model_kind(model) is not None


class Seq2SeqCache:
    """Forward-pass state the seq2seq reverse sweep consumes."""

    __slots__ = ("kind", "enc", "dec", "teacher_forcing", "seq_out", "w_head", "has_bias")

    def __init__(self, kind, enc, dec, teacher_forcing, seq_out, w_head, has_bias):
        self.kind = kind
        self.enc = enc
        self.dec = dec
        self.teacher_forcing = teacher_forcing
        self.seq_out = seq_out
        self.w_head = w_head
        self.has_bias = has_bias


def seq2seq_forward(
    model,
    params: Mapping[str, "Tensor | Array"],
    x: Array,
    targets: Array | None = None,
) -> tuple[Array, Seq2SeqCache]:
    """Fused encoder-decoder forward; replays ``seq2seq.forward`` exactly.

    ``x`` is ``(..., B, seq_in, F)``; parameters may carry matching
    leading stack dimensions.  ``targets`` enables teacher forcing.
    Returns ``(pred, cache)`` with ``pred`` shaped ``(..., B, seq_out, F)``.
    """
    kind = _model_kind(model)
    if kind is None:
        raise TypeError(f"fused kernels do not support {type(model).__name__}")
    p = as_param_arrays(params)
    x = np.asarray(x, dtype=np.float64)
    if targets is not None:
        targets = np.asarray(targets, dtype=np.float64)
    lead = x.shape[:-2]
    seq_in = x.shape[-2]
    seq_out = model.seq_out
    xt = _tmaj(x)

    # Encoder: inputs are all known up front, so both the unroll driver
    # and the kernel can hoist the input projections.
    if kind == "lstm":
        enc = _LSTMKernel(p, "encoder.", lead, seq_in)
        enc.x = xt
        xp = enc.input_proj(xt)
        h, c = enc.h0, enc.c0
        for t in range(seq_in):
            h, c = enc.step(t, xp[..., t, :, :], h, c)
        dec = _LSTMKernel(p, "decoder.", lead, seq_out, state=(h, c))
    else:
        enc = _GRUKernel(p, "encoder.", lead, seq_in)
        enc.x = xt
        xp, cp = enc.input_proj(xt)
        h = enc.h0
        for t in range(seq_in):
            h = enc.step(t, xp[..., t, :, :], cp[..., t, :, :], h)
        dec = _GRUKernel(p, "decoder.", lead, seq_out, state=h)

    # Decoder: autoregressive (or teacher-forced) residual unroll.
    w_head = p["head.weight"]
    b_head = p.get("head.bias")
    feat = x.shape[-1]
    u_steps = np.empty(lead[:-1] + (seq_out, lead[-1], feat))
    dec.x = u_steps
    pred = np.empty(lead + (seq_out, feat))
    u = x[..., seq_in - 1, :]
    for t in range(seq_out):
        u_steps[..., t, :, :] = u
        if kind == "lstm":
            h, c = dec.step(t, u @ dec.w_ih, h, c)
        else:
            h = dec.step(t, u @ dec.w_ih, u @ dec.w_ic, h)
        delta = h @ w_head
        if b_head is not None:
            delta += b_head[..., None, :]
        point = pred[..., t, :]
        np.add(u, delta, out=point)
        if targets is not None and t < seq_out - 1:
            u = targets[..., t, :]
        else:
            u = point
    return pred, Seq2SeqCache(
        kind, enc, dec, targets is not None, seq_out, w_head, b_head is not None
    )


def seq2seq_backward(
    model,
    params: Mapping[str, "Tensor | Array"],
    cache: Seq2SeqCache,
    dpred: Array,
) -> dict[str, Array]:
    """Reverse sweep through decoder, residual head, and encoder.

    ``dpred`` is ``dL/dpred``; in autoregressive mode the gradient of a
    point also flows into the next decoder input (and its residual), so
    the carry ``du`` is folded into the next-earlier step's ``dpred``
    during the sweep.  Returns parameter gradients keyed like
    ``model.named_parameters()``.
    """
    kind = cache.kind
    enc, dec = cache.enc, cache.dec
    w_head_t = _mT(cache.w_head)
    autoregressive = not cache.teacher_forcing
    seq_out = cache.seq_out

    dec.prepare_backward()
    dph = np.empty_like(dpred)  # dL/dpoint with the carry folded in
    dh: Array | None = None
    dc: Array | None = None
    du: Array | None = None
    for t in range(seq_out - 1, -1, -1):
        dp = dph[..., t, :]
        if du is None:
            dp[...] = dpred[..., t, :]
        else:
            np.add(dpred[..., t, :], du, out=dp)
        dh = dp @ w_head_t if dh is None else dh + dp @ w_head_t
        if kind == "lstm":
            dgates, dc = dec.back_step(t, dh, dc)
            dh = dgates @ _mT(dec.w_hh)
            if autoregressive and t > 0:
                # Residual head: the point is (input + delta), so the
                # carry into the previous step's point is dp plus the
                # cell-input term.
                du = dp + dgates @ _mT(dec.w_ih)
        else:
            dgates, dpre, dh_partial = dec.back_step(t, dh)
            dh = dh_partial + dgates @ _mT(dec.w_hh)
            if autoregressive and t > 0:
                du = dp + dpre @ _mT(dec.w_ic) + dgates @ _mT(dec.w_ih)

    grads: dict[str, Array] = {}
    dph_flat = _flatten_tb(_tmaj(dph))
    grads["head.weight"] = _mT(_flatten_tb(dec.OUT)) @ dph_flat
    if cache.has_bias:
        grads["head.bias"] = dph.sum(axis=(-3, -2))
    dec.grads(grads, "decoder.")

    # The decoder's initial state is the encoder's final state; encoder
    # inputs are data, so only the state carry flows back — no dx.
    enc.prepare_backward()
    for t in range(enc.OUT.shape[-3] - 1, -1, -1):
        if kind == "lstm":
            dgates, dc = enc.back_step(t, dh, dc)
            dh = dgates @ _mT(enc.w_hh)
        else:
            dgates, _, dh_partial = enc.back_step(t, dh)
            dh = dh_partial + dgates @ _mT(enc.w_hh)
    enc.grads(grads, "encoder.")
    return grads


def seq2seq_predict(
    model,
    params: Mapping[str, "Tensor | Array"],
    x: Array,
    targets: Array | None = None,
) -> Array:
    """Forward-only fused pass (inference; no tape, caches discarded)."""
    pred, _ = seq2seq_forward(model, params, x, targets=targets)
    return pred


# ----------------------------------------------------------------------
# loss coupling and training-step entry points
# ----------------------------------------------------------------------
def loss_grad_wrt_pred(loss_fn: LossFn, pred: Array, target: Array) -> tuple[float, Array]:
    """Evaluate any tape loss and its gradient w.r.t. the prediction.

    Runs the loss through a miniature tape whose only leaf is the
    prediction — a handful of nodes regardless of model size — so the
    fast path supports every loss the reference path does (plain MSE,
    MAE, and the task-oriented weighted MSE of Eqs. 6-7) with
    bit-identical loss values.

    Plain MSE/MAE are special-cased with their closed-form gradients
    (bit-identical to the tape: ``mean`` is ``sum * (1/N)``, and scaling
    by the power-of-two 2 commutes with rounding), skipping even the
    mini-tape on the most common inner-loop losses.
    """
    if loss_fn is mse_loss:
        diff = np.asarray(pred, dtype=np.float64) - target
        inv = 1.0 / diff.size
        return float((diff * diff).sum() * inv), diff * (2.0 * inv)
    if loss_fn is mae_loss:
        diff = np.asarray(pred, dtype=np.float64) - target
        inv = 1.0 / diff.size
        return float(np.abs(diff).sum() * inv), np.sign(diff) * inv
    pred_t = Tensor(pred, requires_grad=True)
    loss = loss_fn(pred_t, Tensor(np.asarray(target, dtype=np.float64)))
    if loss.size != 1:
        raise ValueError("fused training requires a scalar loss")
    loss.backward()
    grad = pred_t.grad if pred_t.grad is not None else np.zeros_like(pred_t.data)
    return float(loss.data), grad


def loss_and_grads(
    model,
    params: Mapping[str, "Tensor | Array"],
    x: Array,
    y: Array,
    loss_fn: LossFn,
    teacher_forcing: bool = False,
) -> tuple[float, dict[str, Array]]:
    """One fused training step: loss value plus named parameter gradients.

    Drop-in replacement for ``functional_call`` + ``grad_of`` on a
    supported seq2seq model: same loss, same gradients (to float
    round-off), no tape.
    """
    arrs = as_param_arrays(params)
    y_arr = np.asarray(y, dtype=np.float64)
    pred, cache = seq2seq_forward(model, arrs, x, targets=y_arr if teacher_forcing else None)
    loss_val, dpred = loss_grad_wrt_pred(loss_fn, pred, y_arr)
    grads = seq2seq_backward(model, arrs, cache, dpred)
    return loss_val, grads


# ----------------------------------------------------------------------
# stacked multi-worker helpers (the batched meta-training fast path)
# ----------------------------------------------------------------------
def replicate_params(params: Mapping[str, "Tensor | Array"], count: int) -> dict[str, Array]:
    """Stack ``count`` copies of a parameter dict along a new worker axis."""
    if count < 1:
        raise ValueError("need at least one worker")
    return {name: np.repeat(_as_array(p)[None, ...], count, axis=0) for name, p in params.items()}


def stack_param_dicts(dicts: Sequence[Mapping[str, "Tensor | Array"]]) -> dict[str, Array]:
    """Stack per-worker parameter dicts along a new leading worker axis."""
    if not dicts:
        raise ValueError("need at least one parameter dict")
    keys = list(dicts[0])
    return {name: np.stack([_as_array(d[name]) for d in dicts]) for name in keys}


def unstack_param_dict(stacked: Mapping[str, Array], index: int) -> dict[str, Array]:
    """Copy one worker's slice out of a stacked parameter dict."""
    return {name: np.array(arr[index], copy=True) for name, arr in stacked.items()}


def pad_and_stack(arrays: Sequence[Array]) -> tuple[Array, list[int]]:
    """Zero-pad ragged per-worker window sets into one stacked array.

    ``arrays[w]`` is ``(n_w, ...)``; returns ``((W, max_n, ...), [n_w])``.
    Padded rows are masked out downstream by zeroing their ``dL/dpred``.
    """
    arrays = [np.asarray(a, dtype=np.float64) for a in arrays]
    if not arrays:
        raise ValueError("need at least one array")
    trailing = arrays[0].shape[1:]
    for a in arrays[1:]:
        if a.shape[1:] != trailing:
            raise ValueError(f"window shapes do not align: {a.shape[1:]} vs {trailing}")
    lengths = [len(a) for a in arrays]
    if len(set(lengths)) == 1:  # no padding needed: one C-level stack
        return np.stack(arrays), lengths
    out = np.zeros((len(arrays), max(lengths)) + trailing)
    for i, a in enumerate(arrays):
        out[i, : len(a)] = a
    return out, lengths


def batched_loss_and_grads(
    model,
    stacked_params: Mapping[str, Array],
    xs: Sequence[Array],
    ys: Sequence[Array],
    loss_fn: LossFn,
    teacher_forcing: bool = False,
) -> tuple[list[float], dict[str, Array]]:
    """Per-worker losses and gradients from one stacked BPTT pass.

    ``xs[w]``/``ys[w]`` are worker ``w``'s (possibly ragged) windows and
    ``stacked_params`` that worker's parameter slice along axis 0.  The
    per-worker loss is evaluated on the *unpadded* rows only, so the
    values — and therefore the gradients — match ``W`` independent
    single-worker passes exactly.
    """
    X, lengths = pad_and_stack(xs)
    Y, _ = pad_and_stack(ys)
    pred, cache = seq2seq_forward(model, stacked_params, X, targets=Y if teacher_forcing else None)
    if loss_fn is mse_loss and len(set(lengths)) == 1 and lengths[0] > 0:
        # Equal window counts: one vectorized loss over all workers.  Each
        # worker's rows are one contiguous block, so the per-worker
        # reduction is bit-identical to the scalar path's ``sum()``.
        diff = pred - Y
        inv = 1.0 / pred[0].size
        sq = diff * diff
        losses = [float(v) for v in sq.reshape(len(lengths), -1).sum(axis=1) * inv]
        dpred = diff * (2.0 * inv)
    else:
        dpred = np.zeros_like(pred)
        losses = []
        for w, (n, y) in enumerate(zip(lengths, ys)):
            if n == 0:
                losses.append(0.0)
                continue
            loss_val, grad = loss_grad_wrt_pred(loss_fn, pred[w, :n], y)
            losses.append(loss_val)
            dpred[w, :n] = grad
    grads = seq2seq_backward(model, stacked_params, cache, dpred)
    return losses, grads

"""The LSTM encoder-decoder mobility model.

Given the last ``seq_in`` trajectory points (normalised grid
coordinates) the model autoregressively emits the next ``seq_out``
points.  This is the concrete instantiation of Definition 3: the
meta-learning stack is model-agnostic and treats this network as an
opaque differentiable function.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Linear, _sub_context
from repro.nn.lstm import LSTMCell
from repro.nn.module import Module, ParamContext
from repro.nn.tensor import Tensor, concat


class LSTMEncoderDecoder(Module):
    """Seq2seq trajectory regressor.

    Parameters
    ----------
    input_size:
        Per-step feature size (2 for ``(x, y)`` coordinates).
    hidden_size:
        LSTM state width.
    seq_out:
        Number of future points to emit.
    rng:
        Source of initialisation randomness.
    """

    def __init__(
        self,
        input_size: int = 2,
        hidden_size: int = 32,
        seq_out: int = 1,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if seq_out <= 0:
            raise ValueError("seq_out must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.seq_out = seq_out
        self.encoder = LSTMCell(input_size, hidden_size, rng)
        self.decoder = LSTMCell(input_size, hidden_size, rng)
        self.head = Linear(hidden_size, input_size, rng, name="head")

    def forward(
        self,
        x: Tensor,
        ctx: ParamContext | None = None,
        targets: Tensor | None = None,
    ) -> Tensor:
        """Predict ``(batch, seq_out, input_size)`` from ``(batch, seq_in, input_size)``.

        When ``targets`` is given, the decoder is teacher-forced with the
        ground-truth prefix; otherwise it feeds back its own outputs.
        """
        if x.ndim != 3:
            raise ValueError(f"expected (batch, time, features), got shape {x.shape}")
        batch, seq_in, _ = x.shape
        if seq_in < 1:
            raise ValueError("need at least one input step")
        enc_ctx = _sub_context(ctx, "encoder.")
        dec_ctx = _sub_context(ctx, "decoder.")
        head_ctx = _sub_context(ctx, "head.")

        h, c = self.encoder.zero_state(batch)
        for t in range(seq_in):
            h, c = self.encoder.forward(x[:, t, :], (h, c), ctx=enc_ctx)

        # The decoder starts from the last observed point.
        step_input = x[:, seq_in - 1, :]
        outputs: list[Tensor] = []
        for t in range(self.seq_out):
            h, c = self.decoder.forward(step_input, (h, c), ctx=dec_ctx)
            # Residual head: predict the displacement from the previous point,
            # which keeps early-training outputs near the trajectory.
            delta = self.head.forward(h, ctx=head_ctx)
            point = step_input + delta
            outputs.append(point.reshape(batch, 1, self.input_size))
            if targets is not None and t < self.seq_out - 1:
                step_input = targets[:, t, :]
            else:
                step_input = point
        return concat(outputs, axis=1)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Inference convenience: numpy in, numpy out, no teacher forcing.

        Runs the fused tape-free forward (:mod:`repro.nn.fused`); the
        operation order matches :meth:`forward` exactly.
        """
        return _fused_predict(self, x)


class GRUEncoderDecoder(Module):
    """GRU variant of the mobility model.

    The architecture the paper's citation [27] actually describes; kept
    API-compatible with :class:`LSTMEncoderDecoder` so the
    (model-agnostic) meta-learning stack runs on either.
    """

    def __init__(
        self,
        input_size: int = 2,
        hidden_size: int = 32,
        seq_out: int = 1,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        from repro.nn.gru import GRUCell

        if seq_out <= 0:
            raise ValueError("seq_out must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.seq_out = seq_out
        self.encoder = GRUCell(input_size, hidden_size, rng)
        self.decoder = GRUCell(input_size, hidden_size, rng)
        self.head = Linear(hidden_size, input_size, rng, name="head")

    def forward(
        self,
        x: Tensor,
        ctx: ParamContext | None = None,
        targets: Tensor | None = None,
    ) -> Tensor:
        if x.ndim != 3:
            raise ValueError(f"expected (batch, time, features), got shape {x.shape}")
        batch, seq_in, _ = x.shape
        if seq_in < 1:
            raise ValueError("need at least one input step")
        enc_ctx = _sub_context(ctx, "encoder.")
        dec_ctx = _sub_context(ctx, "decoder.")
        head_ctx = _sub_context(ctx, "head.")

        h = self.encoder.zero_state(batch)
        for t in range(seq_in):
            h = self.encoder.forward(x[:, t, :], h, ctx=enc_ctx)

        step_input = x[:, seq_in - 1, :]
        outputs: list[Tensor] = []
        for t in range(self.seq_out):
            h = self.decoder.forward(step_input, h, ctx=dec_ctx)
            delta = self.head.forward(h, ctx=head_ctx)
            point = step_input + delta
            outputs.append(point.reshape(batch, 1, self.input_size))
            if targets is not None and t < self.seq_out - 1:
                step_input = targets[:, t, :]
            else:
                step_input = point
        return concat(outputs, axis=1)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Inference convenience: numpy in, numpy out, no teacher forcing.

        Runs the fused tape-free forward (:mod:`repro.nn.fused`); the
        operation order matches :meth:`forward` exactly.
        """
        return _fused_predict(self, x)


def _fused_predict(model: Module, x: np.ndarray) -> np.ndarray:
    """Shared tape-free inference path for both encoder-decoders."""
    from repro.nn import fused  # deferred: fused dispatches on these classes

    arr = np.asarray(x, dtype=float)
    squeeze = arr.ndim == 2
    if squeeze:
        arr = arr[None, :, :]
    result = fused.seq2seq_predict(model, dict(model.named_parameters()), arr)
    return result[0] if squeeze else result


def make_mobility_model(
    cell: str,
    input_size: int = 2,
    hidden_size: int = 32,
    seq_out: int = 1,
    rng: np.random.Generator | None = None,
) -> Module:
    """Factory over the two recurrences; ``cell`` is ``"lstm"`` or ``"gru"``."""
    if cell == "lstm":
        return LSTMEncoderDecoder(input_size, hidden_size, seq_out, rng)
    if cell == "gru":
        return GRUEncoderDecoder(input_size, hidden_size, seq_out, rng)
    raise ValueError(f"unknown cell '{cell}'; pick 'lstm' or 'gru'")

"""First-order optimisers over :class:`~repro.nn.tensor.Tensor` parameters."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.nn.tensor import Tensor


class Optimizer:
    """Base optimiser: holds parameters and applies in-place updates."""

    def __init__(self, params: Iterable[Tensor]) -> None:
        self.params: Sequence[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer needs at least one parameter")
        for p in self.params:
            if not p.requires_grad:
                raise ValueError("all optimised tensors must require gradients")

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: Iterable[Tensor], lr: float, momentum: float = 0.0) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += p.grad
                # In place: the parameter buffer identity is stable across
                # steps, so no per-parameter allocation per update.
                np.subtract(p.data, self.lr * v, out=p.data)
            else:
                np.subtract(p.data, self.lr * p.grad, out=p.data)


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.lr = lr
        self.beta1, self.beta2 = b1, b2
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1t = 1.0 - self.beta1**self._t
        b2t = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            m *= self.beta1
            m += (1.0 - self.beta1) * p.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * p.grad**2
            m_hat = m / b1t
            v_hat = v / b2t
            np.subtract(p.data, self.lr * m_hat / (np.sqrt(v_hat) + self.eps), out=p.data)


def clip_gradients(params: Iterable[Tensor], max_norm: float) -> float:
    """Scale all gradients so their joint L2 norm is at most ``max_norm``.

    Returns the pre-clip norm.  Small recurrent models trained with
    aggressive meta learning rates occasionally spike; clipping keeps
    the meta-training loops stable.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    grads = [p.grad for p in params if p.grad is not None]
    if not grads:
        return 0.0
    total = float(np.sqrt(sum(float((g**2).sum()) for g in grads)))
    if total > max_norm:
        scale = max_norm / (total + 1e-12)
        for g in grads:
            g *= scale
    return total

"""Module system with a functional-parameter escape hatch.

Meta-learning needs to evaluate the *same* architecture under
*different* parameter values (the adapted ``theta_i`` of Algorithm 3)
without mutating the model.  Modules therefore resolve every parameter
through :class:`ParamContext`: by default a context maps each parameter
to itself, and :meth:`Module.functional_call` evaluates a forward pass
with any subset of parameters overridden by fully-qualified name.
"""

from __future__ import annotations

from typing import Callable, Iterator, Mapping

import numpy as np

from repro.nn.tensor import Tensor


class Parameter(Tensor):
    """A leaf tensor registered as trainable state of a module."""

    def __init__(self, data: np.ndarray, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class ParamContext:
    """Resolves parameter names to tensors during a forward pass.

    ``ParamContext({})`` (or ``None`` at call sites) resolves every
    parameter to the module's own tensor; a non-empty mapping overrides
    selected fully-qualified names, which is how the adapted weights of
    the MAML inner loop flow through the network.
    """

    __slots__ = ("_overrides",)

    def __init__(self, overrides: Mapping[str, Tensor] | None = None) -> None:
        self._overrides = dict(overrides) if overrides else {}

    def resolve(self, qualified_name: str, default: Tensor) -> Tensor:
        return self._overrides.get(qualified_name, default)

    def narrowed(self, prefix: str) -> "ParamContext | None":
        """Context restricted to names under ``prefix`` (prefix stripped).

        Composite modules call this when delegating to sub-modules so
        that override names stay relative to each module.
        """
        overrides = {
            name[len(prefix) :]: tensor
            for name, tensor in self._overrides.items()
            if name.startswith(prefix)
        }
        return ParamContext(overrides) if overrides else None

    def __bool__(self) -> bool:
        return bool(self._overrides)


_EMPTY_CONTEXT = ParamContext()


class Module:
    """Base class for neural network components.

    Subclasses register :class:`Parameter` and sub-``Module`` instances
    as plain attributes; registration is detected via ``__setattr__``
    like in the major frameworks.  Forward passes receive an optional
    :class:`ParamContext` so the same module can run with external
    (adapted) weights.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # parameter access
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def n_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # ------------------------------------------------------------------
    # state (de)serialisation — used to snapshot tree-node initialisations
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copies of all parameter arrays keyed by qualified name."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Mapping[str, np.ndarray]) -> None:
        """Load parameter arrays in place; shapes must match exactly."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, param in own.items():
            arr = np.asarray(state[name], dtype=np.float64)
            if arr.shape != param.data.shape:
                raise ValueError(f"shape mismatch for '{name}': {arr.shape} vs {param.data.shape}")
            param.data = arr.copy()

    # ------------------------------------------------------------------
    # forward plumbing
    # ------------------------------------------------------------------
    def forward(self, *args, ctx: ParamContext | None = None, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, ctx: ParamContext | None = None, **kwargs):
        return self.forward(*args, ctx=ctx if ctx is not None else _EMPTY_CONTEXT, **kwargs)

    def functional_call(self, overrides: Mapping[str, Tensor], *args, **kwargs):
        """Forward pass with parameters overridden by qualified name."""
        return self.forward(*args, ctx=ParamContext(overrides), **kwargs)

    def _resolve(self, ctx: ParamContext | None, qualified_name: str, default: Parameter) -> Tensor:
        if ctx is None or not ctx:
            return default
        return ctx.resolve(qualified_name, default)


def clone_parameters(module: Module) -> dict[str, Tensor]:
    """Fresh leaf tensors holding copies of a module's parameters.

    The returned dict is a valid ``overrides`` mapping for
    :meth:`Module.functional_call` and the starting point of a MAML
    inner loop.
    """
    return {name: Tensor(p.data.copy(), requires_grad=True, name=name) for name, p in module.named_parameters()}


def apply_gradient_step(
    params: Mapping[str, Tensor],
    grads: Mapping[str, np.ndarray],
    lr: float,
) -> dict[str, Tensor]:
    """One detached SGD step: ``theta' = theta - lr * grad``.

    Produces fresh leaf tensors (first-order semantics: the step is not
    differentiated through).
    """
    stepped: dict[str, Tensor] = {}
    for name, p in params.items():
        g = grads.get(name)
        new = p.data if g is None else p.data - lr * g
        stepped[name] = Tensor(np.array(new, copy=True), requires_grad=True, name=name)
    return stepped


def flatten_parameters(params: Mapping[str, Tensor] | Module) -> np.ndarray:
    """Concatenate all parameters into a single flat vector.

    Learning-path similarity (Eq. 2) compares per-step gradient vectors
    across learning tasks; flattening gives a stable, order-deterministic
    embedding (names are sorted).
    """
    if isinstance(params, Module):
        items = sorted(params.named_parameters())
        return np.concatenate([p.data.ravel() for _, p in items]) if items else np.zeros(0)
    items = sorted(params.items())
    return np.concatenate([p.data.ravel() for _, p in items]) if items else np.zeros(0)


def flatten_gradients(grads: Mapping[str, np.ndarray]) -> np.ndarray:
    """Concatenate named gradients into a flat vector (sorted names)."""
    items = sorted(grads.items())
    return np.concatenate([g.ravel() for _, g in items]) if items else np.zeros(0)


def average_state_dicts(states: list[dict[str, np.ndarray]]) -> dict[str, np.ndarray]:
    """Elementwise mean of several state dicts with identical keys."""
    if not states:
        raise ValueError("need at least one state dict")
    keys = set(states[0])
    for s in states[1:]:
        if set(s) != keys:
            raise KeyError("state dicts do not share keys")
    return {k: np.mean([s[k] for s in states], axis=0) for k in keys}


LossFn = Callable[[Tensor, Tensor], Tensor]

"""Weight initialisers.

All initialisers take an explicit ``numpy.random.Generator`` so every
model build in the pipeline is reproducible from a seed.
"""

from __future__ import annotations

import numpy as np


def xavier_uniform(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for a ``(fan_in, fan_out)`` matrix."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fan_in and fan_out must be positive")
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def uniform(rng: np.random.Generator, shape: tuple[int, ...], scale: float) -> np.ndarray:
    """Uniform initialisation in ``[-scale, scale]``."""
    return rng.uniform(-scale, scale, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)


def lstm_bias(hidden_size: int, forget_bias: float = 1.0) -> np.ndarray:
    """LSTM bias with the forget gate biased open.

    Gate order is ``[input, forget, cell, output]``; starting the forget
    gate at ``forget_bias`` is the standard trick for stable training of
    small recurrent models.
    """
    if hidden_size <= 0:
        raise ValueError("hidden_size must be positive")
    bias = np.zeros(4 * hidden_size, dtype=np.float64)
    bias[hidden_size : 2 * hidden_size] = forget_bias
    return bias

"""Cell-demand forecasters behind one ``DemandForecaster`` protocol.

Three interchangeable predictors of the next bins of a
``(n_bins, n_cells)`` demand matrix:

* :class:`EWMAForecaster` — an exponentially weighted moving average
  per cell; the cheap always-available baseline the online dispatcher
  defaults to (no fit required);
* :class:`SeasonalNaiveForecaster` — repeats the value one season ago
  per cell (rush-hour waves repeat), falling back to the last bin when
  history is shorter than a season;
* :class:`Seq2SeqForecaster` — the :mod:`repro.nn` LSTM/GRU
  encoder-decoder regressing the next ``seq_out`` bins of the busiest
  cells from the last ``seq_in`` (fused tape-free inference), with the
  EWMA carrying the quiet cells it does not model.

``predict(history, steps)`` is pure: the same history always yields
the same forecast, so engine runs that share a seed stay bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.forecast.demand import DemandSeries, demand_windows


@runtime_checkable
class DemandForecaster(Protocol):
    """The contract the dispatch layer codes against."""

    def fit(self, series: DemandSeries) -> "DemandForecaster":
        """Train on a demand series; returns ``self`` for chaining."""
        ...

    def predict(self, history: np.ndarray, steps: int = 1) -> np.ndarray:
        """Forecast the next ``steps`` bins from ``(n_bins, n_cells)``
        history; returns ``(steps, n_cells)`` non-negative rates."""
        ...


def _as_history(history: np.ndarray) -> np.ndarray:
    arr = np.asarray(history, dtype=float)
    if arr.ndim != 2:
        raise ValueError("history must be 2-D (bins x cells)")
    return arr


@dataclass
class EWMAForecaster:
    """Per-cell exponentially weighted moving average.

    ``alpha`` is the weight of the most recent bin; the forecast is
    flat over the requested horizon (an EWMA carries no trend).
    """

    alpha: float = 0.4

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must lie in (0, 1]")

    def fit(self, series: DemandSeries) -> "EWMAForecaster":
        return self

    def predict(self, history: np.ndarray, steps: int = 1) -> np.ndarray:
        history = _as_history(history)
        if history.shape[0] == 0:
            return np.zeros((steps, history.shape[1]))
        level = history[0].astype(float)
        for row in history[1:]:
            level = self.alpha * row + (1.0 - self.alpha) * level
        return np.tile(level, (steps, 1))


@dataclass
class SeasonalNaiveForecaster:
    """Repeat the demand observed one season (``period_bins``) ago.

    With history shorter than a season the forecast degrades to the
    last observed bin (plain naive), never to zeros.
    """

    period_bins: int = 8

    def __post_init__(self) -> None:
        if self.period_bins < 1:
            raise ValueError("period_bins must be at least 1")

    def fit(self, series: DemandSeries) -> "SeasonalNaiveForecaster":
        return self

    def predict(self, history: np.ndarray, steps: int = 1) -> np.ndarray:
        history = _as_history(history)
        n = history.shape[0]
        if n == 0:
            return np.zeros((steps, history.shape[1]))
        rows = []
        for s in range(steps):
            lag = self.period_bins - s % self.period_bins
            rows.append(history[n - lag] if n >= lag else history[-1])
        return np.stack(rows)


@dataclass
class Seq2SeqForecaster:
    """The :mod:`repro.nn` encoder-decoder over the busiest cells.

    Features are the ``top_cells`` highest-demand cells of the training
    series (selection is part of the fitted state); counts are scaled
    into ``[0, 1]`` by the training maximum so the loss stays
    well-conditioned at any arrival rate.  Cells outside the selection
    are forecast by an embedded EWMA, so the full ``(steps, n_cells)``
    contract holds.  Training and inference are seeded and
    deterministic; ``predict`` runs the fused tape-free path.
    """

    cell: str = "lstm"
    hidden_size: int = 24
    seq_in: int = 6
    seq_out: int = 1
    top_cells: int = 12
    epochs: int = 60
    lr: float = 2e-2
    alpha: float = 0.4
    seed: int = 0
    _model: object | None = field(default=None, repr=False, compare=False)
    _active: np.ndarray | None = field(default=None, repr=False, compare=False)
    _scale: float = field(default=1.0, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.seq_in < 1 or self.seq_out < 1:
            raise ValueError("seq_in and seq_out must be positive")
        if self.top_cells < 1:
            raise ValueError("top_cells must be at least 1")
        if self.epochs < 1:
            raise ValueError("epochs must be at least 1")

    @property
    def fitted(self) -> bool:
        return self._model is not None

    def fit(self, series: DemandSeries) -> "Seq2SeqForecaster":
        from repro.nn import Adam, Tensor, mse_loss
        from repro.nn.seq2seq import make_mobility_model

        active = series.active_cells(top_k=self.top_cells)
        if active.size == 0:
            # A silent training window: nothing to regress on, the
            # embedded EWMA handles every cell.
            self._model = None
            self._active = active
            return self
        sub = series.counts[:, active]
        self._scale = float(max(sub.max(), 1.0))
        x, y = demand_windows(sub / self._scale, self.seq_in, self.seq_out)
        rng = np.random.default_rng(self.seed)
        model = make_mobility_model(
            self.cell,
            input_size=int(active.size),
            hidden_size=self.hidden_size,
            seq_out=self.seq_out,
            rng=rng,
        )
        if len(x):
            optimizer = Adam(model.parameters(), lr=self.lr)
            tx, ty = Tensor(x), Tensor(y)
            for _ in range(self.epochs):
                optimizer.zero_grad()
                loss = mse_loss(model.forward(tx, targets=ty), ty)
                loss.backward()
                optimizer.step()
        self._model = model
        self._active = active
        return self

    def predict(self, history: np.ndarray, steps: int = 1) -> np.ndarray:
        history = _as_history(history)
        base = EWMAForecaster(alpha=self.alpha).predict(history, steps)
        if self._model is None or self._active is None or self._active.size == 0:
            return base
        sub = history[:, self._active] / self._scale
        if sub.shape[0] >= self.seq_in:
            window = sub[-self.seq_in :]
        else:  # pad a short history with leading zeros
            window = np.zeros((self.seq_in, sub.shape[1]))
            if sub.shape[0]:
                window[-sub.shape[0] :] = sub
        pred = np.asarray(self._model.predict(window))
        out = base
        n = min(steps, self.seq_out)
        out[:n, self._active] = np.maximum(pred[:n] * self._scale, 0.0)
        return out


def make_forecaster(model: str, **kwargs) -> DemandForecaster:
    """Factory over the three forecasters; ``model`` names the class."""
    factories = {
        "ewma": EWMAForecaster,
        "seasonal_naive": SeasonalNaiveForecaster,
        "seq2seq": Seq2SeqForecaster,
    }
    if model not in factories:
        raise ValueError(
            f"unknown forecaster '{model}' (available: {', '.join(sorted(factories))})"
        )
    return factories[model](**kwargs)

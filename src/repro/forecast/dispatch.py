"""Proactive dispatch: forecast-triggered batches and pre-positioning.

Two levers, both driven by one :class:`ForecastRuntime` that watches
the arrival stream bin by bin:

* :class:`ForecastTrigger` — extends the demand-adaptive trigger with
  a *predicted* pressure term: a batch is pulled forward when the
  pending queue plus the forecast demand over the next horizon exceeds
  ``demand_threshold`` (the reactive thresholds still apply);
* pre-positioning — between batches the runtime compares predicted
  demand plus the standing queue against the idle supply per grid
  cell and plans :class:`Move`\\ s of idle workers toward the largest
  predicted gaps, subject to each worker's detour budget
  (``detour_fraction`` of it), availability window, and a per-worker
  cooldown.  :func:`relocated_worker` splices the move into the
  worker's routine so acceptance decisions downstream see the
  relocated position.

The runtime also keeps the forecast honest: every completed bin is
scored against the prediction made for it before it started, feeding
``forecast.mae`` (overall histogram) and ``forecast.mae{cell=i-j}``
(per-cell running means) through :mod:`repro.obs`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro import obs
from repro.forecast.demand import DemandSeries
from repro.forecast.models import make_forecaster
from repro.geo.grid import Grid
from repro.geo.point import Point
from repro.geo.trajectory import Trajectory, TrajectoryPoint
from repro.sc.entities import SpatialTask, Worker
from repro.serve.triggers import DemandAdaptiveTrigger

_FORECAST_MODELS = ("ewma", "seasonal_naive", "seq2seq")


@dataclass(frozen=True)
class ForecastConfig:
    """Tunables of the forecasting layer (``ServeConfig.forecast``).

    Attributes
    ----------
    model:
        ``"ewma"``, ``"seasonal_naive"``, or ``"seq2seq"`` (the
        :mod:`repro.nn` encoder-decoder, fit online once
        ``fit_after_bins`` bins of history exist; EWMA carries the
        forecasts before that).
    bin_minutes / history_bins / horizon_bins:
        Time binning: forecasts look ``horizon_bins`` ahead from the
        last ``history_bins`` (the seq2seq ``seq_in``/``seq_out``).
    grid_rows / grid_cols / width_km / height_km:
        The demand grid.  Extent ``None`` infers the tight bounding
        box of the run's tasks at engine start.
    demand_threshold:
        :class:`ForecastTrigger` pressure threshold — fire a batch
        early when ``len(pending) + predicted demand`` reaches it
        (``None`` leaves only the inherited reactive thresholds).
    prepositioning:
        Enable idle-worker moves toward predicted gaps.
    gap_threshold / max_moves / detour_fraction / cooldown_minutes:
        Pre-positioning knobs: minimum predicted gap worth serving, a
        per-round move cap, the fraction of each worker's detour
        budget a move may spend, and the per-worker refractory period.
    """

    model: str = "ewma"
    bin_minutes: float = 2.0
    history_bins: int = 6
    horizon_bins: int = 1
    grid_rows: int = 8
    grid_cols: int = 8
    width_km: float | None = None
    height_km: float | None = None
    alpha: float = 0.4
    period_bins: int | None = None
    seq_cell: str = "lstm"
    seq_hidden: int = 24
    seq_epochs: int = 60
    seq_lr: float = 2e-2
    seq_top_cells: int = 12
    fit_after_bins: int = 8
    demand_threshold: float | None = None
    prepositioning: bool = False
    gap_threshold: float = 1.0
    max_moves: int = 4
    detour_fraction: float = 0.5
    cooldown_minutes: float = 4.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.model not in _FORECAST_MODELS:
            raise ValueError(
                f"forecast model must be one of {', '.join(_FORECAST_MODELS)}"
            )
        if self.bin_minutes <= 0:
            raise ValueError("bin_minutes must be positive")
        if self.history_bins < 1 or self.horizon_bins < 1:
            raise ValueError("history_bins and horizon_bins must be at least 1")
        if self.grid_rows < 1 or self.grid_cols < 1:
            raise ValueError("grid must have at least one cell per axis")
        for name in ("width_km", "height_km"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive (or None to infer)")
        if self.period_bins is not None and self.period_bins < 1:
            raise ValueError("period_bins must be at least 1 (or None)")
        if self.demand_threshold is not None and self.demand_threshold <= 0:
            raise ValueError("demand_threshold must be positive (or None)")
        if self.gap_threshold <= 0:
            raise ValueError("gap_threshold must be positive")
        if self.max_moves < 1:
            raise ValueError("max_moves must be at least 1")
        if not 0.0 < self.detour_fraction <= 1.0:
            raise ValueError("detour_fraction must lie in (0, 1]")
        if self.cooldown_minutes < 0:
            raise ValueError("cooldown_minutes must be non-negative")

    def make_forecaster(self):
        if self.model == "ewma":
            return make_forecaster("ewma", alpha=self.alpha)
        if self.model == "seasonal_naive":
            return make_forecaster(
                "seasonal_naive",
                period_bins=self.period_bins
                if self.period_bins is not None
                else self.history_bins,
            )
        return make_forecaster(
            "seq2seq",
            cell=self.seq_cell,
            hidden_size=self.seq_hidden,
            seq_in=self.history_bins,
            seq_out=self.horizon_bins,
            top_cells=self.seq_top_cells,
            epochs=self.seq_epochs,
            lr=self.seq_lr,
            alpha=self.alpha,
            seed=self.seed,
        )


@dataclass(frozen=True, slots=True)
class ForecastTrigger(DemandAdaptiveTrigger):
    """Demand-adaptive firing plus a predicted-pressure term.

    Inherits the reactive thresholds; additionally fires (respecting
    ``min_interval``) when the pending queue plus the runtime's
    predicted demand over the next forecast horizon reaches
    ``demand_threshold``.  With no runtime attached it degrades to the
    plain adaptive trigger.
    """

    demand_threshold: float | None = None
    runtime: "ForecastRuntime | None" = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        DemandAdaptiveTrigger.__post_init__(self)
        if self.demand_threshold is not None and self.demand_threshold <= 0:
            raise ValueError("demand threshold must be positive (or None)")

    def should_fire_early(
        self,
        now: float,
        last_batch: float,
        pending: Mapping[int, SpatialTask],
    ) -> bool:
        if DemandAdaptiveTrigger.should_fire_early(self, now, last_batch, pending):
            return True
        if self.demand_threshold is None or self.runtime is None or not pending:
            return False
        if now - last_batch < self.min_interval:
            return False
        return len(pending) + self.runtime.predicted_pending(now) >= self.demand_threshold


@dataclass(frozen=True)
class Move:
    """One planned pre-position: an idle worker toward a predicted gap."""

    worker_id: int
    cell: tuple[int, int]
    target: Point
    distance_km: float
    depart_t: float
    arrive_t: float
    gap: float


def relocated_worker(worker: Worker, move: Move) -> Worker:
    """The worker with ``move`` spliced into their routine.

    The relocated routine keeps every sample up to the departure time,
    travels straight to the target, dwells there until the next
    original sample strictly after arrival (or, with none left, until
    the original check-out time), then resumes the original tail —
    so the availability span is unchanged and the already-queued
    check-out event stays correct.
    """
    routine = worker.routine
    here = routine.position_at(move.depart_t)
    samples: list[TrajectoryPoint] = [
        p for p in routine if p.time < move.depart_t - 1e-9
    ]
    samples.append(TrajectoryPoint(here, move.depart_t))
    samples.append(TrajectoryPoint(move.target, move.arrive_t))
    tail = [p for p in routine if p.time > move.arrive_t + 1e-9]
    if tail:
        samples.extend(tail)
    elif routine.end_time > move.arrive_t + 1e-9:
        samples.append(TrajectoryPoint(move.target, routine.end_time))
    return Worker(
        worker_id=worker.worker_id,
        routine=Trajectory(samples),
        detour_budget_km=worker.detour_budget_km,
        speed_km_per_min=worker.speed_km_per_min,
        history=worker.history,
        available_from=worker.available_from,
        available_until=worker.available_until,
    )


class ForecastRuntime:
    """Online demand tracking, forecasting, and gap planning for one run.

    Created by the engine at ``run()`` start; fed every task arrival
    (:meth:`observe_arrival`) and clock advance (:meth:`advance`), and
    queried by the trigger (:meth:`predicted_pending`) and the
    pre-positioning step (:meth:`plan_moves`).  All state is derived
    deterministically from the event stream, so runs sharing a seed
    share every forecast.
    """

    def __init__(
        self,
        config: ForecastConfig,
        t_start: float,
        t_end: float,
        tasks: Sequence[SpatialTask] = (),
    ) -> None:
        if t_end <= t_start:
            raise ValueError("horizon must have positive length")
        self.config = config
        self.t_start = t_start
        self.t_end = t_end
        if config.width_km is not None and config.height_km is not None:
            self.grid = Grid(
                width_km=config.width_km,
                height_km=config.height_km,
                rows=config.grid_rows,
                cols=config.grid_cols,
            )
        else:
            from repro.forecast.demand import grid_for_tasks

            self.grid = grid_for_tasks(
                tasks,
                rows=config.grid_rows,
                cols=config.grid_cols,
                width_km=config.width_km,
                height_km=config.height_km,
            )
        self.n_bins = max(int(math.ceil((t_end - t_start) / config.bin_minutes)), 1)
        self.counts = np.zeros((self.n_bins, self.grid.n_cells), dtype=float)
        self.forecaster = config.make_forecaster()
        self._fitted = config.model != "seq2seq"
        self._completed = 0
        self._one_step: dict[int, np.ndarray] = {}
        self._horizon_cache: tuple[int, np.ndarray] | None = None
        self._err_sum = np.zeros(self.grid.n_cells, dtype=float)
        self._err_bins = 0
        self._cooldown: dict[int, float] = {}
        self.n_prepositioned = 0

    # -- stream hooks ---------------------------------------------------
    def _bin_of(self, t: float) -> int:
        b = int((t - self.t_start) / self.config.bin_minutes)
        return min(max(b, 0), self.n_bins - 1)

    def observe_arrival(self, task: SpatialTask, t: float) -> None:
        i, j = self.grid.to_cell(task.location)
        self.counts[self._bin_of(t), i * self.grid.cols + j] += 1.0

    def advance(self, t: float) -> None:
        """Finalise every bin fully before ``t`` and score its forecast."""
        current = self._bin_of(t)
        while self._completed < current:
            self._finalize(self._completed)
        # A one-step forecast of the current (in-progress) bin, made
        # strictly from the bins before it, scored when it completes.
        if current not in self._one_step:
            self._one_step[current] = self.forecaster.predict(
                self._history(current), steps=1
            )[0]

    def finish(self) -> None:
        """Score every remaining bin at the end of the run."""
        while self._completed < self.n_bins:
            self._finalize(self._completed)

    def _finalize(self, b: int) -> None:
        predicted = self._one_step.pop(b, None)
        if predicted is not None:
            err = np.abs(predicted - self.counts[b])
            self._err_sum += err
            self._err_bins += 1
            obs.histogram("forecast.mae", float(err.mean()))
            self._emit_cell_errors()
        self._completed = b + 1
        self._maybe_fit()

    def _history(self, upto_bin: int) -> np.ndarray:
        lo = max(upto_bin - self.config.history_bins, 0)
        return self.counts[lo:upto_bin]

    def _maybe_fit(self) -> None:
        if self._fitted or self._completed < self.config.fit_after_bins:
            return
        self._fitted = True
        series = DemandSeries(
            grid=self.grid,
            bin_minutes=self.config.bin_minutes,
            t_start=self.t_start,
            counts=self.counts[: self._completed],
        )
        self.forecaster.fit(series)

    def _emit_cell_errors(self) -> None:
        from repro.obs.metrics import labelled

        if not self._err_bins:
            return
        means = self._err_sum / self._err_bins
        for flat in np.nonzero(self._err_sum > 0)[0]:
            i, j = flat // self.grid.cols, flat % self.grid.cols
            obs.gauge(labelled("forecast.mae", cell=f"{i}-{j}"), float(means[flat]))

    # -- queries --------------------------------------------------------
    def predicted_cells(self, t: float) -> np.ndarray:
        """Per-cell predicted arrivals over the next ``horizon_bins``."""
        current = self._bin_of(t)
        if self._horizon_cache is not None and self._horizon_cache[0] == current:
            return self._horizon_cache[1]
        pred = self.forecaster.predict(
            self._history(current), steps=self.config.horizon_bins
        )
        total = np.maximum(pred, 0.0).sum(axis=0)
        self._horizon_cache = (current, total)
        return total

    def predicted_pending(self, t: float) -> float:
        """Total predicted arrivals over the next forecast horizon."""
        return float(self.predicted_cells(t).sum())

    def plan_moves(
        self,
        t: float,
        idle_workers: Sequence[Worker],
        pending: Mapping[int, SpatialTask],
    ) -> list[Move]:
        """Moves of idle workers toward the largest predicted gaps.

        Demand per cell is the forecast plus the standing queue; supply
        is the idle roster.  Cells with ``gap >= gap_threshold`` are
        served largest-gap first, each taking its nearest eligible idle
        workers (within ``detour_fraction`` of the detour budget, able
        to arrive inside both their availability window and the run
        horizon, and off cooldown) up to ``ceil(gap)`` of them, until
        ``max_moves`` is spent.
        """
        cfg = self.config
        demand = self.predicted_cells(t).copy()
        for task in pending.values():
            i, j = self.grid.to_cell(task.location)
            demand[i * self.grid.cols + j] += 1.0
        supply = np.zeros(self.grid.n_cells, dtype=float)
        locations: list[tuple[Worker, Point]] = []
        for worker in idle_workers:
            loc = worker.last_shared_location(t)
            i, j = self.grid.to_cell(loc)
            supply[i * self.grid.cols + j] += 1.0
            locations.append((worker, loc))
        gaps = demand - supply
        obs.gauge("forecast.gap", float(np.maximum(gaps, 0.0).sum()))
        targets = [
            flat for flat in np.lexsort((np.arange(gaps.size), -gaps))
            if gaps[flat] >= cfg.gap_threshold
        ]
        if not targets or not locations:
            return []
        moves: list[Move] = []
        used: set[int] = set()
        for flat in targets:
            if len(moves) >= cfg.max_moves:
                break
            i, j = flat // self.grid.cols, flat % self.grid.cols
            centre = self.grid.cell_center(i, j)
            wanted = int(math.ceil(gaps[flat]))
            candidates = []
            for worker, loc in locations:
                if worker.worker_id in used:
                    continue
                if self._cooldown.get(worker.worker_id, -math.inf) > t:
                    continue
                if self.grid.to_cell(loc) == (i, j):
                    continue  # already supplying this cell
                dist = loc.distance_to(centre)
                if dist > cfg.detour_fraction * worker.detour_budget_km:
                    continue
                arrive = t + dist / worker.speed_km_per_min
                if arrive > min(worker.availability_end(), self.t_end) - 1e-9:
                    continue
                candidates.append((dist, worker.worker_id, worker, arrive))
            candidates.sort(key=lambda c: (c[0], c[1]))
            for dist, worker_id, worker, arrive in candidates[:wanted]:
                if len(moves) >= cfg.max_moves:
                    break
                moves.append(
                    Move(
                        worker_id=worker_id,
                        cell=(i, j),
                        target=centre,
                        distance_km=dist,
                        depart_t=t,
                        arrive_t=arrive,
                        gap=float(gaps[flat]),
                    )
                )
                used.add(worker_id)
                self._cooldown[worker_id] = t + cfg.cooldown_minutes
        self.n_prepositioned += len(moves)
        return moves

    # -- summary --------------------------------------------------------
    def mae(self) -> float | None:
        """Mean absolute one-step forecast error per cell-bin, or
        ``None`` when no bin completed with a forecast on record."""
        if not self._err_bins:
            return None
        return float(self._err_sum.mean() / self._err_bins)

    def cell_mae(self) -> dict[str, float]:
        """Running per-cell MAE for cells with any error mass."""
        if not self._err_bins:
            return {}
        means = self._err_sum / self._err_bins
        return {
            f"{flat // self.grid.cols}-{flat % self.grid.cols}": float(means[flat])
            for flat in np.nonzero(self._err_sum > 0)[0]
        }

"""repro.forecast — per-cell demand forecasting and proactive dispatch.

The serving stack built in :mod:`repro.serve` is purely reactive:
batches fire on arrivals and idle workers sit wherever their last task
left them.  This package closes the loop the ROADMAP's DATA-WA
direction asks for:

* :mod:`repro.forecast.demand` — per-grid-cell task-arrival time
  series extracted from any stream (``repro.geo.grid`` cells over the
  generators of :mod:`repro.serve.streams`), with train/eval
  windowing for supervised forecasters;
* :mod:`repro.forecast.models` — one ``DemandForecaster`` protocol
  over three interchangeable predictors: an EWMA baseline, a
  seasonal-naive baseline, and a seq2seq forecaster on the existing
  :mod:`repro.nn` LSTM/GRU stack (fused fast path eligible);
* :mod:`repro.forecast.dispatch` — the proactive policy: a
  ``ForecastTrigger`` that pulls a batch forward when predicted demand
  exceeds a threshold (composing with the serve trigger protocol) and
  a pre-positioning planner that moves *idle* workers toward predicted
  hot cells between batches, subject to each worker's detour budget
  and availability window.

With ``ServeConfig.forecast`` unset the engine is bit-identical to the
seed engine (``result_signature`` parity); see ``docs/FORECASTING.md``.
"""

from repro.forecast.demand import (
    DemandSeries,
    demand_windows,
    extract_demand,
    grid_for_tasks,
    train_eval_split,
)
from repro.forecast.dispatch import (
    ForecastConfig,
    ForecastRuntime,
    ForecastTrigger,
    Move,
    relocated_worker,
)
from repro.forecast.models import (
    EWMAForecaster,
    SeasonalNaiveForecaster,
    Seq2SeqForecaster,
    make_forecaster,
)

__all__ = [
    "DemandSeries",
    "extract_demand",
    "demand_windows",
    "train_eval_split",
    "grid_for_tasks",
    "EWMAForecaster",
    "SeasonalNaiveForecaster",
    "Seq2SeqForecaster",
    "make_forecaster",
    "ForecastConfig",
    "ForecastRuntime",
    "ForecastTrigger",
    "Move",
    "relocated_worker",
]

"""Per-grid-cell demand series: task arrivals binned in space and time.

Demand is the only signal the forecasting layer sees — a
``(n_bins, n_cells)`` count matrix of task arrivals, built by binning
release times into fixed windows and locations into the cells of a
:class:`repro.geo.grid.Grid`.  The extraction is deterministic and
stream-agnostic: any generator from :mod:`repro.serve.streams` (or a
real task list) produces the same matrix for the same inputs.

Cells are flattened row-major (``flat = i * cols + j``), matching
``numpy`` reshape order, so a series column maps back to grid cell
``(flat // cols, flat % cols)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.geo.grid import Grid
from repro.sc.entities import SpatialTask


def grid_for_tasks(
    tasks: Sequence[SpatialTask],
    rows: int,
    cols: int,
    width_km: float | None = None,
    height_km: float | None = None,
) -> Grid:
    """A ``rows x cols`` grid covering the tasks' spatial extent.

    With ``width_km``/``height_km`` given, the extent is taken as
    stated (the scenario's known city extent); otherwise it is inferred
    as the tight bounding box of the task locations, padded so boundary
    tasks fall inside the last cell rather than on its edge.
    """
    if width_km is None or height_km is None:
        if not tasks:
            raise ValueError("cannot infer a grid extent from an empty task list")
        max_x = max(t.location.x for t in tasks)
        max_y = max(t.location.y for t in tasks)
        width_km = width_km if width_km is not None else max(max_x, 1e-6) * (1 + 1e-9)
        height_km = height_km if height_km is not None else max(max_y, 1e-6) * (1 + 1e-9)
    return Grid(width_km=width_km, height_km=height_km, rows=rows, cols=cols)


@dataclass(frozen=True)
class DemandSeries:
    """Arrival counts per (time bin, grid cell).

    ``counts`` is ``(n_bins, n_cells)`` with cells flattened row-major
    over ``grid``; bin ``b`` covers
    ``[t_start + b * bin_minutes, t_start + (b+1) * bin_minutes)``.
    """

    grid: Grid
    bin_minutes: float
    t_start: float
    counts: np.ndarray

    def __post_init__(self) -> None:
        if self.bin_minutes <= 0:
            raise ValueError("bin_minutes must be positive")
        counts = np.asarray(self.counts, dtype=float)
        if counts.ndim != 2 or counts.shape[1] != self.grid.n_cells:
            raise ValueError(
                f"counts must be (n_bins, {self.grid.n_cells}), got {counts.shape}"
            )
        object.__setattr__(self, "counts", counts)

    @property
    def n_bins(self) -> int:
        return int(self.counts.shape[0])

    @property
    def n_cells(self) -> int:
        return int(self.counts.shape[1])

    def bin_of(self, t: float) -> int:
        """The bin index time ``t`` falls into (may be out of range)."""
        return int(np.floor((t - self.t_start) / self.bin_minutes))

    def cell_of(self, flat: int) -> tuple[int, int]:
        """Grid cell ``(i, j)`` of a flattened series column."""
        return flat // self.grid.cols, flat % self.grid.cols

    def totals(self) -> np.ndarray:
        """Per-cell demand totals over the whole series."""
        return self.counts.sum(axis=0)

    def active_cells(self, top_k: int | None = None) -> np.ndarray:
        """Indices of cells with any demand, busiest first.

        Ties break on the cell index so the selection is deterministic;
        ``top_k`` caps the list (the seq2seq forecaster's feature dim).
        """
        totals = self.totals()
        order = np.lexsort((np.arange(totals.size), -totals))
        active = order[totals[order] > 0]
        return active[:top_k] if top_k is not None else active


def extract_demand(
    tasks: Iterable[SpatialTask],
    grid: Grid,
    bin_minutes: float,
    t_start: float,
    t_end: float,
) -> DemandSeries:
    """Bin task arrivals into a :class:`DemandSeries` over ``[t_start, t_end]``.

    Arrivals outside the horizon are dropped; an arrival exactly at
    ``t_end`` lands in the last bin (the horizon is closed on the
    right, matching the engine's event loop).
    """
    if t_end <= t_start:
        raise ValueError("horizon must have positive length")
    if bin_minutes <= 0:
        raise ValueError("bin_minutes must be positive")
    n_bins = max(int(np.ceil((t_end - t_start) / bin_minutes)), 1)
    counts = np.zeros((n_bins, grid.n_cells), dtype=float)
    for task in tasks:
        t = task.release_time
        if t < t_start or t > t_end:
            continue
        b = min(int((t - t_start) / bin_minutes), n_bins - 1)
        i, j = grid.to_cell(task.location)
        counts[b, i * grid.cols + j] += 1.0
    return DemandSeries(grid=grid, bin_minutes=bin_minutes, t_start=t_start, counts=counts)


def train_eval_split(
    series: DemandSeries, eval_fraction: float = 0.3
) -> tuple[DemandSeries, DemandSeries]:
    """Split a series into a training prefix and a held-out suffix.

    The split is temporal (never shuffled): forecasters train on the
    past and are scored on the future, as they are used online.
    """
    if not 0.0 < eval_fraction < 1.0:
        raise ValueError("eval_fraction must lie in (0, 1)")
    cut = max(int(round(series.n_bins * (1.0 - eval_fraction))), 1)
    cut = min(cut, series.n_bins - 1)
    head = DemandSeries(
        grid=series.grid,
        bin_minutes=series.bin_minutes,
        t_start=series.t_start,
        counts=series.counts[:cut],
    )
    tail = DemandSeries(
        grid=series.grid,
        bin_minutes=series.bin_minutes,
        t_start=series.t_start + cut * series.bin_minutes,
        counts=series.counts[cut:],
    )
    return head, tail


def demand_windows(
    counts: np.ndarray, seq_in: int, seq_out: int
) -> tuple[np.ndarray, np.ndarray]:
    """Sliding supervised windows over a ``(n_bins, n_features)`` matrix.

    Returns ``X`` of shape ``(n_windows, seq_in, n_features)`` and
    ``Y`` of shape ``(n_windows, seq_out, n_features)`` where window
    ``w`` predicts bins ``[w + seq_in, w + seq_in + seq_out)`` from the
    ``seq_in`` bins before them.
    """
    counts = np.asarray(counts, dtype=float)
    if counts.ndim != 2:
        raise ValueError("counts must be 2-D (bins x features)")
    if seq_in < 1 or seq_out < 1:
        raise ValueError("seq_in and seq_out must be positive")
    n_windows = counts.shape[0] - seq_in - seq_out + 1
    if n_windows < 1:
        n_features = counts.shape[1]
        return (
            np.zeros((0, seq_in, n_features)),
            np.zeros((0, seq_out, n_features)),
        )
    x = np.stack([counts[w : w + seq_in] for w in range(n_windows)])
    y = np.stack(
        [counts[w + seq_in : w + seq_in + seq_out] for w in range(n_windows)]
    )
    return x, y

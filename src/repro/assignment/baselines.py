"""Baseline assignment algorithms: KM, UB, and LB (Section IV-A).

* ``km_assign`` builds the bipartite graph the way PPI's third stage
  does (plain predicted proximity under the Theorem 2 radius) and
  solves one global KM matching.  With the MSE-trained predictor this
  is the paper's ``KM-loss``; with the task-oriented loss it is ``KM``.
* ``upper_bound_assign`` is the oracle: it checks constraints against
  the worker's *real* future trajectory and weights edges by the
  reciprocal of the real insertion detour, so its rejection rate is 0
  by construction.
* ``lower_bound_assign`` ignores mobility entirely and matches on the
  worker's current location only.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.assignment.hungarian import maximum_weight_matching
from repro.assignment.matching_rate import theorem2_bound
from repro.assignment.plan import AssignmentPair, AssignmentPlan
from repro.assignment.ppi import Matcher
from repro.sc.entities import SpatialTask, WorkerSnapshot

_EPS = 1e-6


def _solve(
    edges: list[tuple[int, int, float]],
    stage: int = 0,
    matcher: "Matcher | None" = None,
) -> AssignmentPlan:
    solve = matcher if matcher is not None else maximum_weight_matching
    plan = AssignmentPlan()
    for t_id, w_id, weight in solve(edges):
        plan.add(AssignmentPair(task_id=t_id, worker_id=w_id, score=weight, stage=stage))
    return plan


def km_assign(
    tasks: Sequence[SpatialTask],
    workers: Sequence[WorkerSnapshot],
    current_time: float,
) -> AssignmentPlan:
    """One global KM matching on predicted proximity (stage-3 graph)."""
    return km_assign_candidates(tasks, workers, current_time, None)


def km_assign_candidates(
    tasks: Sequence[SpatialTask],
    workers: Sequence[WorkerSnapshot],
    current_time: float,
    candidates: "Mapping[int, Sequence[int]] | None",
    matcher: Matcher | None = None,
) -> AssignmentPlan:
    """KM matching restricted to a sparse candidate graph.

    ``candidates`` maps ``task_id`` to the worker ids worth considering
    (``None`` means every pair).  Because the dense path already prunes
    pairs beyond the Theorem 2 radius, any candidate graph covering
    that radius yields the identical matching.  ``matcher`` substitutes
    the solver (see :data:`repro.assignment.ppi.Matcher`).
    """
    worker_by_id = {w.worker_id: w for w in workers}
    edges: list[tuple[int, int, float]] = []
    for task in tasks:
        tloc = np.array([task.location.x, task.location.y])
        pool = (
            workers
            if candidates is None
            else (worker_by_id[w_id] for w_id in candidates.get(task.task_id, ()))
        )
        for worker in pool:
            if len(worker.predicted_xy) == 0:
                continue
            bound = theorem2_bound(
                worker.detour_budget_km, task.deadline, current_time, worker.speed_km_per_min
            )
            if bound <= 0:
                continue
            dis_min = float(np.sqrt(((worker.predicted_xy - tloc) ** 2).sum(axis=1)).min())
            if dis_min <= bound:
                edges.append((task.task_id, worker.worker_id, 1.0 / (dis_min + _EPS)))
    return _solve(edges, matcher=matcher)


def upper_bound_assign(
    tasks: Sequence[SpatialTask],
    oracle_workers: Sequence[WorkerSnapshot],
    current_time: float,
) -> AssignmentPlan:
    """Oracle matching against the real future trajectory.

    ``oracle_workers`` must carry the worker's *actual* future route in
    ``predicted_xy``/``predicted_times`` (the platform constructs these
    snapshots from ground truth when computing the bound).  An edge
    exists when some real route point allows serving the task within
    the detour budget and before the deadline; the weight is the
    reciprocal of the real out-and-back detour, so UB maximises exactly
    what the simulator later accepts.
    """
    edges: list[tuple[int, int, float]] = []
    for task in tasks:
        tloc = np.array([task.location.x, task.location.y])
        for worker in oracle_workers:
            route = worker.predicted_xy
            times = worker.predicted_times
            if len(route) == 0:
                continue
            dists = np.sqrt(((route - tloc) ** 2).sum(axis=1))
            detours = 2.0 * dists
            feasible = (detours <= worker.detour_budget_km) & (
                times + dists / worker.speed_km_per_min <= task.deadline
            )
            if not feasible.any():
                continue
            best = float(detours[feasible].min())
            edges.append((task.task_id, worker.worker_id, 1.0 / (best + _EPS)))
    return _solve(edges)


def lower_bound_assign(
    tasks: Sequence[SpatialTask],
    workers: Sequence[WorkerSnapshot],
    current_time: float,
) -> AssignmentPlan:
    """Matching on current locations only (no mobility information)."""
    edges: list[tuple[int, int, float]] = []
    for task in tasks:
        tloc = np.array([task.location.x, task.location.y])
        for worker in workers:
            bound = theorem2_bound(
                worker.detour_budget_km, task.deadline, current_time, worker.speed_km_per_min
            )
            if bound <= 0:
                continue
            here = np.array([worker.current_location.x, worker.current_location.y])
            dis = float(np.sqrt(((here - tloc) ** 2).sum()))
            if dis <= bound:
                edges.append((task.task_id, worker.worker_id, 1.0 / (dis + _EPS)))
    return _solve(edges)

"""Task assignment: the KM substrate, matching rate, PPI, and baselines."""

from repro.assignment.hungarian import (
    solve_assignment,
    assignment_cost,
    maximum_weight_matching,
    Edge,
    WarmStartState,
)
from repro.assignment.matching_rate import (
    matching_rate,
    completion_radius,
    feasible_prediction_points,
    theorem2_bound,
)
from repro.assignment.ppi import ppi_assign, ppi_assign_candidates, CandidateGraph, PPIConfig
from repro.assignment.baselines import (
    km_assign,
    km_assign_candidates,
    upper_bound_assign,
    lower_bound_assign,
)
from repro.assignment.ggpso import ggpso_assign, GGPSOConfig
from repro.assignment.plan import AssignmentPlan, AssignmentPair

__all__ = [
    "solve_assignment",
    "assignment_cost",
    "maximum_weight_matching",
    "Edge",
    "WarmStartState",
    "matching_rate",
    "completion_radius",
    "feasible_prediction_points",
    "theorem2_bound",
    "ppi_assign",
    "ppi_assign_candidates",
    "CandidateGraph",
    "PPIConfig",
    "km_assign",
    "km_assign_candidates",
    "upper_bound_assign",
    "lower_bound_assign",
    "ggpso_assign",
    "GGPSOConfig",
    "AssignmentPlan",
    "AssignmentPair",
]

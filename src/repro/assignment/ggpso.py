"""GGPSO: the evolutionary baseline of Zhang & Zhang (TMC 2023) [11].

The paper describes GGPSO as a global heuristic search that "optimises
the current solution through iterative crossover, mutation, and
selection" over assignments built on predicted mobility.  We reproduce
that search: a chromosome maps each task to a worker (or to nobody),
fitness is the total reciprocal predicted detour of feasible genes, and
the population evolves with tournament selection, uniform crossover
with duplicate repair, and point mutation, seeded with a greedy
individual.  Its running time is dominated by ``generations x
population`` fitness sweeps, which is why it is consistently the
slowest algorithm in the experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.assignment.matching_rate import theorem2_bound
from repro.assignment.plan import AssignmentPair, AssignmentPlan
from repro.sc.entities import SpatialTask, WorkerSnapshot

_EPS = 1e-6
_UNASSIGNED = -1


@dataclass(frozen=True, slots=True)
class GGPSOConfig:
    """Evolutionary search parameters."""

    population_size: int = 24
    generations: int = 40
    mutation_rate: float = 0.08
    tournament_size: int = 3
    elite: int = 2
    seed: int = 7

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError("population must hold at least two individuals")
        if self.generations < 1:
            raise ValueError("need at least one generation")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ValueError("mutation rate must lie in [0, 1]")
        if not 1 <= self.elite < self.population_size:
            raise ValueError("elite must be in [1, population_size)")


def _utility_matrix(
    tasks: Sequence[SpatialTask],
    workers: Sequence[WorkerSnapshot],
    current_time: float,
) -> np.ndarray:
    """Per-pair utility: reciprocal predicted distance, 0 if infeasible."""
    util = np.zeros((len(tasks), len(workers)))
    for i, task in enumerate(tasks):
        tloc = np.array([task.location.x, task.location.y])
        for j, worker in enumerate(workers):
            if len(worker.predicted_xy) == 0:
                continue
            bound = theorem2_bound(
                worker.detour_budget_km, task.deadline, current_time, worker.speed_km_per_min
            )
            if bound <= 0:
                continue
            dis_min = float(np.sqrt(((worker.predicted_xy - tloc) ** 2).sum(axis=1)).min())
            if dis_min <= bound:
                util[i, j] = 1.0 / (dis_min + _EPS)
    return util


def _repair(chromosome: np.ndarray) -> None:
    """Drop duplicate worker genes in place (first occurrence wins)."""
    seen: set[int] = set()
    for i, gene in enumerate(chromosome):
        if gene == _UNASSIGNED:
            continue
        if gene in seen:
            chromosome[i] = _UNASSIGNED
        else:
            seen.add(int(gene))


def _fitness(chromosome: np.ndarray, util: np.ndarray) -> float:
    total = 0.0
    for i, gene in enumerate(chromosome):
        if gene != _UNASSIGNED:
            total += util[i, gene]
    return total


def _greedy_seed(util: np.ndarray) -> np.ndarray:
    """Greedy individual: repeatedly take the best remaining pair."""
    n_tasks, n_workers = util.shape
    chrom = np.full(n_tasks, _UNASSIGNED, dtype=int)
    remaining = util.copy()
    for _ in range(min(n_tasks, n_workers)):
        i, j = np.unravel_index(int(remaining.argmax()), remaining.shape)
        if remaining[i, j] <= 0:
            break
        chrom[i] = j
        remaining[i, :] = 0.0
        remaining[:, j] = 0.0
    return chrom


def ggpso_assign(
    tasks: Sequence[SpatialTask],
    workers: Sequence[WorkerSnapshot],
    current_time: float,
    config: GGPSOConfig | None = None,
) -> AssignmentPlan:
    """Evolve an assignment on predicted mobility and return the best plan."""
    cfg = config if config is not None else GGPSOConfig()
    plan = AssignmentPlan()
    if not tasks or not workers:
        return plan
    util = _utility_matrix(tasks, workers, current_time)
    n_tasks, n_workers = util.shape
    rng = np.random.default_rng(cfg.seed)

    def random_individual() -> np.ndarray:
        chrom = rng.integers(-1, n_workers, size=n_tasks)
        _repair(chrom)
        return chrom

    population = [_greedy_seed(util)] + [random_individual() for _ in range(cfg.population_size - 1)]
    fitnesses = np.array([_fitness(c, util) for c in population])

    for _ in range(cfg.generations):
        next_population: list[np.ndarray] = []
        elite_idx = np.argsort(fitnesses)[::-1][: cfg.elite]
        next_population.extend(population[i].copy() for i in elite_idx)
        while len(next_population) < cfg.population_size:
            parents = []
            for _ in range(2):
                contenders = rng.integers(0, cfg.population_size, size=cfg.tournament_size)
                parents.append(population[int(contenders[np.argmax(fitnesses[contenders])])])
            mask = rng.random(n_tasks) < 0.5
            child = np.where(mask, parents[0], parents[1]).astype(int)
            mutate = rng.random(n_tasks) < cfg.mutation_rate
            if mutate.any():
                child[mutate] = rng.integers(-1, n_workers, size=int(mutate.sum()))
            _repair(child)
            next_population.append(child)
        population = next_population
        fitnesses = np.array([_fitness(c, util) for c in population])

    best = population[int(np.argmax(fitnesses))]
    for i, gene in enumerate(best):
        if gene == _UNASSIGNED or util[i, gene] <= 0:
            continue
        plan.add(
            AssignmentPair(
                task_id=tasks[i].task_id,
                worker_id=workers[int(gene)].worker_id,
                score=float(util[i, gene]),
                stage=0,
            )
        )
    return plan

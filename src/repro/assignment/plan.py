"""Assignment plans (Definition 4).

A plan ``M`` is a set of ``(task, worker)`` pairs in which every task
and every worker appears at most once.  ``M'`` (the accepted subset)
and the realised detour costs live with the simulator; the plan records
what the platform proposed and at which PPI stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True, slots=True)
class AssignmentPair:
    """One proposed assignment.

    ``stage`` records which phase produced the pair (PPI stages 1-3;
    baselines use stage 0), and ``score`` the matching weight used.
    """

    task_id: int
    worker_id: int
    score: float
    stage: int = 0


@dataclass
class AssignmentPlan:
    """A valid batch assignment: injective in both tasks and workers."""

    pairs: list[AssignmentPair] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._validate(self.pairs)

    @staticmethod
    def _validate(pairs: list[AssignmentPair]) -> None:
        tasks = [p.task_id for p in pairs]
        workers = [p.worker_id for p in pairs]
        if len(set(tasks)) != len(tasks):
            raise ValueError("a task may be assigned to at most one worker")
        if len(set(workers)) != len(workers):
            raise ValueError("a worker may receive at most one task")

    def add(self, pair: AssignmentPair) -> None:
        """Append a pair, preserving matching validity."""
        if pair.task_id in self.task_ids() or pair.worker_id in self.worker_ids():
            raise ValueError(f"pair {pair} conflicts with the existing plan")
        self.pairs.append(pair)

    def extend(self, pairs: list[AssignmentPair]) -> None:
        for p in pairs:
            self.add(p)

    def task_ids(self) -> set[int]:
        return {p.task_id for p in self.pairs}

    def worker_ids(self) -> set[int]:
        return {p.worker_id for p in self.pairs}

    def worker_for_task(self, task_id: int) -> int | None:
        for p in self.pairs:
            if p.task_id == task_id:
                return p.worker_id
        return None

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self) -> Iterator[AssignmentPair]:
        return iter(self.pairs)

    def __repr__(self) -> str:
        by_stage: dict[int, int] = {}
        for p in self.pairs:
            by_stage[p.stage] = by_stage.get(p.stage, 0) + 1
        return f"AssignmentPlan(n={len(self.pairs)}, stages={by_stage})"

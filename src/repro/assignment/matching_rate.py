"""Matching rate (Definition 7) and the Theorem 2 feasibility machinery.

``MR(r, r^)`` is the fraction of routine points whose prediction lands
within ``a`` km of the truth.  Theorem 2 turns it into a completion
probability: if a task lies within ``b`` of a predicted point and
``a + b <= min(d/2, d^t)``, the worker completes the task without
violating the detour or deadline constraint with probability ``MR``.
"""

from __future__ import annotations

import numpy as np


def matching_rate(real_xy: np.ndarray, pred_xy: np.ndarray, a: float) -> float:
    """Definition 7: mean indicator of ``dis(l_i, l^_i) <= a``.

    Both arrays are ``(n, 2)`` aligned point sequences.
    """
    real = np.asarray(real_xy, dtype=float).reshape(-1, 2)
    pred = np.asarray(pred_xy, dtype=float).reshape(-1, 2)
    if real.shape != pred.shape:
        raise ValueError(f"routines must align: {real.shape} vs {pred.shape}")
    if a < 0:
        raise ValueError("matching threshold a must be non-negative")
    if len(real) == 0:
        return 0.0
    dists = np.sqrt(((real - pred) ** 2).sum(axis=1))
    return float((dists <= a).mean())


def theorem2_bound(
    detour_budget_km: float,
    deadline: float,
    current_time: float,
    speed_km_per_min: float,
) -> float:
    """The ``min(d/2, d^t)`` radius of Theorem 2.

    ``d^t = sp * (tau.t - t_c)`` is the distance the worker can still
    cover before the deadline (Lemma 2).  Non-positive when the task is
    already expired.
    """
    if detour_budget_km < 0:
        raise ValueError("detour budget must be non-negative")
    if speed_km_per_min <= 0:
        raise ValueError("speed must be positive")
    d_t = speed_km_per_min * (deadline - current_time)
    return min(detour_budget_km / 2.0, d_t)


def feasible_prediction_points(
    pred_xy: np.ndarray,
    task_xy: np.ndarray,
    a: float,
    bound: float,
) -> np.ndarray:
    """The set ``B`` of Algorithm 4 (lines 4-7).

    Distances ``dis(l^_i, tau.l)`` for predicted points satisfying
    ``dis + a <= bound``; the count ``|B|`` times ``MR`` is the expected
    number of completion opportunities.
    """
    pred = np.asarray(pred_xy, dtype=float).reshape(-1, 2)
    t = np.asarray(task_xy, dtype=float).ravel()
    if t.shape != (2,):
        raise ValueError("task location must be a single (x, y)")
    if a < 0:
        raise ValueError("a must be non-negative")
    dists = np.sqrt(((pred - t) ** 2).sum(axis=1))
    return dists[dists + a <= bound]


def completion_radius(bound: float, a: float) -> float:
    """Largest ``b`` allowed by Theorem 2 given the bound and threshold ``a``."""
    return max(bound - a, 0.0)


def completion_probability(b_size: int, mr: float) -> float:
    """Expected completion probability of a pair with ``|B|`` opportunities.

    Each of the ``|B|`` feasible predicted points independently "hits"
    (the worker really passes nearby) with probability ``MR``; the paper
    uses the expectation ``|B| * MR`` as a confidence score and treats
    scores >= 1 as near-certain (Algorithm 4, line 8).  This helper also
    exposes the proper probability ``1 - (1 - MR)^|B|`` used by the
    simulator-side diagnostics.
    """
    if b_size < 0:
        raise ValueError("|B| must be non-negative")
    if not 0.0 <= mr <= 1.0:
        raise ValueError("MR must lie in [0, 1]")
    return 1.0 - (1.0 - mr) ** b_size


def pair_completion_probability(snapshot, task, current_time: float, a: float = 0.3) -> float:
    """The completion probability the platform believes for one pair.

    The outcome hook behind online calibration monitoring
    (:mod:`repro.obs.calibration`): given the worker snapshot the
    assignment actually saw and the task it proposed, reconstruct the
    Theorem 2 score — ``1 - (1 - MR)^|B|`` over the feasible predicted
    points within the ``min(d/2, d^t)`` radius — so each accept/reject
    outcome can be scored against what the predictor promised.

    ``snapshot`` needs the :class:`repro.sc.entities.WorkerSnapshot`
    fields (``predicted_xy``, ``matching_rate``, ``detour_budget_km``,
    ``speed_km_per_min``); ``task`` needs ``location`` and ``deadline``.
    Returns 0 for pairs with no feasible point (stage-3 proximity
    assignments carry no Theorem 2 mass).
    """
    pred = snapshot.predicted_xy
    if len(pred) == 0:
        return 0.0
    # Inlined theorem2_bound / feasible_prediction_points: this runs per
    # proposed pair inside the serving loop, so skip re-validation and
    # compare squared distances (dis + a <= bound  <=>  dis^2 <= (bound-a)^2).
    bound = min(
        snapshot.detour_budget_km / 2.0,
        snapshot.speed_km_per_min * (task.deadline - current_time),
    )
    radius = bound - a
    if bound <= 0 or radius < 0:
        return 0.0
    dx = pred[:, 0] - task.location.x
    dy = pred[:, 1] - task.location.y
    b_size = int(np.count_nonzero(dx * dx + dy * dy <= radius * radius))
    return 1.0 - (1.0 - snapshot.matching_rate) ** b_size

"""Prediction Performance-Involved task assignment (Algorithm 4).

PPI assigns in three stages of decreasing completion confidence:

1. pairs whose expected completion opportunities ``|B| * MR`` reach 1
   (near-certain) are matched first with one KM call;
2. the remaining pairs with non-empty ``B`` are processed in descending
   ``|B| * MR`` order, calling KM on every chunk of ``epsilon``
   candidates and removing matched tasks/workers between chunks;
3. leftover tasks/workers are matched by plain predicted proximity
   under the Theorem 2 radius.

Decomposing the matching this way can only lose quality against a
single global KM *when trajectories are exact* — the point of the paper
is that under uncertain predictions, spending reliable workers on
reliable pairs first lowers the rejection rate (Section III-D,
Discussion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Mapping, Sequence

import numpy as np

from repro import obs
from repro.assignment.hungarian import maximum_weight_matching
from repro.assignment.matching_rate import feasible_prediction_points, theorem2_bound
from repro.assignment.plan import AssignmentPair, AssignmentPlan
from repro.sc.entities import SpatialTask, WorkerSnapshot

#: A max-weight bipartite matcher over ``(left, right, weight)`` edges.
#: Must reproduce :func:`maximum_weight_matching`'s contract: a matching
#: of maximum total weight, emitted in ascending left-id order.  The
#: default is the dense Hungarian solver; :mod:`repro.dist.shard`
#: substitutes a connected-component decomposition that solves each
#: component independently (exact whenever the optimum is unique, which
#: generic float weights make the ordinary case).
Matcher = Callable[[Sequence[tuple[int, int, float]]], list[tuple[int, int, float]]]


@dataclass(frozen=True, slots=True)
class PPIConfig:
    """Tunables of Algorithm 4.

    Attributes
    ----------
    a:
        Matching-rate distance threshold (Def. 7), in km.
    epsilon:
        Stage-2 chunk size: KM is invoked after every ``epsilon``
        accepted candidates.
    eps_weight:
        Guard against division by zero when a predicted point coincides
        with the task location.
    """

    a: float = 0.3
    epsilon: int = 8
    eps_weight: float = 1e-6

    def __post_init__(self) -> None:
        if self.a < 0:
            raise ValueError("a must be non-negative")
        if self.epsilon < 1:
            raise ValueError("epsilon must be a positive integer")


@dataclass(frozen=True, slots=True)
class _Candidate:
    """A deferred (B, tau, w) entry of Algorithm 4's second stage."""

    task_id: int
    worker_id: int
    score: float  # |B| * MR
    min_b: float  # min distance in B (inf when B is empty)


#: A sparse candidate graph: ``task_id -> worker ids to consider``, in
#: the priority order the dense path would have visited them (snapshot
#: order).  Pairs absent from the graph are never matched, so builders
#: must produce a superset of the Theorem-2-feasible pairs for the
#: result to match the dense path exactly (see
#: :func:`repro.serve.spatial_index.build_candidates`).
CandidateGraph = Mapping[int, Sequence[int]]


def ppi_assign(
    tasks: Sequence[SpatialTask],
    workers: Sequence[WorkerSnapshot],
    current_time: float,
    config: PPIConfig | None = None,
) -> AssignmentPlan:
    """Run Algorithm 4 over the dense W x T pair space."""
    return ppi_assign_candidates(tasks, workers, current_time, None, config)


def ppi_assign_candidates(
    tasks: Sequence[SpatialTask],
    workers: Sequence[WorkerSnapshot],
    current_time: float,
    candidates: CandidateGraph | None,
    config: PPIConfig | None = None,
    matcher: Matcher | None = None,
) -> AssignmentPlan:
    """Run Algorithm 4 over a sparse candidate graph.

    ``candidates`` restricts each task to a subset of workers (``None``
    means every pair, reproducing :func:`ppi_assign`).  When the graph
    contains every pair within the Theorem 2 radius, the plan is
    identical to the dense path's — only the pairs PPI would have
    discarded anyway are skipped.  ``matcher`` substitutes the KM
    solver for every matching call (see :data:`Matcher`); the stage-2
    control flow (score ordering, epsilon chunking) stays on this
    code path regardless, because it is order-sensitive and must run
    globally.
    """
    cfg = config if config is not None else PPIConfig()
    solve = matcher if matcher is not None else maximum_weight_matching
    plan = AssignmentPlan()
    if not tasks or not workers:
        return plan

    # ------------------------------------------------------------------
    # Stage 1 (lines 1-12): certain pairs straight to KM.
    # ------------------------------------------------------------------
    stage1_edges: list[tuple[int, int, float]] = []
    deferred: list[_Candidate] = []
    task_by_id = {t.task_id: t for t in tasks}
    worker_by_id = {w.worker_id: w for w in workers}

    def workers_for(task: SpatialTask) -> Sequence[WorkerSnapshot] | Iterator[WorkerSnapshot]:
        if candidates is None:
            return workers
        return (worker_by_id[w_id] for w_id in candidates.get(task.task_id, ()))

    assigned_tasks: set[int] = set()
    assigned_workers: set[int] = set()

    with obs.span("ppi.stage1", tasks=len(tasks), workers=len(workers)) as s1:
        for task in tasks:
            tloc = np.array([task.location.x, task.location.y])
            for worker in workers_for(task):
                bound = theorem2_bound(
                    worker.detour_budget_km, task.deadline, current_time, worker.speed_km_per_min
                )
                if bound <= 0 or len(worker.predicted_xy) == 0:
                    continue
                b_set = feasible_prediction_points(worker.predicted_xy, tloc, cfg.a, bound)
                score = len(b_set) * worker.matching_rate
                min_b = float(b_set.min()) if len(b_set) else np.inf
                if score >= 1.0:
                    stage1_edges.append((task.task_id, worker.worker_id, 1.0 / (min_b + cfg.eps_weight)))
                else:
                    deferred.append(
                        _Candidate(task_id=task.task_id, worker_id=worker.worker_id, score=score, min_b=min_b)
                    )

        for t_id, w_id, weight in solve(stage1_edges):
            plan.add(AssignmentPair(task_id=t_id, worker_id=w_id, score=weight, stage=1))
            assigned_tasks.add(t_id)
            assigned_workers.add(w_id)
        obs.counter("ppi.stage1.assigned", len(assigned_tasks))
        obs.histogram("ppi.stage1.candidates", len(stage1_edges))
        s1.set(candidates=len(stage1_edges), assigned=len(assigned_tasks))

    # ------------------------------------------------------------------
    # Stage 2 (lines 13-27): descending-confidence chunks of epsilon.
    # ------------------------------------------------------------------
    with obs.span("ppi.stage2", deferred=len(deferred)) as s2:
        stage2_before = len(plan)
        deferred.sort(key=lambda c: c.score, reverse=True)
        chunk: list[tuple[int, int, float]] = []

        def flush_chunk() -> None:
            if not chunk:
                return
            obs.counter("ppi.stage2.chunks")
            for t_id, w_id, weight in solve(chunk):
                if t_id in assigned_tasks or w_id in assigned_workers:
                    continue
                plan.add(AssignmentPair(task_id=t_id, worker_id=w_id, score=weight, stage=2))
                assigned_tasks.add(t_id)
                assigned_workers.add(w_id)
            chunk.clear()

        for cand in deferred:
            if not np.isfinite(cand.min_b):
                # Sorted descending: every later candidate also has empty B.
                break
            if cand.task_id in assigned_tasks or cand.worker_id in assigned_workers:
                continue
            chunk.append((cand.task_id, cand.worker_id, 1.0 / (cand.min_b + cfg.eps_weight)))
            if len(chunk) >= cfg.epsilon:
                flush_chunk()
        flush_chunk()
        stage2_assigned = len(plan) - stage2_before
        obs.counter("ppi.stage2.assigned", stage2_assigned)
        s2.set(assigned=stage2_assigned)

    # ------------------------------------------------------------------
    # Stage 3 (lines 28-34): remaining pairs by plain predicted proximity.
    # ------------------------------------------------------------------
    with obs.span("ppi.stage3") as s3:
        stage3_before = len(plan)
        stage3_edges: list[tuple[int, int, float]] = []
        for task in tasks:
            if task.task_id in assigned_tasks:
                continue
            tloc = np.array([task.location.x, task.location.y])
            for worker in workers_for(task):
                if worker.worker_id in assigned_workers:
                    continue
                if len(worker.predicted_xy) == 0:
                    continue
                bound = theorem2_bound(
                    worker.detour_budget_km, task.deadline, current_time, worker.speed_km_per_min
                )
                if bound <= 0:
                    continue
                dists = np.sqrt(((worker.predicted_xy - tloc) ** 2).sum(axis=1))
                dis_min = float(dists.min())
                if dis_min <= bound:
                    stage3_edges.append((task.task_id, worker.worker_id, 1.0 / (dis_min + cfg.eps_weight)))
        for t_id, w_id, weight in solve(stage3_edges):
            plan.add(AssignmentPair(task_id=t_id, worker_id=w_id, score=weight, stage=3))
            assigned_tasks.add(t_id)
            assigned_workers.add(w_id)
        stage3_assigned = len(plan) - stage3_before
        obs.counter("ppi.stage3.assigned", stage3_assigned)
        s3.set(candidates=len(stage3_edges), assigned=stage3_assigned)

    # Sanity: the plan only references known ids.
    assert plan.task_ids() <= set(task_by_id)
    assert plan.worker_ids() <= set(worker_by_id)
    return plan

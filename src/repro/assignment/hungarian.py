"""The Kuhn-Munkres (KM) assignment solver, from scratch.

Every stage of PPI (Algorithm 4) and every baseline ends in "call the
KM algorithm" [35, 36].  This module implements the O(n^3)
shortest-augmenting-path formulation (Jonker-Volgenant style dual
potentials) for dense rectangular cost matrices, plus a sparse
max-weight-matching convenience that matches the paper's usage: build a
bipartite graph of candidate ``(task, worker, weight)`` edges and take
the maximum-weight matching, leaving vertices unmatched when no
positive-weight edge is chosen.

Streaming callers solve a *sequence* of closely related matchings —
successive serve batches share most of their candidate graph — so
:func:`maximum_weight_matching` optionally carries a
:class:`WarmStartState` across solves.  Two tiers of reuse:

* **identical edge list** — the cached matching is returned outright
  (unconditionally exact; nothing about the problem changed);
* **changed edge list** — the previous solve's column potentials seed
  a fresh JV solve: rows re-derive their potential as a row-minimum
  (the classic column-reduction init, feasible for *any* column
  seeds), previously matched pairs that are still tight keep their
  match, and only the remaining free rows are re-augmented.  The
  result is an optimal matching by complementary slackness; it equals
  the cold solve whenever the optimum is unique — the ordinary case
  with generic float weights, the same caveat
  :class:`repro.dist.shard.ComponentMatcher` already carries.

Correctness is cross-validated against
``scipy.optimize.linear_sum_assignment`` in the test suite; scipy is
never used at runtime.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro import obs


@dataclass(frozen=True, slots=True)
class Edge:
    """A candidate assignment edge in a bipartite task-worker graph."""

    left: int
    right: int
    weight: float


def solve_assignment(cost: np.ndarray, maximize: bool = False) -> tuple[np.ndarray, np.ndarray]:
    """Optimal assignment for a dense ``(n, m)`` cost matrix.

    Returns ``(row_indices, col_indices)`` of the min-cost (or
    max-cost) complete matching of the smaller side, in the same format
    as ``scipy.optimize.linear_sum_assignment``.
    """
    cost = np.asarray(cost, dtype=float)
    if cost.ndim != 2:
        raise ValueError(f"cost matrix must be 2-D, got shape {cost.shape}")
    if cost.size == 0:
        return np.zeros(0, dtype=int), np.zeros(0, dtype=int)
    if not np.all(np.isfinite(cost)):
        raise ValueError("cost matrix must be finite; encode missing edges before solving")
    if maximize:
        cost = -cost

    transposed = cost.shape[0] > cost.shape[1]
    if transposed:
        cost = cost.T
    # Only reach for the clock when a recorder is live: solve_assignment
    # is the innermost hot call of every PPI stage and baseline.
    recorder = obs.get_recorder()
    if recorder.enabled:
        started = time.perf_counter()
        rows, cols = _shortest_augmenting_paths(cost)
        recorder.counter("km.solves")
        recorder.histogram("km.solve_seconds", time.perf_counter() - started)
        recorder.histogram("km.matrix_size", cost.size)
    else:
        rows, cols = _shortest_augmenting_paths(cost)
    if transposed:
        rows, cols = cols, rows
        order = np.argsort(rows)
        rows, cols = rows[order], cols[order]
    return rows, cols


def _shortest_augmenting_paths(cost: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """JV-style assignment for ``n <= m`` rectangular min-cost matrices.

    Maintains dual potentials ``u`` (rows) and ``v`` (columns) and
    augments one row at a time along the shortest alternating path in
    the reduced-cost graph.
    """
    n, m = cost.shape
    u = np.zeros(n + 1)
    v = np.zeros(m + 1)
    # match[j] = row assigned to column j (0 = none); columns are 1-indexed.
    match = np.zeros(m + 1, dtype=int)
    _augment_rows(cost, u, v, match, range(1, n + 1))
    return _extract_matching(match, n, m)


def _augment_rows(
    cost: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
    match: np.ndarray,
    rows: Sequence[int],
) -> None:
    """Augment each 1-indexed row in ``rows`` into the matching in place.

    The core JV loop, factored out so a warm start can seed ``u``/``v``
    and ``match`` and re-augment only the rows whose seeded match was
    lost.  Scratch buffers (``minv``/``used``/``way``) are allocated
    once per solve and reset per row — this is the innermost hot loop
    of every matching call.
    """
    m = cost.shape[1]
    inf = np.inf
    way = np.zeros(m + 1, dtype=int)
    minv = np.empty(m + 1)
    used = np.empty(m + 1, dtype=bool)

    for row in rows:
        match[0] = row
        j0 = 0
        minv.fill(inf)
        used.fill(False)
        while True:
            used[j0] = True
            i0 = match[j0]
            free = ~used[1:]
            reduced = cost[i0 - 1, :] - u[i0] - v[1:]
            improve = free & (reduced < minv[1:])
            minv[1:][improve] = reduced[improve]
            way[1:][improve] = j0
            masked = np.where(free, minv[1:], inf)
            j1 = int(np.argmin(masked)) + 1
            delta = masked[j1 - 1]
            u[match[used]] += delta
            v[used] -= delta
            minv[1:][free] -= delta
            j0 = j1
            if match[j0] == 0:
                break
        # Unwind the augmenting path.
        while j0 != 0:
            j1 = int(way[j0])
            match[j0] = match[j1]
            j0 = j1


def _extract_matching(match: np.ndarray, n: int, m: int) -> tuple[np.ndarray, np.ndarray]:
    rows = np.empty(n, dtype=int)
    cols = np.empty(n, dtype=int)
    idx = 0
    for j in range(1, m + 1):
        if match[j] != 0:
            rows[idx] = match[j] - 1
            cols[idx] = j - 1
            idx += 1
    order = np.argsort(rows[:idx])
    return rows[:idx][order], cols[:idx][order]


def assignment_cost(cost: np.ndarray, rows: np.ndarray, cols: np.ndarray) -> float:
    """Total cost of a solved assignment."""
    return float(np.asarray(cost, dtype=float)[rows, cols].sum())


@dataclass
class WarmStartState:
    """Solver state carried across :func:`maximum_weight_matching` calls.

    Holds the previous solve's edge list (for the exact-reuse fast
    path), its matching, and its column dual potentials keyed by vertex
    id, so the next solve over a mostly unchanged graph re-augments
    only the rows whose matched edge disappeared or went slack.  The
    state is a pure accelerator: any content (stale, empty, from an
    unrelated graph) yields an optimal matching; a fresh state's first
    solve runs the exact cold path.

    Attributes double as accounting for benches and tests:
    ``identical_hits`` counts whole-solve reuses, ``warm_solves`` /
    ``cold_solves`` the seeded vs from-scratch solves, and
    ``rows_reaugmented`` the augmenting paths actually run.
    ``last_tier`` names the tier the most recent solve took
    (``"identical"`` / ``"warm"`` / ``"cold"``) so decision-log
    consumers can label the batch that produced an assignment.
    """

    edges_key: tuple | None = None
    zero_ok: bool = False
    matching: list[tuple[int, int, float]] = field(default_factory=list)
    cols_side: str = "right"
    v_by_id: dict = field(default_factory=dict)
    identical_hits: int = 0
    warm_solves: int = 0
    cold_solves: int = 0
    rows_reaugmented: int = 0
    rows_total: int = 0
    last_tier: str | None = None


def _warm_matching(
    weight: np.ndarray,
    present: np.ndarray,
    lefts: list,
    rights: list,
    warm: WarmStartState,
) -> tuple[np.ndarray, np.ndarray]:
    """One maximize-solve of ``weight`` seeded from ``warm``.

    Works on the min-cost form (negated weights, transposed when rows
    outnumber columns).  Column potentials from the previous solve seed
    ``v`` on columns whose previous match survives; row potentials are
    re-derived as row minima (feasible for any ``v``); surviving tight
    pairs keep their match and only the remaining free rows are
    augmented.  With nothing to seed, everything stays zero — exactly
    the cold solver.  Returns ``(rows, cols)`` in left/right index
    space, same contract as :func:`solve_assignment`.
    """
    cost = -weight
    transposed = cost.shape[0] > cost.shape[1]
    if transposed:
        cost = cost.T
        row_ids, col_ids = rights, lefts
        cols_side = "left"
    else:
        row_ids, col_ids = lefts, rights
        cols_side = "right"
    n, m = cost.shape
    row_pos = {vid: i for i, vid in enumerate(row_ids)}
    col_pos = {vid: j for j, vid in enumerate(col_ids)}

    # Previous matched pairs that still exist in the new graph.
    seeds: list[tuple[int, int, object]] = []
    if warm.cols_side == cols_side:
        for left, right, _w in warm.matching:
            l_id, r_id = (right, left) if transposed else (left, right)
            i, j = row_pos.get(l_id), col_pos.get(r_id)
            if i is None or j is None:
                continue
            if present[i, j] if not transposed else present[j, i]:
                seeds.append((i, j, r_id))

    v = np.zeros(m)
    u = np.zeros(n)
    if seeds:
        for i, j, col_id in seeds:
            v[j] = min(0.0, float(warm.v_by_id.get(col_id, 0.0)))
        # Keep a seeded pair only while it is tight under repaired
        # duals; dropping one resets its column potential, which can
        # un-tighten others, so iterate to a fixed point (pairs only
        # ever leave, so this terminates).
        while True:
            reduced = cost - v[None, :]
            u = reduced.min(axis=1)
            kept: list[tuple[int, int, object]] = []
            dropped = False
            for i, j, col_id in seeds:
                if reduced[i, j] - u[i] == 0.0:
                    kept.append((i, j, col_id))
                else:
                    v[j] = 0.0
                    dropped = True
            seeds = kept
            if not dropped:
                break
        if not seeds:
            u = np.zeros(n)
            v = np.zeros(m)

    u1 = np.zeros(n + 1)
    v1 = np.zeros(m + 1)
    match = np.zeros(m + 1, dtype=int)
    if seeds:
        u1[1:] = u
        v1[1:] = v
        for i, j, _col_id in seeds:
            match[j + 1] = i + 1
    matched_rows = {i for i, _j, _c in seeds}
    free = [i + 1 for i in range(n) if i not in matched_rows]
    _augment_rows(cost, u1, v1, match, free)
    warm.rows_reaugmented += len(free)
    warm.rows_total += n
    if seeds:
        warm.warm_solves += 1
        warm.last_tier = "warm"
    else:
        warm.cold_solves += 1
        warm.last_tier = "cold"

    warm.cols_side = cols_side
    warm.v_by_id = {col_ids[j]: float(v1[j + 1]) for j in range(m)}
    rows, cols = _extract_matching(match, n, m)
    if transposed:
        rows, cols = cols, rows
        order = np.argsort(rows)
        rows, cols = rows[order], cols[order]
    return rows, cols


def maximum_weight_matching(
    edges: Sequence[Edge | tuple[int, int, float]],
    allow_zero_weight: bool = False,
    warm: WarmStartState | None = None,
) -> list[tuple[int, int, float]]:
    """Maximum-weight bipartite matching over a sparse edge list.

    This is "call the KM algorithm on ``M_c``" from Algorithm 4: the
    candidate pairs form a bipartite graph; vertices may stay
    unmatched.  Weights must be non-negative (PPI uses ``1 / minB`` and
    reciprocal detours, both positive).

    Returns the chosen ``(left, right, weight)`` edges.  Edges of zero
    weight are dropped unless ``allow_zero_weight`` — an unmatched
    vertex and a zero-weight match are equivalent under the objective.

    ``warm`` carries solver state across calls (see
    :class:`WarmStartState`): an unchanged edge list returns the cached
    matching outright, and a changed one seeds the solve with the
    previous duals, re-augmenting only affected rows.  Equal to the
    cold solve whenever the optimum is unique (module docstring).
    """
    normalized = [e if isinstance(e, Edge) else Edge(*e) for e in edges]
    if obs.enabled():
        obs.histogram("km.edges", len(normalized))
    if warm is not None:
        key = tuple((e.left, e.right, e.weight) for e in normalized)
        if warm.edges_key == key and warm.zero_ok == allow_zero_weight:
            warm.identical_hits += 1
            warm.last_tier = "identical"
            return list(warm.matching)
    if not normalized:
        if warm is not None:
            warm.edges_key = key
            warm.zero_ok = allow_zero_weight
            warm.matching = []
        return []
    if any(e.weight < 0 for e in normalized):
        raise ValueError("edge weights must be non-negative")

    lefts = sorted({e.left for e in normalized})
    rights = sorted({e.right for e in normalized})
    left_pos = {v: i for i, v in enumerate(lefts)}
    right_pos = {v: i for i, v in enumerate(rights)}

    weight = np.zeros((len(lefts), len(rights)))
    present = np.zeros((len(lefts), len(rights)), dtype=bool)
    for e in normalized:
        i, j = left_pos[e.left], right_pos[e.right]
        if e.weight > weight[i, j] or not present[i, j]:
            weight[i, j] = max(weight[i, j], e.weight)
        present[i, j] = True

    if warm is not None:
        rows, cols = _warm_matching(weight, present, lefts, rights, warm)
    else:
        rows, cols = solve_assignment(weight, maximize=True)
    chosen: list[tuple[int, int, float]] = []
    for r, c in zip(rows, cols):
        if not present[r, c]:
            continue
        w = float(weight[r, c])
        if w <= 0.0 and not allow_zero_weight:
            continue
        chosen.append((lefts[r], rights[c], w))
    if warm is not None:
        warm.edges_key = key
        warm.zero_ok = allow_zero_weight
        warm.matching = list(chosen)
    return chosen

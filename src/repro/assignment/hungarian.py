"""The Kuhn-Munkres (KM) assignment solver, from scratch.

Every stage of PPI (Algorithm 4) and every baseline ends in "call the
KM algorithm" [35, 36].  This module implements the O(n^3)
shortest-augmenting-path formulation (Jonker-Volgenant style dual
potentials) for dense rectangular cost matrices, plus a sparse
max-weight-matching convenience that matches the paper's usage: build a
bipartite graph of candidate ``(task, worker, weight)`` edges and take
the maximum-weight matching, leaving vertices unmatched when no
positive-weight edge is chosen.

Correctness is cross-validated against
``scipy.optimize.linear_sum_assignment`` in the test suite; scipy is
never used at runtime.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro import obs


@dataclass(frozen=True, slots=True)
class Edge:
    """A candidate assignment edge in a bipartite task-worker graph."""

    left: int
    right: int
    weight: float


def solve_assignment(cost: np.ndarray, maximize: bool = False) -> tuple[np.ndarray, np.ndarray]:
    """Optimal assignment for a dense ``(n, m)`` cost matrix.

    Returns ``(row_indices, col_indices)`` of the min-cost (or
    max-cost) complete matching of the smaller side, in the same format
    as ``scipy.optimize.linear_sum_assignment``.
    """
    cost = np.asarray(cost, dtype=float)
    if cost.ndim != 2:
        raise ValueError(f"cost matrix must be 2-D, got shape {cost.shape}")
    if cost.size == 0:
        return np.zeros(0, dtype=int), np.zeros(0, dtype=int)
    if not np.all(np.isfinite(cost)):
        raise ValueError("cost matrix must be finite; encode missing edges before solving")
    if maximize:
        cost = -cost

    transposed = cost.shape[0] > cost.shape[1]
    if transposed:
        cost = cost.T
    # Only reach for the clock when a recorder is live: solve_assignment
    # is the innermost hot call of every PPI stage and baseline.
    recorder = obs.get_recorder()
    if recorder.enabled:
        started = time.perf_counter()
        rows, cols = _shortest_augmenting_paths(cost)
        recorder.counter("km.solves")
        recorder.histogram("km.solve_seconds", time.perf_counter() - started)
        recorder.histogram("km.matrix_size", cost.size)
    else:
        rows, cols = _shortest_augmenting_paths(cost)
    if transposed:
        rows, cols = cols, rows
        order = np.argsort(rows)
        rows, cols = rows[order], cols[order]
    return rows, cols


def _shortest_augmenting_paths(cost: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """JV-style assignment for ``n <= m`` rectangular min-cost matrices.

    Maintains dual potentials ``u`` (rows) and ``v`` (columns) and
    augments one row at a time along the shortest alternating path in
    the reduced-cost graph.
    """
    n, m = cost.shape
    inf = np.inf
    u = np.zeros(n + 1)
    v = np.zeros(m + 1)
    # match[j] = row assigned to column j (0 = none); columns are 1-indexed.
    match = np.zeros(m + 1, dtype=int)
    way = np.zeros(m + 1, dtype=int)

    for row in range(1, n + 1):
        match[0] = row
        j0 = 0
        minv = np.full(m + 1, inf)
        used = np.zeros(m + 1, dtype=bool)
        while True:
            used[j0] = True
            i0 = match[j0]
            free = ~used[1:]
            reduced = cost[i0 - 1, :] - u[i0] - v[1:]
            improve = free & (reduced < minv[1:])
            minv[1:][improve] = reduced[improve]
            way[1:][improve] = j0
            masked = np.where(free, minv[1:], inf)
            j1 = int(np.argmin(masked)) + 1
            delta = masked[j1 - 1]
            u[match[used]] += delta
            v[used] -= delta
            minv[1:][free] -= delta
            j0 = j1
            if match[j0] == 0:
                break
        # Unwind the augmenting path.
        while j0 != 0:
            j1 = int(way[j0])
            match[j0] = match[j1]
            j0 = j1

    rows = np.empty(n, dtype=int)
    cols = np.empty(n, dtype=int)
    idx = 0
    for j in range(1, m + 1):
        if match[j] != 0:
            rows[idx] = match[j] - 1
            cols[idx] = j - 1
            idx += 1
    order = np.argsort(rows[:idx])
    return rows[:idx][order], cols[:idx][order]


def assignment_cost(cost: np.ndarray, rows: np.ndarray, cols: np.ndarray) -> float:
    """Total cost of a solved assignment."""
    return float(np.asarray(cost, dtype=float)[rows, cols].sum())


def maximum_weight_matching(
    edges: Sequence[Edge | tuple[int, int, float]],
    allow_zero_weight: bool = False,
) -> list[tuple[int, int, float]]:
    """Maximum-weight bipartite matching over a sparse edge list.

    This is "call the KM algorithm on ``M_c``" from Algorithm 4: the
    candidate pairs form a bipartite graph; vertices may stay
    unmatched.  Weights must be non-negative (PPI uses ``1 / minB`` and
    reciprocal detours, both positive).

    Returns the chosen ``(left, right, weight)`` edges.  Edges of zero
    weight are dropped unless ``allow_zero_weight`` — an unmatched
    vertex and a zero-weight match are equivalent under the objective.
    """
    normalized = [e if isinstance(e, Edge) else Edge(*e) for e in edges]
    obs.histogram("km.edges", len(normalized))
    if not normalized:
        return []
    if any(e.weight < 0 for e in normalized):
        raise ValueError("edge weights must be non-negative")

    lefts = sorted({e.left for e in normalized})
    rights = sorted({e.right for e in normalized})
    left_pos = {v: i for i, v in enumerate(lefts)}
    right_pos = {v: i for i, v in enumerate(rights)}

    weight = np.zeros((len(lefts), len(rights)))
    present = np.zeros((len(lefts), len(rights)), dtype=bool)
    for e in normalized:
        i, j = left_pos[e.left], right_pos[e.right]
        if e.weight > weight[i, j] or not present[i, j]:
            weight[i, j] = max(weight[i, j], e.weight)
        present[i, j] = True

    rows, cols = solve_assignment(weight, maximize=True)
    chosen: list[tuple[int, int, float]] = []
    for r, c in zip(rows, cols):
        if not present[r, c]:
            continue
        w = float(weight[r, c])
        if w <= 0.0 and not allow_zero_weight:
            continue
        chosen.append((lefts[r], rights[c], w))
    return chosen

"""Meta-learning: learning tasks, MAML, GTMC, TAML, and the CTML baseline.

A *learning task* (``Gamma_i``) is "predict worker ``w_i``'s mobility
from their history" — one per worker.  GTMC (Algorithm 1) clusters
learning tasks into a learning task tree via potential-game
best-response dynamics; TAML (Algorithm 2) meta-trains an
initialisation per tree node; Meta-Training (Algorithm 3) is the
MAML-style inner/outer loop run at the leaves.
"""

from repro.meta.learning_task import LearningTask, split_support_query
from repro.meta.maml import (
    MAMLConfig,
    adapt,
    meta_train,
    evaluate_adapted,
    learning_path,
)
from repro.meta.task_tree import LearningTaskTree
from repro.meta.gtmc import GTMCConfig, gtmc_cluster, kmeans_multilevel_cluster
from repro.meta.taml import TAMLConfig, taml_train, place_learning_task
from repro.meta.ctml import CTMLConfig, ctml_train, CTMLModelBank

__all__ = [
    "LearningTask",
    "split_support_query",
    "MAMLConfig",
    "adapt",
    "meta_train",
    "evaluate_adapted",
    "learning_path",
    "LearningTaskTree",
    "GTMCConfig",
    "gtmc_cluster",
    "kmeans_multilevel_cluster",
    "TAMLConfig",
    "taml_train",
    "place_learning_task",
    "CTMLConfig",
    "ctml_train",
    "CTMLModelBank",
]

"""CTML baseline: clustered task-aware meta-learning (Peng & Pan, 2023).

The comparison algorithm of Section IV-A: learning tasks are embedded
by their input-data features and parameter-update learning paths,
clustered with *soft* k-means, and MAML runs inside each cluster.  A
task's initialisation is the responsibility-weighted blend of the
cluster initialisations, which is CTML's signature soft assignment.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.cluster.soft_kmeans import soft_kmeans
from repro.meta.features import distribution_embedding, path_embedding
from repro.meta.learning_task import LearningTask
from repro.meta.maml import LossFn, MAMLConfig, meta_train
from repro.nn.module import Module


@dataclass(frozen=True, slots=True)
class CTMLConfig:
    """CTML knobs: cluster count, soft-assignment stiffness, MAML loop."""

    n_clusters: int = 3
    beta: float = 5.0
    path_dim: int = 32
    maml: MAMLConfig = MAMLConfig()

    def __post_init__(self) -> None:
        if self.n_clusters < 1:
            raise ValueError("need at least one cluster")


@dataclass
class CTMLModelBank:
    """Trained CTML state: per-cluster initialisations + soft assignments.

    ``initializations[c]`` is the state dict of cluster ``c``;
    ``responsibilities`` maps each training worker id to its ``(k,)``
    soft membership.  ``blended_init`` produces the weighted-average
    initialisation for any responsibility vector.
    """

    initializations: list[dict[str, np.ndarray]]
    responsibilities: dict[int, np.ndarray]
    centers: np.ndarray
    embedding_fn: Callable[[LearningTask, Mapping[int, np.ndarray] | None], np.ndarray]
    beta: float

    def blended_init(self, resp: np.ndarray) -> dict[str, np.ndarray]:
        resp = np.asarray(resp, dtype=float)
        if resp.shape != (len(self.initializations),):
            raise ValueError("responsibility vector length mismatch")
        total = float(resp.sum())
        if total <= 0:
            resp = np.full_like(resp, 1.0 / len(resp))
        else:
            resp = resp / total
        keys = self.initializations[0].keys()
        return {
            k: sum(r * init[k] for r, init in zip(resp, self.initializations))
            for k in keys
        }

    def responsibilities_for(
        self, task: LearningTask, paths: Mapping[int, np.ndarray] | None = None
    ) -> np.ndarray:
        """Soft membership of an unseen task against the trained centres."""
        emb = self.embedding_fn(task, paths)
        d2 = ((self.centers - emb[None, :]) ** 2).sum(axis=1)
        logits = -self.beta * d2
        logits -= logits.max()
        resp = np.exp(logits)
        return resp / resp.sum()

    def init_for(
        self, task: LearningTask, paths: Mapping[int, np.ndarray] | None = None
    ) -> dict[str, np.ndarray]:
        """Blended initialisation for a task.

        Training workers reuse the responsibilities recorded during
        clustering (their embedding included the learning path);
        unseen (newcomer) tasks are embedded on the fly, with ``paths``
        optionally supplying their probe path.
        """
        stored = self.responsibilities.get(task.worker_id)
        if stored is not None:
            return self.blended_init(stored)
        return self.blended_init(self.responsibilities_for(task, paths))


def _ctml_embedding(
    task: LearningTask, paths: Mapping[int, np.ndarray] | None, path_dim: int
) -> np.ndarray:
    """CTML's task embedding: input-feature moments + learning path."""
    parts = [distribution_embedding(task)]
    if paths is not None and task.worker_id in paths:
        parts.append(path_embedding(paths[task.worker_id], dim=path_dim))
    else:
        parts.append(np.zeros(path_dim))
    return np.concatenate(parts)


def ctml_train(
    tasks: Sequence[LearningTask],
    paths: Mapping[int, np.ndarray],
    model_factory: Callable[[], Module],
    loss_fn: LossFn,
    config: CTMLConfig | None = None,
    rng: np.random.Generator | None = None,
) -> CTMLModelBank:
    """Cluster softly, meta-train per cluster, return the model bank."""
    cfg = config if config is not None else CTMLConfig()
    rng = rng if rng is not None else np.random.default_rng(0)
    if not tasks:
        raise ValueError("ctml_train needs at least one learning task")

    embeddings = np.stack([_ctml_embedding(t, paths, cfg.path_dim) for t in tasks])
    # Standardise so no single feature dominates the distances.
    mu = embeddings.mean(axis=0)
    sd = embeddings.std(axis=0)
    normed = (embeddings - mu) / np.maximum(sd, 1e-9)
    clustering = soft_kmeans(normed, k=cfg.n_clusters, beta=cfg.beta, rng=rng)

    # Warm-start: a shared base meta-trained on everything, so the
    # per-cluster initialisations stay in one loss basin and their
    # responsibility-weighted blends remain meaningful (blending
    # independently trained networks is destructive).
    base = model_factory()
    base_iters = max(cfg.maml.iterations // 3, 1)
    base_cfg = replace(cfg.maml, iterations=base_iters)
    meta_train(base, list(tasks), base_cfg, loss_fn, rng=rng)
    base_state = base.state_dict()

    initializations: list[dict[str, np.ndarray]] = []
    n_clusters = clustering.centers.shape[0]
    cluster_cfg = replace(cfg.maml, iterations=cfg.maml.iterations)
    for c in range(n_clusters):
        members = [t for t, lab in zip(tasks, clustering.labels) if lab == c]
        model = model_factory()
        model.load_state_dict(base_state)
        if members:
            meta_train(model, members, cluster_cfg, loss_fn, rng=rng)
        initializations.append(model.state_dict())

    responsibilities = {
        t.worker_id: clustering.responsibilities[i] for i, t in enumerate(tasks)
    }

    def embedding_fn(task: LearningTask, p: Mapping[int, np.ndarray] | None) -> np.ndarray:
        raw = _ctml_embedding(task, p, cfg.path_dim)
        return (raw - mu) / np.maximum(sd, 1e-9)

    return CTMLModelBank(
        initializations=initializations,
        responsibilities=responsibilities,
        centers=clustering.centers,
        embedding_fn=embedding_fn,
        beta=cfg.beta,
    )

"""Learning tasks: one per worker (Section III-B).

A learning task ``Gamma_i`` bundles worker ``w_i``'s supervised
trajectory windows — a support set for adaptation and a query set for
meta-evaluation — together with the clustering features GTMC needs:
the raw location sample for distribution similarity and the POI
feature sequence for spatial similarity.  (The learning-path feature
is computed against a probe meta-learner, see
:func:`repro.meta.maml.learning_path`.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class LearningTask:
    """Per-worker meta-learning unit.

    Attributes
    ----------
    worker_id:
        The worker this learning task predicts.
    support_x / support_y:
        Adaptation windows, shapes ``(n_s, seq_in, 2)`` and
        ``(n_s, seq_out, 2)`` in normalised coordinates.
    query_x / query_y:
        Meta-evaluation windows with the same layout.
    location_sample:
        ``(m, 2)`` raw planar points drawn from the worker's history —
        the empirical distribution ``Sim_d`` compares.
    poi_features:
        ``(p, 3)`` rows ``<x, y, category>`` — the POI sequence
        ``V^(i)`` that ``Sim_s`` compares.
    """

    worker_id: int
    support_x: np.ndarray
    support_y: np.ndarray
    query_x: np.ndarray
    query_y: np.ndarray
    location_sample: np.ndarray = field(default_factory=lambda: np.zeros((0, 2)))
    poi_features: np.ndarray = field(default_factory=lambda: np.zeros((0, 3)))

    def __post_init__(self) -> None:
        self.support_x = np.asarray(self.support_x, dtype=float)
        self.support_y = np.asarray(self.support_y, dtype=float)
        self.query_x = np.asarray(self.query_x, dtype=float)
        self.query_y = np.asarray(self.query_y, dtype=float)
        for name, arr in (("support_x", self.support_x), ("query_x", self.query_x)):
            if arr.ndim != 3:
                raise ValueError(f"{name} must be (n, seq, 2), got {arr.shape}")
        if len(self.support_x) != len(self.support_y):
            raise ValueError("support x/y sizes differ")
        if len(self.query_x) != len(self.query_y):
            raise ValueError("query x/y sizes differ")
        if len(self.support_x) == 0:
            raise ValueError("a learning task needs a non-empty support set")

    @property
    def seq_in(self) -> int:
        return self.support_x.shape[1]

    @property
    def seq_out(self) -> int:
        return self.support_y.shape[1]

    def support_batch(self, size: int, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        """A random mini-batch from the support set (with replacement
        only when the set is smaller than ``size``)."""
        n = len(self.support_x)
        if size >= n:
            return self.support_x, self.support_y
        idx = rng.choice(n, size=size, replace=False)
        return self.support_x[idx], self.support_y[idx]


def split_support_query(
    x: np.ndarray,
    y: np.ndarray,
    query_fraction: float = 0.25,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Random support/query split of a worker's windows.

    Guarantees at least one window on each side (the query side may be
    empty only when there is a single window in total).
    """
    if not 0.0 < query_fraction < 1.0:
        raise ValueError("query_fraction must lie in (0, 1)")
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if len(x) != len(y):
        raise ValueError("x and y must align")
    n = len(x)
    if n == 0:
        raise ValueError("no windows to split")
    rng = rng if rng is not None else np.random.default_rng(0)
    idx = rng.permutation(n)
    n_query = min(max(int(round(n * query_fraction)), 1), n - 1) if n > 1 else 0
    query_idx = idx[:n_query]
    support_idx = idx[n_query:]
    return x[support_idx], y[support_idx], x[query_idx], y[query_idx]

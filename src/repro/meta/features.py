"""Clustering features: similarity matrices and vector embeddings.

GTMC consumes per-factor similarity matrices (Eqs. 1-3); the
GTTAML-GT and CTML baselines need vector embeddings of the same three
factors.  This module builds both from a set of learning tasks plus
their probe learning paths.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.meta.learning_task import LearningTask
from repro.similarity.distribution import pairwise_sliced_wasserstein
from repro.similarity.learning_path import learning_path_similarity
from repro.similarity.quality import (
    finalize_similarity_matrix,
    normalize_similarity_matrix,
    similarity_matrix,
)
from repro.similarity.spatial import spatial_similarity

FACTOR_NAMES = ("distribution", "spatial", "learning_path")


def build_similarity_matrices(
    tasks: Sequence[LearningTask],
    paths: Mapping[int, np.ndarray] | None = None,
    factors: Sequence[str] = FACTOR_NAMES,
    rng: np.random.Generator | None = None,
    spatial_bandwidth_km: float = 1.0,
) -> dict[str, np.ndarray]:
    """Normalised ``(n, n)`` similarity matrices for the requested factors.

    ``paths`` maps worker ids to their ``(k, p)`` probe gradient paths
    (required when ``"learning_path"`` is requested; see
    :func:`repro.meta.maml.learning_path`).
    """
    seed = int(rng.integers(2**31)) if rng is not None else 0
    out: dict[str, np.ndarray] = {}
    for factor in factors:
        if factor == "distribution":
            # The projection directions are shared across every pair (one
            # consistent metric); each task's sample is projected and
            # sorted once, not once per pair.
            distances = pairwise_sliced_wasserstein(
                [t.location_sample for t in tasks],
                rng=np.random.default_rng(seed),
            )
            out[factor] = finalize_similarity_matrix(1.0 / (1.0 + distances))
        elif factor == "spatial":
            out[factor] = similarity_matrix(
                list(tasks),
                lambda a, b: spatial_similarity(
                    a.poi_features, b.poi_features, bandwidth_km=spatial_bandwidth_km
                ),
            )
        elif factor == "learning_path":
            if paths is None:
                raise ValueError("learning_path similarity requires probe gradient paths")
            missing = [t.worker_id for t in tasks if t.worker_id not in paths]
            if missing:
                raise KeyError(f"no learning path for workers {missing[:5]}")
            out[factor] = similarity_matrix(
                list(tasks),
                lambda a, b: learning_path_similarity(paths[a.worker_id], paths[b.worker_id]),
            )
        else:
            raise ValueError(f"unknown factor '{factor}'")
    return out


def distribution_embedding(task: LearningTask) -> np.ndarray:
    """Moment embedding of a task's location distribution.

    Mean, standard deviation, and correlation of the planar sample —
    the sufficient statistics a Gaussian view of the distribution would
    compare, giving k-means a faithful stand-in for ``Sim_d``.
    """
    pts = np.asarray(task.location_sample, dtype=float).reshape(-1, 2)
    if len(pts) == 0:
        return np.zeros(5)
    mean = pts.mean(axis=0)
    std = pts.std(axis=0)
    if len(pts) > 1 and std[0] > 1e-9 and std[1] > 1e-9:
        corr = float(np.corrcoef(pts[:, 0], pts[:, 1])[0, 1])
    else:
        corr = 0.0
    return np.array([mean[0], mean[1], std[0], std[1], corr])


def spatial_embedding(task: LearningTask, n_categories: int = 8) -> np.ndarray:
    """POI footprint embedding: mean location + category histogram."""
    feats = np.asarray(task.poi_features, dtype=float).reshape(-1, 3)
    if len(feats) == 0:
        return np.zeros(2 + n_categories)
    mean_xy = feats[:, :2].mean(axis=0)
    hist = np.zeros(n_categories)
    cats = feats[:, 2].astype(int)
    for c in cats:
        if 0 <= c < n_categories:
            hist[c] += 1
    hist /= max(hist.sum(), 1.0)
    return np.concatenate([mean_xy, hist])


def path_embedding(path: np.ndarray, dim: int = 32, seed: int = 12345) -> np.ndarray:
    """Fixed random projection of a gradient path to exactly ``dim`` dims.

    Per-step gradients are L2-normalised first so the embedding
    reflects direction (what Eq. 2's cosine compares), not magnitude,
    then projected and averaged over steps so paths of different
    lengths embed into the same space.  The projection matrix is
    seeded deterministically so every task is embedded consistently.
    """
    p = np.atleast_2d(np.asarray(path, dtype=float))
    norms = np.linalg.norm(p, axis=1, keepdims=True)
    p = p / np.maximum(norms, 1e-12)
    rng = np.random.default_rng(seed)
    proj = rng.normal(size=(p.shape[1], dim)) / np.sqrt(dim)
    return (p @ proj).mean(axis=0)


def build_factor_embeddings(
    tasks: Sequence[LearningTask],
    paths: Mapping[int, np.ndarray] | None = None,
    factors: Sequence[str] = FACTOR_NAMES,
    path_dim: int = 32,
) -> dict[str, np.ndarray]:
    """``(n, d)`` embeddings per factor for the k-means ablation."""
    out: dict[str, np.ndarray] = {}
    for factor in factors:
        if factor == "distribution":
            out[factor] = np.stack([distribution_embedding(t) for t in tasks])
        elif factor == "spatial":
            out[factor] = np.stack([spatial_embedding(t) for t in tasks])
        elif factor == "learning_path":
            if paths is None:
                raise ValueError("learning_path embedding requires probe gradient paths")
            out[factor] = np.stack([path_embedding(paths[t.worker_id], dim=path_dim) for t in tasks])
        else:
            raise ValueError(f"unknown factor '{factor}'")
    return out


def renormalize(matrices: Mapping[str, np.ndarray]) -> dict[str, np.ndarray]:
    """Re-run min-max normalisation on a dict of similarity matrices."""
    return {k: normalize_similarity_matrix(v) for k, v in matrices.items()}

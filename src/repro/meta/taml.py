"""Task Adaptive Meta-learning over the learning task tree (Algorithm 2).

Recursive training: leaves run Meta-Training (Algorithm 3) and interior
nodes fold their children's results upward — each node's ``theta``
starts from its parent's and, after the children train, the parent
takes an aggregation step along the children's average direction
(line 6: ``theta <- theta - alpha * grad(L^avg)``; with first-order
semantics the realised child updates *are* the accumulated negative
gradients, so the parent steps toward the mean child parameters).

Also implements newcomer placement: a depth-first post-order traversal
that initialises a new worker's model from the most similar node
(Section III-B, closing paragraphs).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Mapping

import numpy as np

from repro import obs
from repro.meta.learning_task import LearningTask
from repro.meta.maml import LossFn, MAMLConfig, meta_train
from repro.meta.task_tree import LearningTaskTree
from repro.nn.module import Module


@dataclass(frozen=True, slots=True)
class TAMLConfig:
    """Algorithm 2 configuration.

    ``maml`` configures the per-leaf Meta-Training; ``tree_rate`` is
    the interior-node aggregation step toward the mean child
    parameters (1.0 reproduces "take the averaged child update in
    full"; smaller values damp the upward propagation).

    ``fast_path`` overrides ``maml.fast_path`` for the whole tree when
    set (``None`` leaves the per-leaf MAML setting in charge): ``True``
    /``False``/``"auto"`` select the fused-BPTT engine exactly as in
    :class:`~repro.meta.maml.MAMLConfig`.
    """

    maml: MAMLConfig = MAMLConfig()
    tree_rate: float = 1.0
    fast_path: bool | str | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.tree_rate <= 1.0:
            raise ValueError("tree_rate must lie in (0, 1]")
        if self.fast_path not in (None, True, False, "auto"):
            raise ValueError("fast_path must be None, True, False, or 'auto'")

    def resolved_maml(self) -> MAMLConfig:
        """The per-leaf MAML config with any ``fast_path`` override applied."""
        if self.fast_path is None:
            return self.maml
        return replace(self.maml, fast_path=self.fast_path)


def taml_train(
    tree: LearningTaskTree,
    model_factory: Callable[[], Module],
    loss_fn: LossFn,
    config: TAMLConfig | None = None,
    rng: np.random.Generator | None = None,
) -> float:
    """Train the whole tree in place; returns the root's average loss.

    Every node ends with a populated ``theta`` state dict.  Leaves are
    meta-trained from their parent's initialisation; interior nodes
    aggregate children bottom-up.
    """
    cfg = config if config is not None else TAMLConfig()
    rng = rng if rng is not None else np.random.default_rng(0)
    if tree.theta is None:
        # Root initialisation: a fresh model seeds theta_0.
        tree.theta = model_factory().state_dict()
    with obs.span("taml.train", nodes=tree.n_nodes(), depth=tree.depth()):
        obs.gauge("taml.tree_depth", tree.depth())
        obs.gauge("taml.tree_nodes", tree.n_nodes())
        return _train_node(tree, model_factory, loss_fn, cfg, rng)


def _train_node(
    node: LearningTaskTree,
    model_factory: Callable[[], Module],
    loss_fn: LossFn,
    cfg: TAMLConfig,
    rng: np.random.Generator,
    depth: int = 0,
) -> float:
    assert node.theta is not None
    if node.is_leaf:
        with obs.span("taml.leaf", depth=depth, tasks=len(node.cluster)):
            obs.counter("taml.leaves_trained")
            model = model_factory()
            model.load_state_dict(node.theta)
            history = meta_train(model, node.cluster, cfg.resolved_maml(), loss_fn, rng=rng)
            node.theta = model.state_dict()
            loss = history[-1] if history else 0.0
            obs.histogram("taml.leaf_loss", loss)
            return loss

    losses: list[float] = []
    with obs.span("taml.interior", depth=depth, children=len(node.children)):
        for child in node.children:
            child.theta = {k: v.copy() for k, v in node.theta.items()}
            losses.append(_train_node(child, model_factory, loss_fn, cfg, rng, depth + 1))
        avg_loss = float(np.mean(losses))

    # Line 6: step the node toward the children's mean parameters.
    mean_child = {
        key: np.mean([child.theta[key] for child in node.children], axis=0)
        for key in node.theta
    }
    node.theta = {
        key: node.theta[key] + cfg.tree_rate * (mean_child[key] - node.theta[key])
        for key in node.theta
    }
    return avg_loss


def place_learning_task(
    tree: LearningTaskTree,
    newcomer: LearningTask,
    similarity_fn: Callable[[LearningTask, LearningTask], float],
) -> LearningTaskTree:
    """Find the tree node most similar to a newly arrived worker.

    Depth-first post-order over the trained tree, scoring each node by
    the average similarity between the newcomer and the node's leaf-
    covered learning tasks; returns the best node (whose ``theta``
    should initialise the newcomer's model).
    """
    if tree.theta is None:
        raise ValueError("place_learning_task requires a trained tree")
    best_node = tree
    best_score = -np.inf
    for node in tree.iter_postorder():
        members = _covered_tasks(node)
        if not members:
            continue
        score = float(np.mean([similarity_fn(newcomer, t) for t in members]))
        if score > best_score:
            best_score = score
            best_node = node
    return best_node


def _covered_tasks(node: LearningTaskTree) -> list[LearningTask]:
    """Learning tasks under a node (its own cluster at leaves)."""
    if node.is_leaf:
        return list(node.cluster)
    out: list[LearningTask] = []
    for child in node.children:
        out.extend(_covered_tasks(child))
    return out


def initialize_from_tree(
    tree: LearningTaskTree,
    worker_id: int,
    model_factory: Callable[[], Module],
) -> Module:
    """Build a model initialised from the leaf containing ``worker_id``.

    Falls back to the root initialisation when the worker is unknown
    (e.g. before newcomer placement has been run).
    """
    leaf = tree.find_leaf_for_worker(worker_id)
    theta: Mapping[str, np.ndarray] | None = leaf.theta if leaf is not None else tree.theta
    model = model_factory()
    if theta is not None:
        model.load_state_dict(dict(theta))
    return model

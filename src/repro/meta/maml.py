"""Meta-Training (Algorithm 3): first-order MAML over a task cluster.

Per iteration: sample ``m`` learning tasks, adapt ``k`` inner SGD steps
on each task's support set from the shared initialisation, compute the
query losses of the adapted models, and move the initialisation along
the averaged query gradient.  The outer gradient is taken at the
adapted parameters (first-order MAML); a Reptile-style outer update is
available for the ablation benches (``outer="reptile"``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.meta.learning_task import LearningTask
from repro.nn.module import (
    Module,
    apply_gradient_step,
    clone_parameters,
    flatten_gradients,
)
from repro.nn.tensor import Tensor, grad_of

LossFn = Callable[[Tensor, Tensor], Tensor]


@dataclass(frozen=True, slots=True)
class MAMLConfig:
    """Hyper-parameters of Algorithm 3.

    ``meta_lr`` is the paper's alpha, ``inner_lr`` its beta,
    ``inner_steps`` the adaptation count ``k``, ``meta_batch`` the
    sampled task count ``m``, and ``iterations`` the outer-loop length.
    """

    meta_lr: float = 0.05
    inner_lr: float = 0.1
    inner_steps: int = 3
    meta_batch: int = 4
    iterations: int = 30
    support_batch: int = 16
    outer: str = "fomaml"

    def __post_init__(self) -> None:
        if self.meta_lr <= 0 or self.inner_lr <= 0:
            raise ValueError("learning rates must be positive")
        if self.inner_steps < 1 or self.meta_batch < 1 or self.iterations < 1:
            raise ValueError("step/batch/iteration counts must be positive")
        if self.outer not in ("fomaml", "reptile"):
            raise ValueError(f"unknown outer update '{self.outer}'")


def _named_grads(
    loss: Tensor,
    params: Mapping[str, Tensor],
) -> dict[str, np.ndarray]:
    names = list(params)
    grads = grad_of(loss, (params[n] for n in names))
    return dict(zip(names, grads))


def adapt(
    model: Module,
    task: LearningTask,
    loss_fn: LossFn,
    inner_lr: float,
    inner_steps: int,
    init: Mapping[str, Tensor] | None = None,
    support_batch: int | None = None,
    rng: np.random.Generator | None = None,
) -> dict[str, Tensor]:
    """``k`` inner SGD steps on the task's support set.

    Starts from ``init`` (defaults to the model's current parameters)
    and returns the adapted parameter dict; the model itself is never
    mutated.
    """
    params = dict(init) if init is not None else clone_parameters(model)
    params = {k: v.clone(requires_grad=True) for k, v in params.items()}
    rng = rng if rng is not None else np.random.default_rng(0)
    for _ in range(inner_steps):
        if support_batch is not None:
            xb, yb = task.support_batch(support_batch, rng)
        else:
            xb, yb = task.support_x, task.support_y
        pred = model.functional_call(params, Tensor(xb))
        loss = loss_fn(pred, Tensor(yb))
        grads = _named_grads(loss, params)
        params = apply_gradient_step(params, grads, inner_lr)
    return params


def evaluate_adapted(
    model: Module,
    params: Mapping[str, Tensor],
    x: np.ndarray,
    y: np.ndarray,
    loss_fn: LossFn,
) -> float:
    """Loss of a parameter set on given windows (no gradient)."""
    if len(x) == 0:
        return 0.0
    pred = model.functional_call(dict(params), Tensor(np.asarray(x, dtype=float)))
    return float(loss_fn(pred, Tensor(np.asarray(y, dtype=float))).item())


def meta_train(
    model: Module,
    tasks: Sequence[LearningTask],
    config: MAMLConfig,
    loss_fn: LossFn,
    rng: np.random.Generator | None = None,
) -> list[float]:
    """Run Algorithm 3 in place on ``model``; returns per-iteration
    average query losses (the ``L^avg`` the tree propagates)."""
    if not tasks:
        raise ValueError("meta_train needs at least one learning task")
    rng = rng if rng is not None else np.random.default_rng(0)
    history: list[float] = []
    own_params = dict(model.named_parameters())

    for _ in range(config.iterations):
        batch_size = min(config.meta_batch, len(tasks))
        chosen = rng.choice(len(tasks), size=batch_size, replace=False)
        grad_accum: dict[str, np.ndarray] = {n: np.zeros_like(p.data) for n, p in own_params.items()}
        delta_accum: dict[str, np.ndarray] = {n: np.zeros_like(p.data) for n, p in own_params.items()}
        query_losses: list[float] = []

        for idx in chosen:
            task = tasks[int(idx)]
            adapted = adapt(
                model,
                task,
                loss_fn,
                inner_lr=config.inner_lr,
                inner_steps=config.inner_steps,
                support_batch=config.support_batch,
                rng=rng,
            )
            qx, qy = (task.query_x, task.query_y)
            if len(qx) == 0:  # degenerate task: fall back to support windows
                qx, qy = task.support_x, task.support_y
            pred = model.functional_call(adapted, Tensor(qx))
            loss = loss_fn(pred, Tensor(qy))
            query_losses.append(float(loss.item()))
            if config.outer == "fomaml":
                grads = _named_grads(loss, adapted)
                for name in grad_accum:
                    grad_accum[name] += grads[name]
            else:  # reptile: move toward the adapted parameters
                for name in delta_accum:
                    delta_accum[name] += own_params[name].data - adapted[name].data

        if config.outer == "fomaml":
            for name, param in own_params.items():
                param.data = param.data - config.meta_lr * grad_accum[name] / batch_size
        else:
            for name, param in own_params.items():
                param.data = param.data - config.meta_lr * delta_accum[name] / batch_size
        history.append(float(np.mean(query_losses)))
    return history


def learning_path(
    model: Module,
    task: LearningTask,
    loss_fn: LossFn,
    inner_lr: float,
    steps: int,
    init: Mapping[str, Tensor] | None = None,
) -> np.ndarray:
    """The k-step gradient path ``Z^(i)`` of Eq. 2.

    Trains a probe learner on the task for ``steps`` full-support SGD
    steps from ``init`` (default: the model's current parameters) and
    returns the ``(steps, p)`` matrix of flattened gradients observed
    along the way.
    """
    if steps < 1:
        raise ValueError("need at least one step")
    params = dict(init) if init is not None else clone_parameters(model)
    params = {k: v.clone(requires_grad=True) for k, v in params.items()}
    path: list[np.ndarray] = []
    for _ in range(steps):
        pred = model.functional_call(params, Tensor(task.support_x))
        loss = loss_fn(pred, Tensor(task.support_y))
        grads = _named_grads(loss, params)
        path.append(flatten_gradients(grads))
        params = apply_gradient_step(params, grads, inner_lr)
    return np.stack(path)

"""Meta-Training (Algorithm 3): first-order MAML over a task cluster.

Per iteration: sample ``m`` learning tasks, adapt ``k`` inner SGD steps
on each task's support set from the shared initialisation, compute the
query losses of the adapted models, and move the initialisation along
the averaged query gradient.  The outer gradient is taken at the
adapted parameters (first-order MAML); a Reptile-style outer update is
available for the ablation benches (``outer="reptile"``).

Two execution paths produce the same numbers (see ``DESIGN.md`` §8):

* the **reference path** runs every forward/backward through the
  autograd tape of :mod:`repro.nn.tensor`;
* the **fast path** (``MAMLConfig.fast_path``) uses the fused BPTT
  kernels of :mod:`repro.nn.fused` for supported models (the seq2seq
  mobility models) and additionally *batches* the inner loop: all
  sampled workers of a meta-batch adapt in one stacked
  ``(workers, batch, time, features)`` pass, with padding/masking for
  ragged support sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro import obs
from repro.meta.learning_task import LearningTask
from repro.nn import fused
from repro.nn.module import (
    Module,
    apply_gradient_step,
    clone_parameters,
    flatten_gradients,
)
from repro.nn.tensor import Tensor, grad_of

LossFn = Callable[[Tensor, Tensor], Tensor]


@dataclass(frozen=True, slots=True)
class MAMLConfig:
    """Hyper-parameters of Algorithm 3.

    ``meta_lr`` is the paper's alpha, ``inner_lr`` its beta,
    ``inner_steps`` the adaptation count ``k``, ``meta_batch`` the
    sampled task count ``m``, and ``iterations`` the outer-loop length.

    ``fast_path`` selects the execution engine: ``False`` forces the
    autograd-tape reference path, ``True`` requires the fused BPTT
    kernels (raising for unsupported model types), and ``"auto"`` (the
    default) uses them whenever the model is a supported seq2seq
    encoder-decoder and falls back to the tape otherwise.
    """

    meta_lr: float = 0.05
    inner_lr: float = 0.1
    inner_steps: int = 3
    meta_batch: int = 4
    iterations: int = 30
    support_batch: int = 16
    outer: str = "fomaml"
    fast_path: bool | str = "auto"

    def __post_init__(self) -> None:
        if self.meta_lr <= 0 or self.inner_lr <= 0:
            raise ValueError("learning rates must be positive")
        if self.inner_steps < 1 or self.meta_batch < 1 or self.iterations < 1:
            raise ValueError("step/batch/iteration counts must be positive")
        if self.outer not in ("fomaml", "reptile"):
            raise ValueError(f"unknown outer update '{self.outer}'")
        if self.fast_path not in (True, False, "auto"):
            raise ValueError("fast_path must be True, False, or 'auto'")


def resolve_fast_path(setting: bool | str, model: Module) -> bool:
    """Decide whether the fused kernels drive this model's training."""
    if setting is False:
        return False
    supported = fused.supports(model)
    if setting is True and not supported:
        raise ValueError(
            f"fast_path=True but {type(model).__name__} has no fused kernels; "
            "use fast_path='auto' to fall back to the tape"
        )
    return supported


def _named_grads(
    loss: Tensor,
    params: Mapping[str, Tensor],
) -> dict[str, np.ndarray]:
    names = list(params)
    grads = grad_of(loss, (params[n] for n in names))
    return dict(zip(names, grads))


def adapt(
    model: Module,
    task: LearningTask,
    loss_fn: LossFn,
    inner_lr: float,
    inner_steps: int,
    init: Mapping[str, Tensor] | None = None,
    support_batch: int | None = None,
    rng: np.random.Generator | None = None,
    fast_path: bool | str = "auto",
) -> dict[str, Tensor]:
    """``k`` inner SGD steps on the task's support set.

    Starts from ``init`` (defaults to the model's current parameters)
    and returns the adapted parameter dict; the model itself is never
    mutated.  ``fast_path`` selects the fused-BPTT engine (see
    :class:`MAMLConfig`).
    """
    params = dict(init) if init is not None else clone_parameters(model)
    params = {k: v.clone(requires_grad=True) for k, v in params.items()}
    rng = rng if rng is not None else np.random.default_rng(0)
    fast = resolve_fast_path(fast_path, model)
    obs.counter("maml.inner_loop_steps", inner_steps)
    obs.counter("maml.fused_kernel_invocations" if fast else "maml.tape_invocations", inner_steps)
    for _ in range(inner_steps):
        if support_batch is not None:
            xb, yb = task.support_batch(support_batch, rng)
        else:
            xb, yb = task.support_x, task.support_y
        if fast:
            _, grads = fused.loss_and_grads(model, params, xb, yb, loss_fn)
        else:
            pred = model.functional_call(params, Tensor(xb))
            loss = loss_fn(pred, Tensor(yb))
            grads = _named_grads(loss, params)
        params = apply_gradient_step(params, grads, inner_lr)
    return params


def evaluate_adapted(
    model: Module,
    params: Mapping[str, Tensor],
    x: np.ndarray,
    y: np.ndarray,
    loss_fn: LossFn,
) -> float:
    """Loss of a parameter set on given windows (no gradient)."""
    if len(x) == 0:
        return 0.0
    x_arr = np.asarray(x, dtype=float)
    y_arr = np.asarray(y, dtype=float)
    if fused.supports(model):
        pred_arr = fused.seq2seq_predict(model, params, x_arr)
        return float(loss_fn(Tensor(pred_arr), Tensor(y_arr)).item())
    pred = model.functional_call(dict(params), Tensor(x_arr))
    return float(loss_fn(pred, Tensor(y_arr)).item())


def meta_train(
    model: Module,
    tasks: Sequence[LearningTask],
    config: MAMLConfig,
    loss_fn: LossFn,
    rng: np.random.Generator | None = None,
) -> list[float]:
    """Run Algorithm 3 in place on ``model``; returns per-iteration
    average query losses (the ``L^avg`` the tree propagates).

    With ``config.fast_path`` active (and window shapes aligned across
    the sampled tasks) each meta-iteration runs as one stacked fused
    pass: all sampled workers adapt simultaneously through batched
    GEMMs instead of per-worker tape replays.
    """
    if not tasks:
        raise ValueError("meta_train needs at least one learning task")
    rng = rng if rng is not None else np.random.default_rng(0)
    history: list[float] = []
    own_params = dict(model.named_parameters())
    fast = resolve_fast_path(config.fast_path, model)

    with obs.span(
        "maml.meta_train",
        tasks=len(tasks),
        iterations=config.iterations,
        engine="fused" if fast else "tape",
    ):
        for _ in range(config.iterations):
            batch_size = min(config.meta_batch, len(tasks))
            chosen = rng.choice(len(tasks), size=batch_size, replace=False)
            batch_tasks = [tasks[int(idx)] for idx in chosen]
            batchable = fast and len({(t.seq_in, t.seq_out) for t in batch_tasks}) == 1

            obs.counter("maml.meta_iterations")
            obs.counter("maml.batched_iterations" if batchable else "maml.sequential_iterations")
            if batchable:
                query_losses, update = _meta_batch_fused(model, batch_tasks, config, loss_fn, rng, own_params)
            else:
                query_losses, update = _meta_batch_sequential(model, batch_tasks, config, loss_fn, rng, own_params, fast)

            for name, param in own_params.items():
                np.subtract(param.data, config.meta_lr * update[name] / batch_size, out=param.data)
            history.append(float(np.mean(query_losses)))
            obs.histogram("maml.query_loss", history[-1])
    return history


def _query_windows(task: LearningTask) -> tuple[np.ndarray, np.ndarray]:
    """Query windows, falling back to the support set for degenerate tasks."""
    if len(task.query_x) == 0:
        return task.support_x, task.support_y
    return task.query_x, task.query_y


def _meta_batch_sequential(
    model: Module,
    batch_tasks: Sequence[LearningTask],
    config: MAMLConfig,
    loss_fn: LossFn,
    rng: np.random.Generator,
    own_params: Mapping[str, Tensor],
    fast: bool,
) -> tuple[list[float], dict[str, np.ndarray]]:
    """One meta-iteration, task by task (the reference control flow)."""
    accum: dict[str, np.ndarray] = {n: np.zeros_like(p.data) for n, p in own_params.items()}
    query_losses: list[float] = []
    for task in batch_tasks:
        adapted = adapt(
            model,
            task,
            loss_fn,
            inner_lr=config.inner_lr,
            inner_steps=config.inner_steps,
            support_batch=config.support_batch,
            rng=rng,
            fast_path=fast,
        )
        qx, qy = _query_windows(task)
        if fast:
            loss_val, grads = fused.loss_and_grads(model, adapted, qx, qy, loss_fn)
        else:
            pred = model.functional_call(adapted, Tensor(qx))
            loss = loss_fn(pred, Tensor(qy))
            loss_val = float(loss.item())
            grads = _named_grads(loss, adapted) if config.outer == "fomaml" else {}
        query_losses.append(loss_val)
        if config.outer == "fomaml":
            for name in accum:
                accum[name] += grads[name]
        else:  # reptile: move toward the adapted parameters
            for name in accum:
                accum[name] += own_params[name].data - adapted[name].data
    return query_losses, accum


def _meta_batch_fused(
    model: Module,
    batch_tasks: Sequence[LearningTask],
    config: MAMLConfig,
    loss_fn: LossFn,
    rng: np.random.Generator,
    own_params: Mapping[str, Tensor],
) -> tuple[list[float], dict[str, np.ndarray]]:
    """One meta-iteration as stacked fused passes over all sampled workers.

    Support batches are pre-drawn task-major so the RNG stream — and
    therefore every number downstream — matches the sequential path;
    the inner loop then consumes them step-major, adapting the whole
    meta-batch per step through one ``(W, B, T, F)`` BPTT pass on
    stacked ``(W, ...)`` parameters.
    """
    n_workers = len(batch_tasks)
    obs.counter("maml.inner_loop_steps", config.inner_steps * n_workers)
    # One stacked kernel invocation adapts the whole meta-batch per step,
    # plus the final stacked query pass.
    obs.counter("maml.fused_kernel_invocations", config.inner_steps + 1)
    drawn = [
        [task.support_batch(config.support_batch, rng) for _ in range(config.inner_steps)]
        for task in batch_tasks
    ]
    stacked = fused.replicate_params(own_params, n_workers)
    for step in range(config.inner_steps):
        xs = [drawn[w][step][0] for w in range(n_workers)]
        ys = [drawn[w][step][1] for w in range(n_workers)]
        _, grads = fused.batched_loss_and_grads(model, stacked, xs, ys, loss_fn)
        for name in stacked:
            stacked[name] -= config.inner_lr * grads[name]

    queries = [_query_windows(task) for task in batch_tasks]
    query_losses, q_grads = fused.batched_loss_and_grads(
        model, stacked, [q[0] for q in queries], [q[1] for q in queries], loss_fn
    )
    if config.outer == "fomaml":
        update = {name: q_grads[name].sum(axis=0) for name in q_grads}
    else:  # reptile
        update = {
            name: (own_params[name].data[None, ...] - stacked[name]).sum(axis=0)
            for name in stacked
        }
    return query_losses, update


def learning_path(
    model: Module,
    task: LearningTask,
    loss_fn: LossFn,
    inner_lr: float,
    steps: int,
    init: Mapping[str, Tensor] | None = None,
    fast_path: bool | str = "auto",
) -> np.ndarray:
    """The k-step gradient path ``Z^(i)`` of Eq. 2.

    Trains a probe learner on the task for ``steps`` full-support SGD
    steps from ``init`` (default: the model's current parameters) and
    returns the ``(steps, p)`` matrix of flattened gradients observed
    along the way.
    """
    if steps < 1:
        raise ValueError("need at least one step")
    params = dict(init) if init is not None else clone_parameters(model)
    params = {k: v.clone(requires_grad=True) for k, v in params.items()}
    fast = resolve_fast_path(fast_path, model)
    path: list[np.ndarray] = []
    for _ in range(steps):
        if fast:
            _, grads = fused.loss_and_grads(model, params, task.support_x, task.support_y, loss_fn)
        else:
            pred = model.functional_call(params, Tensor(task.support_x))
            loss = loss_fn(pred, Tensor(task.support_y))
            grads = _named_grads(loss, params)
        path.append(flatten_gradients(grads))
        params = apply_gradient_step(params, grads, inner_lr)
    return np.stack(path)

"""Game Theory-based Multi-level Learning Task Clustering (Algorithm 1).

Builds the learning task tree level by level.  At each level ``j`` the
node's cluster is seeded with k-medoids under ``1 / Sim_j`` distances
(line 5), refined to a Nash equilibrium with best-response dynamics
(lines 6-11), and every resulting sub-cluster becomes a child node; a
child whose quality is still below the level's threshold descends to
the next similarity factor (lines 17-18).

``kmeans_multilevel_cluster`` is the GTTAML-GT ablation: the same
multi-level structure with plain k-means on per-factor embeddings and
no game refinement.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro import obs
from repro.cluster.game import best_response_clustering, cluster_quality
from repro.cluster.kmeans import kmeans
from repro.cluster.kmedoids import kmedoids
from repro.meta.learning_task import LearningTask
from repro.meta.task_tree import LearningTaskTree

_EPS = 1e-9


@dataclass(frozen=True)
class GTMCConfig:
    """Knobs of Algorithm 1.

    Attributes
    ----------
    k:
        Sub-clusters to seed per split.
    gamma:
        Singleton-cluster utility (Eq. 4); the paper uses 0.2.
    factors:
        Ordered similarity-factor names (``F^s``); the paper's best
        order is distribution, spatial, learning path (Table IV).
    thresholds:
        Per-level quality thresholds ``Theta_j``: a sub-cluster of
        quality below ``thresholds[j]`` is clustered again with the
        next factor.
    max_rounds:
        Best-response sweep cap (defensive; Theorem 1 converges).
    """

    k: int = 3
    gamma: float = 0.2
    factors: tuple[str, ...] = ("distribution", "spatial", "learning_path")
    thresholds: tuple[float, ...] = field(default=(0.9, 0.9, 0.9))
    max_rounds: int = 100

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be positive")
        if not 0.0 < self.gamma < 1.0:
            raise ValueError("gamma must lie in (0, 1)")
        if not self.factors:
            raise ValueError("need at least one similarity factor")
        if len(self.thresholds) < len(self.factors):
            raise ValueError("need a threshold per factor")


def _group_by_label(labels: np.ndarray) -> list[np.ndarray]:
    """Non-empty label groups as local index arrays."""
    groups: dict[int, list[int]] = {}
    for i, lab in enumerate(labels):
        groups.setdefault(int(lab), []).append(i)
    return [np.asarray(v, dtype=int) for _, v in sorted(groups.items())]


def gtmc_cluster(
    tasks: Sequence[LearningTask],
    sim_matrices: Mapping[str, np.ndarray],
    config: GTMCConfig | None = None,
    rng: np.random.Generator | None = None,
) -> LearningTaskTree:
    """Run Algorithm 1 and return the learning task tree.

    ``sim_matrices`` maps each factor name in ``config.factors`` to a
    global ``(n, n)`` similarity matrix over ``tasks`` (values in
    ``[0, 1]``; see :func:`repro.similarity.quality.similarity_matrix`).
    """
    cfg = config if config is not None else GTMCConfig()
    rng = rng if rng is not None else np.random.default_rng(0)
    for factor in cfg.factors:
        if factor not in sim_matrices:
            raise KeyError(f"missing similarity matrix for factor '{factor}'")
        mat = np.asarray(sim_matrices[factor])
        if mat.shape != (len(tasks), len(tasks)):
            raise ValueError(f"similarity matrix for '{factor}' has shape {mat.shape}")

    tasks = list(tasks)
    root = LearningTaskTree(cluster=tasks)
    queue: deque[tuple[LearningTaskTree, int, np.ndarray]] = deque()
    queue.append((root, 0, np.arange(len(tasks))))

    with obs.span("gtmc.cluster", tasks=len(tasks), factors=list(cfg.factors)) as top:
        while queue:
            node, j, idx = queue.popleft()
            if len(idx) < 2:
                continue
            factor = cfg.factors[j]
            with obs.span("gtmc.split", factor=factor, level=j, tasks=len(idx)):
                sim_sub = np.asarray(sim_matrices[factor])[np.ix_(idx, idx)]

                # Line 5: seed with k-medoids using 1/Sim as distance.
                dist = 1.0 / (sim_sub + _EPS)
                np.fill_diagonal(dist, 0.0)
                seed = kmedoids(dist, k=min(cfg.k, len(idx)), rng=rng)

                # Lines 6-11: best-response dynamics to Nash equilibrium.
                result = best_response_clustering(
                    sim_sub, seed.labels, gamma=cfg.gamma, max_rounds=cfg.max_rounds
                )
                groups = _group_by_label(result.labels)
                obs.counter("gtmc.splits")
                obs.histogram("gtmc.best_response_rounds", result.n_rounds)

                # Lines 13-18: materialise children; descend low-quality ones.
                if len(groups) <= 1:
                    continue
                for local in groups:
                    child = LearningTaskTree(cluster=[tasks[int(idx[i])] for i in local], factor=factor)
                    node.add_child(child)
                    obs.histogram("gtmc.cluster_size", len(local))
                    quality = cluster_quality(sim_sub, [int(i) for i in local], cfg.gamma)
                    if j + 1 < len(cfg.factors) and quality < cfg.thresholds[j]:
                        obs.counter("gtmc.descents")
                        queue.append((child, j + 1, idx[local]))
        obs.gauge("gtmc.tree_depth", root.depth())
        top.set(depth=root.depth(), nodes=root.n_nodes())
    return root


def kmeans_multilevel_cluster(
    tasks: Sequence[LearningTask],
    embeddings: Mapping[str, np.ndarray],
    sim_matrices: Mapping[str, np.ndarray],
    config: GTMCConfig | None = None,
    rng: np.random.Generator | None = None,
) -> LearningTaskTree:
    """The GTTAML-GT ablation: multi-level k-means, no strategy game.

    ``embeddings`` maps each factor to an ``(n, d)`` vector embedding
    of the learning tasks (see :mod:`repro.meta.features`); splits and
    descent decisions mirror :func:`gtmc_cluster`, with cluster quality
    still measured on the similarity matrices so the descent criterion
    is identical across the ablation.
    """
    cfg = config if config is not None else GTMCConfig()
    rng = rng if rng is not None else np.random.default_rng(0)
    for factor in cfg.factors:
        if factor not in embeddings:
            raise KeyError(f"missing embedding for factor '{factor}'")

    tasks = list(tasks)
    root = LearningTaskTree(cluster=tasks)
    queue: deque[tuple[LearningTaskTree, int, np.ndarray]] = deque()
    queue.append((root, 0, np.arange(len(tasks))))

    with obs.span("gtmc.kmeans_cluster", tasks=len(tasks), factors=list(cfg.factors)) as top:
        while queue:
            node, j, idx = queue.popleft()
            if len(idx) < 2:
                continue
            factor = cfg.factors[j]
            emb = np.asarray(embeddings[factor])[idx]
            labels = kmeans(emb, k=min(cfg.k, len(idx)), rng=rng).labels
            groups = _group_by_label(labels)
            obs.counter("gtmc.splits")
            if len(groups) <= 1:
                continue
            sim_sub = np.asarray(sim_matrices[factor])[np.ix_(idx, idx)]
            for local in groups:
                child = LearningTaskTree(cluster=[tasks[int(idx[i])] for i in local], factor=factor)
                node.add_child(child)
                obs.histogram("gtmc.cluster_size", len(local))
                quality = cluster_quality(sim_sub, [int(i) for i in local], cfg.gamma)
                if j + 1 < len(cfg.factors) and quality < cfg.thresholds[j]:
                    obs.counter("gtmc.descents")
                    queue.append((child, j + 1, idx[local]))
        obs.gauge("gtmc.tree_depth", root.depth())
        top.set(depth=root.depth(), nodes=root.n_nodes())
    return root

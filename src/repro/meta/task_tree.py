"""The learning task tree (Definition 6).

A multi-forked tree whose nodes hold a learning task cluster ``G``, a
parent/children structure, and the initialisation weights ``theta`` of
the mobility model for that cluster.  Only leaves carry training data;
interior nodes aggregate their children's initialisations (Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.meta.learning_task import LearningTask


@dataclass
class LearningTaskTree:
    """One node of the learning task tree ``T^t = (G, CH, fr, theta)``.

    Attributes
    ----------
    cluster:
        The learning tasks in this node's cluster ``G``.
    children:
        Child nodes ``CH``.
    parent:
        Father node ``fr`` (``None`` at the root).
    theta:
        Initialisation weights for the cluster's mobility models, as a
        state dict (``None`` until TAML trains the tree).
    level:
        Depth in the tree (root = 0); level ``j`` nodes were produced
        by the ``j``-th similarity factor.
    factor:
        Name of the similarity factor that produced this node's split
        (empty at the root).
    """

    cluster: list[LearningTask]
    children: list["LearningTaskTree"] = field(default_factory=list)
    parent: "LearningTaskTree | None" = None
    theta: dict[str, np.ndarray] | None = None
    level: int = 0
    factor: str = ""

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def add_child(self, child: "LearningTaskTree") -> None:
        child.parent = self
        child.level = self.level + 1
        self.children.append(child)

    def iter_nodes(self) -> Iterator["LearningTaskTree"]:
        """All nodes, depth-first pre-order."""
        yield self
        for child in self.children:
            yield from child.iter_nodes()

    def iter_postorder(self) -> Iterator["LearningTaskTree"]:
        """All nodes, depth-first post-order (the newcomer-placement
        traversal of Section III-B)."""
        for child in self.children:
            yield from child.iter_postorder()
        yield self

    def leaves(self) -> list["LearningTaskTree"]:
        return [n for n in self.iter_nodes() if n.is_leaf]

    def n_nodes(self) -> int:
        return sum(1 for _ in self.iter_nodes())

    def depth(self) -> int:
        """Height of the subtree rooted here (a lone leaf has depth 0)."""
        if self.is_leaf:
            return 0
        return 1 + max(child.depth() for child in self.children)

    def worker_ids(self) -> list[int]:
        """Worker ids covered by this subtree (leaf clusters only, since
        interior nodes retain the full pre-split cluster)."""
        if self.is_leaf:
            return [t.worker_id for t in self.cluster]
        out: list[int] = []
        for child in self.children:
            out.extend(child.worker_ids())
        return out

    def find_leaf_for_worker(self, worker_id: int) -> "LearningTaskTree | None":
        for leaf in self.leaves():
            if any(t.worker_id == worker_id for t in leaf.cluster):
                return leaf
        return None

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else f"node[{len(self.children)}]"
        return f"LearningTaskTree({kind}, level={self.level}, |G|={len(self.cluster)}, factor='{self.factor}')"

"""Seedable synthetic task/worker streams for serving-scale runs.

The experiment workloads (:mod:`repro.data`) train real mobility models
and top out at hundreds of workers; the serving benchmarks need tens of
thousands.  This module generates streaming-scale scenarios directly:
Poisson task arrivals over a planar extent, workers with piecewise-
linear waypoint routines and staggered availability windows, and a
cheap geometric snapshot provider (dead-reckoning extrapolation of the
last shared movement, optionally noised) standing in for the neural
predictors whose cost is not what the serving layer measures.

Everything is driven by one integer seed, so two engines replaying the
same scenario see byte-identical streams.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo.point import Point
from repro.geo.trajectory import Trajectory, TrajectoryPoint
from repro.sc.entities import SpatialTask, Worker, WorkerSnapshot


@dataclass(frozen=True)
class StreamConfig:
    """Shape of one synthetic serving scenario.

    Times are minutes; the extent is a ``width_km x height_km`` plane.
    Tasks arrive as a homogeneous Poisson process over
    ``[t_start, t_end]`` with uniform locations; each stays valid for a
    uniform draw from ``[valid_min, valid_max]`` minutes.  Workers get
    ``n_waypoints`` uniform waypoints walked at ``speed_km_per_min``
    and an availability window covering a random sub-span of the
    horizon (at least ``min_shift_fraction`` of it).
    """

    n_workers: int = 100
    n_tasks: int = 200
    t_start: float = 0.0
    t_end: float = 60.0
    width_km: float = 20.0
    height_km: float = 10.0
    valid_min: float = 10.0
    valid_max: float = 30.0
    detour_km: float = 4.0
    speed_km_per_min: float = 1.0
    n_waypoints: int = 4
    route_step_minutes: float = 5.0
    min_shift_fraction: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_workers < 1 or self.n_tasks < 0:
            raise ValueError("need at least one worker and a non-negative task count")
        if self.t_end <= self.t_start:
            raise ValueError("horizon must have positive length")
        if self.valid_min <= 0 or self.valid_max < self.valid_min:
            raise ValueError("valid-time range must be positive and ordered")
        if not 0.0 < self.min_shift_fraction <= 1.0:
            raise ValueError("min_shift_fraction must lie in (0, 1]")


def make_task_stream(cfg: StreamConfig) -> list[SpatialTask]:
    """Poisson-arrival task stream over the scenario horizon."""
    rng = np.random.default_rng(cfg.seed)
    span = cfg.t_end - cfg.t_start
    releases = np.sort(rng.uniform(cfg.t_start, cfg.t_end, size=cfg.n_tasks))
    # Conditioned on the count, homogeneous Poisson arrivals are iid
    # uniforms — sorting them gives the ordered stream.
    del span
    xs = rng.uniform(0.0, cfg.width_km, size=cfg.n_tasks)
    ys = rng.uniform(0.0, cfg.height_km, size=cfg.n_tasks)
    valid = rng.uniform(cfg.valid_min, cfg.valid_max, size=cfg.n_tasks)
    return [
        SpatialTask(
            task_id=i,
            location=Point(float(xs[i]), float(ys[i])),
            release_time=float(releases[i]),
            deadline=float(releases[i] + valid[i]),
        )
        for i in range(cfg.n_tasks)
    ]


def _waypoint_routine(
    rng: np.random.Generator, cfg: StreamConfig, shift_start: float, shift_len: float
) -> Trajectory:
    """The waypoint walk of one shift (draws ``n_waypoints`` points)."""
    waypoints = np.column_stack(
        [
            rng.uniform(0.0, cfg.width_km, size=cfg.n_waypoints),
            rng.uniform(0.0, cfg.height_km, size=cfg.n_waypoints),
        ]
    )
    n_samples = max(int(shift_len / cfg.route_step_minutes) + 1, 2)
    # Walk the waypoint chain at constant parameter speed; sample
    # times are evenly spaced over the shift.
    ts = np.linspace(shift_start, shift_start + shift_len, n_samples)
    frac = np.linspace(0.0, cfg.n_waypoints - 1.0, n_samples)
    lo = np.minimum(frac.astype(int), cfg.n_waypoints - 2)
    w = frac - lo
    xy = waypoints[lo] * (1.0 - w[:, None]) + waypoints[lo + 1] * w[:, None]
    return Trajectory(
        TrajectoryPoint(Point(float(x), float(y)), float(t))
        for (x, y), t in zip(xy, ts)
    )


def make_worker_fleet(cfg: StreamConfig) -> list[Worker]:
    """Workers with waypoint routines and staggered shift windows."""
    rng = np.random.default_rng(cfg.seed + 1)
    span = cfg.t_end - cfg.t_start
    workers: list[Worker] = []
    for worker_id in range(cfg.n_workers):
        shift_len = rng.uniform(cfg.min_shift_fraction, 1.0) * span
        shift_start = cfg.t_start + rng.uniform(0.0, span - shift_len)
        routine = _waypoint_routine(rng, cfg, shift_start, shift_len)
        workers.append(
            Worker(
                worker_id=worker_id,
                routine=routine,
                detour_budget_km=cfg.detour_km,
                speed_km_per_min=cfg.speed_km_per_min,
            )
        )
    return workers


@dataclass(frozen=True)
class HotCellBurstConfig(StreamConfig):
    """Uniform stream plus demand bursts concentrated in hot cells.

    During ``[burst_start, burst_start + burst_minutes]`` each arriving
    task relocates, with probability ``hot_fraction``, into one of
    ``n_hot_cells`` square cells of side ``hot_cell_km`` whose centres
    are seeded draws over the extent — the DATA-WA-style demand-varying
    setting (spatially clumped arrival spikes) the uniform stream
    cannot express.  Outside the burst the stream is the uniform one.
    """

    n_hot_cells: int = 3
    hot_fraction: float = 0.7
    burst_start: float = 20.0
    burst_minutes: float = 15.0
    hot_cell_km: float = 2.0

    def __post_init__(self) -> None:
        StreamConfig.__post_init__(self)
        if self.n_hot_cells < 1:
            raise ValueError("need at least one hot cell")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ValueError("hot_fraction must lie in [0, 1]")
        if self.burst_minutes <= 0 or self.hot_cell_km <= 0:
            raise ValueError("burst length and hot-cell size must be positive")
        if not self.t_start <= self.burst_start < self.t_end:
            raise ValueError(
                f"burst_start {self.burst_start:g} lies outside the horizon "
                f"[{self.t_start:g}, {self.t_end:g}) — no task could arrive "
                "in the burst"
            )


def make_hot_cell_task_stream(cfg: HotCellBurstConfig) -> list[SpatialTask]:
    """The uniform stream with burst-window tasks pulled into hot cells."""
    tasks = make_task_stream(cfg)
    # A separate generator keeps the base stream byte-identical to the
    # uniform scenario at the same seed; only burst tasks move.
    rng = np.random.default_rng(cfg.seed + 2)
    half = cfg.hot_cell_km / 2.0
    centres = np.column_stack(
        [
            rng.uniform(half, cfg.width_km - half, size=cfg.n_hot_cells),
            rng.uniform(half, cfg.height_km - half, size=cfg.n_hot_cells),
        ]
    )
    burst_end = cfg.burst_start + cfg.burst_minutes
    relocated: list[SpatialTask] = []
    for task in tasks:
        in_burst = cfg.burst_start <= task.release_time <= burst_end
        if in_burst and rng.random() < cfg.hot_fraction:
            centre = centres[rng.integers(cfg.n_hot_cells)]
            location = Point(
                float(np.clip(centre[0] + rng.uniform(-half, half), 0.0, cfg.width_km)),
                float(np.clip(centre[1] + rng.uniform(-half, half), 0.0, cfg.height_km)),
            )
            task = SpatialTask(
                task_id=task.task_id,
                location=location,
                release_time=task.release_time,
                deadline=task.deadline,
            )
        relocated.append(task)
    return relocated


@dataclass(frozen=True)
class RushHourConfig(StreamConfig):
    """Arrival times drawn from rush-hour waves over a uniform floor.

    A fraction ``peak_weight`` of the tasks arrive in Gaussian waves
    centred on ``peak_times`` (minutes, std ``peak_sigma``), the rest
    uniformly — the AM/PM double peak of the Didi-like workload at
    serving scale.  Locations and validity windows stay uniform.
    """

    peak_times: tuple[float, ...] = (15.0, 45.0)
    peak_sigma: float = 4.0
    peak_weight: float = 0.7

    def __post_init__(self) -> None:
        StreamConfig.__post_init__(self)
        if not self.peak_times:
            raise ValueError("need at least one peak time")
        if self.peak_sigma <= 0:
            raise ValueError("peak_sigma must be positive")
        if not 0.0 <= self.peak_weight <= 1.0:
            raise ValueError("peak_weight must lie in [0, 1]")
        for peak in self.peak_times:
            if not self.t_start <= peak <= self.t_end:
                raise ValueError(
                    f"peak_times entry {peak:g} lies outside the horizon "
                    f"[{self.t_start:g}, {self.t_end:g}] — its wave would "
                    "clip onto the boundary"
                )


def make_rush_hour_task_stream(cfg: RushHourConfig) -> list[SpatialTask]:
    """Task stream whose arrival density carries rush-hour waves."""
    rng = np.random.default_rng(cfg.seed)
    in_wave = rng.random(cfg.n_tasks) < cfg.peak_weight
    peaks = np.asarray(cfg.peak_times, dtype=float)
    which = rng.integers(len(peaks), size=cfg.n_tasks)
    wave_times = rng.normal(peaks[which], cfg.peak_sigma)
    floor_times = rng.uniform(cfg.t_start, cfg.t_end, size=cfg.n_tasks)
    releases = np.where(in_wave, wave_times, floor_times)
    releases = np.sort(np.clip(releases, cfg.t_start, cfg.t_end))
    xs = rng.uniform(0.0, cfg.width_km, size=cfg.n_tasks)
    ys = rng.uniform(0.0, cfg.height_km, size=cfg.n_tasks)
    valid = rng.uniform(cfg.valid_min, cfg.valid_max, size=cfg.n_tasks)
    return [
        SpatialTask(
            task_id=i,
            location=Point(float(xs[i]), float(ys[i])),
            release_time=float(releases[i]),
            deadline=float(releases[i] + valid[i]),
        )
        for i in range(cfg.n_tasks)
    ]


@dataclass(frozen=True)
class WorkerChurnConfig(StreamConfig):
    """A fleet where part of the roster works short, staggered shifts.

    Each worker is, with probability ``churn_rate``, a *churner*: their
    shift covers only ``short_shift_fraction`` of the horizon, with
    starts staggered uniformly — so the online roster turns over
    continuously (check-in/check-out events throughout the run), the
    regime warm-started matching and availability-window policies are
    sensitive to.  Non-churners follow the base fleet's shift model.
    """

    churn_rate: float = 0.4
    short_shift_fraction: float = 0.15

    def __post_init__(self) -> None:
        StreamConfig.__post_init__(self)
        if not 0.0 <= self.churn_rate <= 1.0:
            raise ValueError("churn_rate must lie in [0, 1]")
        if not 0.0 < self.short_shift_fraction <= 1.0:
            raise ValueError("short_shift_fraction must lie in (0, 1]")


def make_churn_worker_fleet(cfg: WorkerChurnConfig) -> list[Worker]:
    """Workers with a churning tail of short staggered shifts."""
    rng = np.random.default_rng(cfg.seed + 1)
    span = cfg.t_end - cfg.t_start
    workers: list[Worker] = []
    for worker_id in range(cfg.n_workers):
        if rng.random() < cfg.churn_rate:
            shift_len = cfg.short_shift_fraction * span
            shift_start = cfg.t_start + rng.uniform(0.0, span - shift_len)
        else:
            shift_len = rng.uniform(cfg.min_shift_fraction, 1.0) * span
            shift_start = cfg.t_start + rng.uniform(0.0, span - shift_len)
        routine = _waypoint_routine(rng, cfg, shift_start, shift_len)
        workers.append(
            Worker(
                worker_id=worker_id,
                routine=routine,
                detour_budget_km=cfg.detour_km,
                speed_km_per_min=cfg.speed_km_per_min,
            )
        )
    return workers


@dataclass
class DeadReckoningProvider:
    """A cheap geometric snapshot provider for serving-scale runs.

    Extrapolates the worker's last shared movement vector for
    ``horizon_points`` steps of ``sample_step`` minutes, optionally
    perturbed by seeded Gaussian noise (``noise_km``), with a fixed
    nominal matching rate.  It exercises the same snapshot interface as
    the neural providers at a tiny fraction of the cost, which is what
    the serving benchmarks need: the engine under test, not the model.
    """

    horizon_points: int = 6
    sample_step: float = 10.0
    noise_km: float = 0.0
    matching_rate: float = 0.8
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def __call__(self, worker: Worker, t: float) -> WorkerSnapshot:
        here = worker.last_shared_location(t)
        earlier = worker.last_shared_location(t - self.sample_step)
        velocity = np.array([here.x - earlier.x, here.y - earlier.y])
        norm = float(np.hypot(*velocity))
        if norm > 0:
            velocity = velocity / norm * worker.speed_km_per_min * self.sample_step
        steps = np.arange(1, self.horizon_points + 1, dtype=float)[:, None]
        pred_xy = np.array([here.x, here.y]) + steps * velocity
        if self.noise_km > 0:
            pred_xy = pred_xy + self._rng.normal(0.0, self.noise_km, size=pred_xy.shape)
        pred_times = t + self.sample_step * steps.ravel()
        return WorkerSnapshot(
            worker_id=worker.worker_id,
            current_location=here,
            predicted_xy=pred_xy,
            predicted_times=pred_times,
            detour_budget_km=worker.detour_budget_km,
            speed_km_per_min=worker.speed_km_per_min,
            matching_rate=self.matching_rate,
        )

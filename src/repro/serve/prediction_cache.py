"""TTL cache of worker snapshots keyed by (worker, prediction horizon).

``BatchPlatform.run`` re-predicts every available worker every batch —
with a 2-minute window and a 10-minute prediction sample step, five
consecutive batches recompute what is essentially the same rollout.
The cache keeps each worker's last snapshot alive for ``ttl`` minutes
of simulated time and serves it back with only the (cheap)
``current_location`` refreshed.

A cached forecast is dropped early when the worker's *check-in
deviates* from it: the platform compares the location the worker just
shared against the cached trajectory's predicted position for that
time, and a gap beyond ``deviation_km`` means the worker broke from the
predicted route, so the stale rollout would poison assignment.  With
``ttl=0`` the cache is a passthrough, reproducing ``BatchPlatform``'s
predict-every-batch behaviour exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro import obs
from repro.sc.entities import Worker, WorkerSnapshot
from repro.sc.platform import SnapshotProvider


@dataclass
class CacheStats:
    """Hit/miss accounting, also mirrored to ``serve.cache.*`` metrics."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def as_row(self) -> dict[str, float]:
        return {
            "hits": float(self.hits),
            "misses": float(self.misses),
            "invalidations": float(self.invalidations),
            "hit_rate": self.hit_rate,
        }

    def snapshot(self) -> tuple[int, int]:
        """A (hits, requests) mark for :meth:`window_hit_rate`."""
        return (self.hits, self.requests)

    def window_hit_rate(self, since: tuple[int, int] | None) -> float | None:
        """Hit rate over the lookups since a :meth:`snapshot` mark.

        The per-batch signal behind decision-log records
        (:mod:`repro.obs.decisions`): the aggregate :attr:`hit_rate`
        smears the warm-up misses over the whole run, while a window
        says what the *current* batch actually paid.  ``None`` when no
        lookup happened in the window (or ``since`` is ``None``).
        """
        if since is None:
            return None
        requests = self.requests - since[1]
        return (self.hits - since[0]) / requests if requests else None


@dataclass
class _Entry:
    snapshot: WorkerSnapshot
    created: float


@dataclass
class PredictionCache:
    """Wraps a :data:`SnapshotProvider` with TTL + deviation caching.

    Attributes
    ----------
    provider:
        The underlying (expensive) snapshot builder.
    ttl:
        How long a snapshot stays fresh, in simulated minutes.  ``0``
        disables caching entirely.
    deviation_km:
        Invalidate when the worker's shared location is further than
        this from the cached prediction for the current time (``None``
        disables the check).
    horizon:
        Cache key component: snapshots predicted for different horizons
        must not satisfy each other's lookups.
    """

    provider: SnapshotProvider
    ttl: float = 0.0
    deviation_km: float | None = None
    horizon: int | None = None
    stats: CacheStats = field(default_factory=CacheStats)
    _entries: dict[tuple[int, int | None], _Entry] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.ttl < 0:
            raise ValueError("cache ttl must be non-negative")
        if self.deviation_km is not None and self.deviation_km < 0:
            raise ValueError("deviation threshold must be non-negative")

    def __call__(self, worker: Worker, t: float) -> WorkerSnapshot:
        return self.get(worker, t)

    def get(self, worker: Worker, t: float) -> WorkerSnapshot:
        key = (worker.worker_id, self.horizon)
        if self.ttl > 0:
            entry = self._entries.get(key)
            if entry is not None and t - entry.created <= self.ttl + 1e-9:
                if self._deviated(entry, worker, t):
                    self.stats.invalidations += 1
                    obs.counter("serve.cache.invalidations")
                    del self._entries[key]
                else:
                    self.stats.hits += 1
                    obs.counter("serve.cache.hits")
                    return replace(
                        entry.snapshot, current_location=worker.last_shared_location(t)
                    )
            elif entry is not None:
                # Expired by TTL; drop silently (counted as a miss below).
                del self._entries[key]

        self.stats.misses += 1
        obs.counter("serve.cache.misses")
        snapshot = self.provider(worker, t)
        if self.ttl > 0:
            self._entries[key] = _Entry(snapshot=snapshot, created=t)
        return snapshot

    def invalidate(self, worker_id: int) -> None:
        """Explicitly drop every cached horizon for one worker."""
        stale = [key for key in self._entries if key[0] == worker_id]
        for key in stale:
            del self._entries[key]

    def _deviated(self, entry: _Entry, worker: Worker, t: float) -> bool:
        """Has the worker's check-in broken from the cached forecast?"""
        if self.deviation_km is None:
            return False
        predicted = self._predicted_position(entry.snapshot, t)
        if predicted is None:
            return False
        here = worker.last_shared_location(t)
        gap = float(np.hypot(predicted[0] - here.x, predicted[1] - here.y))
        return gap > self.deviation_km

    @staticmethod
    def _predicted_position(snapshot: WorkerSnapshot, t: float) -> np.ndarray | None:
        """Where the cached forecast says the worker is at time ``t``.

        Interpolates between the snapshot's origin (current location at
        creation) and its predicted points; ``None`` when the forecast
        has no points.
        """
        times = snapshot.predicted_times
        xy = snapshot.predicted_xy
        if len(xy) == 0:
            return None
        origin = np.array([snapshot.current_location.x, snapshot.current_location.y])
        if t <= times[0]:
            return origin if t < times[0] else xy[0]
        idx = int(np.searchsorted(times, t))
        if idx >= len(times):
            return xy[-1]
        t0, t1 = times[idx - 1], times[idx]
        if t1 <= t0:
            return xy[idx]
        frac = (t - t0) / (t1 - t0)
        return xy[idx - 1] + frac * (xy[idx] - xy[idx - 1])

"""Batch trigger policies: when does the next assignment round fire?

The paper's platform fires every ``batch_window`` minutes regardless of
load.  Demand-adaptive batching (cf. DATA-WA's dynamic availability
windows) keeps that cadence as an upper bound but pulls a batch forward
when pending work piles up or a deadline is about to be missed —
trading a little matching quality (smaller batches) for latency when
the stream runs hot.

A policy answers two questions:

* :meth:`next_tick` — given the batch that just ran, when is the next
  *scheduled* one?
* :meth:`should_fire_early` — after a task arrival, should a batch run
  right now instead of waiting for the scheduled tick?

``next_tick`` advances by repeated addition from the previous tick
(never by multiplying an index) so a fixed-window engine accumulates
floating point exactly like ``BatchPlatform.run`` and stays
batch-for-batch comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.sc.entities import SpatialTask


@dataclass(frozen=True, slots=True)
class FixedWindowTrigger:
    """The paper's policy: a batch every ``window`` minutes, no more."""

    window: float = 2.0

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError("batch window must be positive")

    def next_tick(self, last_tick: float) -> float:
        return last_tick + self.window

    def should_fire_early(
        self,
        now: float,
        last_batch: float,
        pending: Mapping[int, SpatialTask],
    ) -> bool:
        return False


@dataclass(frozen=True, slots=True)
class DemandAdaptiveTrigger(FixedWindowTrigger):
    """Fire early under queue pressure or deadline pressure.

    Attributes
    ----------
    pending_threshold:
        Fire as soon as this many tasks are pending (``None`` disables).
    deadline_slack:
        Fire when some pending task's deadline is within this many
        minutes (``None`` disables) — waiting a full window would risk
        expiring it unserved.
    min_interval:
        Refractory period: never fire two batches closer than this,
        bounding worst-case assignment load under a task flood.
    """

    pending_threshold: int | None = None
    deadline_slack: float | None = None
    min_interval: float = 0.25

    def __post_init__(self) -> None:
        # Explicit base call: zero-arg super() breaks under
        # dataclass(slots=True), which rebuilds the class object.
        FixedWindowTrigger.__post_init__(self)
        if self.pending_threshold is not None and self.pending_threshold < 1:
            raise ValueError("pending threshold must be at least 1")
        if self.deadline_slack is not None and self.deadline_slack < 0:
            raise ValueError("deadline slack must be non-negative")
        if self.min_interval <= 0:
            raise ValueError("minimum trigger interval must be positive")

    def should_fire_early(
        self,
        now: float,
        last_batch: float,
        pending: Mapping[int, SpatialTask],
    ) -> bool:
        if now - last_batch < self.min_interval:
            return False
        if self.pending_threshold is not None and len(pending) >= self.pending_threshold:
            return True
        if self.deadline_slack is not None and any(
            task.deadline - now <= self.deadline_slack for task in pending.values()
        ):
            return True
        return False

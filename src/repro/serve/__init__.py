"""repro.serve — event-driven streaming assignment engine.

The serving-layer counterpart of :class:`repro.sc.platform.BatchPlatform`:
a heap-based event loop over task arrivals, deadlines, cancellations,
and worker check-in/check-out, with pluggable batch triggers, bounded
pending queues with deadline-aware shedding, a uniform-grid candidate
index feeding sparse PPI/KM, and a TTL prediction cache with check-in
deviation invalidation.  See ``docs/SERVING.md``.

Online monitoring is opt-in through ``ServeConfig.monitor``
(:class:`repro.obs.monitor.MonitorConfig`): periodic metric samples
into a JSONL time series, OpenMetrics exposition, and calibration
tracking of predicted completion probabilities — see the streaming
monitoring section of ``docs/OBSERVABILITY.md``.
"""

from repro.serve.adapters import (
    batch_platform_config,
    result_signature,
    run_like_batch_platform,
)
from repro.serve.engine import CandidateAssignFn, ServeConfig, ServeEngine, ServeResult
from repro.serve.events import (
    BatchTick,
    Event,
    EventPhase,
    EventQueue,
    TaskArrival,
    TaskCancel,
    TaskDeadline,
    WorkerCheckIn,
    WorkerCheckOut,
)
from repro.serve.prediction_cache import CacheStats, PredictionCache
from repro.serve.spatial_index import (
    UniformGridIndex,
    build_candidates,
    candidate_stats,
    cells_in_radius,
    latest_horizon,
)
from repro.serve.streams import (
    DeadReckoningProvider,
    HotCellBurstConfig,
    RushHourConfig,
    StreamConfig,
    WorkerChurnConfig,
    make_churn_worker_fleet,
    make_hot_cell_task_stream,
    make_rush_hour_task_stream,
    make_task_stream,
    make_worker_fleet,
)
from repro.serve.triggers import DemandAdaptiveTrigger, FixedWindowTrigger

__all__ = [
    "BatchTick",
    "CacheStats",
    "CandidateAssignFn",
    "DeadReckoningProvider",
    "DemandAdaptiveTrigger",
    "Event",
    "EventPhase",
    "EventQueue",
    "FixedWindowTrigger",
    "HotCellBurstConfig",
    "PredictionCache",
    "RushHourConfig",
    "WorkerChurnConfig",
    "ServeConfig",
    "ServeEngine",
    "ServeResult",
    "StreamConfig",
    "TaskArrival",
    "TaskCancel",
    "TaskDeadline",
    "UniformGridIndex",
    "WorkerCheckIn",
    "WorkerCheckOut",
    "batch_platform_config",
    "build_candidates",
    "candidate_stats",
    "cells_in_radius",
    "latest_horizon",
    "make_churn_worker_fleet",
    "make_hot_cell_task_stream",
    "make_rush_hour_task_stream",
    "make_task_stream",
    "make_worker_fleet",
    "result_signature",
    "run_like_batch_platform",
]

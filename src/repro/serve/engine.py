"""The event-driven streaming assignment engine.

``ServeEngine`` drives the same online stage as
:class:`repro.sc.platform.BatchPlatform` (Fig. 1, Algorithm 4's host
loop) but as a priority-queue event loop instead of a fixed-step scan:

* **events**, not ticks — task arrivals, deadlines, requester
  cancellations, and worker check-in/check-out resolve at their own
  timestamps (:mod:`repro.serve.events`), so per-event work is O(1)
  instead of an O(W + T) rescan per window;
* **pluggable batch triggers** — the paper's fixed window, or
  demand-adaptive firing under queue/deadline pressure
  (:mod:`repro.serve.triggers`);
* **bounded pending queue** — with ``max_pending`` set, an arrival
  into a full queue sheds the task with the least deadline slack (the
  one least likely to be served anyway) instead of letting the backlog
  grow without bound;
* **candidate-set assignment** — with ``use_index`` set, each batch
  builds a sparse candidate graph from a uniform-grid index over task
  locations (:mod:`repro.serve.spatial_index`) and feeds it to a
  candidate-aware assignment function instead of scanning W x T pairs;
* **prediction cache** — snapshots are served from a TTL cache with
  check-in deviation invalidation (:mod:`repro.serve.prediction_cache`)
  instead of being re-predicted every batch.

Configured as fixed-window / unbounded queue / no index / no cache, the
engine reproduces ``BatchPlatform`` completion, rejection, and expiry
counts exactly (see :mod:`repro.serve.adapters` and the parity tests).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

if TYPE_CHECKING:  # import cycle: forecast.dispatch imports serve.triggers
    from repro.forecast.dispatch import ForecastConfig

from repro import obs
from repro.assignment.matching_rate import pair_completion_probability
from repro.assignment.plan import AssignmentPlan
from repro.obs.decisions import DecisionConfig, DecisionLog
from repro.obs.metrics import labelled
from repro.obs.monitor import MetricsMonitor, MonitorConfig
from repro.obs.recorder import MetricsRecorder
from repro.sc.acceptance import evaluate_acceptance
from repro.sc.entities import SpatialTask, Worker, WorkerSnapshot
from repro.sc.platform import (
    AssignFn,
    BatchRecord,
    SimulationResult,
    SnapshotProvider,
    validate_plan,
)
from repro.serve.events import (
    BatchTick,
    EventQueue,
    TaskArrival,
    TaskCancel,
    TaskDeadline,
    WorkerCheckIn,
    WorkerCheckOut,
)
from repro.serve.prediction_cache import PredictionCache
from repro.serve.spatial_index import build_candidates
from repro.serve.triggers import DemandAdaptiveTrigger, FixedWindowTrigger

#: A candidate-aware assignment function: like :data:`AssignFn` plus the
#: sparse candidate graph built by the engine's spatial index.
CandidateAssignFn = Callable[
    [Sequence[SpatialTask], Sequence[WorkerSnapshot], float, dict[int, list[int]]],
    AssignmentPlan,
]


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of the streaming engine.

    The defaults reproduce ``BatchPlatform`` semantics exactly; every
    serving feature is opt-in.

    Attributes
    ----------
    batch_window:
        Minutes between scheduled assignment rounds.
    assignment_window:
        Requester cancellation window after release (``None`` disables),
        as in :class:`repro.sc.platform.BatchPlatform`.
    trigger:
        ``"fixed"``, ``"adaptive"`` (demand-adaptive early firing), or
        ``"forecast"`` (adaptive plus predicted-demand pressure;
        requires ``forecast``).
    pending_threshold / deadline_slack / min_trigger_interval:
        Adaptive-trigger knobs; see
        :class:`repro.serve.triggers.DemandAdaptiveTrigger`.
    max_pending:
        Pending-queue bound; arrivals beyond it shed the task with the
        least deadline slack.  ``None`` means unbounded.
    cache_ttl / cache_deviation_km:
        Prediction-cache freshness knobs; ``cache_ttl=0`` re-predicts
        every batch like ``BatchPlatform``.
    use_index:
        Build a sparse candidate graph per batch and use the
        candidate-aware assignment path (requires ``candidate_assign_fn``
        unless the engine falls back to dense).
    index_cell_km / max_candidates:
        Grid-bucket size and optional per-task k-nearest cap of the
        candidate index.
    monitor:
        Online-monitoring knobs (:class:`repro.obs.monitor.MonitorConfig`):
        periodic metric samples, OpenMetrics exposition, and prediction
        calibration tracking.  ``None`` (the default) keeps the run
        monitor-free; when set but no recorder is active, the engine
        installs a metrics-only recorder for the duration of the run.
    decisions:
        Decision-provenance knobs (:class:`repro.obs.decisions.DecisionConfig`):
        one lifecycle record per task — admission, candidate
        generation, matching outcome, terminal state — appended to a
        JSONL decision log.  ``None`` (the default) keeps the run
        log-free with exact ``result_signature`` parity; the per-event
        cost of the off path is one ``is None`` test.
    forecast:
        Demand-forecasting knobs (:class:`repro.forecast.dispatch.ForecastConfig`):
        per-cell arrival forecasting, the ``"forecast"`` trigger's
        predicted-pressure term, and idle-worker pre-positioning
        between batches.  ``None`` (the default) keeps the run
        forecast-free with exact ``result_signature`` parity.
    """

    batch_window: float = 2.0
    assignment_window: float | None = 10.0
    trigger: str = "fixed"
    pending_threshold: int | None = None
    deadline_slack: float | None = None
    min_trigger_interval: float = 0.25
    max_pending: int | None = None
    cache_ttl: float = 0.0
    cache_deviation_km: float | None = None
    use_index: bool = False
    index_cell_km: float = 1.0
    max_candidates: int | None = None
    monitor: MonitorConfig | None = None
    decisions: DecisionConfig | None = None
    forecast: "ForecastConfig | None" = None

    def __post_init__(self) -> None:
        if self.batch_window <= 0:
            raise ValueError("batch window must be positive")
        if self.assignment_window is not None and self.assignment_window <= 0:
            raise ValueError("assignment window must be positive (or None)")
        if self.trigger not in ("fixed", "adaptive", "forecast"):
            raise ValueError("trigger must be 'fixed', 'adaptive', or 'forecast'")
        if self.trigger == "forecast" and self.forecast is None:
            raise ValueError("the 'forecast' trigger requires a forecast config")
        if self.max_pending is not None and self.max_pending < 1:
            raise ValueError("max_pending must be at least 1 (or None)")
        if self.cache_ttl < 0:
            raise ValueError("cache ttl must be non-negative")
        if self.index_cell_km <= 0:
            raise ValueError("index cell size must be positive")
        if self.max_candidates is not None and self.max_candidates < 1:
            raise ValueError("max_candidates must be at least 1 (or None)")

    def make_trigger(self, forecast_runtime=None) -> FixedWindowTrigger:
        if self.trigger == "fixed":
            return FixedWindowTrigger(window=self.batch_window)
        if self.trigger == "forecast":
            # Deferred import: forecast.dispatch imports serve.triggers.
            from repro.forecast.dispatch import ForecastTrigger

            return ForecastTrigger(
                window=self.batch_window,
                pending_threshold=self.pending_threshold,
                deadline_slack=self.deadline_slack,
                min_interval=self.min_trigger_interval,
                demand_threshold=self.forecast.demand_threshold,
                runtime=forecast_runtime,
            )
        return DemandAdaptiveTrigger(
            window=self.batch_window,
            pending_threshold=self.pending_threshold,
            deadline_slack=self.deadline_slack,
            min_interval=self.min_trigger_interval,
        )


@dataclass
class ServeResult(SimulationResult):
    """``SimulationResult`` plus the serving layer's own accounting."""

    n_shed: int = 0
    n_batches: int = 0
    n_early_batches: int = 0
    n_candidate_pairs: int = 0
    n_dense_pairs: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_invalidations: int = 0
    #: Monitor-only accounting (zero / None when ``config.monitor`` is
    #: unset); deliberately outside ``result_signature`` so monitoring
    #: never perturbs parity checks.
    n_monitor_samples: int = 0
    n_drift_events: int = 0
    calibration: dict | None = None
    #: Decision-log accounting (zero when ``config.decisions`` is
    #: unset); outside ``result_signature`` for the same reason.
    n_decisions: int = 0
    #: Forecasting accounting (zero / None when ``config.forecast`` is
    #: unset).  Pre-positioning *does* change assignment outcomes (the
    #: whole point), so these fields only describe the forecast layer —
    #: the outcome changes show up in the ordinary signature fields.
    n_prepositioned: int = 0
    forecast_mae: float | None = None
    forecast_cell_mae: dict | None = None

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def candidate_sparsity(self) -> float:
        """Fraction of the dense pair space the index actually visited."""
        return self.n_candidate_pairs / self.n_dense_pairs if self.n_dense_pairs else 0.0


def _warm_tier_counts(assign_fn) -> dict | None:
    """The warm-start solve counters behind an assign closure, if any."""
    cache = getattr(assign_fn, "warm_cache", None)
    return cache.tier_counts() if cache is not None else None


def _warm_tier(pre: dict | None, post: dict | None) -> str | None:
    """The batch's warm-start tier from before/after solve counters.

    The worst tier any of the batch's component solves hit: a cold
    solve anywhere makes the batch ``cold``, else a seeded re-augment
    makes it ``warm``, else whole-solve reuse makes it ``identical``.
    """
    if pre is None or post is None:
        return None
    if post["cold"] > pre["cold"]:
        return "cold"
    if post["warm"] > pre["warm"]:
        return "warm"
    if post["identical"] > pre["identical"]:
        return "identical"
    return None


class ServeEngine:
    """Event-driven streaming counterpart of ``BatchPlatform``.

    Parameters
    ----------
    workers:
        Worker population with ground-truth routines (their time spans
        are the check-in/check-out availability windows).
    snapshot_provider:
        Builds the platform's view of a worker; wrapped in a
        :class:`PredictionCache` according to ``config``.
    config:
        Engine tunables; the default reproduces ``BatchPlatform``.
    assign_fn:
        Dense assignment function (always required — it is also the
        fallback when the index yields no candidates).
    candidate_assign_fn:
        Sparse assignment entry point (e.g. wrapping
        :func:`repro.assignment.ppi.ppi_assign_candidates`); used when
        ``config.use_index`` is set.
    """

    def __init__(
        self,
        workers: Sequence[Worker],
        snapshot_provider: SnapshotProvider,
        config: ServeConfig | None = None,
        assign_fn: AssignFn | None = None,
        candidate_assign_fn: CandidateAssignFn | None = None,
    ) -> None:
        self.config = config if config is not None else ServeConfig()
        ids = [w.worker_id for w in workers]
        if len(set(ids)) != len(ids):
            raise ValueError("worker ids must be unique")
        if assign_fn is None:
            raise ValueError("an assignment function is required")
        if self.config.use_index and candidate_assign_fn is None:
            raise ValueError("use_index requires a candidate-aware assignment function")
        self.workers = list(workers)
        self.snapshot_provider = snapshot_provider
        self.assign_fn = assign_fn
        self.candidate_assign_fn = candidate_assign_fn
        self._worker_pos = {w.worker_id: i for i, w in enumerate(self.workers)}
        #: The last run's :class:`DecisionLog` (``None`` when
        #: ``config.decisions`` is unset).
        self.decision_log: DecisionLog | None = None

    # ------------------------------------------------------------------
    def _build_candidates(
        self,
        batch_tasks: Sequence[SpatialTask],
        snapshots: Sequence[WorkerSnapshot],
        t: float,
    ) -> dict[int, list[int]]:
        """One batch's candidate graph (the ``use_index`` path).

        Subclasses substitute their own construction —
        :class:`repro.dist.serve.ShardedEngine` builds the same graph
        shard by shard — as long as the result matches this one, the
        engine's plans are unchanged.
        """
        cfg = self.config
        return build_candidates(
            batch_tasks,
            snapshots,
            t,
            cell_km=cfg.index_cell_km,
            max_candidates=cfg.max_candidates,
        )

    def _on_event(self, event) -> None:
        """Post-dispatch event hook; the base engine does nothing.

        Called once per processed event, after its state updates.
        Subclasses use it for routing accounting (per-shard event
        counters in :class:`repro.dist.serve.ShardedEngine`); it must
        not mutate engine state the event loop depends on.
        """

    def _make_decision_log(self, config: DecisionConfig) -> DecisionLog:
        """The decision log a run records into (``config.decisions``).

        Subclasses substitute their own — :class:`repro.dist.serve.ShardedEngine`
        attributes each record to the stripe that owned the task and
        writes per-shard spools merged at close.
        """
        return DecisionLog(config)

    # ------------------------------------------------------------------
    def run(
        self,
        tasks: Sequence[SpatialTask],
        t_start: float,
        t_end: float,
        outcome_listener: Callable[[int, int, bool, float], None] | None = None,
    ) -> ServeResult:
        """Serve the task stream over ``[t_start, t_end]``.

        Events dated past ``t_end`` never fire; tasks still pending at
        the horizon's end count as expired, as in ``BatchPlatform``.
        """
        if t_end < t_start:
            raise ValueError("t_end must be >= t_start")
        task_ids = [t.task_id for t in tasks]
        if len(set(task_ids)) != len(task_ids):
            raise ValueError("task ids must be unique")

        cfg = self.config
        # Forecasting is opt-in like monitoring: with cfg.forecast unset
        # the runtime stays None and every hook below costs one
        # `is None` test, keeping result_signature bit-identical.
        fruntime = None
        if cfg.forecast is not None:
            from repro.forecast.dispatch import ForecastRuntime

            fruntime = ForecastRuntime(cfg.forecast, t_start, t_end, tasks=tasks)
        trigger = cfg.make_trigger(forecast_runtime=fruntime)
        cache = PredictionCache(
            provider=self.snapshot_provider,
            ttl=cfg.cache_ttl,
            deviation_km=cfg.cache_deviation_km,
        )
        result = ServeResult(
            n_tasks=len(tasks), n_completed=0, n_assignments=0, n_rejections=0, n_expired=0
        )
        # Online monitoring is strictly opt-in: with cfg.monitor unset
        # none of this allocates, and the per-event cost below is one
        # `watch` boolean test.  When a monitor is requested but no
        # recorder is active, a metrics-only recorder is installed for
        # the duration of the run (spans stay free) and restored after.
        monitor: MetricsMonitor | None = None
        restore_to = None
        if cfg.monitor is not None:
            if getattr(obs.get_recorder(), "metrics", None) is None:
                restore_to = obs.set_recorder(MetricsRecorder())
            monitor = MetricsMonitor(cfg.monitor, obs.get_recorder().metrics)
            monitor.start(t_start)
        watch = obs.enabled()
        calibrate = monitor is not None and monitor.calibration is not None
        # Decision provenance is equally opt-in: with cfg.decisions
        # unset `dlog` stays None and every decision site below costs
        # one `is None` test, keeping result_signature bit-identical.
        dlog: DecisionLog | None = None
        if cfg.decisions is not None:
            dlog = self._make_decision_log(cfg.decisions)
        self.decision_log = dlog
        arrival_at: dict[int, float] = {}
        offered_ids: set[int] = set()
        pending: dict[int, SpatialTask] = {}
        busy_until: dict[int, float] = {}
        online: dict[int, Worker] = {}
        worker_by_id = {w.worker_id: w for w in self.workers}
        horizon_end = t_end + 1e-9

        queue = EventQueue()
        # Task arrivals (sorted so same-time ties resolve by release order,
        # matching BatchPlatform's release scan) with their deadline and
        # cancellation events.
        for task in sorted(tasks, key=lambda t: t.release_time):
            arrival = max(task.release_time, t_start)
            if arrival > horizon_end:
                continue
            queue.push(TaskArrival(time=arrival, task=task))
            queue.push(TaskDeadline(time=task.deadline, task_id=task.task_id))
            if cfg.assignment_window is not None:
                # Anchored on the *release* time, like BatchPlatform's
                # cancellation check; a window that closed before the
                # arrival is handled dead-on-arrival below.
                cancel_at = task.release_time + cfg.assignment_window
                if cancel_at >= arrival:
                    queue.push(TaskCancel(time=cancel_at, task_id=task.task_id))
        # Worker availability windows (the routine span unless the
        # worker declared a narrower ``available_from``/``available_until``).
        for worker in self.workers:
            start = worker.availability_start()
            end = worker.availability_end()
            if end < t_start or start > horizon_end:
                continue
            queue.push(WorkerCheckIn(time=max(start, t_start), worker=worker))
            queue.push(WorkerCheckOut(time=end, worker_id=worker.worker_id))
        # The first scheduled batch.
        tick_generation = 0
        queue.push(BatchTick(time=t_start, generation=tick_generation))

        last_batch = t_start - cfg.batch_window

        def shed_for(new_task: SpatialTask) -> SpatialTask | None:
            """Deadline-aware shedding: victim with the least slack."""
            victim = new_task
            for candidate in pending.values():
                if candidate.deadline < victim.deadline:
                    victim = candidate
            return victim

        def run_batch(t: float, early: bool) -> None:
            nonlocal last_batch, tick_generation
            last_batch = t
            available = [
                worker_by_id[w_id]
                for w_id in sorted(online, key=self._worker_pos.__getitem__)
                if busy_until.get(w_id, -1.0) <= t
            ]
            batch_tasks = list(pending.values())
            obs.gauge("serve.queue.pending", len(pending))
            obs.gauge("serve.workers.available", len(available))
            if not batch_tasks or not available:
                return
            batch_started = time.perf_counter()
            with obs.span(
                "serve.batch",
                t=t,
                batch=result.n_batches,
                pending=len(batch_tasks),
                available=len(available),
                early=early,
            ) as batch_span:
                pre_cache = cache.stats.snapshot() if dlog is not None else None
                with obs.span("serve.predict", workers=len(available)):
                    started = time.perf_counter()
                    snapshots = [cache.get(w, t) for w in available]
                    result.prediction_seconds += time.perf_counter() - started
                served = cache.stats.hits + cache.stats.misses
                if served:
                    obs.gauge("serve.cache.hit_rate", cache.stats.hits / served)
                result.n_dense_pairs += len(batch_tasks) * len(available)
                candidates = None
                warm_pre = None
                with obs.span("serve.assign", tasks=len(batch_tasks)):
                    started = time.perf_counter()
                    if cfg.use_index and self.candidate_assign_fn is not None:
                        candidates = self._build_candidates(batch_tasks, snapshots, t)
                        batch_candidates = sum(len(v) for v in candidates.values())
                        result.n_candidate_pairs += batch_candidates
                        obs.histogram("serve.index.candidates", batch_candidates)
                        if dlog is not None:
                            warm_pre = _warm_tier_counts(self.candidate_assign_fn)
                        plan = self.candidate_assign_fn(batch_tasks, snapshots, t, candidates)
                    else:
                        result.n_candidate_pairs += len(batch_tasks) * len(available)
                        plan = self.assign_fn(batch_tasks, snapshots, t)
                    result.algorithm_seconds += time.perf_counter() - started
                validate_plan(plan, pending, worker_by_id)

                warm_tier = None
                if dlog is not None:
                    dlog.considered(
                        [task.task_id for task in batch_tasks],
                        len(available),
                        candidates,
                        cache.stats.window_hit_rate(pre_cache),
                    )
                    if warm_pre is not None:
                        warm_tier = _warm_tier(
                            warm_pre, _warm_tier_counts(self.candidate_assign_fn)
                        )
                snap_by_worker = (
                    {s.worker_id: s for s in snapshots}
                    if calibrate or dlog is not None
                    else None
                )
                n_accepted = 0
                n_rejected = 0
                for pair in plan:
                    worker = worker_by_id[pair.worker_id]
                    task = pending[pair.task_id]
                    decision = evaluate_acceptance(worker, task, t)
                    result.n_assignments += 1
                    if outcome_listener is not None:
                        outcome_listener(task.task_id, worker.worker_id, decision.accepted, t)
                    if calibrate or dlog is not None:
                        believed = pair_completion_probability(
                            snap_by_worker[pair.worker_id],
                            task,
                            t,
                            a=cfg.monitor.calibration.a_km
                            if calibrate
                            else cfg.decisions.a_km,
                        )
                        if calibrate:
                            monitor.observe_outcome(believed, decision.accepted, t)
                        if dlog is not None:
                            dlog.offered(
                                task.task_id,
                                worker.worker_id,
                                t,
                                decision.accepted,
                                predicted_p=believed,
                                warm_tier=warm_tier,
                            )
                    if decision.accepted:
                        n_accepted += 1
                        result.n_completed += 1
                        result.completed_task_ids.add(task.task_id)
                        result.detours_km.append(decision.detour_km)
                        if watch and task.task_id in arrival_at:
                            obs.histogram(
                                "serve.task.time_to_assign", t - arrival_at.pop(task.task_id)
                            )
                        del pending[task.task_id]
                        # Same busy model as BatchPlatform: off-route for
                        # the detour distance at the worker's speed, plus
                        # the current window.
                        off_route = decision.detour_km / worker.speed_km_per_min
                        busy_until[worker.worker_id] = t + cfg.batch_window + off_route
                    else:
                        n_rejected += 1
                        result.n_rejections += 1
                        if watch or dlog is not None:
                            offered_ids.add(task.task_id)
                obs.counter("serve.assignments", len(plan))
                obs.counter("serve.accepted", n_accepted)
                obs.counter("serve.rejections", n_rejected)
                obs.histogram("serve.batch.latency_s", time.perf_counter() - batch_started)
                batch_span.set(assigned=len(plan), accepted=n_accepted, rejected=n_rejected)
                result.batches.append(
                    BatchRecord(
                        batch_time=t,
                        n_pending=len(batch_tasks),
                        n_available=len(available),
                        n_assigned=len(plan),
                        n_accepted=n_accepted,
                        n_rejected=n_rejected,
                    )
                )
                result.n_batches += 1
                if early:
                    result.n_early_batches += 1
                    obs.counter("serve.batches.early")

        def preposition(t: float) -> None:
            """Move idle workers toward predicted demand gaps.

            Runs after each batch: workers left idle (not busy at
            ``t``) are offered to the forecast runtime's gap planner;
            accepted moves splice the relocation into the worker's
            routine, so later snapshots, acceptance decisions, and
            check-outs all see the repositioned worker.
            """
            from repro.forecast.dispatch import relocated_worker

            idle = [
                worker_by_id[w_id]
                for w_id in sorted(online, key=self._worker_pos.__getitem__)
                if busy_until.get(w_id, -1.0) <= t
            ]
            moves = fruntime.plan_moves(t, idle, pending)
            for move in moves:
                moved = relocated_worker(worker_by_id[move.worker_id], move)
                worker_by_id[move.worker_id] = moved
                if move.worker_id in online:
                    online[move.worker_id] = moved
                cache.invalidate(move.worker_id)
                if dlog is not None:
                    dlog.prepositioned(move)
            if moves:
                result.n_prepositioned += len(moves)
                obs.counter("forecast.prepositioned", len(moves))

        event_started = 0.0
        try:
            while queue and queue.peek_time() <= horizon_end:
                event = queue.pop()
                if monitor is not None:
                    monitor.advance(event.time)
                if fruntime is not None:
                    fruntime.advance(event.time)
                if watch:
                    event_started = time.perf_counter()
                if isinstance(event, TaskArrival):
                    task = event.task
                    if fruntime is not None:
                        # Every arrival is demand, even one that dies on
                        # arrival below — the forecaster models load.
                        fruntime.observe_arrival(task, event.time)
                    # Dead on arrival: a task released before the horizon
                    # whose deadline or cancellation window already passed.
                    # BatchPlatform releases and expires these in the same
                    # tick, never attempting assignment.
                    if task.deadline < event.time or (
                        cfg.assignment_window is not None
                        and event.time > task.release_time + cfg.assignment_window
                    ):
                        result.n_expired += 1
                        obs.counter("serve.expired")
                        if watch:
                            obs.counter(labelled("serve.task.expired", phase="pending"))
                        if dlog is not None:
                            dlog.dead_on_arrival(
                                task, event.time, cancelled=task.deadline >= event.time
                            )
                    else:
                        if cfg.max_pending is not None and len(pending) >= cfg.max_pending:
                            victim = shed_for(task)
                            if victim.task_id != task.task_id:
                                del pending[victim.task_id]
                                pending[task.task_id] = task
                            result.n_shed += 1
                            obs.counter("serve.shed.tasks")
                            if watch:
                                obs.counter(labelled(
                                    "serve.shed.tasks",
                                    reason="queue_full"
                                    if victim.task_id == task.task_id
                                    else "deadline_slack",
                                ))
                            if dlog is not None:
                                if victim.task_id == task.task_id:
                                    dlog.shed_on_arrival(task, event.time)
                                else:
                                    dlog.admitted(task, event.time)
                                    dlog.displaced(victim.task_id, event.time)
                        else:
                            pending[task.task_id] = task
                            if dlog is not None:
                                dlog.admitted(task, event.time)
                        if watch and task.task_id in pending:
                            arrival_at[task.task_id] = event.time
                        if trigger.should_fire_early(event.time, last_batch, pending):
                            tick_generation += 1
                            queue.push(BatchTick(time=event.time, generation=tick_generation))
                elif isinstance(event, BatchTick):
                    if event.generation == tick_generation:
                        early = event.time - last_batch < cfg.batch_window - 1e-9
                        run_batch(event.time, early=early)
                        if fruntime is not None and cfg.forecast.prepositioning:
                            preposition(event.time)
                        tick_generation += 1
                        queue.push(
                            BatchTick(
                                time=trigger.next_tick(event.time), generation=tick_generation
                            )
                        )
                    # else: superseded by an early fire
                elif isinstance(event, TaskDeadline):
                    if event.task_id in pending:
                        del pending[event.task_id]
                        result.n_expired += 1
                        obs.counter("serve.expired")
                        if watch:
                            obs.counter(labelled(
                                "serve.task.expired",
                                phase="assigned"
                                if event.task_id in offered_ids
                                else "pending",
                            ))
                        if dlog is not None:
                            dlog.expired(event.task_id, event.time)
                elif isinstance(event, TaskCancel):
                    if event.task_id in pending:
                        del pending[event.task_id]
                        result.n_expired += 1
                        obs.counter("serve.cancelled")
                        if dlog is not None:
                            dlog.cancelled(event.task_id, event.time)
                elif isinstance(event, WorkerCheckIn):
                    online[event.worker.worker_id] = event.worker
                elif isinstance(event, WorkerCheckOut):
                    online.pop(event.worker_id, None)
                self._on_event(event)
                if watch:
                    obs.histogram("serve.loop.lag_s", time.perf_counter() - event_started)
                    obs.gauge("serve.loop.heap_depth", len(queue))

            # Tasks still pending at the horizon's end count as expired.
            if (watch or dlog is not None) and pending:
                for task_id in pending:
                    if watch:
                        obs.counter(labelled(
                            "serve.task.expired",
                            phase="assigned" if task_id in offered_ids else "pending",
                        ))
                    if dlog is not None:
                        dlog.expired(task_id, t_end, horizon=True)
            result.n_expired += len(pending)
            if dlog is not None:
                result.n_decisions = len(dlog.records)
            result.cache_hits = cache.stats.hits
            result.cache_misses = cache.stats.misses
            result.cache_invalidations = cache.stats.invalidations
            if fruntime is not None:
                fruntime.finish()
                result.forecast_mae = fruntime.mae()
                result.forecast_cell_mae = fruntime.cell_mae() or None
            if monitor is not None:
                monitor.advance(t_end)
                monitor.finish(t_end)
                result.n_monitor_samples = len(monitor.samples)
                if monitor.calibration is not None:
                    result.calibration = monitor.calibration.summary()
                    result.n_drift_events = len(monitor.calibration.drift_events)
            return result
        finally:
            # Close monitor and decision-log sinks (both idempotent;
            # closing the decision log also merges shard spools) and
            # restore the recorder even when the run unwinds on an
            # exception.
            if monitor is not None:
                monitor.finish(t_end)
            if dlog is not None:
                dlog.close()
            if restore_to is not None:
                obs.set_recorder(restore_to)

"""Running the streaming engine as a drop-in ``BatchPlatform``.

``ServeEngine`` generalises the paper's batch loop; configured with a
fixed window, an unbounded pending queue, no candidate index, and no
prediction cache it replays the exact same sequence of batches.  These
helpers pin that configuration down in one place so the parity tests
(and anyone migrating an experiment onto the engine) don't have to
re-derive which knobs matter.

The equivalence holds batch-for-batch when the horizon is aligned to
the batch window (``t_end - t_start`` a multiple of ``batch_window``):
the platform's last tick is then the last instant it can release tasks,
matching the engine's event-driven releases.  With a ragged horizon the
engine still releases tasks arriving after the final tick (and expires
them at the horizon) while the fixed-step loop never sees them — a
deliberate fidelity improvement, but a count difference.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.sc.entities import SpatialTask, Worker
from repro.sc.platform import AssignFn, SimulationResult, SnapshotProvider
from repro.serve.engine import ServeConfig, ServeEngine, ServeResult


def batch_platform_config(
    batch_window: float = 2.0,
    assignment_window: float | None = 10.0,
) -> ServeConfig:
    """The ``ServeConfig`` under which the engine *is* ``BatchPlatform``.

    Fixed-window trigger, unbounded queue, dense assignment, and a
    passthrough prediction cache — every serving feature off.
    """
    return ServeConfig(
        batch_window=batch_window,
        assignment_window=assignment_window,
        trigger="fixed",
        max_pending=None,
        cache_ttl=0.0,
        cache_deviation_km=None,
        use_index=False,
    )


def run_like_batch_platform(
    workers: Sequence[Worker],
    snapshot_provider: SnapshotProvider,
    tasks: Sequence[SpatialTask],
    assign_fn: AssignFn,
    t_start: float,
    t_end: float,
    batch_window: float = 2.0,
    assignment_window: float | None = 10.0,
    outcome_listener: Callable[[int, int, bool, float], None] | None = None,
) -> ServeResult:
    """One-call equivalent of ``BatchPlatform(...).run(...)``.

    Same argument shape as the platform constructor plus ``run``, same
    counts out (see the module docstring for the horizon-alignment
    requirement).
    """
    engine = ServeEngine(
        workers=workers,
        snapshot_provider=snapshot_provider,
        config=batch_platform_config(batch_window, assignment_window),
        assign_fn=assign_fn,
    )
    return engine.run(tasks, t_start, t_end, outcome_listener=outcome_listener)


def result_signature(result: SimulationResult) -> dict[str, object]:
    """The observable outcome of a run, for equivalence checks.

    Everything deterministic about a simulation — aggregate counts,
    accepted detours, completed task ids, and the per-batch records —
    excluding wall-clock timings, which legitimately differ between the
    loop implementations.
    """
    return {
        "n_tasks": result.n_tasks,
        "n_completed": result.n_completed,
        "n_assignments": result.n_assignments,
        "n_rejections": result.n_rejections,
        "n_expired": result.n_expired,
        "detours_km": list(result.detours_km),
        "completed_task_ids": set(result.completed_task_ids),
        "batches": [
            (
                b.batch_time,
                b.n_pending,
                b.n_available,
                b.n_assigned,
                b.n_accepted,
                b.n_rejected,
            )
            for b in result.batches
        ],
    }

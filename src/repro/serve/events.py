"""The serving engine's event model and deterministic priority queue.

The streaming engine replaces the batch simulator's fixed-step scan
with discrete events: task arrivals, task deadlines and requester
cancellations, worker check-in/check-out (availability windows), and
batch ticks.  Events at the same timestamp are ordered by *phase* so
one instant resolves the way a batch boundary does in
:class:`repro.sc.platform.BatchPlatform`:

* ``OPEN`` events (arrivals, check-ins) land **before** a batch firing
  at the same time — a task released exactly at a tick is assignable in
  that tick, a worker whose shift starts at the tick is available;
* ``BATCH`` runs the assignment;
* ``CLOSE`` events (deadlines, cancellations, check-outs) land
  **after** — a task whose deadline equals the batch time still gets
  one assignment attempt, a worker checking out at the tick still
  participates.

Ties inside a phase break by insertion sequence, so a run is fully
deterministic given the order events were scheduled.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from enum import IntEnum

from repro.sc.entities import SpatialTask, Worker


class EventPhase(IntEnum):
    """Same-timestamp ordering (see module docstring)."""

    OPEN = 0
    BATCH = 1
    CLOSE = 2


@dataclass(frozen=True, slots=True)
class Event:
    """Base event: a timestamp plus the phase it resolves in."""

    time: float

    phase = EventPhase.OPEN


@dataclass(frozen=True, slots=True)
class TaskArrival(Event):
    """A task reaches the platform (at its release time)."""

    task: SpatialTask


@dataclass(frozen=True, slots=True)
class WorkerCheckIn(Event):
    """A worker comes online (start of their availability window)."""

    worker: Worker


@dataclass(frozen=True, slots=True)
class BatchTick(Event):
    """Run one assignment batch.

    ``generation`` invalidates stale ticks: when a demand-adaptive
    trigger fires a batch early, the previously scheduled tick is
    superseded — its generation no longer matches the engine's and it
    is discarded on pop instead of being searched for in the heap.
    """

    generation: int = 0

    phase = EventPhase.BATCH


@dataclass(frozen=True, slots=True)
class TaskDeadline(Event):
    """A task's service deadline passes; expire it if still pending."""

    task_id: int

    phase = EventPhase.CLOSE


@dataclass(frozen=True, slots=True)
class TaskCancel(Event):
    """The requester cancels an unmatched task (assignment window)."""

    task_id: int

    phase = EventPhase.CLOSE


@dataclass(frozen=True, slots=True)
class WorkerCheckOut(Event):
    """A worker goes offline (end of their availability window)."""

    worker_id: int

    phase = EventPhase.CLOSE


@dataclass
class EventQueue:
    """A deterministic min-heap of events keyed ``(time, phase, seq)``."""

    _heap: list[tuple[float, int, int, Event]] = field(default_factory=list)
    _seq: int = 0

    def push(self, event: Event) -> None:
        heapq.heappush(self._heap, (event.time, int(event.phase), self._seq, event))
        self._seq += 1

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        return heapq.heappop(self._heap)[3]

    def peek_time(self) -> float:
        if not self._heap:
            raise IndexError("peek on an empty event queue")
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

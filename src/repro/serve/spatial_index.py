"""Uniform-grid spatial index for sparse candidate generation.

Dense assignment enumerates every (task, worker) pair — O(W x T) per
batch — even though Theorem 2 discards any pair whose predicted points
all lie further than ``min(d/2, sp * (deadline - t))`` from the task.
Bucketing task locations into a uniform grid (the same trick as
``repro.geo.grid``, but hashed and extent-free) lets each worker fetch
only the tasks near its predicted trajectory, so the candidate graph
fed to PPI/KM is sparse wherever the city is larger than the detour
radius.

Exactness: ``min(d/2, d^t) <= d/2``, so querying every predicted point
with radius ``d/2`` returns a **superset** of the pairs the dense path
can match; running PPI/KM on that superset yields the identical plan
(guarded by the parity tests).  The optional ``max_candidates`` cap
(k-nearest predicted-proximity pruning, cf. Cheng et al.'s candidate
pruning around predicted positions) trades that exactness for bounded
per-batch work.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro import obs
from repro.sc.entities import SpatialTask, WorkerSnapshot


def cells_in_radius(
    x: float, y: float, radius: float, cell_km: float
) -> list[tuple[int, int]]:
    """Grid cells a radius query around ``(x, y)`` touches.

    The bounding-box cell range ``cell(x - r, y - r) .. cell(x + r,
    y + r)`` — a superset of the cells the disk intersects, and exactly
    the cells :meth:`UniformGridIndex._query_positions` scans.  Shard
    and halo construction in :mod:`repro.dist.shard` reuses this so
    "which shards can this worker reach" and "which buckets will the
    index read" are the same arithmetic by construction: any point a
    query could return lives in one of these cells.

    A point exactly on a cell edge belongs to the higher cell
    (``floor`` semantics), consistent with the index's bucketing.
    """
    if radius < 0:
        raise ValueError("query radius must be non-negative")
    if cell_km <= 0:
        raise ValueError("cell size must be positive")
    cx0 = math.floor((x - radius) / cell_km)
    cy0 = math.floor((y - radius) / cell_km)
    cx1 = math.floor((x + radius) / cell_km)
    cy1 = math.floor((y + radius) / cell_km)
    return [(cx, cy) for cx in range(cx0, cx1 + 1) for cy in range(cy0, cy1 + 1)]


@dataclass
class UniformGridIndex:
    """A hash-bucketed uniform grid over 2-D points.

    Unlike :class:`repro.geo.grid.Grid` this has no fixed extent —
    cells are keyed by ``(floor(x / cell), floor(y / cell))`` — so it
    never clamps and costs only the occupied buckets.
    """

    cell_km: float = 1.0
    _buckets: dict[tuple[int, int], list[int]] = field(default_factory=dict, repr=False)
    _ids: list[int] = field(default_factory=list, repr=False)
    _xy: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.cell_km <= 0:
            raise ValueError("cell size must be positive")

    def _cell(self, x: float, y: float) -> tuple[int, int]:
        return math.floor(x / self.cell_km), math.floor(y / self.cell_km)

    def build(self, items: Sequence[tuple[int, float, float]]) -> "UniformGridIndex":
        """(Re)build from ``(id, x, y)`` tuples; returns self."""
        self._buckets = {}
        self._ids = []
        xy = np.empty((len(items), 2), dtype=float)
        for pos, (item_id, x, y) in enumerate(items):
            self._ids.append(item_id)
            xy[pos] = (x, y)
            self._buckets.setdefault(self._cell(x, y), []).append(pos)
        self._xy = xy
        return self

    def __len__(self) -> int:
        return len(self._ids)

    def query(self, x: float, y: float, radius: float) -> list[tuple[int, float]]:
        """All indexed ``(id, distance)`` within ``radius`` of ``(x, y)``."""
        return [
            (self._ids[pos], dist)
            for pos, dist in self._query_positions(x, y, radius)
        ]

    def _query_positions(self, x: float, y: float, radius: float) -> list[tuple[int, float]]:
        if radius < 0:
            raise ValueError("query radius must be non-negative")
        if self._xy is None or not len(self._ids):
            return []
        positions: list[int] = []
        for cell in cells_in_radius(x, y, radius, self.cell_km):
            bucket = self._buckets.get(cell)
            if bucket:
                positions.extend(bucket)
        if not positions:
            return []
        pts = self._xy[positions]
        dists = np.sqrt(((pts - np.array([x, y])) ** 2).sum(axis=1))
        keep = dists <= radius
        return [(positions[i], float(dists[i])) for i in np.flatnonzero(keep)]

    def query_points(self, xy: np.ndarray, radius: float) -> dict[int, float]:
        """Min distance per indexed id over a set of query points.

        This is the per-worker candidate query: ``xy`` is the worker's
        predicted trajectory and the result maps each task id within
        ``radius`` of *some* predicted point to the smallest such
        distance.
        """
        best: dict[int, float] = {}
        arr = np.asarray(xy, dtype=float).reshape(-1, 2)
        for x, y in arr:
            for pos, dist in self._query_positions(float(x), float(y), radius):
                item_id = self._ids[pos]
                if dist < best.get(item_id, math.inf):
                    best[item_id] = dist
        return best


def latest_horizon(
    tasks: Sequence[SpatialTask], current_time: float
) -> float:
    """Minutes until the latest pending deadline (the radius cap).

    Exposed so a coordinator splitting ``tasks`` across shards can
    compute the horizon over the *global* task set and pass it to each
    per-shard :func:`build_candidates` call — a shard-local horizon
    would shrink some workers' query radii and break exact agreement
    with the dense graph.
    """
    latest_deadline = max((t.deadline for t in tasks), default=current_time)
    return max(latest_deadline - current_time, 0.0)


def build_candidates(
    tasks: Sequence[SpatialTask],
    snapshots: Sequence[WorkerSnapshot],
    current_time: float,
    cell_km: float = 1.0,
    max_candidates: int | None = None,
    horizon: float | None = None,
) -> dict[int, list[int]]:
    """Sparse candidate graph ``task_id -> worker ids`` for one batch.

    Queries every snapshot's predicted points against a grid index of
    the pending task locations with radius ``d/2`` (capped by how far
    the worker could travel before the latest pending deadline), so the
    graph is a superset of the Theorem-2-feasible pairs — PPI/KM on it
    match the dense plan exactly.  Worker ids per task are ordered by
    snapshot position, reproducing the dense enumeration order;
    ``max_candidates`` keeps only the k nearest workers per task
    (approximate, but bounds the per-task degree).  ``horizon``
    overrides the deadline horizon (see :func:`latest_horizon`); the
    default derives it from ``tasks``.
    """
    index = UniformGridIndex(cell_km=cell_km)
    index.build([(t.task_id, t.location.x, t.location.y) for t in tasks])
    if horizon is None:
        horizon = latest_horizon(tasks, current_time)

    per_task: dict[int, list[tuple[int, float]]] = {}
    for pos, snap in enumerate(snapshots):
        if len(snap.predicted_xy) == 0:
            continue
        radius = min(snap.detour_budget_km / 2.0, snap.speed_km_per_min * horizon)
        if radius <= 0:
            continue
        for task_id, dist in index.query_points(snap.predicted_xy, radius).items():
            per_task.setdefault(task_id, []).append((pos, dist))

    graph: dict[int, list[int]] = {}
    n_pairs = 0
    for task_id, hits in per_task.items():
        if max_candidates is not None and len(hits) > max_candidates:
            hits = sorted(hits, key=lambda h: h[1])[:max_candidates]
            hits.sort(key=lambda h: h[0])
        graph[task_id] = [snapshots[pos].worker_id for pos, _ in hits]
        n_pairs += len(hits)
    obs.histogram("serve.index.candidate_pairs", n_pairs)
    return graph


def candidate_stats(
    graph: dict[int, list[int]], task_ids: list[int], n_snapshots: int
) -> dict[int, tuple[int, int]]:
    """Per-task ``(candidates, pruned)`` counts of one batch's graph.

    The decision-log view of :func:`build_candidates`: for every task
    in the batch (including those the index matched to nobody), how
    many workers survived into its candidate list and how many of the
    available snapshots Theorem 2's ``d/2`` radius pruned away.
    """
    return {
        tid: (len(graph.get(tid, ())), n_snapshots - len(graph.get(tid, ())))
        for tid in task_ids
    }

"""Loaders for the real corpora the paper evaluates on.

The offline reproduction ships synthetic generators, but adopters with
access to the actual datasets can ingest them here:

* :func:`load_porto_csv` — the Kaggle "Porto taxi" CSV (one row per
  trip, ``POLYLINE`` column of ``[lon, lat]`` pairs sampled every 15 s);
* :func:`load_gowalla_checkins` — the SNAP Gowalla check-in TSV
  (``user<TAB>iso-time<TAB>lat<TAB>lon<TAB>venue``);
* :func:`load_didi_orders` — ride-order CSVs with pickup time and
  coordinates.

All loaders project latitude/longitude to the planar kilometre frame
with a local equirectangular projection anchored at the data's centroid
and emit the same :class:`~repro.sc.entities.Worker` /
:class:`~repro.sc.entities.SpatialTask` objects the generators do, so
the whole pipeline runs unchanged on real data.
"""

from __future__ import annotations

import csv
import json
import math
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.geo.grid import Grid
from repro.geo.point import EARTH_RADIUS_KM, Point
from repro.geo.trajectory import Trajectory, TrajectoryPoint
from repro.sc.entities import SpatialTask, Worker


@dataclass(frozen=True, slots=True)
class Projection:
    """Local equirectangular lat/lon -> planar km projection."""

    lat0: float
    lon0: float

    def to_xy(self, lat: float, lon: float) -> tuple[float, float]:
        x = math.radians(lon - self.lon0) * EARTH_RADIUS_KM * math.cos(math.radians(self.lat0))
        y = math.radians(lat - self.lat0) * EARTH_RADIUS_KM
        return x, y

    @staticmethod
    def around(latlon: np.ndarray) -> "Projection":
        """Projection anchored at the centroid of ``(n, 2)`` lat/lon."""
        arr = np.asarray(latlon, dtype=float).reshape(-1, 2)
        if len(arr) == 0:
            raise ValueError("cannot anchor a projection on zero points")
        return Projection(lat0=float(arr[:, 0].mean()), lon0=float(arr[:, 1].mean()))


def fit_grid(points_xy: np.ndarray, rows: int = 100, cols: int = 50, margin: float = 0.02) -> tuple[Grid, np.ndarray]:
    """A grid covering the data's bounding box, plus the shifted points.

    The planar frame uses non-negative coordinates, so the points are
    translated to start at the (margin-padded) origin.
    """
    pts = np.asarray(points_xy, dtype=float).reshape(-1, 2)
    if len(pts) == 0:
        raise ValueError("cannot fit a grid on zero points")
    lo = pts.min(axis=0)
    hi = pts.max(axis=0)
    extent = np.maximum(hi - lo, 1e-6)
    pad = extent * margin
    shifted = pts - lo + pad
    width, height = (extent + 2 * pad).tolist()
    return Grid(width_km=float(width), height_km=float(height), rows=rows, cols=cols), shifted


def _parse_polyline(raw: str) -> list[tuple[float, float]]:
    """The Kaggle POLYLINE column: a JSON list of ``[lon, lat]``."""
    try:
        pairs = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ValueError(f"malformed POLYLINE: {raw[:60]}...") from exc
    return [(float(lat), float(lon)) for lon, lat in pairs]


def load_porto_csv(
    path: str | Path,
    max_trips: int | None = None,
    sample_seconds: float = 15.0,
    detour_budget_km: float = 4.0,
    speed_km_per_min: float = 0.7,
) -> tuple[Grid, list[Worker], Projection]:
    """Load Kaggle Porto trips into per-taxi daily Workers.

    Each taxi becomes one worker; each calendar day's trips concatenate
    into one daily trajectory (minutes since that day's midnight).  The
    last observed day becomes the worker's test ``routine``; earlier
    days become ``history``.
    """
    path = Path(path)
    per_taxi_day: dict[tuple[str, str], list[TrajectoryPoint]] = {}
    all_latlon: list[tuple[float, float]] = []

    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        required = {"TAXI_ID", "TIMESTAMP", "POLYLINE"}
        if reader.fieldnames is None or not required <= set(reader.fieldnames):
            raise ValueError(f"Porto CSV must contain columns {sorted(required)}")
        for i, row in enumerate(reader):
            if max_trips is not None and i >= max_trips:
                break
            latlon = _parse_polyline(row["POLYLINE"])
            if len(latlon) < 2:
                continue
            start = datetime.fromtimestamp(int(row["TIMESTAMP"]), tz=timezone.utc)
            day_key = start.strftime("%Y-%m-%d")
            minute0 = start.hour * 60 + start.minute + start.second / 60.0
            for k, pair in enumerate(latlon):
                all_latlon.append(pair)
                t = minute0 + k * sample_seconds / 60.0
                per_taxi_day.setdefault((row["TAXI_ID"], day_key), []).append(
                    TrajectoryPoint(Point(pair[0], pair[1]), t)  # placeholder lat/lon, projected below
                )

    if not all_latlon:
        raise ValueError(f"no usable trips found in {path}")
    projection = Projection.around(np.array(all_latlon))
    raw_xy = np.array([projection.to_xy(lat, lon) for lat, lon in all_latlon])
    grid, _ = fit_grid(raw_xy)
    offset = raw_xy.min(axis=0) - np.array([grid.width_km, grid.height_km]) * 0.02

    def to_planar(p: Point) -> Point:
        x, y = projection.to_xy(p.x, p.y)
        return grid.clamp(Point(x - offset[0], y - offset[1]))

    workers: list[Worker] = []
    taxis = sorted({taxi for taxi, _ in per_taxi_day})
    for worker_id, taxi in enumerate(taxis):
        days = sorted(day for t, day in per_taxi_day if t == taxi)
        trajectories: list[Trajectory] = []
        for day in days:
            pts = sorted(per_taxi_day[(taxi, day)], key=lambda p: p.time)
            dedup: list[TrajectoryPoint] = []
            for p in pts:
                if dedup and p.time <= dedup[-1].time:
                    continue
                dedup.append(TrajectoryPoint(to_planar(p.location), p.time))
            if len(dedup) >= 2:
                trajectories.append(Trajectory(dedup))
        if not trajectories:
            continue
        workers.append(
            Worker(
                worker_id=worker_id,
                routine=trajectories[-1],
                detour_budget_km=detour_budget_km,
                speed_km_per_min=speed_km_per_min,
                history=trajectories[:-1],
            )
        )
    return grid, workers, projection


def load_gowalla_checkins(
    path: str | Path,
    max_rows: int | None = None,
    detour_budget_km: float = 4.0,
    speed_km_per_min: float = 0.7,
) -> tuple[Grid, list[Worker], Projection]:
    """Load SNAP Gowalla check-ins into per-user daily Workers.

    Rows: ``user<TAB>2010-10-19T23:55:27Z<TAB>lat<TAB>lon<TAB>venue``.
    """
    path = Path(path)
    per_user_day: dict[tuple[str, str], list[tuple[float, float, float]]] = {}
    all_latlon: list[tuple[float, float]] = []

    with path.open() as handle:
        for i, line in enumerate(handle):
            if max_rows is not None and i >= max_rows:
                break
            parts = line.rstrip("\n").split("\t")
            if len(parts) < 4:
                continue
            user, stamp, lat_s, lon_s = parts[0], parts[1], parts[2], parts[3]
            when = datetime.fromisoformat(stamp.replace("Z", "+00:00"))
            lat, lon = float(lat_s), float(lon_s)
            all_latlon.append((lat, lon))
            minute = when.hour * 60 + when.minute + when.second / 60.0
            per_user_day.setdefault((user, when.strftime("%Y-%m-%d")), []).append((minute, lat, lon))

    if not all_latlon:
        raise ValueError(f"no usable check-ins found in {path}")
    projection = Projection.around(np.array(all_latlon))
    raw_xy = np.array([projection.to_xy(lat, lon) for lat, lon in all_latlon])
    grid, _ = fit_grid(raw_xy)
    offset = raw_xy.min(axis=0) - np.array([grid.width_km, grid.height_km]) * 0.02

    workers: list[Worker] = []
    users = sorted({user for user, _ in per_user_day})
    for worker_id, user in enumerate(users):
        days = sorted(day for u, day in per_user_day if u == user)
        trajectories: list[Trajectory] = []
        for day in days:
            pts = []
            last_t = -1.0
            for minute, lat, lon in sorted(per_user_day[(user, day)]):
                if minute <= last_t:
                    continue
                x, y = projection.to_xy(lat, lon)
                pts.append(TrajectoryPoint(grid.clamp(Point(x - offset[0], y - offset[1])), minute))
                last_t = minute
            if len(pts) >= 2:
                trajectories.append(Trajectory(pts))
        if not trajectories:
            continue
        workers.append(
            Worker(
                worker_id=worker_id,
                routine=trajectories[-1],
                detour_budget_km=detour_budget_km,
                speed_km_per_min=speed_km_per_min,
                history=trajectories[:-1],
            )
        )
    return grid, workers, projection


def load_didi_orders(
    path: str | Path,
    grid: Grid,
    projection: Projection,
    valid_time_minutes: tuple[float, float] = (30.0, 40.0),
    max_rows: int | None = None,
    seed: int = 0,
    offset_xy: Sequence[float] = (0.0, 0.0),
) -> list[SpatialTask]:
    """Load ride orders (``order_id,start_epoch,pickup_lon,pickup_lat``)
    as spatial tasks on an existing grid/projection (the worker side's).
    """
    path = Path(path)
    rng = np.random.default_rng(seed)
    lo, hi = valid_time_minutes
    if lo <= 0 or hi < lo:
        raise ValueError("valid-time interval must be positive and ordered")
    tasks: list[SpatialTask] = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        for i, row in enumerate(reader):
            if max_rows is not None and len(tasks) >= max_rows:
                break
            if len(row) < 4 or row[0].lower().startswith("order"):
                continue
            epoch, lon, lat = float(row[1]), float(row[2]), float(row[3])
            when = datetime.fromtimestamp(epoch, tz=timezone.utc)
            minute = when.hour * 60 + when.minute + when.second / 60.0
            x, y = projection.to_xy(lat, lon)
            loc = grid.clamp(Point(x - offset_xy[0], y - offset_xy[1]))
            valid = float(rng.uniform(lo, hi))
            tasks.append(
                SpatialTask(task_id=i, location=loc, release_time=minute, deadline=minute + valid)
            )
    tasks.sort(key=lambda t: t.release_time)
    return tasks

"""Didi-like spatial task stream (workload 1's task side).

The Didi ride-order corpus contributes the arrival pattern (rush-hour
peaks) and spatially clumped pickup locations; following the paper,
each order's pickup is a task's target location and the deadline is
drawn from a valid-time interval measured in 10-minute time units.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.data.generators import City
from repro.geo.point import Point
from repro.sc.entities import SpatialTask

TIME_UNIT_MINUTES = 10.0


@dataclass(frozen=True)
class DidiConfig:
    """Task generator knobs.

    ``valid_time_units`` is the paper's ``[lo, hi]`` interval: deadlines
    are ``arrival + U(lo, hi)`` time units of 10 minutes.
    """

    n_tasks: int = 150
    day_minutes: float = 360.0
    valid_time_units: tuple[float, float] = (3.0, 4.0)
    seed: int = 1
    peak_sharpness: float = 6.0
    district_concentration: float = 0.5

    def __post_init__(self) -> None:
        lo, hi = self.valid_time_units
        if lo <= 0 or hi < lo:
            raise ValueError("valid-time interval must be positive and ordered")
        if self.n_tasks < 1:
            raise ValueError("need at least one task")
        if not 0.0 <= self.district_concentration <= 1.0:
            raise ValueError("district_concentration must lie in [0, 1]")


def _rush_hour_intensity(t: float, day_minutes: float, sharpness: float) -> float:
    """Bimodal arrival intensity: AM and PM peaks on a baseline."""
    phase = t / day_minutes
    am = math.exp(-((phase - 0.25) ** 2) * sharpness * 4)
    pm = math.exp(-((phase - 0.75) ** 2) * sharpness * 4)
    return 0.25 + am + pm


def generate_didi_tasks(city: City, config: DidiConfig | None = None, id_offset: int = 0) -> list[SpatialTask]:
    """Sample the test-day task stream.

    Arrival times follow the bimodal intensity via rejection sampling;
    locations mix district-anchored pickups (probability
    ``district_concentration``) with uniform background demand.
    """
    cfg = config if config is not None else DidiConfig()
    rng = np.random.default_rng(cfg.seed)
    w, h = city.extent

    arrivals: list[float] = []
    max_intensity = _rush_hour_intensity(0.25 * cfg.day_minutes, cfg.day_minutes, cfg.peak_sharpness)
    while len(arrivals) < cfg.n_tasks:
        t = float(rng.uniform(0, cfg.day_minutes))
        if rng.uniform(0, max_intensity) <= _rush_hour_intensity(t, cfg.day_minutes, cfg.peak_sharpness):
            arrivals.append(t)
    arrivals.sort()

    lo, hi = cfg.valid_time_units
    tasks: list[SpatialTask] = []
    spread = min(w, h) * 0.08
    for i, arrival in enumerate(arrivals):
        if rng.uniform() < cfg.district_concentration:
            center = city.district_centers[int(rng.integers(len(city.district_centers)))]
            xy = rng.normal(center, spread)
        else:
            xy = rng.uniform([0, 0], [w, h])
        loc = city.grid.clamp(Point(float(xy[0]), float(xy[1])))
        valid = float(rng.uniform(lo, hi)) * TIME_UNIT_MINUTES
        tasks.append(
            SpatialTask(
                task_id=id_offset + i,
                location=loc,
                release_time=arrival,
                deadline=arrival + valid,
            )
        )
    return tasks


def historical_task_locations(
    city: City,
    n_tasks: int,
    seed: int = 2,
    district_concentration: float = 0.5,
) -> np.ndarray:
    """Training-period task corpus for the task-oriented loss (Eq. 7).

    Same spatial process as the live stream — the loss's premise is
    that historical and future task distributions agree.
    """
    cfg = DidiConfig(n_tasks=n_tasks, seed=seed, district_concentration=district_concentration)
    tasks = generate_didi_tasks(city, cfg)
    return np.array([[t.location.x, t.location.y] for t in tasks])

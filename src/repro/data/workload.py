"""The workload container consumed by the pipeline and benches."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.generators import City
from repro.geo.trajectory import Trajectory
from repro.sc.entities import SpatialTask, Worker


@dataclass
class Workload:
    """One experiment's data bundle.

    Attributes
    ----------
    name:
        ``"porto-didi"`` or ``"gowalla-foursquare"``.
    city:
        Grid, POIs, districts.
    workers:
        Worker population; each worker's ``routine`` is the *test-day*
        ground truth and ``history`` the training-day trajectories.
    tasks:
        Test-day spatial task stream.
    historical_tasks_xy:
        ``(n, 2)`` locations of training-period tasks — the corpus the
        task assignment-oriented loss weights against (Eq. 7).
    """

    name: str
    city: City
    workers: list[Worker]
    tasks: list[SpatialTask] = field(default_factory=list)
    historical_tasks_xy: np.ndarray = field(default_factory=lambda: np.zeros((0, 2)))

    def worker_histories(self) -> dict[int, list[Trajectory]]:
        return {w.worker_id: list(w.history) for w in self.workers}

    def horizon(self) -> tuple[float, float]:
        """The simulation time span covering routines and tasks."""
        start = min(w.routine.start_time for w in self.workers)
        end = max(w.routine.end_time for w in self.workers)
        if self.tasks:
            end = max(end, max(t.deadline for t in self.tasks))
        return start, end

"""Sliding-window supervision and learning-task construction.

Definition 3: the training set pairs each length-``seq_in`` sub
trajectory with the length-``seq_out`` sub trajectory that follows it.
Models train in unit-square normalised coordinates (``Grid.normalize``)
so losses are scale-free; evaluation converts back to grid-cell units
for the paper's RMSE/MAE magnitudes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.generators import City
from repro.geo.poi import poi_feature_matrix, visited_pois
from repro.geo.trajectory import Trajectory
from repro.meta.learning_task import LearningTask, split_support_query


def sliding_windows(
    xy: np.ndarray,
    seq_in: int,
    seq_out: int,
    stride: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """All ``(seq_in, seq_out)`` windows of an ``(n, 2)`` point sequence.

    Returns ``(x, y)`` with shapes ``(m, seq_in, 2)`` and
    ``(m, seq_out, 2)``; ``m`` may be zero for short sequences.
    """
    if seq_in < 1 or seq_out < 1 or stride < 1:
        raise ValueError("seq_in, seq_out, and stride must be positive")
    pts = np.asarray(xy, dtype=float).reshape(-1, 2)
    total = seq_in + seq_out
    if len(pts) < total:
        return np.zeros((0, seq_in, 2)), np.zeros((0, seq_out, 2))
    xs, ys = [], []
    for start in range(0, len(pts) - total + 1, stride):
        xs.append(pts[start : start + seq_in])
        ys.append(pts[start + seq_in : start + total])
    return np.stack(xs), np.stack(ys)


def trajectory_to_normalized(trajectory: Trajectory, city: City) -> np.ndarray:
    """A trajectory's locations in unit-square model space."""
    return city.grid.normalize(trajectory.xy)


def windows_from_history(
    history: Sequence[Trajectory],
    city: City,
    seq_in: int,
    seq_out: int,
    stride: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """Windows pooled over several days, in normalised coordinates."""
    xs, ys = [], []
    for day in history:
        x, y = sliding_windows(trajectory_to_normalized(day, city), seq_in, seq_out, stride)
        if len(x):
            xs.append(x)
            ys.append(y)
    if not xs:
        return np.zeros((0, seq_in, 2)), np.zeros((0, seq_out, 2))
    return np.concatenate(xs), np.concatenate(ys)


def build_learning_task(
    worker_id: int,
    history: Sequence[Trajectory],
    city: City,
    seq_in: int,
    seq_out: int,
    rng: np.random.Generator,
    query_fraction: float = 0.25,
    poi_radius_km: float = 0.5,
    max_location_sample: int = 200,
) -> LearningTask | None:
    """Build one worker's learning task from their training days.

    Returns ``None`` when the history is too short to produce a single
    window (the caller decides how to treat such workers — the paper's
    newcomers fall in this bucket by construction).
    """
    x, y = windows_from_history(history, city, seq_in, seq_out)
    if len(x) < 2:
        return None
    sx, sy, qx, qy = split_support_query(x, y, query_fraction=query_fraction, rng=rng)

    all_xy = np.concatenate([day.xy for day in history])
    if len(all_xy) > max_location_sample:
        idx = rng.choice(len(all_xy), size=max_location_sample, replace=False)
        sample = all_xy[idx]
    else:
        sample = all_xy
    pois = visited_pois(city.pois, all_xy, radius_km=poi_radius_km)
    return LearningTask(
        worker_id=worker_id,
        support_x=sx,
        support_y=sy,
        query_x=qx,
        query_y=qy,
        location_sample=np.asarray(sample, dtype=float),
        poi_features=poi_feature_matrix(pois),
    )


def build_learning_tasks(
    histories: dict[int, Sequence[Trajectory]],
    city: City,
    seq_in: int,
    seq_out: int,
    seed: int = 0,
    **kwargs,
) -> list[LearningTask]:
    """Learning tasks for every worker with enough history."""
    rng = np.random.default_rng(seed)
    tasks: list[LearningTask] = []
    for worker_id in sorted(histories):
        task = build_learning_task(worker_id, histories[worker_id], city, seq_in, seq_out, rng, **kwargs)
        if task is not None:
            tasks.append(task)
    return tasks

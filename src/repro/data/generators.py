"""Synthetic city and mobility-pattern archetypes.

The experiments need a worker population whose mobility is (a)
*repeatable* day to day — otherwise nothing is predictable — and (b)
*heterogeneous* across workers — otherwise clustering-based
meta-learning cannot beat global MAML.  Three archetypes provide the
heterogeneity:

* :class:`CommuterPattern` — home/work anchors with morning and
  evening transits;
* :class:`RoamerPattern` — wandering around a preferred zone;
* :class:`ZoneLoyalPattern` — taxi-like looping between POIs of one
  district.

Each worker owns one archetype instance with personal anchors; daily
trajectories are the archetype's skeleton plus per-day Gaussian noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geo.grid import Grid
from repro.geo.point import Point
from repro.geo.poi import POI, POICategory
from repro.geo.trajectory import Trajectory, TrajectoryPoint


@dataclass
class City:
    """The simulated operating area: grid extent + POI layer + districts."""

    grid: Grid
    pois: list[POI]
    district_centers: np.ndarray  # (n_districts, 2)

    @property
    def extent(self) -> tuple[float, float]:
        return self.grid.width_km, self.grid.height_km


def make_city(
    seed: int = 0,
    grid: Grid | None = None,
    n_districts: int = 5,
    pois_per_district: int = 20,
) -> City:
    """Generate a city: districts scattered over the grid, POIs around them."""
    grid = grid if grid is not None else Grid()
    if n_districts < 1 or pois_per_district < 1:
        raise ValueError("need at least one district and one POI per district")
    rng = np.random.default_rng(seed)
    w, h = grid.width_km, grid.height_km
    margin = 0.1
    centers = rng.uniform([w * margin, h * margin], [w * (1 - margin), h * (1 - margin)], size=(n_districts, 2))
    pois: list[POI] = []
    categories = list(POICategory)
    for center in centers:
        spread = min(w, h) * 0.08
        for _ in range(pois_per_district):
            xy = rng.normal(center, spread)
            p = grid.clamp(Point(float(xy[0]), float(xy[1])))
            pois.append(POI(location=p, category=categories[int(rng.integers(len(categories)))]))
    return City(grid=grid, pois=pois, district_centers=centers)


class MobilityPattern:
    """Base archetype: emits one noisy daily trajectory per call.

    Subclasses implement :meth:`skeleton`, the ordered list of
    ``(location, time)`` waypoints an ideal day follows; ``daily``
    perturbs it and resamples at a uniform step.
    """

    def __init__(self, city: City, rng: np.random.Generator, noise_km: float = 0.25) -> None:
        self.city = city
        self.rng = rng
        self.noise_km = noise_km

    def skeleton(self) -> list[tuple[Point, float]]:
        raise NotImplementedError

    def daily(self, day_start: float, sample_step: float) -> Trajectory:
        """One day's trajectory: noisy skeleton resampled every
        ``sample_step`` minutes, timestamps offset by ``day_start``."""
        waypoints = self.skeleton()
        if len(waypoints) < 2:
            raise ValueError("a skeleton needs at least two waypoints")
        pts = []
        for loc, t in waypoints:
            jitter = self.rng.normal(0.0, self.noise_km, size=2)
            p = self.city.grid.clamp(Point(loc.x + jitter[0], loc.y + jitter[1]))
            pts.append(TrajectoryPoint(p, day_start + t))
        # Guard against duplicate timestamps after noise-free skeletons.
        dedup: list[TrajectoryPoint] = []
        for p in pts:
            if dedup and p.time <= dedup[-1].time:
                continue
            dedup.append(p)
        return Trajectory(dedup).resampled(sample_step)


class CommuterPattern(MobilityPattern):
    """Home -> work -> (lunch) -> work -> home, with personal timing."""

    def __init__(
        self,
        city: City,
        rng: np.random.Generator,
        noise_km: float = 0.25,
        day_minutes: float = 720.0,
    ) -> None:
        super().__init__(city, rng, noise_km)
        self.day_minutes = day_minutes
        homes = city.district_centers[rng.integers(len(city.district_centers))]
        works = city.district_centers[rng.integers(len(city.district_centers))]
        spread = min(*city.extent) * 0.05
        self.home = city.grid.clamp(Point(*(homes + rng.normal(0, spread, 2))))
        self.work = city.grid.clamp(Point(*(works + rng.normal(0, spread, 2))))
        self.leave_home = float(rng.uniform(0.05, 0.15)) * day_minutes
        self.commute = float(rng.uniform(0.06, 0.12)) * day_minutes
        self.leave_work = float(rng.uniform(0.70, 0.85)) * day_minutes

    def skeleton(self) -> list[tuple[Point, float]]:
        lunch_spot = Point(
            (self.work.x + self.home.x * 0.1) / 1.1,
            (self.work.y + self.home.y * 0.1) / 1.1,
        )
        mid = (self.leave_home + self.commute + self.leave_work) / 2.0
        return [
            (self.home, 0.0),
            (self.home, self.leave_home),
            (self.work, self.leave_home + self.commute),
            (lunch_spot, mid),
            (self.work, mid + 0.08 * self.day_minutes),
            (self.work, self.leave_work),
            (self.home, min(self.leave_work + self.commute, self.day_minutes)),
        ]


class RoamerPattern(MobilityPattern):
    """Wanders between random waypoints near a preferred zone."""

    def __init__(
        self,
        city: City,
        rng: np.random.Generator,
        noise_km: float = 0.25,
        day_minutes: float = 720.0,
        n_waypoints: int = 8,
    ) -> None:
        super().__init__(city, rng, noise_km)
        self.day_minutes = day_minutes
        center = city.district_centers[rng.integers(len(city.district_centers))]
        spread = min(*city.extent) * 0.15
        self.waypoints = [
            city.grid.clamp(Point(*(center + rng.normal(0, spread, 2))))
            for _ in range(max(n_waypoints, 2))
        ]

    def skeleton(self) -> list[tuple[Point, float]]:
        order = self.rng.permutation(len(self.waypoints))
        times = np.sort(self.rng.uniform(0, self.day_minutes, size=len(order)))
        # Force the endpoints so every day spans the full window.
        times[0], times[-1] = 0.0, self.day_minutes
        return [(self.waypoints[int(i)], float(t)) for i, t in zip(order, times)]


class ZoneLoyalPattern(MobilityPattern):
    """Taxi-like loops among the POIs of one district."""

    def __init__(
        self,
        city: City,
        rng: np.random.Generator,
        noise_km: float = 0.2,
        day_minutes: float = 720.0,
        n_stops: int = 10,
    ) -> None:
        super().__init__(city, rng, noise_km)
        self.day_minutes = day_minutes
        district = int(rng.integers(len(city.district_centers)))
        center = city.district_centers[district]
        dists = np.array([
            (p.location.x - center[0]) ** 2 + (p.location.y - center[1]) ** 2 for p in city.pois
        ])
        nearest = np.argsort(dists)[: max(n_stops, 3)]
        self.stops = [city.pois[int(i)].location for i in nearest]
        self.tour = rng.permutation(len(self.stops))

    def skeleton(self) -> list[tuple[Point, float]]:
        # The same tour every day (loyal), with small per-day time drift.
        n = len(self.tour)
        base = np.linspace(0.0, self.day_minutes, n)
        drift = self.rng.normal(0.0, self.day_minutes * 0.01, size=n)
        times = np.sort(np.clip(base + drift, 0.0, self.day_minutes))
        times[0], times[-1] = 0.0, self.day_minutes
        out = []
        last_t = -1.0
        for i, t in zip(self.tour, times):
            t = float(max(t, last_t + 1.0))
            out.append((self.stops[int(i)], t))
            last_t = t
        return out


class CourierPattern(MobilityPattern):
    """Cross-city tours: the taxi-like archetype of the Porto corpus.

    The worker traverses a fixed sequence of districts every day, so
    their position sweeps the whole city — current location is a poor
    predictor of where they will be in 10-30 minutes, while the learned
    route is a good one.  This is the population slice for which
    mobility prediction-aware assignment has the most to offer.
    """

    def __init__(
        self,
        city: City,
        rng: np.random.Generator,
        noise_km: float = 0.3,
        day_minutes: float = 720.0,
        n_legs: int = 6,
    ) -> None:
        super().__init__(city, rng, noise_km)
        self.day_minutes = day_minutes
        n_districts = len(city.district_centers)
        legs = max(min(n_legs, n_districts * 2), 2)
        picks = rng.integers(0, n_districts, size=legs)
        spread = min(*city.extent) * 0.04
        self.stops = [
            city.grid.clamp(Point(*(city.district_centers[int(i)] + rng.normal(0, spread, 2))))
            for i in picks
        ]

    def skeleton(self) -> list[tuple[Point, float]]:
        n = len(self.stops)
        base = np.linspace(0.0, self.day_minutes, n)
        drift = self.rng.normal(0.0, self.day_minutes * 0.015, size=n)
        times = np.sort(np.clip(base + drift, 0.0, self.day_minutes))
        times[0], times[-1] = 0.0, self.day_minutes
        out: list[tuple[Point, float]] = []
        last_t = -1.0
        for stop, t in zip(self.stops, times):
            t = float(max(t, last_t + 1.0))
            out.append((stop, t))
            last_t = t
        return out


ARCHETYPES: dict[str, type[MobilityPattern]] = {
    "commuter": CommuterPattern,
    "roamer": RoamerPattern,
    "zone_loyal": ZoneLoyalPattern,
    "courier": CourierPattern,
}


@dataclass
class PatternMix:
    """Archetype mixture weights for a worker population."""

    commuter: float = 0.25
    roamer: float = 0.15
    zone_loyal: float = 0.2
    courier: float = 0.4

    def sample(self, rng: np.random.Generator) -> str:
        names = ["commuter", "roamer", "zone_loyal", "courier"]
        weights = np.array(
            [self.commuter, self.roamer, self.zone_loyal, self.courier], dtype=float
        )
        if weights.sum() <= 0:
            raise ValueError("mixture weights must sum to a positive value")
        return str(rng.choice(names, p=weights / weights.sum()))

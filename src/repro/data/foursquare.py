"""Foursquare-like spatial task stream (workload 2's task side).

Foursquare tasks are venue-anchored: check-in/verification jobs at
known venues.  Tasks therefore snap to the city's POI layer — the same
layer the Gowalla-like workers anchor to — which is exactly why the
paper observes smaller worker-cost gaps on workload 2 (workers already
pass near task venues).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.didi import TIME_UNIT_MINUTES
from repro.data.generators import City
from repro.geo.point import Point
from repro.sc.entities import SpatialTask


@dataclass(frozen=True)
class FoursquareConfig:
    """Task generator knobs."""

    n_tasks: int = 150
    day_minutes: float = 360.0
    valid_time_units: tuple[float, float] = (3.0, 4.0)
    seed: int = 11
    venue_noise_km: float = 0.05

    def __post_init__(self) -> None:
        lo, hi = self.valid_time_units
        if lo <= 0 or hi < lo:
            raise ValueError("valid-time interval must be positive and ordered")
        if self.n_tasks < 1:
            raise ValueError("need at least one task")


def generate_foursquare_tasks(
    city: City,
    config: FoursquareConfig | None = None,
    id_offset: int = 0,
) -> list[SpatialTask]:
    """Sample venue-anchored tasks with near-uniform arrivals."""
    cfg = config if config is not None else FoursquareConfig()
    rng = np.random.default_rng(cfg.seed)
    if not city.pois:
        raise ValueError("city has no venues to anchor tasks to")
    arrivals = np.sort(rng.uniform(0, cfg.day_minutes, size=cfg.n_tasks))
    lo, hi = cfg.valid_time_units
    tasks: list[SpatialTask] = []
    for i, arrival in enumerate(arrivals):
        venue = city.pois[int(rng.integers(len(city.pois)))]
        noise = rng.normal(0, cfg.venue_noise_km, 2)
        loc = city.grid.clamp(Point(venue.location.x + noise[0], venue.location.y + noise[1]))
        valid = float(rng.uniform(lo, hi)) * TIME_UNIT_MINUTES
        tasks.append(
            SpatialTask(
                task_id=id_offset + i,
                location=loc,
                release_time=float(arrival),
                deadline=float(arrival) + valid,
            )
        )
    return tasks


def historical_venue_locations(city: City, n_tasks: int, seed: int = 12) -> np.ndarray:
    """Training-period venue-task corpus for the task-oriented loss."""
    cfg = FoursquareConfig(n_tasks=n_tasks, seed=seed)
    tasks = generate_foursquare_tasks(city, cfg)
    return np.array([[t.location.x, t.location.y] for t in tasks])

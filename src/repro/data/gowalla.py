"""Gowalla-like worker population (workload 2's worker side).

Gowalla check-ins are sparse location-based-social-network traces:
users visit a handful of anchor venues (home, work, favourites) per
day.  Workers here therefore follow anchor-hopping routines with fewer,
venue-snapped samples; anchors are drawn from the *same* venue layer
the Foursquare-like task generator uses, reproducing the
similar-worker-and-task-distribution property the paper highlights in
Appendix C.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.generators import City, make_city
from repro.geo.point import Point
from repro.geo.trajectory import Trajectory, TrajectoryPoint
from repro.sc.entities import Worker


@dataclass(frozen=True)
class GowallaConfig:
    """Generator knobs (CPU-friendly defaults; benches scale up)."""

    n_workers: int = 24
    n_train_days: int = 6
    day_minutes: float = 360.0
    sample_step: float = 10.0
    n_anchors: int = 4
    seed: int = 10
    detour_budget_km: float = 4.0
    speed_km_per_min: float = 0.5
    time_jitter_minutes: float = 12.0
    location_noise_km: float = 0.15

    def __post_init__(self) -> None:
        if self.n_workers < 1 or self.n_train_days < 1:
            raise ValueError("need at least one worker and one training day")
        if self.n_anchors < 2:
            raise ValueError("need at least two anchors")


def _anchor_day(
    anchors: list[Point],
    visit_times: np.ndarray,
    rng: np.random.Generator,
    cfg: GowallaConfig,
    city: City,
) -> Trajectory:
    """One day: visit the anchors at jittered times with location noise."""
    pts: list[TrajectoryPoint] = []
    last_t = -1.0
    for anchor, base_t in zip(anchors, visit_times):
        t = float(np.clip(base_t + rng.normal(0, cfg.time_jitter_minutes), 0, cfg.day_minutes))
        t = max(t, last_t + 1.0)
        noise = rng.normal(0, cfg.location_noise_km, 2)
        p = city.grid.clamp(Point(anchor.x + noise[0], anchor.y + noise[1]))
        pts.append(TrajectoryPoint(p, t))
        last_t = t
    return Trajectory(pts).resampled(cfg.sample_step)


def generate_gowalla_workers(
    config: GowallaConfig | None = None,
    city: City | None = None,
) -> tuple[City, list[Worker]]:
    """Generate the venue-anchored check-in population."""
    cfg = config if config is not None else GowallaConfig()
    rng = np.random.default_rng(cfg.seed)
    city = city if city is not None else make_city(seed=cfg.seed, n_districts=4, pois_per_district=25)

    workers: list[Worker] = []
    for wid in range(cfg.n_workers):
        # Anchors are venues (POIs) of one or two favourite districts.
        poi_xy = np.array([[p.location.x, p.location.y] for p in city.pois])
        fav = city.district_centers[int(rng.integers(len(city.district_centers)))]
        dists = ((poi_xy - fav) ** 2).sum(axis=1)
        candidates = np.argsort(dists)[: max(cfg.n_anchors * 3, 6)]
        chosen = rng.choice(candidates, size=cfg.n_anchors, replace=False)
        anchors = [city.pois[int(i)].location for i in chosen]
        visit_times = np.sort(rng.uniform(0, cfg.day_minutes, size=cfg.n_anchors))
        visit_times[0], visit_times[-1] = 0.0, cfg.day_minutes

        day_rng = np.random.default_rng(rng.integers(2**31))
        history = [_anchor_day(anchors, visit_times, day_rng, cfg, city) for _ in range(cfg.n_train_days)]
        test_day = _anchor_day(anchors, visit_times, day_rng, cfg, city)
        workers.append(
            Worker(
                worker_id=wid,
                routine=test_day,
                detour_budget_km=cfg.detour_budget_km,
                speed_km_per_min=cfg.speed_km_per_min,
                history=history,
            )
        )
    return city, workers

"""Synthetic dataset generators and windowing.

The paper evaluates on Porto+Didi (workload 1) and Gowalla+Foursquare
(workload 2); those corpora are unavailable offline, so seeded
generators reproduce the *structural properties* the experiments
depend on — heterogeneous per-worker mobility archetypes, rush-hour
task arrivals, and (for workload 2) task/worker spatial distributions
drawn from shared anchors.  See ``DESIGN.md`` §3 for the substitution
table.
"""

from repro.data.generators import (
    City,
    make_city,
    CommuterPattern,
    RoamerPattern,
    ZoneLoyalPattern,
    CourierPattern,
    MobilityPattern,
)
from repro.data.workload import Workload
from repro.data.porto import PortoConfig, generate_porto_workers
from repro.data.didi import DidiConfig, generate_didi_tasks
from repro.data.gowalla import GowallaConfig, generate_gowalla_workers
from repro.data.foursquare import FoursquareConfig, generate_foursquare_tasks
from repro.data.loaders import (
    load_porto_csv,
    load_gowalla_checkins,
    load_didi_orders,
    Projection,
    fit_grid,
)
from repro.data.windows import (
    sliding_windows,
    build_learning_task,
    build_learning_tasks,
    trajectory_to_normalized,
)

__all__ = [
    "City",
    "make_city",
    "CommuterPattern",
    "RoamerPattern",
    "ZoneLoyalPattern",
    "CourierPattern",
    "MobilityPattern",
    "Workload",
    "PortoConfig",
    "generate_porto_workers",
    "DidiConfig",
    "generate_didi_tasks",
    "GowallaConfig",
    "generate_gowalla_workers",
    "FoursquareConfig",
    "generate_foursquare_tasks",
    "sliding_windows",
    "build_learning_task",
    "build_learning_tasks",
    "trajectory_to_normalized",
    "load_porto_csv",
    "load_gowalla_checkins",
    "load_didi_orders",
    "Projection",
    "fit_grid",
]

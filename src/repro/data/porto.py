"""Porto-like worker population (workload 1's worker side).

The Kaggle Porto corpus contributes 442 taxi trajectories with strong
per-driver spatial loyalty; the paper remaps them onto 10 days while
"retaining the temporal distribution of trajectories within a day".
This generator reproduces the properties the experiments exercise:
several training days of repeatable per-worker movement plus a held-out
test day, with population-level heterogeneity from the archetype mix.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.generators import ARCHETYPES, City, PatternMix, make_city
from repro.sc.entities import Worker


@dataclass(frozen=True)
class PortoConfig:
    """Generator knobs; defaults give a CPU-friendly scale.

    The paper's full run uses 442 workers over 10 days; benches scale
    ``n_workers`` up via ``REPRO_BENCH_SCALE``.
    """

    n_workers: int = 24
    n_train_days: int = 6
    day_minutes: float = 360.0
    sample_step: float = 10.0
    seed: int = 0
    detour_budget_km: float = 4.0
    speed_km_per_min: float = 0.7
    mix: PatternMix = field(default_factory=PatternMix)
    noise_km: float = 0.4
    n_districts: int = 8

    def __post_init__(self) -> None:
        if self.n_workers < 1 or self.n_train_days < 1:
            raise ValueError("need at least one worker and one training day")
        if self.sample_step <= 0 or self.day_minutes <= self.sample_step:
            raise ValueError("day must span multiple samples")


def generate_porto_workers(config: PortoConfig | None = None, city: City | None = None) -> tuple[City, list[Worker]]:
    """Generate the city (unless given) and the worker population.

    Each worker's ``history`` holds ``n_train_days`` trajectories and
    ``routine`` the test day.  All days share the archetype skeleton,
    so mobility is predictable yet noisy.
    """
    cfg = config if config is not None else PortoConfig()
    rng = np.random.default_rng(cfg.seed)
    city = city if city is not None else make_city(seed=cfg.seed, n_districts=cfg.n_districts)

    workers: list[Worker] = []
    for wid in range(cfg.n_workers):
        name = cfg.mix.sample(rng)
        pattern = ARCHETYPES[name](
            city, np.random.default_rng(rng.integers(2**31)), noise_km=cfg.noise_km, day_minutes=cfg.day_minutes
        )
        history = [pattern.daily(day_start=0.0, sample_step=cfg.sample_step) for _ in range(cfg.n_train_days)]
        test_day = pattern.daily(day_start=0.0, sample_step=cfg.sample_step)
        workers.append(
            Worker(
                worker_id=wid,
                routine=test_day,
                detour_budget_km=cfg.detour_budget_km,
                speed_km_per_min=cfg.speed_km_per_min,
                history=history,
            )
        )
    return city, workers

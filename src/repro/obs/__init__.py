"""Observability for the TAMP pipeline: spans, metrics, manifests.

Three pieces (see ``docs/OBSERVABILITY.md``):

* a **tracer** of nested wall-time spans with JSONL and in-memory
  sinks (:mod:`repro.obs.recorder`, :mod:`repro.obs.sinks`);
* a **metrics registry** of counters, gauges, and p50/p90/p99
  histograms (:mod:`repro.obs.metrics`);
* **run manifests** capturing config, seed, git SHA, and final
  metrics per run (:mod:`repro.obs.manifest`).

The default recorder is a no-op singleton, so instrumented hot paths
cost nothing unless :func:`recording` (or :func:`set_recorder`)
activates tracing.  Typical use::

    from repro import obs

    with obs.recording(obs.JsonlSink("run.trace.jsonl")):
        with obs.span("experiment.run_assignment", algorithm="ppi"):
            ...
"""

from repro.obs.calibration import (
    CalibrationConfig,
    CalibrationMonitor,
    EwmaDetector,
    PageHinkley,
    PairOutcome,
)
from repro.obs.dashboard import (
    aggregate_series,
    forecast_cell_errors,
    load_serve_report,
    reason_breakdown,
    render_serve_report,
)
from repro.obs.decisions import (
    DecisionConfig,
    DecisionLog,
    decision_records,
    diff_decisions,
    explain_task,
    find_decision_log,
    merge_decision_spools,
    preposition_records,
    read_decisions,
    reconcile,
    render_explain,
    render_run_diff,
    write_decisions,
)
from repro.obs.dist import (
    DistObsConfig,
    RoundAttribution,
    attribute_rounds,
    current_context,
    merge_spools,
    render_distributed_report,
    replay_seconds,
)
from repro.obs.format import Reporter
from repro.obs.manifest import RunManifest, git_sha, manifest_path_for, read_manifest
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    labelled,
    percentile,
    split_labels,
)
from repro.obs.monitor import (
    MetricsMonitor,
    MonitorConfig,
    SLOEvaluator,
    SLOSpec,
    parse_slo,
    read_series,
)
from repro.obs.openmetrics import (
    ExpositionServer,
    metric_name,
    render_openmetrics,
    write_openmetrics,
)
from repro.obs.recorder import (
    NOOP,
    NULL_SPAN,
    MetricsRecorder,
    NoopRecorder,
    Span,
    TraceRecorder,
    counter,
    enabled,
    gauge,
    get_recorder,
    histogram,
    new_trace_id,
    recording,
    set_recorder,
    span,
)
from repro.obs.report import TraceReport, aggregate, load_report, render_report
from repro.obs.sinks import JsonlSink, MemorySink, read_jsonl, read_trace

__all__ = [
    "CalibrationConfig",
    "CalibrationMonitor",
    "EwmaDetector",
    "PageHinkley",
    "PairOutcome",
    "aggregate_series",
    "forecast_cell_errors",
    "load_serve_report",
    "reason_breakdown",
    "render_serve_report",
    "DecisionConfig",
    "DecisionLog",
    "decision_records",
    "diff_decisions",
    "explain_task",
    "find_decision_log",
    "merge_decision_spools",
    "preposition_records",
    "read_decisions",
    "reconcile",
    "render_explain",
    "render_run_diff",
    "write_decisions",
    "DistObsConfig",
    "RoundAttribution",
    "attribute_rounds",
    "current_context",
    "merge_spools",
    "render_distributed_report",
    "replay_seconds",
    "Reporter",
    "RunManifest",
    "git_sha",
    "manifest_path_for",
    "read_manifest",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "labelled",
    "percentile",
    "split_labels",
    "MetricsMonitor",
    "MonitorConfig",
    "SLOEvaluator",
    "SLOSpec",
    "parse_slo",
    "read_series",
    "ExpositionServer",
    "metric_name",
    "render_openmetrics",
    "write_openmetrics",
    "NOOP",
    "NULL_SPAN",
    "MetricsRecorder",
    "NoopRecorder",
    "Span",
    "TraceRecorder",
    "counter",
    "enabled",
    "gauge",
    "get_recorder",
    "histogram",
    "new_trace_id",
    "recording",
    "set_recorder",
    "span",
    "TraceReport",
    "aggregate",
    "load_report",
    "render_report",
    "JsonlSink",
    "MemorySink",
    "read_jsonl",
    "read_trace",
]

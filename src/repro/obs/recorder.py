"""The tracer: nested wall-time spans plus the active-recorder switch.

The process-wide recorder defaults to :data:`NOOP`, whose ``span``
returns a shared null context manager and whose metric methods are
empty — instrumented hot paths cost a single attribute lookup and call
when observability is off (guarded by ``benchmarks/bench_obs_overhead``).
Activating observability swaps in a :class:`TraceRecorder`, usually via
the :func:`recording` context manager::

    from repro import obs
    from repro.obs import JsonlSink

    with obs.recording(JsonlSink("run.trace.jsonl")) as rec:
        with obs.span("experiment.run", algorithm="ppi"):
            ...
        print(rec.metrics.snapshot())

Span names are dotted lowercase paths (``taml.leaf``, ``ppi.stage2``);
attributes are small JSON-able values.  Span stacks are thread-local
(each thread nests its own spans; ids stay globally unique and sink
emission is serialised), but processes never share a recorder: a
sharded runner creates one recorder per worker process, spooled and
merged by :mod:`repro.obs.dist`.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Iterator

from contextlib import contextmanager

from repro.obs.metrics import MetricsRegistry


class NullSpan:
    """The do-nothing span handed out while observability is off."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "NullSpan":
        return self


NULL_SPAN = NullSpan()


class NoopRecorder:
    """The default recorder: every operation is free and records nothing."""

    enabled = False

    def span(self, name: str, **attrs) -> NullSpan:
        return NULL_SPAN

    def counter(self, name: str, amount: float = 1.0) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def histogram(self, name: str, value: float) -> None:
        pass


NOOP = NoopRecorder()


class MetricsRecorder:
    """A metrics-only recorder: a live registry, no span tracing.

    The streaming monitor needs counters/gauges/histograms to sample
    even when nobody asked for a span trace; installing this instead of
    a full :class:`TraceRecorder` keeps spans free (the shared
    ``NULL_SPAN``) while metric updates land in :attr:`metrics`.
    """

    enabled = True

    def __init__(self, metrics: MetricsRegistry | None = None) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    def span(self, name: str, **attrs) -> NullSpan:
        return NULL_SPAN

    def counter(self, name: str, amount: float = 1.0) -> None:
        self.metrics.counter(name).add(amount)

    def gauge(self, name: str, value: float) -> None:
        self.metrics.gauge(name).set(value)

    def histogram(self, name: str, value: float) -> None:
        self.metrics.histogram(name).observe(value)


class Span:
    """One nested wall-time measurement; use as a context manager.

    ``set(**attrs)`` merges attributes at any point before exit, so a
    stage can record its outcome (e.g. how many pairs it assigned) on
    the span that timed it.
    """

    __slots__ = (
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "depth",
        "start_unix",
        "duration_s",
        "error",
        "_recorder",
        "_started",
    )

    def __init__(self, recorder: "TraceRecorder", name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs
        self._recorder = recorder
        self.span_id = 0
        self.parent_id: int | None = None
        self.depth = 0
        self.start_unix = 0.0
        self.duration_s = 0.0
        self.error: str | None = None
        self._started = 0.0

    def set(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._recorder._open(self)
        self.start_unix = time.time()
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_s = time.perf_counter() - self._started
        if exc_type is not None:
            self.error = exc_type.__name__
        self._recorder._close(self)
        return False

    def to_record(self) -> dict:
        return {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "start_unix": self.start_unix,
            "duration_s": self.duration_s,
            "attrs": self.attrs,
            "error": self.error,
        }


def new_trace_id() -> str:
    """A compact process-unique trace id (hex, no external deps)."""
    return f"{os.getpid():x}-{os.urandom(6).hex()}"


class TraceRecorder:
    """An active recorder: span stacks, metric registry, and sinks.

    Span stacks are *thread-local*: the engine thread, the OpenMetrics
    ``http.server`` thread, and shard-server feeder threads each nest
    their own spans without racing one another, while span ids stay
    globally unique (a shared atomic counter) and record emission is
    serialised through one lock so sink lines never interleave.

    ``trace_id`` names the trace this recorder contributes to; worker
    processes spooling telemetry for a coordinator are constructed with
    the coordinator's trace id (propagated via
    :func:`repro.obs.dist.current_context`) so merged timelines share
    one identity.
    """

    enabled = True

    def __init__(self, *sinks, trace_id: str | None = None) -> None:
        self.sinks = list(sinks)
        self.metrics = MetricsRegistry()
        self.trace_id = trace_id if trace_id is not None else new_trace_id()
        self._local = threading.local()
        self._ids = itertools.count(1)
        self._open_count = 0
        self._emit_lock = threading.Lock()
        self._finished = False

    @property
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- spans ---------------------------------------------------------
    def span(self, name: str, **attrs) -> Span:
        return Span(self, name, attrs)

    def _open(self, span: Span) -> None:
        span.span_id = next(self._ids)
        stack = self._stack
        if stack:
            span.parent_id = stack[-1].span_id
            span.depth = stack[-1].depth + 1
        stack.append(span)
        with self._emit_lock:
            self._open_count += 1

    def _close(self, span: Span) -> None:
        stack = self._stack
        if not stack or stack[-1] is not span:
            raise RuntimeError(
                f"span '{span.name}' closed out of order; "
                "spans must nest like context managers"
            )
        stack.pop()
        with self._emit_lock:
            self._open_count -= 1
            for sink in self.sinks:
                sink.emit(span.to_record())

    @property
    def current_span(self) -> Span | None:
        """The innermost open span *of the calling thread* (or None)."""
        stack = self._stack
        return stack[-1] if stack else None

    # -- metrics -------------------------------------------------------
    def counter(self, name: str, amount: float = 1.0) -> None:
        self.metrics.counter(name).add(amount)

    def gauge(self, name: str, value: float) -> None:
        self.metrics.gauge(name).set(value)

    def histogram(self, name: str, value: float) -> None:
        self.metrics.histogram(name).observe(value)

    # -- lifecycle -----------------------------------------------------
    def _emit(self, record: dict) -> None:
        with self._emit_lock:
            for sink in self.sinks:
                sink.emit(record)

    def flush(self) -> None:
        """Push buffered sink output to the OS without closing anything."""
        with self._emit_lock:
            for sink in self.sinks:
                flush = getattr(sink, "flush", None)
                if flush is not None:
                    flush()

    def finish(self, strict: bool = True) -> None:
        """Flush the final metrics snapshot and close the sinks.

        Open spans at finish time are an instrumentation bug; with
        ``strict`` they raise (counting spans across *all* threads),
        otherwise (the unwinding-an-exception path) the calling
        thread's spans are force-closed innermost-first so the trace
        file stays parseable.  Spans left open by other threads cannot
        be safely closed from here and are simply never emitted.
        """
        if self._finished:
            return
        if self._open_count and strict:
            where = f"(innermost here: '{self._stack[-1].name}')" if self._stack else "(in another thread)"
            raise RuntimeError(
                f"finish() with {self._open_count} span(s) still open {where}"
            )
        while self._stack:
            open_span = self._stack[-1]
            open_span.duration_s = time.perf_counter() - open_span._started
            open_span.error = open_span.error or "unclosed"
            self._close(open_span)
        self._finished = True
        self._emit({"type": "metrics", **self.metrics.snapshot()})
        for sink in self.sinks:
            sink.close()


# ---------------------------------------------------------------------
# The process-wide recorder switch.
# ---------------------------------------------------------------------
_recorder = NOOP


def get_recorder():
    """The active recorder (the no-op singleton by default)."""
    return _recorder


def set_recorder(recorder) -> object:
    """Install ``recorder`` (``None`` restores the no-op); returns the
    previously active recorder so callers can restore it."""
    global _recorder
    previous = _recorder
    _recorder = recorder if recorder is not None else NOOP
    return previous


def enabled() -> bool:
    """Whether an active (non-no-op) recorder is installed."""
    return _recorder.enabled


def span(name: str, **attrs):
    """Open a span on the active recorder (free when observability is off)."""
    return _recorder.span(name, **attrs)


def counter(name: str, amount: float = 1.0) -> None:
    _recorder.counter(name, amount)


def gauge(name: str, value: float) -> None:
    _recorder.gauge(name, value)


def histogram(name: str, value: float) -> None:
    _recorder.histogram(name, value)


@contextmanager
def recording(*sinks) -> Iterator[TraceRecorder]:
    """Run a block under a fresh :class:`TraceRecorder`.

    Installs the recorder for the duration of the block, then finishes
    it (flushing the metrics snapshot and closing the sinks) and
    restores whatever recorder was active before.
    """
    recorder = TraceRecorder(*sinks)
    previous = set_recorder(recorder)
    try:
        yield recorder
    except BaseException:
        set_recorder(previous)
        recorder.finish(strict=False)
        raise
    else:
        set_recorder(previous)
        recorder.finish()

"""Trace sinks: where finished spans and metric snapshots go.

A sink receives plain-dict records (``{"type": "span", ...}`` or
``{"type": "metrics", ...}``) as they are produced.  ``JsonlSink``
appends one JSON object per line — the on-disk trace format that
``repro.cli trace-report`` reads back; ``MemorySink`` keeps records in
a list for tests and in-process analysis.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path
from typing import IO


class MemorySink:
    """Collects records in memory (the test/analysis sink)."""

    def __init__(self) -> None:
        self.records: list[dict] = []

    def emit(self, record: dict) -> None:
        self.records.append(record)

    def close(self) -> None:  # pragma: no cover - nothing to release
        pass

    @property
    def spans(self) -> list[dict]:
        return [r for r in self.records if r.get("type") == "span"]

    @property
    def metrics(self) -> dict | None:
        """The final metrics snapshot, if the recorder was finished."""
        for record in reversed(self.records):
            if record.get("type") == "metrics":
                return record
        return None

    def span_names(self) -> list[str]:
        return [r["name"] for r in self.spans]


class JsonlSink:
    """Appends records to a JSONL trace file, one object per line.

    ``append=True`` opens the file in append mode instead of
    truncating — the mode per-process telemetry spools use, so a shard
    server respawned after a crash continues the same spool file rather
    than erasing the spans its predecessor managed to flush.
    """

    def __init__(self, path: str | Path, append: bool = False) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: IO[str] | None = self.path.open("a" if append else "w")

    def emit(self, record: dict) -> None:
        if self._fh is None:
            raise ValueError(f"sink for {self.path} is closed")
        self._fh.write(json.dumps(record, default=_jsonable) + "\n")

    def flush(self) -> None:
        """Push buffered records to the OS (round-boundary durability)."""
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def _jsonable(value):
    """Fallback encoder: numpy scalars and arbitrary objects to JSON."""
    if hasattr(value, "tolist"):  # numpy array or scalar
        return value.tolist()
    return str(value)


def read_jsonl(path: str | Path, strict: bool = False) -> list[dict]:
    """Load every parseable record of a JSONL file.

    A run killed mid-write (OOM, SIGKILL, power loss) leaves a
    truncated final line; by default such unparseable lines are skipped
    with a :class:`UserWarning` naming the file and line number, so the
    surviving records stay readable.  ``strict=True`` restores the
    raise-on-first-error behaviour for callers that must not tolerate a
    damaged file.
    """
    path = Path(path)
    records = []
    with path.open() as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                if strict:
                    raise
                warnings.warn(
                    f"{path}:{lineno}: skipping truncated/corrupt JSONL line "
                    "(run killed mid-write?)",
                    stacklevel=2,
                )
    return records


def read_trace(path: str | Path, strict: bool = False) -> list[dict]:
    """Load every record of a JSONL trace file (see :func:`read_jsonl`)."""
    return read_jsonl(path, strict=strict)

"""Cross-process observability: trace context, spools, merge, attribution.

The recorder in :mod:`repro.obs.recorder` is process-local — spans and
metrics recorded inside a :class:`~repro.dist.backend.ProcessBackend`
job or a shard server die with that process.  This module carries
telemetry across the process boundary in three moves:

**Trace context propagation.**  :func:`current_context` captures the
active trace id and innermost span id as a compact wire dict; the
coordinator injects it into every shard-server command frame (a fourth
tuple element, present *only* when tracing is active, so the disabled
path's frames stay byte-identical) and into every ``Backend.map``
payload bundle.  Child-process spans record the coordinator span they
were sent under as ``remote_parent``, which the merge step below turns
back into a real parent edge.

**Per-process telemetry spooling.**  Each worker process installs a
real :class:`~repro.obs.recorder.TraceRecorder` writing to an
append-only JSONL *spool* (``spool-shard3-12345.jsonl``), reusing the
crash-safe sink machinery — a worker killed mid-write leaves a
truncated final line that the tolerant reader skips, and a respawned
server (new pid) opens a fresh spool file next to its predecessor's.
Spools are flushed on round boundaries (the ``obs_flush`` command) and
start with a ``spool_start`` header naming the process and trace.

**Merged timeline & attribution.**  :func:`merge_spools` aligns each
spool onto the coordinator's clock (per-process offset estimated as the
minimum observed ``recv_unix - sent_unix`` over command spans — the
one-way-latency-is-nonnegative bound), rewrites worker span ids into a
per-process namespace (``p12345:7``), re-parents top-level worker spans
onto the coordinator spans that issued them, and returns one unified
record list that :func:`repro.obs.report.aggregate` consumes unchanged.
:func:`attribute_rounds` then splits every serving round into
prepare / solve / merge on the coordinator side and per-shard busy vs
IPC-wait inside the solve, naming the straggler (the busiest shard)
per round; :func:`render_distributed_report` prints the table and the
critical-path summary behind ``trace-report --distributed``.
"""

from __future__ import annotations

import cProfile
import io
import os
import pstats
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs import recorder as _recorder_mod
from repro.obs.recorder import TraceRecorder, get_recorder
from repro.obs.sinks import JsonlSink, read_jsonl

#: Span name prefix for shard-server command execution in workers.
CMD_SPAN_PREFIX = "dist.cmd."
#: Span name for process-pool jobs executed under a propagated context.
JOB_SPAN = "dist.job"
#: Coordinator-side span names for one sharded serving round.
ROUND_SPAN = "dist.server.round"
PREPARE_SPAN = "dist.server.prepare"
SOLVE_SPAN = "dist.server.solve"
MERGE_SPAN = "dist.server.merge"


@dataclass(frozen=True)
class DistObsConfig:
    """Distributed-observability knobs carried by ``DistConfig.obs``.

    Attributes
    ----------
    spool_dir:
        Directory for per-process telemetry spools; ``None`` (the
        default) disables spooling entirely — workers install no
        recorder and command frames still carry trace context only if
        the coordinator traces.
    profile:
        Enable cadence-sampled ``cProfile`` profiling inside shard
        servers; hotspots come back in ``obs_flush`` replies.
    profile_every:
        Profile every Nth round (1 = every round).
    profile_top_n:
        How many hotspots (by cumulative time) each flush reports.
    """

    spool_dir: str | None = None
    profile: bool = False
    profile_every: int = 1
    profile_top_n: int = 10

    def __post_init__(self) -> None:
        if self.profile_every < 1:
            raise ValueError("profile_every must be at least 1")
        if self.profile_top_n < 1:
            raise ValueError("profile_top_n must be at least 1")
        if self.profile and self.spool_dir is None:
            raise ValueError("profiling requires a spool_dir to report into")

    @property
    def enabled(self) -> bool:
        return self.spool_dir is not None

    def to_wire(self) -> dict:
        """A plain picklable dict for shipping to worker processes."""
        return {
            "spool_dir": self.spool_dir,
            "profile": self.profile,
            "profile_every": self.profile_every,
            "profile_top_n": self.profile_top_n,
        }


# ----------------------------------------------------------------------
# trace context: coordinator -> worker
# ----------------------------------------------------------------------
def current_context(replay: bool = False) -> dict | None:
    """The active trace context as a wire dict, or ``None`` untraced.

    Returns ``None`` unless a :class:`TraceRecorder` is installed, so
    the disabled path costs one attribute probe and callers can keep
    their wire frames unchanged (context is *appended*, never an empty
    placeholder).
    """
    rec = get_recorder()
    trace = getattr(rec, "trace_id", None)
    if trace is None:
        return None
    span = rec.current_span
    ctx = {
        "trace": trace,
        "parent": span.span_id if span is not None else None,
        "sent_unix": time.time(),
    }
    if replay:
        ctx["replay"] = True
    return ctx


# ----------------------------------------------------------------------
# worker-side telemetry
# ----------------------------------------------------------------------
def spool_path(spool_dir: str | Path, role: str, ident: int | str) -> Path:
    """Where one worker process spools: ``spool-{role}{ident}-{pid}.jsonl``.

    The pid is part of the name so a respawned shard server (same
    shard id, new process) opens a *fresh* spool instead of appending
    to — or truncating — its crashed predecessor's file.
    """
    return Path(spool_dir) / f"spool-{role}{ident}-{os.getpid()}.jsonl"


class WorkerTelemetry:
    """One worker process's recorder, spool, and per-round accounting.

    Created lazily on the first command frame that carries a trace
    context (so an untraced run never touches the filesystem), it
    installs a :class:`TraceRecorder` spooling to an append-only JSONL
    file, counts rounds (advanced by ``obs_flush``), accumulates
    per-command busy seconds for the flush reply, and optionally runs a
    cadence-sampled ``cProfile`` session per round.
    """

    def __init__(self, cfg: dict, role: str, ident: int | str, trace_id: str) -> None:
        self.cfg = cfg
        self.role = role
        self.ident = ident
        self.path = spool_path(cfg["spool_dir"], role, ident)
        self.sink = JsonlSink(self.path, append=True)
        self.recorder = TraceRecorder(self.sink, trace_id=trace_id)
        self.round = 0
        self.busy_s: dict[str, float] = {}
        self._profiler: cProfile.Profile | None = None
        self.sink.emit(
            {
                "type": "spool_start",
                "pid": os.getpid(),
                "role": role,
                "ident": ident,
                "trace_id": trace_id,
                "start_unix": time.time(),
            }
        )
        self.sink.flush()
        self._maybe_start_profile()

    # -- spans ---------------------------------------------------------
    def command_span(self, name: str, ctx: dict, **attrs):
        """The span timing one command, parented back to the coordinator."""
        span = self.recorder.span(
            name,
            round=self.round,
            remote_parent=ctx.get("parent"),
            sent_unix=ctx.get("sent_unix"),
            recv_unix=time.time(),
            **attrs,
        )
        if ctx.get("replay"):
            span.attrs["replay"] = True
        return span

    def account(self, command: str, seconds: float) -> None:
        self.busy_s[command] = self.busy_s.get(command, 0.0) + seconds

    # -- profiling -----------------------------------------------------
    def _profiling_this_round(self) -> bool:
        return bool(self.cfg.get("profile")) and (
            self.round % int(self.cfg.get("profile_every", 1)) == 0
        )

    def _maybe_start_profile(self) -> None:
        if self._profiling_this_round():
            self._profiler = cProfile.Profile()
            self._profiler.enable()

    def _harvest_profile(self) -> list[dict] | None:
        if self._profiler is None:
            return None
        self._profiler.disable()
        stats = pstats.Stats(self._profiler, stream=io.StringIO())
        top_n = int(self.cfg.get("profile_top_n", 10))
        rows = []
        for func, (cc, nc, tt, ct, _callers) in stats.stats.items():
            filename, lineno, name = func
            rows.append(
                {
                    "function": f"{os.path.basename(filename)}:{lineno}:{name}",
                    "ncalls": nc,
                    "tottime_s": round(tt, 6),
                    "cumtime_s": round(ct, 6),
                }
            )
        rows.sort(key=lambda r: -r["cumtime_s"])
        self._profiler = None
        return rows[:top_n]

    # -- round boundary ------------------------------------------------
    def flush(self) -> dict:
        """Close out the round: durable spool, busy summary, hotspots."""
        profile = self._harvest_profile()
        reply = {
            "round": self.round,
            "pid": os.getpid(),
            "busy_s": round(sum(self.busy_s.values()), 9),
            "by_command": {k: round(v, 9) for k, v in sorted(self.busy_s.items())},
        }
        if profile is not None:
            reply["profile"] = profile
        self.sink.flush()
        self.busy_s = {}
        self.round += 1
        self._maybe_start_profile()
        return reply

    def close(self) -> None:
        try:
            self.recorder.finish(strict=False)
        except Exception:
            pass


def traced_job(bundle: tuple) -> object:
    """Picklable wrapper running one process-pool job under telemetry.

    ``bundle`` is ``(fn, payload, ctx, cfg)`` as packed by
    :class:`~repro.dist.backend.ProcessBackend` when distributed
    observability is on.  A short-lived recorder spools one
    :data:`JOB_SPAN` span (plus anything ``fn`` itself records) to this
    process's spool, then flushes; pool processes are reused, so the
    append-mode spool accumulates one segment per job.
    """
    fn, payload, ctx, cfg = bundle
    telemetry = WorkerTelemetry(cfg, role="proc", ident="", trace_id=ctx["trace"])
    previous = _recorder_mod.set_recorder(telemetry.recorder)
    try:
        with telemetry.command_span(JOB_SPAN, ctx, pid=os.getpid()):
            return fn(payload)
    finally:
        _recorder_mod.set_recorder(previous)
        telemetry.close()


# ----------------------------------------------------------------------
# coordinator-side merge
# ----------------------------------------------------------------------
def list_spools(spool_dir: str | Path) -> list[Path]:
    return sorted(Path(spool_dir).glob("spool-*.jsonl"))


def clock_offset(records: list[dict]) -> float:
    """Estimate this process's clock offset against the coordinator.

    Every command span carries the coordinator's ``sent_unix`` and the
    worker's ``recv_unix``; their difference is (clock offset + one-way
    pipe latency).  Latency is non-negative, so the minimum difference
    over all commands bounds the offset from above — with the pipe
    round-trips a serving run produces, it is a tight estimate.
    Returns 0.0 when no span carries both stamps.
    """
    best = None
    for record in records:
        if record.get("type") != "span":
            continue
        attrs = record.get("attrs") or {}
        sent, recv = attrs.get("sent_unix"), attrs.get("recv_unix")
        if sent is None or recv is None:
            continue
        delta = float(recv) - float(sent)
        if best is None or delta < best:
            best = delta
    return best if best is not None else 0.0


def align_spool(records: list[dict], source: str) -> list[dict]:
    """One spool's records, clock-aligned and id-namespaced for merging.

    Span ids become ``"{source}:{id}"`` strings (unique across
    processes; :func:`repro.obs.report.aggregate` accepts any hashable
    id), top-level spans are re-parented onto their ``remote_parent``
    coordinator span, start times shift by the estimated clock offset,
    and each record is stamped with its ``process`` of origin.  Metrics
    snapshots are retagged ``worker_metrics`` so they never shadow the
    coordinator's final snapshot during aggregation.
    """
    offset = clock_offset(records)
    out: list[dict] = []
    for record in records:
        kind = record.get("type")
        if kind == "spool_start":
            entry = dict(record)
            entry["clock_offset_s"] = offset
            out.append(entry)
            continue
        if kind == "metrics":
            entry = dict(record)
            entry["type"] = "worker_metrics"
            entry["process"] = source
            out.append(entry)
            continue
        if kind != "span":
            out.append(dict(record))
            continue
        entry = dict(record)
        entry["attrs"] = dict(record.get("attrs") or {})
        entry["span_id"] = f"{source}:{record['span_id']}"
        parent = record.get("parent_id")
        if parent is not None:
            entry["parent_id"] = f"{source}:{parent}"
        else:
            entry["parent_id"] = entry["attrs"].pop("remote_parent", None)
        if entry.get("start_unix"):
            entry["start_unix"] = float(entry["start_unix"]) - offset
        entry["process"] = source
        out.append(entry)
    return out


def merge_spools(
    records: list[dict], spool_dir: str | Path, strict: bool = False
) -> list[dict]:
    """The unified timeline: coordinator records plus every spool.

    ``records`` is the coordinator's own trace (as read from its JSONL
    trace file or a memory sink); every ``spool-*.jsonl`` under
    ``spool_dir`` is read tolerantly (truncated tails from crashed
    workers are skipped with a warning), aligned, and appended.  The
    result feeds :func:`repro.obs.report.aggregate`,
    :func:`attribute_rounds`, and :func:`render_distributed_report`
    directly.
    """
    merged = list(records)
    for path in list_spools(spool_dir):
        spool = read_jsonl(path, strict=strict)
        merged.extend(align_spool(spool, source=path.stem.removeprefix("spool-")))
    return merged


# ----------------------------------------------------------------------
# straggler & critical-path attribution
# ----------------------------------------------------------------------
@dataclass
class RoundAttribution:
    """Where one sharded serving round's wall time went."""

    round: int
    t: float | None = None
    wall_s: float = 0.0
    prepare_s: float = 0.0
    solve_s: float = 0.0
    merge_s: float = 0.0
    #: per-shard busy seconds inside the solve (worker-reported)
    shard_busy_s: dict[int, float] = field(default_factory=dict)
    #: per-shard replayed-command seconds (crash-recovery cost)
    shard_replay_s: dict[int, float] = field(default_factory=dict)

    @property
    def straggler(self) -> int | None:
        if not self.shard_busy_s:
            return None
        return max(self.shard_busy_s, key=lambda s: self.shard_busy_s[s])

    @property
    def critical_busy_s(self) -> float:
        """The straggler's busy time — the solve's lower bound."""
        return max(self.shard_busy_s.values(), default=0.0)

    def ipc_wait_s(self, shard: int) -> float:
        """Solve-window time shard ``shard`` spent idle or in transit."""
        return max(self.solve_s - self.shard_busy_s.get(shard, 0.0), 0.0)


def attribute_rounds(records: list[dict]) -> list[RoundAttribution]:
    """Per-round, per-shard breakdown from a merged timeline.

    Coordinator :data:`ROUND_SPAN` spans define the rounds; their
    prepare / solve / merge children split the coordinator's wall time;
    worker command spans whose (re-)parent lands inside a round's solve
    span supply the per-shard busy seconds — anything left of the solve
    window is IPC wait (pickle, pipe, and scheduling).
    """
    spans = [r for r in records if r.get("type") == "span"]
    rounds: dict[object, RoundAttribution] = {}
    solve_to_round: dict[object, RoundAttribution] = {}

    for record in spans:
        if record.get("name") != ROUND_SPAN:
            continue
        attrs = record.get("attrs") or {}
        att = RoundAttribution(
            round=int(attrs.get("round", len(rounds))),
            t=attrs.get("t"),
            wall_s=float(record.get("duration_s", 0.0)),
        )
        rounds[record["span_id"]] = att

    for record in spans:
        parent = record.get("parent_id")
        if parent not in rounds:
            continue
        att = rounds[parent]
        name = record.get("name")
        duration = float(record.get("duration_s", 0.0))
        if name == PREPARE_SPAN:
            att.prepare_s += duration
        elif name == SOLVE_SPAN:
            att.solve_s += duration
            solve_to_round[record["span_id"]] = att
        elif name == MERGE_SPAN:
            att.merge_s += duration

    for record in spans:
        if not str(record.get("name", "")).startswith(CMD_SPAN_PREFIX):
            continue
        att = solve_to_round.get(record.get("parent_id"))
        if att is None:
            # Replay-time and flush commands land outside any solve
            # window; they show up in replay_seconds(), not per-round.
            continue
        attrs = record.get("attrs") or {}
        shard = attrs.get("shard")
        if shard is None:
            continue
        shard = int(shard)
        duration = float(record.get("duration_s", 0.0))
        att.shard_busy_s[shard] = att.shard_busy_s.get(shard, 0.0) + duration
        if attrs.get("replay"):
            att.shard_replay_s[shard] = att.shard_replay_s.get(shard, 0.0) + duration

    return sorted(rounds.values(), key=lambda a: a.round)


def replay_seconds(records: list[dict]) -> float:
    """Total worker time spent re-executing replayed commands."""
    total = 0.0
    for record in records:
        if record.get("type") != "span":
            continue
        if (record.get("attrs") or {}).get("replay"):
            total += float(record.get("duration_s", 0.0))
    return total


def render_distributed_report(records: list[dict], title: str = "distributed rounds") -> str:
    """The ``trace-report --distributed`` section: rounds and stragglers."""
    attributions = attribute_rounds(records)
    lines = [title, "=" * len(title), ""]
    if not attributions:
        lines.append("no coordinator round spans found (was the run sharded and traced?)")
        return "\n".join(lines)

    header = (
        f"{'round':>5} {'wall s':>8} {'prep s':>8} {'solve s':>8} {'merge s':>8} "
        f"{'straggler':>9} {'busy s':>8} {'ipc wait s':>10}"
    )
    lines += [header, "-" * len(header)]
    shard_busy: dict[int, float] = {}
    shard_wait: dict[int, float] = {}
    shard_straggles: dict[int, int] = {}
    critical = 0.0
    for att in attributions:
        straggler = att.straggler
        critical += att.critical_busy_s
        for shard, busy in att.shard_busy_s.items():
            shard_busy[shard] = shard_busy.get(shard, 0.0) + busy
            shard_wait[shard] = shard_wait.get(shard, 0.0) + att.ipc_wait_s(shard)
        if straggler is not None:
            shard_straggles[straggler] = shard_straggles.get(straggler, 0) + 1
        lines.append(
            f"{att.round:>5d} {att.wall_s:>8.4f} {att.prepare_s:>8.4f} "
            f"{att.solve_s:>8.4f} {att.merge_s:>8.4f} "
            f"{('shard ' + str(straggler)) if straggler is not None else '-':>9} "
            f"{att.critical_busy_s:>8.4f} "
            f"{(att.ipc_wait_s(straggler) if straggler is not None else 0.0):>10.4f}"
        )

    lines += ["", "per-shard totals", "----------------"]
    head = f"{'shard':>5} {'busy s':>9} {'ipc wait s':>10} {'straggled':>9}"
    lines += [head]
    for shard in sorted(shard_busy):
        lines.append(
            f"{shard:>5d} {shard_busy[shard]:>9.4f} {shard_wait[shard]:>10.4f} "
            f"{shard_straggles.get(shard, 0):>9d}"
        )

    wall = sum(a.wall_s for a in attributions)
    solve = sum(a.solve_s for a in attributions)
    replay = replay_seconds(records)
    lines += [
        "",
        "critical path",
        "-------------",
        f"rounds: {len(attributions)}    round wall time: {wall:.4f}s",
        f"solve window: {solve:.4f}s    straggler busy (critical path): {critical:.4f}s",
        f"ipc/scheduling overhead inside solve: {max(solve - critical, 0.0):.4f}s",
    ]
    if replay > 0.0:
        lines.append(f"crash-replay re-execution: {replay:.4f}s")
    return "\n".join(lines)

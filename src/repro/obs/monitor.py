"""Online monitoring: periodic metric snapshots for a live run.

``repro.obs`` so far captured *end-of-run* state: one metrics snapshot
flushed when the recorder finishes, spans read back post hoc.  A
streaming engine (:mod:`repro.serve`) runs continuously, so operators
need the time axis: queue pressure over the run, batch latency as the
stream loads up, whether the predictor's completion probabilities are
still calibrated (see :mod:`repro.obs.calibration`).

:class:`MetricsMonitor` samples a :class:`~repro.obs.metrics.MetricsRegistry`
on a configurable cadence — simulated event time or wall clock — into
an append-only JSONL **time series**.  Each sample carries:

* cumulative counter values plus **windowed deltas** (what happened
  since the previous sample — the rate signal);
* current gauge values;
* **rolling histogram summaries** over the observations that arrived
  in the window (cursors into the histogram, no copying/resetting).

Each sample optionally refreshes an OpenMetrics exposition target
(file and/or stdlib HTTP endpoint, :mod:`repro.obs.openmetrics`) so
external scrapers can watch the run live.  A calibration monitor, when
configured, streams its drift events into the same series file and
appends a final ``calibration`` record at close.

Everything here is opt-in: the serving engine only instantiates a
monitor when :class:`MonitorConfig` is present on its config, and the
no-op default path is untouched.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO

from repro.obs.calibration import CalibrationConfig, CalibrationMonitor
from repro.obs.metrics import MetricsRegistry
from repro.obs.openmetrics import ExpositionServer, render_openmetrics, write_openmetrics
from repro.obs.sinks import read_jsonl


@dataclass(frozen=True)
class MonitorConfig:
    """Tunables of the online monitor.

    Attributes
    ----------
    cadence:
        Sampling period: simulated minutes when ``clock="event"``,
        seconds when ``clock="wall"``.
    clock:
        ``"event"`` samples on the run's own time axis (deterministic,
        the default for simulated streams); ``"wall"`` samples on
        ``time.monotonic()`` (for live deployments).
    series_path:
        JSONL time-series target (``None`` keeps samples in memory
        only — tests and in-process dashboards).
    openmetrics_path:
        When set, every sample atomically rewrites this OpenMetrics
        exposition file.
    http_port:
        When set (0 = ephemeral), an :class:`ExpositionServer` serves
        the latest exposition at ``/metrics`` for the monitor's
        lifetime.
    prefix:
        OpenMetrics namespace prefix.
    calibration:
        Calibration-monitor knobs; ``None`` disables calibration
        tracking entirely.
    """

    cadence: float = 2.0
    clock: str = "event"
    series_path: str | None = None
    openmetrics_path: str | None = None
    http_port: int | None = None
    prefix: str = "repro"
    calibration: CalibrationConfig | None = field(default_factory=CalibrationConfig)

    def __post_init__(self) -> None:
        if self.cadence <= 0:
            raise ValueError("monitor cadence must be positive")
        if self.clock not in ("event", "wall"):
            raise ValueError("monitor clock must be 'event' or 'wall'")


class MetricsMonitor:
    """Samples a metrics registry on a cadence into a JSONL time series.

    Drive it with :meth:`start` once, :meth:`advance` on every event
    (cheap: one float comparison until a sample boundary is crossed),
    and :meth:`finish` at the end of the run.  Samples accumulate in
    :attr:`samples` and stream to ``config.series_path`` when set.
    """

    def __init__(self, config: MonitorConfig, registry: MetricsRegistry) -> None:
        self.config = config
        self.registry = registry
        self.samples: list[dict] = []
        self.calibration = (
            CalibrationMonitor(config.calibration) if config.calibration is not None else None
        )
        self.server: ExpositionServer | None = None
        self._fh: IO[str] | None = None
        self._seq = 0
        self._last_t: float | None = None
        self._next_sample = 0.0
        self._last_counters: dict[str, float] = {}
        self._hist_cursors: dict[str, int] = {}
        self._finished = False

    # -- lifecycle -----------------------------------------------------
    def start(self, t: float | None = None) -> None:
        """Open sinks and anchor the sampling clock at ``t``."""
        if self.config.series_path is not None:
            path = Path(self.config.series_path)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = path.open("w")
        if self.config.http_port is not None:
            self.server = ExpositionServer(port=self.config.http_port)
        t0 = self._now(t)
        self._last_t = t0
        self._next_sample = t0 + self.config.cadence
        self._write({"type": "monitor_start", "t": t0, "wall_unix": time.time(),
                     "cadence": self.config.cadence, "clock": self.config.clock})

    def advance(self, t: float | None = None) -> None:
        """Clock tick: emit samples for every cadence boundary crossed.

        With the event clock, an idle stretch longer than one cadence
        emits one sample per boundary (so the series has a row for
        every window, even empty ones); the registry state is the same
        for each, only the window bounds differ.
        """
        now = self._now(t)
        while not self._finished and now >= self._next_sample - 1e-9:
            self._sample(at=self._next_sample)
            self._next_sample += self.config.cadence

    def observe_outcome(self, predicted: float, accepted: bool, t: float) -> None:
        """Feed one assignment outcome to the calibration monitor.

        Drift events stream into the series file as they fire.
        """
        if self.calibration is None:
            return
        event = self.calibration.observe(predicted, accepted, t)
        if event is not None:
            self.registry.counter("serve.calibration.drift").add(1.0)
            self._write(dict(event, wall_unix=time.time()))

    def finish(self, t: float | None = None) -> None:
        """Final sample, calibration summary, and sink close."""
        if self._finished:
            return
        self._sample(at=self._now(t), final=True)
        if self.calibration is not None:
            self._write({"type": "calibration", "wall_unix": time.time(),
                         **self.calibration.summary()})
        self._finished = True
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        if self.server is not None:
            self.server.close()
            self.server = None

    # -- internals -----------------------------------------------------
    def _now(self, t: float | None) -> float:
        if self.config.clock == "wall":
            return time.monotonic()
        if t is None:
            raise ValueError("event-clock monitor needs an explicit time")
        return t

    def _sample(self, at: float, final: bool = False) -> None:
        snapshot = self.registry.snapshot()
        counters = snapshot["counters"]
        deltas = {
            name: value - self._last_counters.get(name, 0.0)
            for name, value in counters.items()
        }
        windows: dict[str, dict] = {}
        # Take the histogram listing under the registry lock: feeder
        # threads (shard-server flushes, the exposition server) may be
        # creating metrics while this sampler iterates.
        with self.registry._lock:
            hist_items = sorted(self.registry.histograms.items())
        for name, hist in hist_items:
            cursor = self._hist_cursors.get(name, 0)
            windows[name] = hist.window_summary(cursor)
            self._hist_cursors[name] = len(hist.values)
        last_t = self._last_t if self._last_t is not None else at
        record = {
            "type": "sample",
            "seq": self._seq,
            "t": at,
            "wall_unix": time.time(),
            "window": at - last_t,
            "counters": counters,
            "counter_deltas": deltas,
            "gauges": snapshot["gauges"],
            "histograms": windows,
        }
        if final:
            record["final"] = True
        if self.calibration is not None and self.calibration.n:
            record["calibration"] = {
                "n_samples": self.calibration.n,
                "brier": self.calibration.brier,
                "ece": self.calibration.expected_calibration_error,
                "n_drift_events": len(self.calibration.drift_events),
            }
        self._seq += 1
        self._last_t = at
        self._last_counters = dict(counters)
        self.samples.append(record)
        self._write(record)
        if self.config.openmetrics_path is not None:
            write_openmetrics(self.config.openmetrics_path, snapshot, prefix=self.config.prefix)
        if self.server is not None:
            self.server.publish(render_openmetrics(snapshot, prefix=self.config.prefix))

    def _write(self, record: dict) -> None:
        if self._fh is not None:
            self._fh.write(json.dumps(record, default=str) + "\n")
            self._fh.flush()


def read_series(path: str | Path) -> list[dict]:
    """Load a monitor time series, skipping corrupt trailing lines.

    Same tolerance as :func:`repro.obs.sinks.read_jsonl`: a run killed
    mid-write leaves a truncated last line, which is skipped with a
    warning instead of losing the whole series.
    """
    return read_jsonl(path)

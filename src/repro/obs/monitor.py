"""Online monitoring: periodic metric snapshots for a live run.

``repro.obs`` so far captured *end-of-run* state: one metrics snapshot
flushed when the recorder finishes, spans read back post hoc.  A
streaming engine (:mod:`repro.serve`) runs continuously, so operators
need the time axis: queue pressure over the run, batch latency as the
stream loads up, whether the predictor's completion probabilities are
still calibrated (see :mod:`repro.obs.calibration`).

:class:`MetricsMonitor` samples a :class:`~repro.obs.metrics.MetricsRegistry`
on a configurable cadence — simulated event time or wall clock — into
an append-only JSONL **time series**.  Each sample carries:

* cumulative counter values plus **windowed deltas** (what happened
  since the previous sample — the rate signal);
* current gauge values;
* **rolling histogram summaries** over the observations that arrived
  in the window (cursors into the histogram, no copying/resetting).

Each sample optionally refreshes an OpenMetrics exposition target
(file and/or stdlib HTTP endpoint, :mod:`repro.obs.openmetrics`) so
external scrapers can watch the run live.  A calibration monitor, when
configured, streams its drift events into the same series file and
appends a final ``calibration`` record at close.

Everything here is opt-in: the serving engine only instantiates a
monitor when :class:`MonitorConfig` is present on its config, and the
no-op default path is untouched.
"""

from __future__ import annotations

import json
import re
import time
from collections import deque
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import IO, Sequence

from repro.obs.calibration import CalibrationConfig, CalibrationMonitor
from repro.obs.metrics import MetricsRegistry, labelled
from repro.obs.openmetrics import ExpositionServer, render_openmetrics, write_openmetrics
from repro.obs.sinks import read_jsonl


# ----------------------------------------------------------------------
# Service-level objectives over the sampled series.

@dataclass(frozen=True)
class SLOSpec:
    """One declarative service-level objective over monitor samples.

    Two kinds, mirroring the two signals the sampler produces:

    * ``ratio`` — a good-events / total-events objective over counter
      *deltas* per window, e.g. ``assign_rate = serve.accepted /
      serve.assignments >= 0.95``.  A window's **bad fraction** is
      ``1 - good/total`` (clamped to [0, 1]) weighted by ``total``;
      windows with no traffic carry no weight.
    * ``quantile`` — a windowed histogram-summary threshold, e.g.
      ``p99(serve.batch.latency_s) <= 0.5``.  A window is wholly good
      or wholly bad (the summary either meets the threshold or not),
      weighted by the window's observation count.

    Alerting uses the multi-window burn-rate idiom: the **burn rate**
    is the weighted-average bad fraction divided by the error budget
    (``1 - target`` for ratios; ``budget`` for quantile objectives,
    default 5% of windows), so burn 1.0 exactly spends the budget.  An
    alert fires on the rising edge of *both* the short window (fast
    signal) and the long window (debounce) exceeding
    ``burn_threshold``; it re-arms once either window recovers.
    """

    name: str
    kind: str
    target: float
    numerator: str | None = None
    denominator: str | None = None
    metric: str | None = None
    quantile: str = "p99"
    budget: float | None = None
    short_window: int = 3
    long_window: int = 12
    burn_threshold: float = 2.0

    def __post_init__(self) -> None:
        if self.kind not in ("ratio", "quantile"):
            raise ValueError("SLO kind must be 'ratio' or 'quantile'")
        if self.kind == "ratio":
            if not self.numerator or not self.denominator:
                raise ValueError("ratio SLO needs numerator and denominator metrics")
            if not 0.0 < self.target <= 1.0:
                raise ValueError("ratio SLO target must be in (0, 1]")
        else:
            if not self.metric:
                raise ValueError("quantile SLO needs a histogram metric")
            if self.quantile not in ("p50", "p90", "p99", "mean", "max"):
                raise ValueError("SLO quantile must be one of p50/p90/p99/mean/max")
        if self.budget is not None and not 0.0 < self.budget <= 1.0:
            raise ValueError("SLO budget must be in (0, 1]")
        if self.short_window < 1 or self.long_window < self.short_window:
            raise ValueError("SLO windows must satisfy 1 <= short <= long")
        if self.burn_threshold <= 0:
            raise ValueError("SLO burn threshold must be positive")

    def resolved_budget(self) -> float:
        if self.budget is not None:
            return self.budget
        if self.kind == "ratio":
            return max(1.0 - self.target, 1e-9)
        return 0.05

    def describe(self) -> str:
        if self.kind == "ratio":
            return f"{self.numerator}/{self.denominator} >= {self.target:g}"
        return f"{self.quantile}({self.metric}) <= {self.target:g}"


_SLO_RE = re.compile(
    r"^\s*(?P<name>[A-Za-z0-9_.-]+)\s*=\s*(?P<body>.+?)\s*(?P<op>>=|<=)\s*"
    r"(?P<value>[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?)\s*$"
)
_SLO_QUANTILE_RE = re.compile(
    r"^(?P<q>p50|p90|p99|mean|max)\s*\(\s*(?P<metric>[^()\s]+)\s*\)$"
)


def parse_slo(text: str) -> SLOSpec:
    """Parse the CLI objective grammar into an :class:`SLOSpec`.

    Two forms::

        assign_rate = serve.accepted / serve.assignments >= 0.95
        batch_p99 = p99(serve.batch.latency_s) <= 0.5

    whitespace optional throughout.
    """
    match = _SLO_RE.match(text)
    if match is None:
        raise ValueError(
            f"cannot parse SLO {text!r}; expected 'name=num/den>=target' "
            "or 'name=p99(metric)<=threshold'"
        )
    name, body, op, value = (
        match["name"], match["body"].strip(), match["op"], float(match["value"])
    )
    quantile = _SLO_QUANTILE_RE.match(body)
    if quantile is not None:
        if op != "<=":
            raise ValueError(f"quantile SLO {name!r} must use '<='")
        return SLOSpec(
            name=name, kind="quantile", target=value,
            metric=quantile["metric"], quantile=quantile["q"],
        )
    if "/" in body:
        if op != ">=":
            raise ValueError(f"ratio SLO {name!r} must use '>='")
        numerator, _, denominator = body.partition("/")
        return SLOSpec(
            name=name, kind="ratio", target=value,
            numerator=numerator.strip(), denominator=denominator.strip(),
        )
    raise ValueError(
        f"cannot parse SLO body {body!r}; expected 'num/den' or 'p99(metric)'"
    )


class SLOEvaluator:
    """Evaluates a set of :class:`SLOSpec` sample by sample.

    Pure over the sample stream — :meth:`observe` consumes monitor
    sample records (live from :class:`MetricsMonitor`, or replayed from
    a series file by ``serve-report``) and returns each objective's
    burn-rate status plus any newly fired alert events, so a replay
    reconstructs exactly the alerts the live run emitted.
    """

    def __init__(self, specs: Sequence[SLOSpec]) -> None:
        self.specs = tuple(specs)
        names = [s.name for s in self.specs]
        if len(set(names)) != len(names):
            raise ValueError("SLO names must be unique")
        self._history: dict[str, deque] = {
            s.name: deque(maxlen=s.long_window) for s in self.specs
        }
        self._alerting: dict[str, bool] = {s.name: False for s in self.specs}
        self.alerts: list[dict] = []

    def observe(self, sample: dict) -> tuple[dict, list[dict]]:
        """One sample in; per-SLO status and newly fired alerts out."""
        status: dict[str, dict] = {}
        fired: list[dict] = []
        for spec in self.specs:
            self._history[spec.name].append(self._bad_fraction(spec, sample))
            burn_short = self._burn(spec, spec.short_window)
            burn_long = self._burn(spec, spec.long_window)
            alerting = (
                burn_short is not None
                and burn_long is not None
                and burn_short >= spec.burn_threshold
                and burn_long >= spec.burn_threshold
            )
            rising = alerting and not self._alerting[spec.name]
            self._alerting[spec.name] = alerting
            status[spec.name] = {
                "burn_short": burn_short,
                "burn_long": burn_long,
                "alerting": alerting,
            }
            if rising:
                event = {
                    "type": "slo_alert",
                    "slo": spec.name,
                    "objective": spec.describe(),
                    "t": sample.get("t"),
                    "seq": sample.get("seq"),
                    "burn_short": burn_short,
                    "burn_long": burn_long,
                    "burn_threshold": spec.burn_threshold,
                }
                self.alerts.append(event)
                fired.append(event)
        return status, fired

    @staticmethod
    def _bad_fraction(spec: SLOSpec, sample: dict) -> tuple[float, float] | None:
        """This window's ``(bad_fraction, weight)``; ``None`` if idle."""
        if spec.kind == "ratio":
            deltas = sample.get("counter_deltas") or {}
            total = float(deltas.get(spec.denominator, 0.0))
            if total <= 0:
                return None
            good = float(deltas.get(spec.numerator, 0.0))
            return (min(max(1.0 - good / total, 0.0), 1.0), total)
        window = (sample.get("histograms") or {}).get(spec.metric)
        if not window or not window.get("count"):
            return None
        observed = window.get(spec.quantile)
        if observed is None:
            return None
        return (1.0 if observed > spec.target else 0.0, float(window["count"]))

    def _burn(self, spec: SLOSpec, n: int) -> float | None:
        entries = [e for e in list(self._history[spec.name])[-n:] if e is not None]
        if not entries:
            return None
        weight = sum(w for _b, w in entries)
        if weight <= 0:
            return None
        bad = sum(b * w for b, w in entries) / weight
        return bad / spec.resolved_budget()


@dataclass(frozen=True)
class MonitorConfig:
    """Tunables of the online monitor.

    Attributes
    ----------
    cadence:
        Sampling period: simulated minutes when ``clock="event"``,
        seconds when ``clock="wall"``.
    clock:
        ``"event"`` samples on the run's own time axis (deterministic,
        the default for simulated streams); ``"wall"`` samples on
        ``time.monotonic()`` (for live deployments).
    series_path:
        JSONL time-series target (``None`` keeps samples in memory
        only — tests and in-process dashboards).
    openmetrics_path:
        When set, every sample atomically rewrites this OpenMetrics
        exposition file.
    http_port:
        When set (0 = ephemeral), an :class:`ExpositionServer` serves
        the latest exposition at ``/metrics`` for the monitor's
        lifetime.
    prefix:
        OpenMetrics namespace prefix.
    calibration:
        Calibration-monitor knobs; ``None`` disables calibration
        tracking entirely.
    slos:
        Declarative objectives (:class:`SLOSpec`, or their string
        grammar — see :func:`parse_slo`) evaluated at every sample;
        burn-rate status lands in the sample records and alert events
        stream into the series.  Empty disables SLO tracking.
    """

    cadence: float = 2.0
    clock: str = "event"
    series_path: str | None = None
    openmetrics_path: str | None = None
    http_port: int | None = None
    prefix: str = "repro"
    calibration: CalibrationConfig | None = field(default_factory=CalibrationConfig)
    slos: tuple = ()

    def __post_init__(self) -> None:
        if self.cadence <= 0:
            raise ValueError("monitor cadence must be positive")
        if self.clock not in ("event", "wall"):
            raise ValueError("monitor clock must be 'event' or 'wall'")
        object.__setattr__(
            self,
            "slos",
            tuple(parse_slo(s) if isinstance(s, str) else s for s in self.slos),
        )


class MetricsMonitor:
    """Samples a metrics registry on a cadence into a JSONL time series.

    Drive it with :meth:`start` once, :meth:`advance` on every event
    (cheap: one float comparison until a sample boundary is crossed),
    and :meth:`finish` at the end of the run.  Samples accumulate in
    :attr:`samples` and stream to ``config.series_path`` when set.
    """

    def __init__(self, config: MonitorConfig, registry: MetricsRegistry) -> None:
        self.config = config
        self.registry = registry
        self.samples: list[dict] = []
        self.calibration = (
            CalibrationMonitor(config.calibration) if config.calibration is not None else None
        )
        self.slo: SLOEvaluator | None = SLOEvaluator(config.slos) if config.slos else None
        self.server: ExpositionServer | None = None
        self._fh: IO[str] | None = None
        self._seq = 0
        self._last_t: float | None = None
        self._next_sample = 0.0
        self._last_counters: dict[str, float] = {}
        self._hist_cursors: dict[str, int] = {}
        self._finished = False

    # -- lifecycle -----------------------------------------------------
    def start(self, t: float | None = None) -> None:
        """Open sinks and anchor the sampling clock at ``t``."""
        if self.config.series_path is not None:
            path = Path(self.config.series_path)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = path.open("w")
        if self.config.http_port is not None:
            self.server = ExpositionServer(port=self.config.http_port)
        t0 = self._now(t)
        self._last_t = t0
        self._next_sample = t0 + self.config.cadence
        self._write({"type": "monitor_start", "t": t0, "wall_unix": time.time(),
                     "cadence": self.config.cadence, "clock": self.config.clock})
        for spec in self.config.slos:
            self._write({"type": "slo_spec", "slo": spec.name,
                         "objective": spec.describe(), **asdict(spec)})

    def advance(self, t: float | None = None) -> None:
        """Clock tick: emit samples for every cadence boundary crossed.

        With the event clock, an idle stretch longer than one cadence
        emits one sample per boundary (so the series has a row for
        every window, even empty ones); the registry state is the same
        for each, only the window bounds differ.
        """
        now = self._now(t)
        while not self._finished and now >= self._next_sample - 1e-9:
            self._sample(at=self._next_sample)
            self._next_sample += self.config.cadence

    def observe_outcome(self, predicted: float, accepted: bool, t: float) -> None:
        """Feed one assignment outcome to the calibration monitor.

        Drift events stream into the series file as they fire.
        """
        if self.calibration is None:
            return
        event = self.calibration.observe(predicted, accepted, t)
        if event is not None:
            self.registry.counter("serve.calibration.drift").add(1.0)
            self._write(dict(event, wall_unix=time.time()))

    def finish(self, t: float | None = None) -> None:
        """Final sample, calibration summary, and sink close."""
        if self._finished:
            return
        self._sample(at=self._now(t), final=True)
        if self.calibration is not None:
            self._write({"type": "calibration", "wall_unix": time.time(),
                         **self.calibration.summary()})
        self._finished = True
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        if self.server is not None:
            self.server.close()
            self.server = None

    # -- internals -----------------------------------------------------
    def _now(self, t: float | None) -> float:
        if self.config.clock == "wall":
            return time.monotonic()
        if t is None:
            raise ValueError("event-clock monitor needs an explicit time")
        return t

    def _sample(self, at: float, final: bool = False) -> None:
        snapshot = self.registry.snapshot()
        counters = snapshot["counters"]
        deltas = {
            name: value - self._last_counters.get(name, 0.0)
            for name, value in counters.items()
        }
        windows: dict[str, dict] = {}
        # Take the histogram listing under the registry lock: feeder
        # threads (shard-server flushes, the exposition server) may be
        # creating metrics while this sampler iterates.
        with self.registry._lock:
            hist_items = sorted(self.registry.histograms.items())
        for name, hist in hist_items:
            cursor = self._hist_cursors.get(name, 0)
            windows[name] = hist.window_summary(cursor)
            self._hist_cursors[name] = len(hist.values)
        last_t = self._last_t if self._last_t is not None else at
        record = {
            "type": "sample",
            "seq": self._seq,
            "t": at,
            "wall_unix": time.time(),
            "window": at - last_t,
            "counters": counters,
            "counter_deltas": deltas,
            "gauges": snapshot["gauges"],
            "histograms": windows,
        }
        if final:
            record["final"] = True
        if self.calibration is not None and self.calibration.n:
            record["calibration"] = {
                "n_samples": self.calibration.n,
                "brier": self.calibration.brier,
                "ece": self.calibration.expected_calibration_error,
                "n_drift_events": len(self.calibration.drift_events),
            }
        alerts: list[dict] = []
        if self.slo is not None:
            status, alerts = self.slo.observe(record)
            record["slos"] = status
            # Mirror burn rates / alert firings into the registry so
            # OpenMetrics scrapers see them; gauges set here land in
            # the *next* sample's snapshot (this one is already taken).
            for name, st in status.items():
                if st["burn_long"] is not None:
                    self.registry.gauge(
                        labelled("serve.slo.burn_rate", slo=name)
                    ).set(st["burn_long"])
            for event in alerts:
                self.registry.counter(
                    labelled("serve.slo.alerts", slo=event["slo"])
                ).add(1.0)
        self._seq += 1
        self._last_t = at
        self._last_counters = dict(counters)
        self.samples.append(record)
        self._write(record)
        for event in alerts:
            self._write(dict(event, wall_unix=time.time()))
        if self.config.openmetrics_path is not None:
            write_openmetrics(self.config.openmetrics_path, snapshot, prefix=self.config.prefix)
        if self.server is not None:
            self.server.publish(render_openmetrics(snapshot, prefix=self.config.prefix))

    def _write(self, record: dict) -> None:
        if self._fh is not None:
            self._fh.write(json.dumps(record, default=str) + "\n")
            self._fh.flush()


def read_series(path: str | Path) -> list[dict]:
    """Load a monitor time series, skipping corrupt trailing lines.

    Same tolerance as :func:`repro.obs.sinks.read_jsonl`: a run killed
    mid-write leaves a truncated last line, which is skipped with a
    warning instead of losing the whole series.
    """
    return read_jsonl(path)
